// Figure 6(a): number of client-to-server messages — safe-region
// approaches (MWPSR, PBSR h=5) vs the safe-period baseline (SP) and the
// OPT bound, for 1/10/20% public alarms. PRD transmits every sample (the
// paper's 60M messages) and is left off the chart; we print it for
// reference.
//
// Paper shape: OPT fewest; MWPSR ≈ PBSR few; SP ≈ 2-3× the safe-region
// approaches; PRD orders of magnitude above everything.
#include <cstdio>
#include <vector>

#include "bench_common.h"

using namespace salarm;

int main() {
  const core::ExperimentConfig base = bench::default_config();
  bench::print_banner("Figure 6(a)",
                      "client-to-server messages across approaches", base);

  const std::vector<double> public_percents{1.0, 10.0, 20.0};
  std::printf("%-12s %12s %12s %12s %12s %14s %10s\n", "public%", "MWPSR",
              "PBSR(h=5)", "SP", "OPT", "PRD(=samples)", "SP/MWPSR");

  for (const double p : public_percents) {
    core::ExperimentConfig cfg = base;
    cfg.public_percent = p;
    core::Experiment experiment(cfg);
    auto& simulation = experiment.simulation();

    const auto mwpsr =
        simulation.run(experiment.rect(saferegion::MotionModel(1.0, 32)));
    saferegion::PyramidConfig pyramid;
    pyramid.height = 5;
    const auto pbsr = simulation.run(experiment.bitmap(pyramid));
    const auto sp = simulation.run(experiment.safe_period());
    const auto opt = simulation.run(experiment.optimal());
    const auto prd = simulation.run(experiment.periodic());
    for (const auto* run : {&mwpsr, &pbsr, &sp, &opt, &prd}) {
      bench::require_perfect(*run);
    }

    std::printf("%-12.0f %12s %12s %12s %12s %14s %9.2fx\n", p,
                bench::with_commas(mwpsr.metrics.uplink_messages).c_str(),
                bench::with_commas(pbsr.metrics.uplink_messages).c_str(),
                bench::with_commas(sp.metrics.uplink_messages).c_str(),
                bench::with_commas(opt.metrics.uplink_messages).c_str(),
                bench::with_commas(prd.metrics.uplink_messages).c_str(),
                static_cast<double>(sp.metrics.uplink_messages) /
                    static_cast<double>(mwpsr.metrics.uplink_messages));
  }

  std::printf(
      "\npaper: OPT < MWPSR ~ PBSR << SP (~2-3x the safe-region cost) << "
      "PRD.\n");
  return 0;
}
