// Figure 6(d): server processing time, decomposed into alarm processing
// and safe-region computation, for PRD / MWPSR / PBSR / SP / OPT at 1% and
// 10% public alarms.
//
// Paper shape: PRD's alarm-processing cost towers over everything and is
// insensitive to alarm density; MWPSR and PBSR are lowest (PBSR's region
// computation exceeds MWPSR's at higher density); SP sits between the safe
// region approaches and PRD; OPT is comparable to the safe-region
// approaches except at the highest density.
#include <cstdio>
#include <vector>

#include "bench_common.h"

using namespace salarm;

int main() {
  const core::ExperimentConfig base = bench::default_config();
  bench::print_banner("Figure 6(d)",
                      "server processing time (alarm + safe region)", base);

  const sim::CostModel cost;
  std::printf("%-9s %-10s %16s %18s %12s\n", "public%", "approach",
              "alarm proc (min)", "safe region (min)", "total (min)");

  for (const double p : {1.0, 10.0}) {
    core::ExperimentConfig cfg = base;
    cfg.public_percent = p;
    core::Experiment experiment(cfg);
    auto& simulation = experiment.simulation();

    saferegion::PyramidConfig pyramid;
    pyramid.height = 5;
    struct Row {
      const char* label;
      sim::RunResult run;
    };
    std::vector<Row> rows;
    rows.push_back({"PR", simulation.run(experiment.periodic())});
    rows.push_back(
        {"MW", simulation.run(experiment.rect(saferegion::MotionModel(1.0, 32)))});
    rows.push_back({"PB", simulation.run(experiment.bitmap(pyramid))});
    rows.push_back({"SP", simulation.run(experiment.safe_period())});
    rows.push_back({"OP", simulation.run(experiment.optimal())});

    for (const Row& row : rows) {
      bench::require_perfect(row.run);
      std::printf("%-9.0f %-10s %16.4f %18.4f %12.4f\n", p, row.label,
                  cost.server_alarm_minutes(row.run.metrics),
                  cost.server_region_minutes(row.run.metrics),
                  cost.server_total_minutes(row.run.metrics));
    }
    std::printf("\n");
  }

  std::printf(
      "paper: PR highest and density-insensitive; MW/PB lowest; SP between; "
      "PB region\n       computation > MW at higher density.\n");
  return 0;
}
