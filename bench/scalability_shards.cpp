// Scalability study: the sharded cluster tier vs. the monolithic server.
//
// Sweeps the shard count (spatial partitions of the universe) and the tick-
// executor thread count for the MWPSR strategy, against the monolithic
// single-server reference. Reports wall-clock per sweep point (informational
// only — the cost models use counted events) plus the cluster's inter-shard
// handoff traffic, the price of spatial partitioning. Every point must stay
// 100% accurate and bit-identical across thread counts; the determinism
// regression test (tests/simulation_test.cpp) enforces the latter, this
// bench enforces the former via require_perfect.
#include <cstdio>

#include "bench_common.h"

using namespace salarm;

int main() {
  const core::ExperimentConfig cfg = bench::default_config();
  bench::print_banner("Cluster scalability",
                      "sharded MWPSR vs. shard x thread count", cfg);

  core::Experiment experiment(cfg);
  const auto factory = experiment.rect(saferegion::MotionModel(1.0, 32));

  const auto mono = experiment.simulation().run(factory);
  bench::require_perfect(mono);
  std::printf("monolithic reference: %.3f s wall, %s uplink msgs\n\n",
              mono.wall_seconds,
              bench::with_commas(mono.metrics.uplink_messages).c_str());

  std::printf("%-8s %-8s %12s %14s %14s %12s\n", "shards", "threads",
              "wall (s)", "handoff msgs", "handoff KB", "speedup");
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    for (const std::size_t threads : {1u, 2u, 4u}) {
      const auto run = experiment.simulation().run_sharded(
          factory, {.shards = shards, .threads = threads});
      bench::require_perfect(run);
      std::printf("%-8zu %-8zu %12.3f %14s %14.1f %11.2fx\n", shards,
                  threads, run.wall_seconds,
                  bench::with_commas(run.metrics.handoff_messages).c_str(),
                  static_cast<double>(run.metrics.handoff_bytes) / 1024.0,
                  mono.wall_seconds / run.wall_seconds);
    }
  }
  std::printf(
      "\nhandoff traffic depends on shards only (boundary crossings), never "
      "on threads;\nspeedup needs real cores — on a single-core host the "
      "pool only adds overhead.\n");
  return 0;
}
