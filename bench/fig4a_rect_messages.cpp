// Figure 4(a): number of client-to-server messages for the rectangular
// safe-region approach, as grid cell size varies, comparing the
// non-weighted perimeter baseline against the weighted approach with
// steadiness (y=1, z in {4, 16, 32}).
//
// Paper shape: the weighted approach consistently (if slightly) beats the
// non-weighted one; messages fall as cells grow; every variant needs <3%
// of the raw location samples.
#include <cstdio>
#include <vector>

#include "bench_common.h"

using namespace salarm;

int main() {
  const core::ExperimentConfig base = bench::default_config();
  bench::print_banner("Figure 4(a)",
                      "client-to-server messages, rectangular safe regions",
                      base);

  const std::vector<double> cell_sizes{0.4, 0.625, 1.11, 2.5, 10.0};
  struct Variant {
    const char* label;
    bool weighted;
    int z;
  };
  const std::vector<Variant> variants{{"non-weighted", false, 2},
                                      {"y=1,z=4", true, 4},
                                      {"y=1,z=16", true, 16},
                                      {"y=1,z=32", true, 32}};

  std::printf("%-12s", "cell(km^2)");
  for (const Variant& v : variants) std::printf(" %14s", v.label);
  std::printf(" %14s\n", "% of samples");

  for (const double cell : cell_sizes) {
    core::ExperimentConfig cfg = base;
    cfg.grid_cell_sqkm = cell;
    core::Experiment experiment(cfg);
    const double samples = static_cast<double>(cfg.vehicles) *
                           static_cast<double>(experiment.simulation().ticks());

    std::printf("%-12.3f", cell);
    double weighted_z32_msgs = 0.0;
    for (const Variant& v : variants) {
      saferegion::MwpsrOptions options;
      options.weighted = v.weighted;
      const auto run = experiment.simulation().run(
          experiment.rect(saferegion::MotionModel(1.0, v.z), options));
      bench::require_perfect(run);
      std::printf(" %14s",
                  bench::with_commas(run.metrics.uplink_messages).c_str());
      weighted_z32_msgs = static_cast<double>(run.metrics.uplink_messages);
    }
    std::printf(" %13.2f%%\n", 100.0 * weighted_z32_msgs / samples);
  }

  std::printf(
      "\npaper: weighted <= non-weighted at every cell size; messages fall "
      "with cell size;\n       <3%% of the 60M raw samples ever reach the "
      "server.\n");
  return 0;
}
