// Figure 5(b): client energy consumption (mWh) used to determine client
// position within the safe region, for pyramid heights h=1..7 and 1/10/20%
// public alarms.
//
// Paper shape: GBSR needs 2-3 containment detections per second and little
// energy; cost grows slowly with height at low density and noticeably at
// 20% public (6-7 detections/second at h=7).
#include <cstdio>
#include <vector>

#include "bench_common.h"

using namespace salarm;

int main() {
  const core::ExperimentConfig base = bench::default_config();
  bench::print_banner(
      "Figure 5(b)",
      "client energy for containment detection, GBSR/PBSR height sweep",
      base);

  const sim::CostModel cost;
  const std::vector<double> public_percents{1.0, 10.0, 20.0};

  std::printf("%-8s", "height");
  for (const double p : public_percents) {
    std::printf("  %3.0f%% mWh (ops/s/client)", p);
  }
  std::printf("\n");

  for (int height = 1; height <= 7; ++height) {
    std::printf("h=%-6d", height);
    for (const double p : public_percents) {
      core::ExperimentConfig cfg = base;
      cfg.public_percent = p;
      core::Experiment experiment(cfg);
      saferegion::PyramidConfig pyramid;
      pyramid.height = height;
      // Height is the swept variable here (the paper's Figure 5 study);
      // disable the bit budget so it cannot mask the height effect.
      pyramid.max_bits = 0;
      const auto run =
          experiment.simulation().run(experiment.bitmap(pyramid));
      bench::require_perfect(run);
      const double ops_per_second_per_client =
          static_cast<double>(run.metrics.client_check_ops) /
          (run.duration_s * static_cast<double>(run.subscribers));
      std::printf("  %12.1f (%8.2f)", cost.client_energy_mwh(run.metrics),
                  ops_per_second_per_client);
    }
    std::printf("%s\n", height == 1 ? "  (GBSR)" : "");
  }
  std::printf(
      "\npaper: ~2-3 detections/s at h=1 and low density; 6-7/s at h=7 with "
      "20%% public;\n       energy grows with height and with alarm "
      "density.\n");
  return 0;
}
