// Ablation: dominance pruning of MWPSR candidate points (paper step 1) —
// identical regions, fewer tension points and thus less assembly work.
#include <cstdio>

#include "bench_common.h"

using namespace salarm;

int main() {
  core::ExperimentConfig cfg = bench::default_config();
  cfg.public_percent = 20.0;  // denser cells make pruning matter more
  bench::print_banner("Ablation", "MWPSR candidate dominance pruning", cfg);

  core::Experiment experiment(cfg);
  std::printf("%-22s %12s %16s\n", "variant", "messages", "region ops");
  for (const bool prune : {true, false}) {
    saferegion::MwpsrOptions options;
    options.prune_dominated = prune;
    const auto run = experiment.simulation().run(
        experiment.rect(saferegion::MotionModel(1.0, 32), options));
    bench::require_perfect(run);
    std::printf("%-22s %12s %16s\n",
                prune ? "pruning on (default)" : "pruning off",
                bench::with_commas(run.metrics.uplink_messages).c_str(),
                bench::with_commas(run.metrics.server_region_ops).c_str());
  }
  std::printf("\nmessages must match (pruning never changes the region); "
              "ops drop with pruning.\n");
  return 0;
}
