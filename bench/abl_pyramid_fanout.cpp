// Ablation: pyramid fan-out U x V — 2x2 / 3x3 (paper's Figure 3) / 4x4 at
// depths chosen to reach a comparable leaf resolution, trading bitmap size
// against messages.
#include <cstdio>
#include <vector>

#include "bench_common.h"

using namespace salarm;

int main() {
  core::ExperimentConfig cfg = bench::default_config();
  bench::print_banner("Ablation", "pyramid fan-out at comparable resolution",
                      cfg);

  struct Variant {
    const char* label;
    int fanout;
    int height;  // leaf cell ~ cell / fanout^height per axis
  };
  // 2^8 = 256, 3^5 = 243, 4^4 = 256: comparable leaf resolutions.
  const std::vector<Variant> variants{
      {"2x2, h=8", 2, 8}, {"3x3, h=5 (default)", 3, 5}, {"4x4, h=4", 4, 4}};

  core::Experiment experiment(cfg);
  std::printf("%-22s %12s %18s %16s\n", "variant", "messages",
              "avg payload (B)", "region ops");
  for (const Variant& v : variants) {
    saferegion::PyramidConfig pyramid;
    pyramid.fanout_u = v.fanout;
    pyramid.fanout_v = v.fanout;
    pyramid.height = v.height;
    const auto run = experiment.simulation().run(experiment.bitmap(pyramid));
    bench::require_perfect(run);
    std::printf("%-22s %12s %18.0f %16s\n", v.label,
                bench::with_commas(run.metrics.uplink_messages).c_str(),
                run.metrics.region_payload_bytes.mean(),
                bench::with_commas(run.metrics.server_region_ops).c_str());
  }
  return 0;
}
