// Robustness study: downstream message loss.
//
// A lost safe-region message cannot break correctness — the client's
// previous region stays sound (relevance only shrinks over time), or it
// has none and keeps asking. What loss costs is communication: every
// dropped response is answered by another report. This bench injects loss
// into the rect and bitmap strategies and verifies the 100%-accuracy
// invariant survives while messages inflate.
#include <cstdio>

#include "bench_common.h"

using namespace salarm;

int main() {
  core::ExperimentConfig cfg = bench::default_config();
  bench::print_banner("Robustness", "downstream safe-region message loss",
                      cfg);

  core::Experiment experiment(cfg);
  const saferegion::MotionModel model(1.0, 32);
  saferegion::PyramidConfig gbsr;
  gbsr.height = 1;  // GBSR is the height-1 pyramid
  saferegion::PyramidConfig pbsr;
  pbsr.height = 5;

  std::printf("%-10s %16s %10s %16s %10s %16s %10s\n", "loss", "MWPSR msgs",
              "missed", "GBSR msgs", "missed", "PBSR msgs", "missed");
  for (const double loss : {0.0, 0.05, 0.2, 0.5}) {
    const auto rect =
        loss == 0.0
            ? experiment.simulation().run(experiment.rect(model))
            : experiment.simulation().run(
                  experiment.rect_with_loss(model, loss));
    const auto grid_bitmap =
        loss == 0.0
            ? experiment.simulation().run(experiment.bitmap(gbsr))
            : experiment.simulation().run(
                  experiment.bitmap_with_loss(gbsr, loss));
    const auto bitmap =
        loss == 0.0
            ? experiment.simulation().run(experiment.bitmap(pbsr))
            : experiment.simulation().run(
                  experiment.bitmap_with_loss(pbsr, loss));
    bench::require_perfect(rect);
    bench::require_perfect(grid_bitmap);
    bench::require_perfect(bitmap);
    std::printf(
        "%-10.0f%% %15s %10zu %16s %10zu %16s %10zu\n", loss * 100,
        bench::with_commas(rect.metrics.uplink_messages).c_str(),
        rect.accuracy.missed,
        bench::with_commas(grid_bitmap.metrics.uplink_messages).c_str(),
        grid_bitmap.accuracy.missed,
        bench::with_commas(bitmap.metrics.uplink_messages).c_str(),
        bitmap.accuracy.missed);
  }
  std::printf("\naccuracy survives any loss rate; lost responses are paid "
              "for in repeat reports.\n");
  return 0;
}
