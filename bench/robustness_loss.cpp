// Robustness study: downstream message loss.
//
// A lost safe-region message cannot break correctness — the client's
// previous region stays sound (relevance only shrinks over time), or it
// has none and keeps asking. What loss costs is communication: every
// dropped response is answered by another report. This bench routes the
// rect and bitmap strategies through a channel with downlink loss only
// (DESIGN.md §9) and verifies the 100%-accuracy invariant survives while
// messages inflate. The full fault matrix — uplink loss, delay,
// duplication, outages — is bench/robustness_faults.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

using namespace salarm;

int main() {
  core::ExperimentConfig cfg = bench::default_config();
  bench::print_banner("Robustness", "downstream safe-region message loss",
                      cfg);

  core::Experiment experiment(cfg);
  const saferegion::MotionModel model(1.0, 32);
  saferegion::PyramidConfig gbsr;
  gbsr.height = 1;  // GBSR is the height-1 pyramid
  saferegion::PyramidConfig pbsr;
  pbsr.height = 5;

  std::vector<std::string> header;
  std::vector<std::string> rows;
  for (const double loss : {0.0, 0.05, 0.2, 0.5}) {
    net::ChannelConfig channel;
    channel.downlink_loss = loss;
    experiment.enable_channel(channel);
    const auto rect = experiment.simulation().run(experiment.rect(model));
    const auto grid_bitmap =
        experiment.simulation().run(experiment.bitmap(gbsr));
    const auto bitmap = experiment.simulation().run(experiment.bitmap(pbsr));
    bench::require_perfect(rect);
    bench::require_perfect(grid_bitmap);
    bench::require_perfect(bitmap);
    if (header.empty()) {
      // Column labels come from the runs themselves so a strategy-naming
      // change can never desynchronise header and data.
      for (const auto* run : {&rect, &grid_bitmap, &bitmap}) {
        header.push_back(run->strategy + " msgs");
      }
    }
    char label[16];
    std::snprintf(label, sizeof(label), "%.0f%%", loss * 100);
    char row[256];
    std::snprintf(row, sizeof(row), "%-10s %16s %10zu %16s %10zu %16s %10zu",
                  label,
                  bench::with_commas(rect.metrics.uplink_messages).c_str(),
                  rect.accuracy.missed,
                  bench::with_commas(grid_bitmap.metrics.uplink_messages).c_str(),
                  grid_bitmap.accuracy.missed,
                  bench::with_commas(bitmap.metrics.uplink_messages).c_str(),
                  bitmap.accuracy.missed);
    rows.emplace_back(row);
  }
  std::printf("%-10s %16s %10s %16s %10s %16s %10s\n", "loss",
              header[0].c_str(), "missed", header[1].c_str(), "missed",
              header[2].c_str(), "missed");
  for (const auto& row : rows) std::printf("%s\n", row.c_str());
  std::printf("\naccuracy survives any loss rate; lost responses are paid "
              "for in repeat reports.\n");
  return 0;
}
