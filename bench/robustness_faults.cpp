// Robustness study: the full fault matrix (DESIGN.md §9).
//
// Sweeps escalating channel fault scenarios — clean, 20% symmetric loss,
// loss + delay/jitter + duplication, and full chaos with burst outages —
// across all seven strategies. The headline invariant is checked on every
// run: the reliability protocol (sequence numbers + ACK/retransmission,
// leased grants with server-side fallback) keeps every strategy
// oracle-exact under arbitrary loss, reordering, duplication and outage
// schedules; what faults cost is protocol traffic and energy, never
// accuracy.
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"

using namespace salarm;

namespace {

struct Scenario {
  const char* name;
  net::ChannelConfig channel;
};

std::vector<Scenario> scenarios() {
  std::vector<Scenario> out;
  out.push_back({"clean", {}});

  net::ChannelConfig loss;
  loss.uplink_loss = 0.2;
  loss.downlink_loss = 0.2;
  out.push_back({"loss 20%", loss});

  net::ChannelConfig degraded = loss;
  degraded.latency_base_ms = 40.0;
  degraded.latency_jitter_ms = 80.0;  // jitter reorders in-flight copies
  degraded.duplicate_rate = 0.1;
  out.push_back({"loss+delay+dup", degraded});

  net::ChannelConfig chaos = degraded;
  chaos.outage_start_per_tick = 0.01;
  chaos.outage_mean_ticks = 3.0;
  out.push_back({"full chaos", chaos});
  return out;
}

std::vector<std::pair<std::string, sim::Simulation::StrategyFactory>>
strategy_set(const core::Experiment& experiment) {
  saferegion::PyramidConfig gbsr;
  gbsr.height = 1;
  saferegion::PyramidConfig pbsr;
  pbsr.height = 5;
  std::vector<std::pair<std::string, sim::Simulation::StrategyFactory>> out;
  out.emplace_back("PRD", experiment.periodic());
  out.emplace_back("SP", experiment.safe_period());
  out.emplace_back("MWPSR", experiment.rect(saferegion::MotionModel(1.0, 32)));
  out.emplace_back("GBSR", experiment.bitmap(gbsr));
  out.emplace_back("PBSR", experiment.bitmap(pbsr));
  out.emplace_back("PBSR+cache", experiment.bitmap_cached(pbsr));
  out.emplace_back("OPT", experiment.optimal());
  return out;
}

}  // namespace

int main() {
  core::ExperimentConfig cfg = bench::default_config();
  bench::print_banner("Robustness",
                      "fault matrix: loss, delay, duplication, outages", cfg);

  core::Experiment experiment(cfg);
  const sim::CostModel cost;

  for (const Scenario& scenario : scenarios()) {
    experiment.enable_channel(scenario.channel);
    std::printf("-- %s --\n", scenario.name);
    std::printf("%-12s %12s %10s %8s %10s %10s %9s %11s\n", "strategy",
                "messages", "retrans", "dups", "outages", "fallback",
                "lat ms", "net mWh");
    for (const auto& [label, factory] : strategy_set(experiment)) {
      const auto run = experiment.simulation().run(factory);
      bench::require_perfect(run);
      const auto& m = run.metrics;
      std::printf("%-12s %12s %10s %8s %10s %10s %9.1f %11.2f\n",
                  label.c_str(),
                  bench::with_commas(m.uplink_messages).c_str(),
                  bench::with_commas(m.net_retransmissions).c_str(),
                  bench::with_commas(m.net_duplicates_dropped).c_str(),
                  bench::with_commas(m.net_outages).c_str(),
                  bench::with_commas(m.net_lease_fallback_ticks).c_str(),
                  m.net_delivery_latency_ms.mean(),
                  cost.net_overhead_mwh(m));
    }
    std::printf("\n");
  }

  std::printf(
      "every run above is oracle-exact (a violation aborts the bench):\n"
      "faults buy retransmissions, duplicate suppressions and lease\n"
      "fallback ticks — never missed or spurious alarms.\n");
  return 0;
}
