// Scalability study: server load vs. population (the paper's motivation —
// "with increasing number of users ... the alarm processing server may
// become a bottleneck"). Sweeps the vehicle count and reports modeled
// server minutes for the server-centric PRD against the distributed
// MWPSR; the gap is the scalability headroom the safe-region architecture
// buys.
#include <cstdio>

#include "bench_common.h"

using namespace salarm;

int main() {
  const core::ExperimentConfig base = bench::default_config();
  bench::print_banner("Scalability", "server load vs. vehicle count", base);

  const sim::CostModel cost;
  std::printf("%-10s %14s %14s %10s\n", "vehicles", "PRD (min)",
              "MWPSR (min)", "ratio");
  for (const std::size_t vehicles : {100u, 200u, 400u, 800u}) {
    core::ExperimentConfig cfg = base;
    cfg.vehicles = vehicles;
    core::Experiment experiment(cfg);
    const auto prd = experiment.simulation().run(experiment.periodic());
    const auto mwpsr = experiment.simulation().run(
        experiment.rect(saferegion::MotionModel(1.0, 32)));
    bench::require_perfect(prd);
    bench::require_perfect(mwpsr);
    const double prd_min = cost.server_total_minutes(prd.metrics);
    const double mwpsr_min = cost.server_total_minutes(mwpsr.metrics);
    std::printf("%-10zu %14.4f %14.4f %9.1fx\n", vehicles, prd_min,
                mwpsr_min, prd_min / mwpsr_min);
  }
  std::printf("\nboth scale linearly in population, but the distributed "
              "architecture's slope is\nan order of magnitude lower — the "
              "throughput headroom the paper argues for.\n");
  return 0;
}
