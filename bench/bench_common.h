// Shared harness for the figure-reproduction benches.
//
// Each bench binary reproduces one table/figure of the paper's §5: it
// builds the workload via core::Experiment, runs the strategies the figure
// compares, and prints the same rows/series the paper reports, plus the
// measured accuracy (which must always be 100%). Scale defaults are reduced
// from the paper's 10,000 vehicles × 1 h; set SALARM_FULL=1 (or
// SALARM_VEHICLES / SALARM_MINUTES / SALARM_ALARMS / SALARM_SEED) to change
// them — see core/experiment.h.
#pragma once

#include <cstdio>
#include <string>

#include "core/experiment.h"
#include "sim/cost_model.h"
#include "sim/simulation.h"

namespace salarm::bench {

/// Default bench workload: same densities as the paper (≈10 alarms/km²,
/// ≈10 vehicles/km²) on a quarter-size map for interactive turnaround.
inline core::ExperimentConfig default_config() {
  core::ExperimentConfig cfg;
  cfg.universe_km = 16.0;
  cfg.vehicles = 400;
  cfg.minutes = 8.0;
  cfg.alarm_count = 2560;  // 10 per km²
  cfg.public_percent = 10.0;
  cfg.grid_cell_sqkm = 2.5;
  cfg.seed = 42;
  return cfg.with_env_overrides();
}

/// Prints the standard workload banner.
inline void print_banner(const char* figure, const char* description,
                         const core::ExperimentConfig& cfg) {
  std::printf("== %s — %s ==\n", figure, description);
  std::printf(
      "workload: %.0f km^2, %zu vehicles, %.0f min @ %.0f Hz, %zu alarms "
      "(%.0f%% public), cell %.2f km^2, seed %llu\n\n",
      cfg.universe_km * cfg.universe_km, cfg.vehicles, cfg.minutes,
      1.0 / cfg.tick_seconds, cfg.alarm_count, cfg.public_percent,
      cfg.grid_cell_sqkm, static_cast<unsigned long long>(cfg.seed));
}

/// Formats counts with thousands separators for readability.
inline std::string with_commas(std::uint64_t v) {
  std::string raw = std::to_string(v);
  std::string out;
  int count = 0;
  for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  return std::string(out.rbegin(), out.rend());
}

/// Aborts the bench loudly if a run missed or mistimed any trigger — the
/// paper requires 100% accuracy from every approach.
inline void require_perfect(const sim::RunResult& run) {
  if (!run.accuracy.perfect()) {
    std::fprintf(stderr,
                 "ACCURACY VIOLATION in %s: expected=%zu missed=%zu "
                 "spurious=%zu late=%zu\n",
                 run.strategy.c_str(), run.accuracy.expected,
                 run.accuracy.missed, run.accuracy.spurious,
                 run.accuracy.late);
    std::abort();
  }
}

}  // namespace salarm::bench
