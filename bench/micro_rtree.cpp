// Micro-benchmarks (google-benchmark): R*-tree operations at the alarm
// index's working sizes.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "index/rstar_tree.h"

namespace {

using salarm::Rng;
using salarm::geo::Point;
using salarm::geo::Rect;
using salarm::index::Entry;
using salarm::index::RStarTree;

Rect random_alarm(Rng& rng, double extent) {
  const Point c{rng.uniform(0, extent), rng.uniform(0, extent)};
  return Rect::centered_square(c, rng.uniform(100, 500));
}

RStarTree build_tree(std::size_t n, double extent) {
  Rng rng(7);
  RStarTree tree;
  for (std::uint64_t i = 0; i < n; ++i) {
    tree.insert({random_alarm(rng, extent), i});
  }
  return tree;
}

void BM_RTreeInsert(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    RStarTree tree = build_tree(n, 32000.0);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RTreeInsert)->Arg(1000)->Arg(10000);

void BM_RTreeBulkLoad(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  std::vector<Entry> entries;
  for (std::uint64_t i = 0; i < n; ++i) {
    entries.push_back({random_alarm(rng, 32000.0), i});
  }
  for (auto _ : state) {
    RStarTree tree = RStarTree::bulk_load(entries);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RTreeBulkLoad)->Arg(1000)->Arg(10000);

void BM_RTreePointQuery(benchmark::State& state) {
  const auto tree = build_tree(static_cast<std::size_t>(state.range(0)),
                               32000.0);
  Rng rng(9);
  for (auto _ : state) {
    const Point p{rng.uniform(0, 32000), rng.uniform(0, 32000)};
    std::size_t hits = 0;
    tree.visit(Rect(p, p), [&](const Entry&) {
      ++hits;
      return true;
    });
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RTreePointQuery)->Arg(1000)->Arg(10000);

void BM_RTreeWindowQuery(benchmark::State& state) {
  const auto tree = build_tree(static_cast<std::size_t>(state.range(0)),
                               32000.0);
  Rng rng(11);
  for (auto _ : state) {
    const Point c{rng.uniform(0, 32000), rng.uniform(0, 32000)};
    const auto window = Rect::centered_square(c, 1581.0);  // 2.5 km^2 cell
    std::size_t hits = 0;
    tree.visit(window, [&](const Entry&) {
      ++hits;
      return true;
    });
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RTreeWindowQuery)->Arg(1000)->Arg(10000);

void BM_RTreeNearest(benchmark::State& state) {
  const auto tree = build_tree(static_cast<std::size_t>(state.range(0)),
                               32000.0);
  Rng rng(13);
  for (auto _ : state) {
    const Point p{rng.uniform(0, 32000), rng.uniform(0, 32000)};
    benchmark::DoNotOptimize(tree.nearest_distance(p));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RTreeNearest)->Arg(1000)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
