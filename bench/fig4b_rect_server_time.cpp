// Figure 4(b): server processing time for the weighted perimeter approach
// (y=1, z=32) as grid cell size varies, decomposed into alarm processing
// and safe-region computation.
//
// Paper shape: alarm-processing time falls with cell size (fewer location
// messages reach the index), safe-region computation rises (more alarms
// intersect each larger cell), and the total is minimized at 2.5 km².
#include <cstdio>
#include <vector>

#include "bench_common.h"

using namespace salarm;

int main() {
  const core::ExperimentConfig base = bench::default_config();
  bench::print_banner("Figure 4(b)",
                      "server processing time, weighted rect (y=1, z=32)",
                      base);

  const sim::CostModel cost;
  const std::vector<double> cell_sizes{0.4, 0.625, 1.11, 2.5, 10.0};

  std::printf("%-12s %16s %20s %14s\n", "cell(km^2)", "alarm proc (min)",
              "safe region (min)", "total (min)");
  double best_total = 0.0;
  double best_cell = 0.0;
  bool first = true;
  for (const double cell : cell_sizes) {
    core::ExperimentConfig cfg = base;
    cfg.grid_cell_sqkm = cell;
    core::Experiment experiment(cfg);
    const auto run = experiment.simulation().run(
        experiment.rect(saferegion::MotionModel(1.0, 32)));
    bench::require_perfect(run);
    const double alarm_min = cost.server_alarm_minutes(run.metrics);
    const double region_min = cost.server_region_minutes(run.metrics);
    const double total = alarm_min + region_min;
    std::printf("%-12.3f %16.4f %20.4f %14.4f\n", cell, alarm_min, region_min,
                total);
    if (first || total < best_total) {
      best_total = total;
      best_cell = cell;
      first = false;
    }
  }
  std::printf("\nminimum total at %.3f km^2 (paper: 2.5 km^2)\n", best_cell);
  return 0;
}
