// Figure 5(a): number of client-to-server messages for the bitmap-encoded
// safe region approaches as the pyramid height grows from h=1 (GBSR) to
// h=7 (PBSR), for 1%, 10% and 20% public alarms.
//
// Paper shape: GBSR (h=1) is highly inefficient — its coarse bitmap forces
// frequent location messages; messages drop sharply as h grows; the
// approach is sensitive to alarm density (more public alarms → more
// messages at every height).
#include <cstdio>
#include <vector>

#include "bench_common.h"

using namespace salarm;

int main() {
  const core::ExperimentConfig base = bench::default_config();
  bench::print_banner("Figure 5(a)",
                      "client-to-server messages, GBSR/PBSR height sweep",
                      base);

  const std::vector<double> public_percents{1.0, 10.0, 20.0};

  std::printf("%-8s", "height");
  for (const double p : public_percents) {
    std::printf("   %3.0f%% public", p);
  }
  std::printf("\n");

  for (int height = 1; height <= 7; ++height) {
    std::printf("h=%-6d", height);
    for (const double p : public_percents) {
      core::ExperimentConfig cfg = base;
      cfg.public_percent = p;
      core::Experiment experiment(cfg);
      saferegion::PyramidConfig pyramid;
      pyramid.height = height;
      // Height is the swept variable here (the paper's Figure 5 study);
      // disable the bit budget so it cannot mask the height effect.
      pyramid.max_bits = 0;
      const auto run =
          experiment.simulation().run(experiment.bitmap(pyramid));
      bench::require_perfect(run);
      std::printf(" %13s",
                  bench::with_commas(run.metrics.uplink_messages).c_str());
    }
    std::printf("%s\n", height == 1 ? "   (GBSR)" : "");
  }
  std::printf(
      "\npaper: sharp drop from h=1; higher public%% -> more messages at "
      "every height.\n");
  return 0;
}
