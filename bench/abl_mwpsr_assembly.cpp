// Ablation: MWPSR step-4 assembly — the paper's greedy heuristic vs
// exhaustive enumeration, with and without the area tie-break (DESIGN.md
// "Reconstruction decisions"). Shows why the library defaults to
// auto-exhaustive with eps=0.5: the pure greedy/pure-perimeter variants
// produce needle-shaped regions that get crossed in a tick or two, costing
// messages.
#include <cstdio>
#include <vector>

#include "bench_common.h"

using namespace salarm;

int main() {
  core::ExperimentConfig cfg = bench::default_config();
  bench::print_banner("Ablation", "MWPSR assembly mode and area tie-break",
                      cfg);

  struct Variant {
    const char* label;
    saferegion::MwpsrAssembly assembly;
    double eps;
  };
  const std::vector<Variant> variants{
      {"greedy, eps=0 (paper step 4)", saferegion::MwpsrAssembly::kGreedy,
       0.0},
      {"exhaustive, eps=0", saferegion::MwpsrAssembly::kExhaustive, 0.0},
      {"greedy, eps=0.5", saferegion::MwpsrAssembly::kGreedy, 0.5},
      {"exhaustive, eps=0.5 (default)",
       saferegion::MwpsrAssembly::kExhaustive, 0.5},
  };

  core::Experiment experiment(cfg);
  std::printf("%-32s %12s %16s %14s\n", "variant", "messages",
              "region ops", "recomputes");
  for (const Variant& v : variants) {
    saferegion::MwpsrOptions options;
    options.assembly = v.assembly;
    options.area_tiebreak_epsilon = v.eps;
    const auto run = experiment.simulation().run(
        experiment.rect(saferegion::MotionModel(1.0, 32), options));
    bench::require_perfect(run);
    std::printf("%-32s %12s %16s %14s\n", v.label,
                bench::with_commas(run.metrics.uplink_messages).c_str(),
                bench::with_commas(run.metrics.server_region_ops).c_str(),
                bench::with_commas(run.metrics.safe_region_recomputes).c_str());
  }
  return 0;
}
