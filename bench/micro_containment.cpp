// Micro-benchmarks (google-benchmark): the client-side containment checks
// whose operation counts drive the energy model — rectangle test, pyramid
// descent, OPT's alarm-list scan.
#include <vector>

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "saferegion/pyramid.h"

namespace {

using salarm::Rng;
using salarm::geo::Point;
using salarm::geo::Rect;
using namespace salarm::saferegion;

const Rect kCell(0, 0, 1581, 1581);

std::vector<Rect> cell_alarms(int n) {
  Rng rng(3);
  std::vector<Rect> out;
  while (static_cast<int>(out.size()) < n) {
    const Point c{rng.uniform(-200, 1781), rng.uniform(-200, 1781)};
    const Rect a = Rect::centered_square(c, rng.uniform(100, 500));
    if (a.intersects(kCell)) out.push_back(a);
  }
  return out;
}

void BM_RectContainment(benchmark::State& state) {
  const Rect region(200, 200, 1200, 1100);
  Rng rng(5);
  for (auto _ : state) {
    const Point p{rng.uniform(0, 1581), rng.uniform(0, 1581)};
    benchmark::DoNotOptimize(region.contains(p));
  }
}
BENCHMARK(BM_RectContainment);

void BM_PyramidDescent(benchmark::State& state) {
  PyramidConfig config;
  config.height = static_cast<int>(state.range(0));
  const auto bitmap = PyramidBitmap::build(kCell, cell_alarms(4), config);
  Rng rng(7);
  std::int64_t levels = 0;
  for (auto _ : state) {
    const Point p{rng.uniform(0, 1581), rng.uniform(0, 1581)};
    const auto c = bitmap.locate(p);
    levels += c.levels;
    benchmark::DoNotOptimize(c.safe);
  }
  state.counters["avg_levels"] =
      static_cast<double>(levels) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_PyramidDescent)->Arg(1)->Arg(3)->Arg(5)->Arg(7);

void BM_OptAlarmScan(benchmark::State& state) {
  const auto alarms = cell_alarms(static_cast<int>(state.range(0)));
  Rng rng(9);
  for (auto _ : state) {
    const Point p{rng.uniform(0, 1581), rng.uniform(0, 1581)};
    bool hit = false;
    for (const Rect& a : alarms) hit |= a.interior_contains(p);
    benchmark::DoNotOptimize(hit);
  }
}
BENCHMARK(BM_OptAlarmScan)->Arg(3)->Arg(10)->Arg(30);

}  // namespace

BENCHMARK_MAIN();
