// Micro-benchmarks (google-benchmark): MWPSR safe-region computation cost
// versus the number of alarms intersecting the cell, for the greedy and
// exhaustive assemblies.
#include <vector>

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "saferegion/motion_model.h"
#include "saferegion/mwpsr.h"

namespace {

using salarm::Rng;
using salarm::geo::Point;
using salarm::geo::Rect;
using namespace salarm::saferegion;

std::vector<Rect> cell_alarms(Rng& rng, const Rect& cell, int n) {
  std::vector<Rect> out;
  while (static_cast<int>(out.size()) < n) {
    const Point c{rng.uniform(cell.lo().x - 200, cell.hi().x + 200),
                  rng.uniform(cell.lo().y - 200, cell.hi().y + 200)};
    const Rect a = Rect::centered_square(c, rng.uniform(100, 500));
    if (a.intersects(cell)) out.push_back(a);
  }
  return out;
}

void run_mwpsr(benchmark::State& state, MwpsrAssembly assembly) {
  const Rect cell(0, 0, 1581, 1581);  // 2.5 km^2
  Rng rng(3);
  const auto alarms = cell_alarms(rng, cell, static_cast<int>(state.range(0)));
  const MotionModel model(1.0, 32);
  MwpsrOptions options;
  options.assembly = assembly;
  Rng prng(5);
  for (auto _ : state) {
    Point p;
    do {
      p = {prng.uniform(0, 1581), prng.uniform(0, 1581)};
    } while ([&] {
      for (const Rect& a : alarms) {
        if (a.interior_contains(p)) return true;
      }
      return false;
    }());
    const auto region =
        compute_mwpsr(p, prng.uniform(-3.14, 3.14), cell, alarms, model,
                      options);
    benchmark::DoNotOptimize(region.rect.area());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_MwpsrGreedy(benchmark::State& state) {
  run_mwpsr(state, MwpsrAssembly::kGreedy);
}
BENCHMARK(BM_MwpsrGreedy)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

void BM_MwpsrExhaustive(benchmark::State& state) {
  run_mwpsr(state, MwpsrAssembly::kExhaustive);
}
BENCHMARK(BM_MwpsrExhaustive)->Arg(2)->Arg(8)->Arg(32);

void BM_MwpsrAuto(benchmark::State& state) {
  run_mwpsr(state, MwpsrAssembly::kAuto);
}
BENCHMARK(BM_MwpsrAuto)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
