// Figure 6(c): client energy consumption (containment determination) —
// MWPSR vs PBSR (h=5) vs OPT, for 1/10/20% public alarms.
//
// Paper shape: OPT is significantly higher than the safe-region approaches
// (it assumes clients of very high capacity evaluating every pushed alarm
// each tick), and the gap widens with alarm density.
#include <cstdio>
#include <vector>

#include "bench_common.h"

using namespace salarm;

int main() {
  const core::ExperimentConfig base = bench::default_config();
  bench::print_banner("Figure 6(c)",
                      "client energy (containment determination)", base);

  const sim::CostModel cost;
  const std::vector<double> public_percents{1.0, 10.0, 20.0};
  std::printf("%-10s %13s %13s %13s %11s\n", "public%", "MWPSR (mWh)",
              "PBSR (mWh)", "OPT (mWh)", "OPT/MWPSR");

  for (const double p : public_percents) {
    core::ExperimentConfig cfg = base;
    cfg.public_percent = p;
    core::Experiment experiment(cfg);
    auto& simulation = experiment.simulation();

    const auto mwpsr =
        simulation.run(experiment.rect(saferegion::MotionModel(1.0, 32)));
    saferegion::PyramidConfig pyramid;
    pyramid.height = 5;
    const auto pbsr = simulation.run(experiment.bitmap(pyramid));
    const auto opt = simulation.run(experiment.optimal());
    for (const auto* run : {&mwpsr, &pbsr, &opt}) {
      bench::require_perfect(*run);
    }

    const double em = cost.client_energy_mwh(mwpsr.metrics);
    const double ep = cost.client_energy_mwh(pbsr.metrics);
    const double eo = cost.client_energy_mwh(opt.metrics);
    std::printf("%-10.0f %13.1f %13.1f %13.1f %10.2fx\n", p, em, ep, eo,
                eo / em);
  }

  std::printf(
      "\npaper: OPT's energy significantly above MWPSR/PBSR, growing with "
      "alarm density.\n");
  return 0;
}
