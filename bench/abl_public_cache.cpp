// Ablation: precomputed public-alarm bitmaps (paper §4.2: "PBSR approach
// can be optimized by precomputing the bitmap at each level for public
// alarms"). The subscriber-independent public bitmap is built once per
// grid cell and intersected with each subscriber's (usually empty)
// private-alarm bitmap, cutting the dominant share of PBSR's safe-region
// computation at identical accuracy.
#include <cstdio>

#include "bench_common.h"
#include "sim/cost_model.h"

using namespace salarm;

int main() {
  const core::ExperimentConfig base = bench::default_config();
  bench::print_banner("Ablation", "PBSR precomputed public bitmaps (h=5)",
                      base);

  const sim::CostModel cost;
  std::printf("%-10s %-10s %12s %16s %18s\n", "public%", "cache",
              "messages", "region ops", "region time (min)");
  for (const double p : {1.0, 10.0, 20.0}) {
    core::ExperimentConfig cfg = base;
    cfg.public_percent = p;
    core::Experiment experiment(cfg);
    saferegion::PyramidConfig pyramid;
    pyramid.height = 5;
    const auto plain =
        experiment.simulation().run(experiment.bitmap(pyramid));
    const auto cached =
        experiment.simulation().run(experiment.bitmap_cached(pyramid));
    bench::require_perfect(plain);
    bench::require_perfect(cached);
    std::printf("%-10.0f %-10s %12s %16s %18.4f\n", p, "off",
                bench::with_commas(plain.metrics.uplink_messages).c_str(),
                bench::with_commas(plain.metrics.server_region_ops).c_str(),
                cost.server_region_minutes(plain.metrics));
    std::printf("%-10.0f %-10s %12s %16s %18.4f\n", p, "on",
                bench::with_commas(cached.metrics.uplink_messages).c_str(),
                bench::with_commas(cached.metrics.server_region_ops).c_str(),
                cost.server_region_minutes(cached.metrics));
  }
  return 0;
}
