// Dynamics study: alarm churn rate × strategy (DESIGN.md §8).
//
// The paper's alarms are installable and removable at runtime; this bench
// measures what a time-varying alarm set costs each strategy. Every run
// replays the identical churn timeline (deterministic AlarmScheduler) and
// must stay 100% accurate — the server-push invalidation protocol closes
// the window in which a pre-churn safe region could mask a new alarm. The
// sweep reports, per install rate: uplink messages, downstream safe-region
// bandwidth, invalidation pushes and their bandwidth, and accuracy.
#include <cstdio>
#include <vector>

#include "bench_common.h"

using namespace salarm;

namespace {

struct NamedFactory {
  const char* name;
  sim::Simulation::StrategyFactory factory;
};

std::vector<NamedFactory> strategy_set(const core::Experiment& experiment) {
  saferegion::PyramidConfig gbsr;
  gbsr.height = 1;
  saferegion::PyramidConfig pbsr;
  pbsr.height = 5;
  return {
      {"SP", experiment.safe_period()},
      {"MWPSR", experiment.rect(saferegion::MotionModel(1.0, 32))},
      {"GBSR", experiment.bitmap(gbsr)},
      {"PBSR", experiment.bitmap(pbsr)},
      {"OPT", experiment.optimal()},
  };
}

}  // namespace

int main() {
  core::ExperimentConfig cfg = bench::default_config();
  bench::print_banner("Dynamics", "alarm churn rate x strategy", cfg);

  const sim::CostModel cost;
  std::printf("%-14s %-8s %12s %10s %10s %12s %8s\n", "churn (in/rm", "strat",
              "uplink msgs", "dn Mbps", "inv push", "inv bytes", "acc");
  std::printf("%-14s\n", " per tick)");

  // Rate 0/0 is the static baseline (dynamics tier disabled entirely);
  // then increasing install rates with removals at half the install rate.
  for (const double installs : {0.0, 0.5, 2.0, 8.0}) {
    const double removes = installs / 2.0;
    core::Experiment experiment(cfg);
    if (installs > 0.0) {
      experiment.enable_churn(experiment.churn_config(installs, removes));
    }
    for (auto& [name, factory] : strategy_set(experiment)) {
      const auto run = experiment.simulation().run(factory);
      bench::require_perfect(run);
      std::printf(
          "%6.2f/%-6.2f %-8s %12s %10.4f %10s %12s %7.0f%%\n", installs,
          removes, name,
          bench::with_commas(run.metrics.uplink_messages).c_str(),
          cost.downstream_mbps(run.metrics, run.duration_s),
          bench::with_commas(run.metrics.invalidation_pushes).c_str(),
          bench::with_commas(run.metrics.invalidation_bytes).c_str(), 100.0);
    }
    std::printf("\n");
  }

  std::printf(
      "every row is oracle-exact (the bench aborts otherwise): installs\n"
      "revoke/shrink intersecting grants the same tick, removals are\n"
      "lazily re-widened, so churn costs messages and pushes but never\n"
      "accuracy.\n");
  return 0;
}
