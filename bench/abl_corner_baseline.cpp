// Ablation: MWPSR vs the Hu et al. [10]-style corner-candidate baseline.
//
// The paper (§3, §6): the baseline "leads to alarm misses and erroneous
// safe regions" when alarm regions overlap or intersect the coordinate
// axes; MWPSR's clamped candidates handle both. This bench runs the
// baseline through the full simulator and reports the misses — the only
// bench where imperfect accuracy is the expected result.
#include <cstdio>

#include "bench_common.h"

using namespace salarm;

int main() {
  core::ExperimentConfig cfg = bench::default_config();
  bench::print_banner("Ablation",
                      "MWPSR vs corner-candidate baseline ([10])", cfg);

  core::Experiment experiment(cfg);
  const saferegion::MotionModel model(1.0, 32);

  const auto mwpsr = experiment.simulation().run(experiment.rect(model));
  bench::require_perfect(mwpsr);
  const auto baseline =
      experiment.simulation().run(experiment.rect_corner_baseline(model));

  std::printf("%-12s %12s %10s %10s %10s %10s\n", "approach", "messages",
              "expected", "missed", "late", "spurious");
  std::printf("%-12s %12s %10zu %10zu %10zu %10zu\n", "MWPSR",
              bench::with_commas(mwpsr.metrics.uplink_messages).c_str(),
              mwpsr.accuracy.expected, mwpsr.accuracy.missed,
              mwpsr.accuracy.late, mwpsr.accuracy.spurious);
  std::printf("%-12s %12s %10zu %10zu %10zu %10zu\n", "RECT[10]",
              bench::with_commas(baseline.metrics.uplink_messages).c_str(),
              baseline.accuracy.expected, baseline.accuracy.missed,
              baseline.accuracy.late, baseline.accuracy.spurious);

  const double miss_rate =
      100.0 * static_cast<double>(baseline.accuracy.missed +
                                  baseline.accuracy.late) /
      static_cast<double>(baseline.accuracy.expected);
  std::printf(
      "\nbaseline misses or delays %.1f%% of triggers (paper: \"leads to "
      "alarm misses\");\nMWPSR misses none.\n",
      miss_rate);
  return 0;
}
