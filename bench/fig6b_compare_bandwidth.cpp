// Figure 6(b): downstream bandwidth consumed broadcasting safe regions to
// the clients — MWPSR vs PBSR (h=5) vs OPT, for 1/10/20% public alarms.
// (The paper excludes the SP baseline's safe-period grants from this
// comparison; we print them for reference.)
//
// Paper shape: the safe-region approaches are far below OPT's full alarm
// pushes; PBSR (h=5) is lowest.
#include <cstdio>
#include <vector>

#include "bench_common.h"

using namespace salarm;

int main() {
  const core::ExperimentConfig base = bench::default_config();
  bench::print_banner("Figure 6(b)", "downstream safe-region bandwidth",
                      base);

  const sim::CostModel cost;
  const std::vector<double> public_percents{1.0, 10.0, 20.0};
  std::printf("%-10s %14s %14s %14s %16s\n", "public%", "MWPSR (Mbps)",
              "PBSR (Mbps)", "OPT (Mbps)", "[SP grants Mbps]");

  for (const double p : public_percents) {
    core::ExperimentConfig cfg = base;
    cfg.public_percent = p;
    core::Experiment experiment(cfg);
    auto& simulation = experiment.simulation();

    const auto mwpsr =
        simulation.run(experiment.rect(saferegion::MotionModel(1.0, 32)));
    saferegion::PyramidConfig pyramid;
    pyramid.height = 5;
    const auto pbsr = simulation.run(experiment.bitmap(pyramid));
    const auto opt = simulation.run(experiment.optimal());
    const auto sp = simulation.run(experiment.safe_period());
    for (const auto* run : {&mwpsr, &pbsr, &opt, &sp}) {
      bench::require_perfect(*run);
    }

    std::printf("%-10.0f %14.4f %14.4f %14.4f %16.4f\n", p,
                cost.downstream_mbps(mwpsr.metrics, mwpsr.duration_s),
                cost.downstream_mbps(pbsr.metrics, pbsr.duration_s),
                cost.downstream_mbps(opt.metrics, opt.duration_s),
                cost.downstream_mbps(sp.metrics, sp.duration_s));
    std::printf("%-10s %14s %14s %14s\n", "  payload",
                ("avg " + std::to_string(static_cast<int>(
                              mwpsr.metrics.region_payload_bytes.mean())) +
                 "B")
                    .c_str(),
                ("avg " + std::to_string(static_cast<int>(
                              pbsr.metrics.region_payload_bytes.mean())) +
                 "B")
                    .c_str(),
                ("avg " + std::to_string(static_cast<int>(
                              opt.metrics.region_payload_bytes.mean())) +
                 "B")
                    .c_str());
  }

  std::printf("\npaper: MWPSR and PBSR well below OPT; PBSR (h=5) best.\n");
  return 0;
}
