// Robustness study: shard crash-recovery (DESIGN.md §10).
//
// Sweeps crash rates — none (checkpoint cadence only), moderate, heavy,
// and heavy without a journal — across all seven strategies on a 4-shard
// cluster. The headline invariant is checked on every run: checkpoint +
// journal replay (or the redo-ledger + re-registration fallback) and the
// degraded-mode clients keep every strategy oracle-exact under arbitrary
// crash schedules; what crashes cost is durable bytes, recovery work and
// deferred client traffic, never accuracy. The channel is perfect here so
// the crash costs are isolated (robustness_faults covers channel faults).
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"

using namespace salarm;

namespace {

struct Scenario {
  const char* name;
  failover::FailoverConfig config;
};

std::vector<Scenario> scenarios() {
  failover::FailoverConfig base;
  base.crash_mean_down_ticks = 4.0;
  base.checkpoint_interval_ticks = 30;
  base.journal = true;

  std::vector<Scenario> out;
  failover::FailoverConfig none = base;
  none.crash_per_tick = 0.0;
  out.push_back({"no crashes (checkpoints only)", none});

  failover::FailoverConfig moderate = base;
  moderate.crash_per_tick = 0.005;
  out.push_back({"crash 0.5%/tick, journal", moderate});

  failover::FailoverConfig heavy = base;
  heavy.crash_per_tick = 0.02;
  out.push_back({"crash 2%/tick, journal", heavy});

  failover::FailoverConfig redo = heavy;
  redo.journal = false;
  out.push_back({"crash 2%/tick, journal-less (redo + re-registration)",
                 redo});
  return out;
}

std::vector<std::pair<std::string, sim::Simulation::StrategyFactory>>
strategy_set(const core::Experiment& experiment) {
  saferegion::PyramidConfig gbsr;
  gbsr.height = 1;
  saferegion::PyramidConfig pbsr;
  pbsr.height = 5;
  std::vector<std::pair<std::string, sim::Simulation::StrategyFactory>> out;
  out.emplace_back("PRD", experiment.periodic());
  out.emplace_back("SP", experiment.safe_period());
  out.emplace_back("MWPSR", experiment.rect(saferegion::MotionModel(1.0, 32)));
  out.emplace_back("GBSR", experiment.bitmap(gbsr));
  out.emplace_back("PBSR", experiment.bitmap(pbsr));
  out.emplace_back("PBSR+cache", experiment.bitmap_cached(pbsr));
  out.emplace_back("OPT", experiment.optimal());
  return out;
}

}  // namespace

int main() {
  core::ExperimentConfig cfg = bench::default_config();
  bench::print_banner("Robustness (crashes)",
                      "shard crash-recovery: checkpoints, journal replay, "
                      "degraded clients",
                      cfg);

  core::Experiment experiment(cfg);
  const sim::CostModel cost;

  for (const Scenario& scenario : scenarios()) {
    experiment.enable_failover(scenario.config);
    std::printf("-- %s --\n", scenario.name);
    std::printf("%-12s %8s %9s %9s %9s %8s %8s %9s %9s %9s\n", "strategy",
                "crashes", "ckpt KB", "jrnl KB", "replays", "rereg",
                "buffered", "durab s", "recov s", "fo mWh");
    for (const auto& [label, factory] : strategy_set(experiment)) {
      const auto run = experiment.simulation().run_sharded(
          factory, {.shards = 4, .threads = 2});
      bench::require_perfect(run);
      const auto& m = run.metrics;
      std::printf(
          "%-12s %8s %9.1f %9.1f %9s %8s %8s %9.3f %9.3f %9.2f\n",
          label.c_str(), bench::with_commas(m.fo_crashes).c_str(),
          static_cast<double>(m.fo_checkpoint_bytes) / 1024.0,
          static_cast<double>(m.fo_journal_bytes) / 1024.0,
          bench::with_commas(m.fo_journal_replays + m.fo_redo_events).c_str(),
          bench::with_commas(m.fo_reregistrations).c_str(),
          bench::with_commas(m.fo_buffered_reports).c_str(),
          cost.durability_server_minutes(m) * 60.0,
          cost.recovery_server_minutes(m) * 60.0,
          cost.failover_overhead_mwh(m));
    }
    std::printf("\n");
  }

  std::printf(
      "every run above is oracle-exact (a violation aborts the bench):\n"
      "crashes buy checkpoint/journal bytes, recovery replays and deferred\n"
      "client traffic — never missed or spurious alarms.\n");
  return 0;
}
