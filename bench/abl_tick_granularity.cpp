// Fidelity study: what does trace-tick granularity hide?
//
// The paper determines ground truth from "a very high frequency trace";
// both its approaches and this reproduction evaluate positions at tick
// granularity. Between two ticks a vehicle can clip an alarm region's
// corner without either sampled position being inside. This study replays
// the default trace, tests every inter-tick motion segment against the
// relevant alarm regions, and reports how many continuous entry events are
// invisible to tick sampling — bounding what any tick-based processing
// scheme (PRD included) can observe, and quantifying how "high frequency"
// the trace must be.
#include <cstdio>
#include <unordered_set>

#include "bench_common.h"
#include "geometry/segment.h"
#include "mobility/trace_generator.h"

using namespace salarm;

int main() {
  core::ExperimentConfig cfg = bench::default_config();
  bench::print_banner("Fidelity", "continuous vs tick-sampled alarm entries",
                      cfg);

  std::printf("%-10s %16s %16s %10s\n", "tick (s)", "tick entries",
              "segment entries", "hidden");
  for (const double tick_s : {4.0, 2.0, 1.0, 0.5}) {
    core::ExperimentConfig scaled = cfg;
    scaled.tick_seconds = tick_s;
    core::Experiment experiment(scaled);
    auto& store = experiment.store();
    store.reset_triggers();

    mobility::TraceConfig trace_cfg;
    trace_cfg.vehicle_count = scaled.vehicles;
    trace_cfg.tick_seconds = tick_s;
    trace_cfg.seed = scaled.seed * 104729 + 2;
    mobility::TraceGenerator gen(experiment.network(), trace_cfg);

    // Tick-sampled entries: distinct (alarm, subscriber) pairs whose
    // sampled position is inside; segment entries: pairs whose inter-tick
    // segment crosses the interior.
    std::unordered_set<std::uint64_t> tick_pairs;
    std::unordered_set<std::uint64_t> segment_pairs;
    auto key = [](alarms::AlarmId a, alarms::SubscriberId s) {
      return (static_cast<std::uint64_t>(a) << 32) | s;
    };

    std::vector<geo::Point> previous(scaled.vehicles);
    for (std::size_t v = 0; v < scaled.vehicles; ++v) {
      previous[v] = gen.samples()[v].pos;
    }
    const auto ticks = scaled.ticks();
    for (std::size_t t = 0; t < ticks; ++t) {
      if (t > 0) gen.step();
      for (std::size_t v = 0; v < scaled.vehicles; ++v) {
        const geo::Point now = gen.samples()[v].pos;
        const auto s = static_cast<alarms::SubscriberId>(v);
        const geo::Rect sweep = geo::Rect::bounding(previous[v], now);
        for (const alarms::SpatialAlarm* alarm :
             store.relevant_in_window(sweep, s)) {
          if (alarm->region.interior_contains(now)) {
            tick_pairs.insert(key(alarm->id, s));
            segment_pairs.insert(key(alarm->id, s));
          } else if (t > 0 && geo::segment_intersects_interior(
                                  previous[v], now, alarm->region)) {
            segment_pairs.insert(key(alarm->id, s));
          }
        }
        previous[v] = now;
      }
    }
    const std::size_t hidden = segment_pairs.size() - tick_pairs.size();
    std::printf("%-10.1f %16zu %16zu %9.1f%%\n", tick_s, tick_pairs.size(),
                segment_pairs.size(),
                100.0 * static_cast<double>(hidden) /
                    static_cast<double>(segment_pairs.size()));
  }
  std::printf(
      "\nfiner ticks expose more of the continuous truth; at the paper's "
      "~1-2 Hz the\nhidden fraction is the corner-cutting residue every "
      "tick-based scheme shares.\n");
  return 0;
}
