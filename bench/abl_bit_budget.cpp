// Ablation: PBSR bit budget — the coverage-vs-bitmap-size trade-off of
// paper §4.2. Tighter budgets shrink the downstream payload at the cost of
// coarser safe regions (more client reports).
#include <cstdio>
#include <vector>

#include "bench_common.h"

using namespace salarm;

int main() {
  core::ExperimentConfig cfg = bench::default_config();
  bench::print_banner("Ablation", "PBSR bit budget (h=5)", cfg);

  core::Experiment experiment(cfg);
  std::printf("%-14s %12s %18s %18s\n", "budget(bits)", "messages",
              "avg payload (B)", "downstream (KB)");
  for (const std::size_t budget : {128u, 256u, 512u, 2048u, 8192u, 0u}) {
    saferegion::PyramidConfig pyramid;
    pyramid.height = 5;
    pyramid.max_bits = budget;
    const auto run = experiment.simulation().run(experiment.bitmap(pyramid));
    bench::require_perfect(run);
    char label[32];
    if (budget == 0) {
      std::snprintf(label, sizeof label, "unlimited");
    } else {
      std::snprintf(label, sizeof label, "%zu", budget);
    }
    std::printf("%-14s %12s %18.0f %18.1f\n", label,
                bench::with_commas(run.metrics.uplink_messages).c_str(),
                run.metrics.region_payload_bytes.mean(),
                static_cast<double>(run.metrics.downstream_region_bytes) /
                    1024.0);
  }
  return 0;
}
