// Ablation: the safe-period baseline's dependence on motion estimation
// (paper §1: "safe period computation heavily relies on future motion
// estimation of the mobile user"). With the sound pessimistic speed bound
// SP is accurate but chatty; assuming a lower speed trades messages for
// alarm misses — the trade-off the safe-region architecture avoids.
#include <cstdio>

#include "bench_common.h"

using namespace salarm;

int main() {
  core::ExperimentConfig cfg = bench::default_config();
  bench::print_banner("Ablation", "safe-period motion-estimation assumption",
                      cfg);

  core::Experiment experiment(cfg);
  std::printf("%-24s %12s %10s %10s %10s\n", "assumed speed", "messages",
              "expected", "missed", "late");
  for (const double factor : {1.0, 0.75, 0.5, 0.25}) {
    const auto run =
        experiment.simulation().run(experiment.safe_period(factor));
    char label[40];
    std::snprintf(label, sizeof label, "%.0f%% of true bound",
                  100.0 * factor);
    std::printf("%-24s %12s %10zu %10zu %10zu\n", label,
                bench::with_commas(run.metrics.uplink_messages).c_str(),
                run.accuracy.expected, run.accuracy.missed,
                run.accuracy.late);
  }
  std::printf("\nonly the 100%% (pessimistic) assumption is accurate; "
              "optimism buys fewer\nmessages at the price of missed "
              "alarms.\n");
  return 0;
}
