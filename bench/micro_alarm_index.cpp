// Micro-benchmarks (google-benchmark): R*-tree vs grid-bucket alarm index
// on the server's two hot queries — point (alarm processing) and window
// (safe-region computation) — at the paper's alarm density.
#include <benchmark/benchmark.h>

#include "alarms/grid_index.h"
#include "common/rng.h"
#include "index/rstar_tree.h"

namespace {

using salarm::Rng;
using salarm::alarms::AlarmId;
using salarm::alarms::GridAlarmIndex;
using salarm::geo::Point;
using salarm::geo::Rect;
using salarm::grid::GridOverlay;
using salarm::index::Entry;
using salarm::index::RStarTree;

const Rect kUniverse(0, 0, 32000, 32000);

Rect random_alarm(Rng& rng) {
  const Point c{rng.uniform(300, 31700), rng.uniform(300, 31700)};
  return Rect::centered_square(c, rng.uniform(100, 500));
}

void BM_TreePoint(benchmark::State& state) {
  Rng rng(7);
  RStarTree tree;
  for (AlarmId i = 0; i < state.range(0); ++i) {
    tree.insert({random_alarm(rng), i});
  }
  Rng qrng(9);
  for (auto _ : state) {
    const Point p{qrng.uniform(0, 32000), qrng.uniform(0, 32000)};
    std::size_t hits = 0;
    tree.visit(Rect(p, p), [&](const Entry&) {
      ++hits;
      return true;
    });
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_TreePoint)->Arg(10000);

void BM_GridPoint(benchmark::State& state) {
  Rng rng(7);
  GridOverlay overlay(kUniverse, 64, 64);  // 500 m buckets
  GridAlarmIndex index(overlay);
  for (AlarmId i = 0; i < state.range(0); ++i) {
    index.insert(i, random_alarm(rng));
  }
  Rng qrng(9);
  for (auto _ : state) {
    const Point p{qrng.uniform(0, 32000), qrng.uniform(0, 32000)};
    benchmark::DoNotOptimize(index.containing(p).size());
  }
}
BENCHMARK(BM_GridPoint)->Arg(10000);

void BM_TreeWindow(benchmark::State& state) {
  Rng rng(7);
  RStarTree tree;
  for (AlarmId i = 0; i < state.range(0); ++i) {
    tree.insert({random_alarm(rng), i});
  }
  Rng qrng(11);
  for (auto _ : state) {
    const Point c{qrng.uniform(0, 32000), qrng.uniform(0, 32000)};
    const auto window =
        Rect::centered_square(c, 1581.0).intersection(kUniverse);
    std::size_t hits = 0;
    tree.visit(*window, [&](const Entry&) {
      ++hits;
      return true;
    });
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_TreeWindow)->Arg(10000);

void BM_GridWindow(benchmark::State& state) {
  Rng rng(7);
  GridOverlay overlay(kUniverse, 64, 64);
  GridAlarmIndex index(overlay);
  for (AlarmId i = 0; i < state.range(0); ++i) {
    index.insert(i, random_alarm(rng));
  }
  Rng qrng(11);
  for (auto _ : state) {
    const Point c{qrng.uniform(0, 32000), qrng.uniform(0, 32000)};
    const auto window =
        Rect::centered_square(c, 1581.0).intersection(kUniverse);
    std::size_t hits = 0;
    index.visit(*window, [&](AlarmId, const Rect&) {
      ++hits;
      return true;
    });
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_GridWindow)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
