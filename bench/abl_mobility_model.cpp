// Ablation: mobility model — road-network trips (the paper's workload)
// vs the classic random-waypoint model on the same alarm field.
//
// Separates what depends on road structure from what holds for any
// motion: safe regions help either way, but road-constrained vehicles
// revisit the same corridors and exhibit heading persistence, which the
// rectangular regions (stretched along the motion direction) exploit.
#include <cstdio>

#include "bench_common.h"
#include "mobility/random_waypoint.h"
#include "strategies/rect_region_strategy.h"

using namespace salarm;

int main() {
  core::ExperimentConfig cfg = bench::default_config();
  bench::print_banner("Ablation", "road-network vs random-waypoint mobility",
                      cfg);

  // Road-network workload via the standard experiment.
  core::Experiment experiment(cfg);
  const saferegion::MotionModel model(1.0, 32);
  const auto road = experiment.simulation().run(experiment.rect(model));
  bench::require_perfect(road);

  // Random-waypoint workload over the identical alarm store and grid.
  mobility::RandomWaypointConfig rw;
  rw.vehicle_count = cfg.vehicles;
  rw.tick_seconds = cfg.tick_seconds;
  rw.seed = cfg.seed * 104729 + 2;
  mobility::RandomWaypointSource source(experiment.grid().universe(), rw);
  sim::Simulation waypoint_sim(source, experiment.store(),
                               experiment.grid(), cfg.ticks());
  const auto waypoint = waypoint_sim.run([&](net::ClientLink& link) {
    return std::make_unique<strategies::RectRegionStrategy>(
        link, cfg.vehicles, model);
  });
  bench::require_perfect(waypoint);

  std::printf("%-18s %12s %12s %12s\n", "mobility", "messages", "triggers",
              "msgs/sample%");
  const double samples =
      static_cast<double>(cfg.vehicles) * static_cast<double>(cfg.ticks());
  std::printf("%-18s %12s %12s %11.2f%%\n", "road network",
              bench::with_commas(road.metrics.uplink_messages).c_str(),
              bench::with_commas(road.metrics.triggers).c_str(),
              100.0 * static_cast<double>(road.metrics.uplink_messages) /
                  samples);
  std::printf("%-18s %12s %12s %11.2f%%\n", "random waypoint",
              bench::with_commas(waypoint.metrics.uplink_messages).c_str(),
              bench::with_commas(waypoint.metrics.triggers).c_str(),
              100.0 * static_cast<double>(waypoint.metrics.uplink_messages) /
                  samples);
  std::printf("\nboth run at 100%% accuracy; the safe-region architecture "
              "is mobility-model\nagnostic.\n");
  return 0;
}
