// Figure 1(b): the steady-motion probability density p(phi) for y=1 and
// z in {2, 4, 8} (reconstruction documented in DESIGN.md).
//
// Paper shape: peak at phi=0 of roughly 0.24 / 0.20 / 0.18 for z=2/4/8,
// constant plateau on |phi| <= pi/z, stepping down to a floor below the
// uniform density 1/2pi ~ 0.159 at |phi| = pi.
#include <cmath>
#include <cstdio>

#include "saferegion/motion_model.h"

using namespace salarm;

int main() {
  std::printf("== Figure 1(b) — steady-motion pdf p(phi), y = 1 ==\n\n");
  std::printf("%-10s %10s %10s %10s %10s\n", "phi/pi", "z=2", "z=4", "z=8",
              "uniform");
  const saferegion::MotionModel m2(1.0, 2);
  const saferegion::MotionModel m4(1.0, 4);
  const saferegion::MotionModel m8(1.0, 8);
  for (double f = -1.0; f <= 1.0001; f += 0.125) {
    const double phi = f * M_PI;
    std::printf("%-10.3f %10.4f %10.4f %10.4f %10.4f\n", f, m2.pdf(phi),
                m4.pdf(phi), m8.pdf(phi), 1.0 / (2.0 * M_PI));
  }
  std::printf("\npeaks: z=2 %.4f, z=4 %.4f, z=8 %.4f  (paper: ~0.24 / ~0.20 "
              "/ ~0.18)\n",
              m2.pdf(0.0), m4.pdf(0.0), m8.pdf(0.0));
  std::printf("normalization: z=2 %.6f, z=4 %.6f, z=8 %.6f (must be 1)\n",
              m2.mass(-M_PI, M_PI), m4.mass(-M_PI, M_PI),
              m8.mass(-M_PI, M_PI));
  return 0;
}
