// Failover tier tests (DESIGN.md §10): deterministic shard fault
// injection, checkpoint + journal durability, crash recovery (with and
// without a journal), degraded-mode clients, and the headline invariant —
// every strategy stays oracle-exact under arbitrary crash schedules, with
// recovery accounting bit-identical at any thread count.
#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "alarms/alarm_store.h"
#include "cluster/sharded_server.h"
#include "common/error.h"
#include "core/experiment.h"
#include "failover/crash_plan.h"
#include "grid/grid_overlay.h"
#include "net/channel.h"
#include "net/link.h"
#include "saferegion/wire_format.h"
#include "sim/server.h"

namespace salarm {
namespace {

using geo::Point;
using geo::Rect;

// ---------------------------------------------------------------------------
// CrashPlan: schedule determinism and query consistency.
// ---------------------------------------------------------------------------

failover::FailoverConfig crashy_config() {
  failover::FailoverConfig c;
  c.crash_per_tick = 0.05;
  c.crash_mean_down_ticks = 4.0;
  return c;
}

TEST(CrashPlanTest, SameSeedReplaysBitIdentically) {
  const auto config = crashy_config();
  const failover::CrashPlan a(config, 4, 300, 97);
  const failover::CrashPlan b(config, 4, 300, 97);
  ASSERT_EQ(a.shard_count(), b.shard_count());
  for (std::size_t s = 0; s < a.shard_count(); ++s) {
    const auto& wa = a.windows(s);
    const auto& wb = b.windows(s);
    ASSERT_EQ(wa.size(), wb.size()) << "shard " << s;
    for (std::size_t i = 0; i < wa.size(); ++i) {
      EXPECT_EQ(wa[i].begin, wb[i].begin);
      EXPECT_EQ(wa[i].end, wb[i].end);
    }
  }
}

TEST(CrashPlanTest, ShardStreamsAreIndependent) {
  // Shard 0's windows must not depend on how many other shards draw —
  // the property that keeps sharded runs bit-identical at any thread
  // count and lets tests reason about one shard in isolation.
  const auto config = crashy_config();
  const failover::CrashPlan solo(config, 1, 300, 7);
  const failover::CrashPlan fleet(config, 8, 300, 7);
  const auto& ws = solo.windows(0);
  const auto& wf = fleet.windows(0);
  ASSERT_EQ(ws.size(), wf.size());
  for (std::size_t i = 0; i < ws.size(); ++i) {
    EXPECT_EQ(ws[i].begin, wf[i].begin);
    EXPECT_EQ(ws[i].end, wf[i].end);
  }
}

TEST(CrashPlanTest, GeneratedWindowsSatisfyTheScheduleInvariants) {
  const failover::CrashPlan plan(crashy_config(), 6, 400, 13);
  std::size_t total = 0;
  for (std::size_t s = 0; s < plan.shard_count(); ++s) {
    std::uint64_t prev_end = 0;
    for (const auto& w : plan.windows(s)) {
      EXPECT_GE(w.begin, 1u);          // tick 0 bootstraps, never crashes
      EXPECT_GT(w.end, w.begin);       // at least one tick of downtime
      EXPECT_LE(w.end, 400u);          // clipped at the end of the run
      EXPECT_GT(w.begin, prev_end);    // no crash on the recovery tick
      prev_end = w.end;
      ++total;
    }
  }
  EXPECT_GT(total, 0u) << "rate 0.05 over 400 ticks must schedule crashes";
}

TEST(CrashPlanTest, QueriesAgreeWithTheWindowList) {
  const failover::CrashPlan plan(
      {{{2, 5}, {7, 9}}, {{1, 10}}}, /*ticks=*/10);
  EXPECT_EQ(plan.shard_count(), 2u);
  for (std::uint64_t t = 0; t < 10; ++t) {
    bool any = false;
    for (std::size_t s = 0; s < 2; ++s) {
      bool down = false;
      bool begins = false;
      bool ends = false;
      for (const auto& w : plan.windows(s)) {
        down |= (t >= w.begin && t < w.end);
        begins |= (t == w.begin);
        ends |= (t == w.end);
      }
      EXPECT_EQ(plan.down(s, t), down) << "shard " << s << " tick " << t;
      EXPECT_EQ(plan.crashes_at(s, t), begins);
      EXPECT_EQ(plan.recovers_at(s, t), ends);
      any |= down;
    }
    EXPECT_EQ(plan.any_down(t), any) << "tick " << t;
  }
  EXPECT_FALSE(plan.down_at_end(0));  // last window ends at 9 < 10
  EXPECT_TRUE(plan.down_at_end(1));   // clipped by the end of the run
}

TEST(CrashPlanTest, ExplicitScheduleRejectsMalformedWindows) {
  using Windows = std::vector<std::vector<failover::CrashWindow>>;
  // A crash at tick 0 would precede the bootstrap checkpoint.
  EXPECT_THROW(failover::CrashPlan(Windows{{{0, 2}}}, 10), PreconditionError);
  // Empty or inverted windows.
  EXPECT_THROW(failover::CrashPlan(Windows{{{3, 3}}}, 10), PreconditionError);
  EXPECT_THROW(failover::CrashPlan(Windows{{{5, 3}}}, 10), PreconditionError);
  // Beyond the end of the run.
  EXPECT_THROW(failover::CrashPlan(Windows{{{3, 11}}}, 10), PreconditionError);
  // Adjacent windows would crash a shard on its recovery tick.
  EXPECT_THROW(failover::CrashPlan(Windows{{{2, 4}, {4, 6}}}, 10),
               PreconditionError);
  // Overlapping / unsorted windows.
  EXPECT_THROW(failover::CrashPlan(Windows{{{2, 6}, {5, 8}}}, 10),
               PreconditionError);
}

// ---------------------------------------------------------------------------
// Checkpoint / journal wire format: round trips and hostile-input hardening.
// ---------------------------------------------------------------------------

alarms::SpatialAlarm wire_alarm(alarms::AlarmId id) {
  alarms::SpatialAlarm a;
  a.id = id;
  a.scope = alarms::AlarmScope::kShared;
  a.owner = 3;
  a.region = Rect(100, 200, 400, 500);
  a.subscribers = {3, 8, 12};
  a.message = "checkpointed alert";
  return a;
}

wire::ShardCheckpointMsg sample_checkpoint() {
  wire::ShardCheckpointMsg m;
  m.shard = 2;
  m.tick = 90;
  m.alarms.push_back({wire_alarm(5), 0});
  m.alarms.push_back({wire_alarm(9), 42});
  m.graveyard.push_back({wire_alarm(7), 10, 33});
  m.spent.push_back({5, 8});
  m.spent.push_back({9, 12});
  m.grants.push_back({4, 1, Rect(0, 0, 1000, 1000)});
  return m;
}

TEST(FailoverWireTest, CheckpointRoundTripsBitExactly) {
  const auto m = sample_checkpoint();
  const auto bytes = wire::encode(m);
  EXPECT_EQ(bytes.size(), wire::encoded_size(m));
  const auto d = wire::decode_shard_checkpoint(bytes);
  EXPECT_EQ(d.shard, m.shard);
  EXPECT_EQ(d.tick, m.tick);
  ASSERT_EQ(d.alarms.size(), 2u);
  EXPECT_EQ(d.alarms[0].alarm.id, 5u);
  EXPECT_EQ(d.alarms[0].installed_at, 0u);
  EXPECT_EQ(d.alarms[1].alarm.id, 9u);
  EXPECT_EQ(d.alarms[1].installed_at, 42u);
  EXPECT_EQ(d.alarms[1].alarm.subscribers, m.alarms[1].alarm.subscribers);
  EXPECT_EQ(d.alarms[1].alarm.message, m.alarms[1].alarm.message);
  ASSERT_EQ(d.graveyard.size(), 1u);
  EXPECT_EQ(d.graveyard[0].alarm.id, 7u);
  EXPECT_EQ(d.graveyard[0].installed_at, 10u);
  EXPECT_EQ(d.graveyard[0].removed_at, 33u);
  ASSERT_EQ(d.spent.size(), 2u);
  EXPECT_EQ(d.spent[1].alarm, 9u);
  EXPECT_EQ(d.spent[1].subscriber, 12u);
  ASSERT_EQ(d.grants.size(), 1u);
  EXPECT_EQ(d.grants[0].subscriber, 4u);
  EXPECT_EQ(d.grants[0].kind, 1u);
  EXPECT_EQ(d.grants[0].bounds, m.grants[0].bounds);
}

TEST(FailoverWireTest, EmptyCheckpointRoundTrips) {
  wire::ShardCheckpointMsg m;
  m.shard = 0;
  m.tick = 0;
  const auto bytes = wire::encode(m);
  EXPECT_EQ(bytes.size(), wire::encoded_size(m));
  const auto d = wire::decode_shard_checkpoint(bytes);
  EXPECT_TRUE(d.alarms.empty());
  EXPECT_TRUE(d.graveyard.empty());
  EXPECT_TRUE(d.spent.empty());
  EXPECT_TRUE(d.grants.empty());
}

TEST(FailoverWireTest, JournalRecordsRoundTripForEveryKind) {
  wire::JournalRecordMsg install;
  install.kind = wire::JournalRecordMsg::Kind::kInstall;
  install.tick = 17;
  install.alarm = wire_alarm(21);
  install.alarm_id = 21;
  wire::JournalRecordMsg remove;
  remove.kind = wire::JournalRecordMsg::Kind::kRemove;
  remove.tick = 18;
  remove.alarm_id = 21;
  wire::JournalRecordMsg spent;
  spent.kind = wire::JournalRecordMsg::Kind::kSpent;
  spent.tick = 19;
  spent.alarm_id = 5;
  spent.subscriber = 44;
  for (const auto& m : {install, remove, spent}) {
    const auto bytes = wire::encode(m);
    EXPECT_EQ(bytes.size(), wire::encoded_size(m));
    const auto d = wire::decode_journal_record(bytes);
    EXPECT_EQ(d.kind, m.kind);
    EXPECT_EQ(d.tick, m.tick);
    EXPECT_EQ(d.alarm_id, m.alarm_id);
  }
  const auto d = wire::decode_journal_record(wire::encode(install));
  EXPECT_EQ(d.alarm.id, 21u);
  EXPECT_EQ(d.alarm.region, install.alarm.region);
  EXPECT_EQ(d.alarm.message, install.alarm.message);
  const auto s = wire::decode_journal_record(wire::encode(spent));
  EXPECT_EQ(s.subscriber, 44u);
}

TEST(FailoverWireTest, EveryTruncationOfACheckpointIsRejected) {
  const auto bytes = wire::encode(sample_checkpoint());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW((void)wire::decode_shard_checkpoint(
                     std::span(bytes.data(), len)),
                 PreconditionError)
        << "length " << len;
  }
  auto padded = bytes;
  padded.push_back(0);  // trailing garbage must also be rejected
  EXPECT_THROW((void)wire::decode_shard_checkpoint(padded), PreconditionError);
}

TEST(FailoverWireTest, EveryTruncationOfAJournalRecordIsRejected) {
  wire::JournalRecordMsg m;
  m.kind = wire::JournalRecordMsg::Kind::kSpent;
  m.tick = 3;
  m.alarm_id = 1;
  m.subscriber = 2;
  const auto bytes = wire::encode(m);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW(
        (void)wire::decode_journal_record(std::span(bytes.data(), len)),
        PreconditionError)
        << "length " << len;
  }
}

TEST(FailoverWireTest, WrongTypeByteIsRejected) {
  auto bytes = wire::encode(sample_checkpoint());
  bytes[0] = 0x03;  // some other message type
  EXPECT_THROW((void)wire::decode_shard_checkpoint(bytes), PreconditionError);
  wire::JournalRecordMsg m;
  auto jb = wire::encode(m);
  jb[0] = 0xEE;  // not a message type at all
  EXPECT_THROW((void)wire::decode_journal_record(jb), PreconditionError);
}

TEST(FailoverWireTest, UnknownJournalKindIsRejected) {
  wire::JournalRecordMsg m;
  auto bytes = wire::encode(m);
  bytes[1] = 7;  // kind beyond kSpent
  EXPECT_THROW((void)wire::decode_journal_record(bytes), PreconditionError);
}

TEST(FailoverWireTest, SectionCountBombsAreRejectedBeforeAllocation) {
  // A hostile count field claiming ~4G entries in a near-empty payload
  // must be rejected by the payload-bound check, not die in reserve().
  wire::ShardCheckpointMsg empty;
  auto bytes = wire::encode(empty);
  // Layout: type(1) shard(4) tick(8) alarm_count(4) tomb(4) spent(4)
  // grant(4); the alarm count lives at offset 13, the grant count at 25.
  for (const std::size_t offset : {std::size_t{13}, std::size_t{25}}) {
    auto bomb = bytes;
    for (std::size_t i = 0; i < 4; ++i) bomb[offset + i] = 0xFF;
    EXPECT_THROW((void)wire::decode_shard_checkpoint(bomb), PreconditionError)
        << "count at offset " << offset;
  }
}

TEST(FailoverWireTest, InvalidGrantKindAndTombLifetimeAreRejected) {
  auto with_grant = sample_checkpoint();
  with_grant.grants[0].kind = 9;  // beyond dynamics::GrantKind
  EXPECT_THROW(
      (void)wire::decode_shard_checkpoint(wire::encode(with_grant)),
      PreconditionError);
  auto with_tomb = sample_checkpoint();
  with_tomb.graveyard[0].removed_at = with_tomb.graveyard[0].installed_at;
  EXPECT_THROW(
      (void)wire::decode_shard_checkpoint(wire::encode(with_tomb)),
      PreconditionError);
}

// ---------------------------------------------------------------------------
// Hand-built crash recovery: a two-shard world with an explicit schedule.
// ---------------------------------------------------------------------------

alarms::SpatialAlarm crash_world_alarm(alarms::AlarmId id,
                                       const Rect& region) {
  alarms::SpatialAlarm a;
  a.id = id;
  a.scope = alarms::AlarmScope::kPublic;
  a.region = region;
  a.message = "crash-world alert";
  return a;
}

/// 4 km x 4 km, 4x4 grid, two shards split at x = 2000, one public alarm
/// wholly inside shard 1, one subscriber, perfect channel. The crash plan
/// is explicit so tests can place downtime exactly where they need it.
struct CrashWorld {
  CrashWorld(std::vector<failover::CrashWindow> shard1_windows,
             std::uint64_t ticks, bool journal) {
    store.install(crash_world_alarm(0, Rect(2500, 2500, 2800, 2800)));
    server = std::make_unique<cluster::ShardedServer>(store, grid, 2, 1);
    server->enable_dynamics(1);
    config.crash_per_tick = 0.0;  // schedule is explicit, not drawn
    config.checkpoint_interval_ticks = 1000;  // only the tick-0 baseline
    config.journal = journal;
    plan = std::make_unique<failover::CrashPlan>(
        std::vector<std::vector<failover::CrashWindow>>{
            {}, std::move(shard1_windows)},
        ticks);
    server->enable_failover(config, *plan);
    link = std::make_unique<net::ClientLink>(*server, net::ChannelConfig{},
                                             /*seed=*/1,
                                             /*subscriber_count=*/1);
    link->attach_failover(server->map(), *plan);
  }

  /// One serial-phase tick for the single subscriber at `pos`, mirroring
  /// Simulation::run_sharded's orchestration order.
  std::vector<alarms::AlarmId> tick(std::uint64_t t, Point pos) {
    server->begin_failover_tick(t);
    server->take_due_checkpoints(t);
    samples.assign(1, mobility::VehicleSample{pos, 0.0, 0.0});
    link->begin_tick(t, samples);
    (void)link->take_invalidations(0);
    server->set_active_shard(server->map().shard_of(pos));
    return link->report(0, pos, t);
  }

  grid::GridOverlay grid{Rect(0, 0, 4000, 4000), 4, 4};
  alarms::AlarmStore store;
  failover::FailoverConfig config;
  std::unique_ptr<cluster::ShardedServer> server;
  std::unique_ptr<failover::CrashPlan> plan;
  std::unique_ptr<net::ClientLink> link;
  std::vector<mobility::VehicleSample> samples;
};

TEST(ShardCrashRecoveryTest, MidCrashTriggerFiresAtItsTrueTick) {
  // Shard 1 is down for ticks [3, 6). The subscriber walks into the alarm
  // region at tick 3 — exactly while its shard is dead — so the report is
  // buffered client-side and must fire at stamp 3 when the shard returns.
  CrashWorld w({{3, 6}}, /*ticks=*/10, /*journal=*/true);
  EXPECT_TRUE(w.tick(1, {2200, 2200}).empty());  // shard 1, outside alarm
  EXPECT_TRUE(w.tick(2, {2300, 2300}).empty());
  EXPECT_FALSE(w.server->shard_down(1));

  EXPECT_TRUE(w.tick(3, {2600, 2600}).empty());  // crash tick: buffered
  EXPECT_TRUE(w.server->shard_down(1));
  EXPECT_TRUE(w.tick(4, {2650, 2650}).empty());
  EXPECT_TRUE(w.tick(5, {2700, 2700}).empty());
  EXPECT_TRUE(w.server->merged_trigger_log().empty());  // nothing fired yet

  // Recovery tick: begin_tick flushes the buffer through temporal
  // server-side checking before the strategy runs.
  EXPECT_TRUE(w.tick(6, {2700, 2700}).empty());  // spent during the flush
  EXPECT_FALSE(w.server->shard_down(1));
  const auto log = w.server->merged_trigger_log();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].alarm, 0u);
  EXPECT_EQ(log[0].subscriber, 0u);
  EXPECT_EQ(log[0].tick, 3u);  // the true tick, not the recovery tick

  const auto m = w.server->merged_metrics();
  EXPECT_EQ(m.fo_crashes, 1u);
  EXPECT_EQ(m.fo_recoveries, 1u);
  EXPECT_EQ(m.fo_recovery_ticks, 3u);
  EXPECT_EQ(m.fo_buffered_reports, 3u);
  // Degraded-mode bookkeeping runs in the link's serial phase, so it is
  // charged to the link metrics (Simulation merges them into the result).
  EXPECT_EQ(w.link->link_metrics().fo_degraded_ticks, 3u);
  EXPECT_EQ(w.link->link_metrics().fo_grant_voids, 1u);
  // Perfect channel: arming failover must not wake the net protocol.
  EXPECT_EQ(m.net_retransmissions, 0u);
  EXPECT_EQ(m.net_outages, 0u);
  EXPECT_EQ(m.net_delivery_latency_ms.count(), 0u);
}

TEST(ShardCrashRecoveryTest, JournalReplayRestoresSpentStateAcrossACrash) {
  // The alarm fires at tick 1 — after the tick-0 baseline checkpoint — so
  // the spent mark lives only in the journal. The crash at tick 2 wipes
  // the shard; replay must restore the mark or tick 4 double-fires.
  CrashWorld w({{2, 4}}, /*ticks=*/10, /*journal=*/true);
  const auto fired = w.tick(1, {2600, 2600});
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_TRUE(w.tick(2, {2650, 2650}).empty());  // down: buffered
  EXPECT_TRUE(w.tick(3, {2650, 2650}).empty());
  EXPECT_TRUE(w.tick(4, {2700, 2700}).empty());  // recovered: no re-fire
  EXPECT_TRUE(w.tick(5, {2700, 2700}).empty());
  const auto log = w.server->merged_trigger_log();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].tick, 1u);
  const auto m = w.server->merged_metrics();
  EXPECT_GT(m.fo_journal_records, 0u);
  EXPECT_GT(m.fo_journal_replays, 0u);
  EXPECT_EQ(m.fo_reregistrations, 0u);  // journal mode never re-registers
}

TEST(ShardCrashRecoveryTest, JournallessRecoveryRebuildsSpentByReregistration) {
  // Same scenario without a journal: recovery must fall back to client
  // re-registration to rebuild the spent mark (DESIGN.md §10).
  CrashWorld w({{2, 4}}, /*ticks=*/10, /*journal=*/false);
  const auto fired = w.tick(1, {2600, 2600});
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_TRUE(w.tick(2, {2650, 2650}).empty());
  EXPECT_TRUE(w.tick(3, {2650, 2650}).empty());
  EXPECT_TRUE(w.tick(4, {2700, 2700}).empty());
  EXPECT_TRUE(w.tick(5, {2700, 2700}).empty());
  const auto log = w.server->merged_trigger_log();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].tick, 1u);
  const auto m = w.server->merged_metrics();
  EXPECT_EQ(m.fo_journal_records, 0u);
  EXPECT_EQ(m.fo_journal_replays, 0u);
  EXPECT_GT(m.fo_reregistrations, 0u);
  EXPECT_GT(m.fo_reregistration_bytes, 0u);
}

// ---------------------------------------------------------------------------
// Integration: oracle-exactness for every strategy under crash schedules.
// ---------------------------------------------------------------------------

core::ExperimentConfig chaos_experiment_config(std::uint64_t seed) {
  core::ExperimentConfig cfg;
  cfg.universe_km = 6.0;
  cfg.vehicles = 60;
  cfg.minutes = 2.0;
  cfg.alarm_count = 400;
  cfg.public_percent = 10.0;
  cfg.grid_cell_sqkm = 2.5;
  cfg.seed = seed;
  return cfg;
}

sim::Simulation::StrategyFactory chaos_factory(
    const core::Experiment& experiment, const std::string& name) {
  if (name == "prd") return experiment.periodic();
  if (name == "sp") return experiment.safe_period();
  if (name == "mwpsr") return experiment.rect(saferegion::MotionModel(1.0, 32));
  if (name == "gbsr") {
    saferegion::PyramidConfig cfg;
    cfg.height = 1;
    return experiment.bitmap(cfg);
  }
  if (name == "pbsr") {
    saferegion::PyramidConfig cfg;
    cfg.height = 5;
    return experiment.bitmap(cfg);
  }
  if (name == "pbsr_cached") {
    saferegion::PyramidConfig cfg;
    cfg.height = 5;
    return experiment.bitmap_cached(cfg);
  }
  if (name == "opt") return experiment.optimal();
  throw PreconditionError("unknown strategy: " + name);
}

net::ChannelConfig chaos_channel(double loss) {
  net::ChannelConfig c;
  c.uplink_loss = loss;
  c.downlink_loss = loss;
  c.duplicate_rate = 0.1;
  c.latency_base_ms = 40.0;
  c.latency_jitter_ms = 80.0;
  c.outage_start_per_tick = 0.01;
  c.outage_mean_ticks = 3.0;
  return c;
}

failover::FailoverConfig chaos_crashes(bool journal) {
  failover::FailoverConfig c;
  c.crash_per_tick = 0.03;
  c.crash_mean_down_ticks = 4.0;
  c.checkpoint_interval_ticks = 20;
  c.journal = journal;
  return c;
}

void expect_perfect_chaos(const sim::RunResult& r) {
  EXPECT_EQ(r.accuracy.missed, 0u) << r.strategy;
  EXPECT_EQ(r.accuracy.spurious, 0u) << r.strategy;
  EXPECT_EQ(r.accuracy.late, 0u) << r.strategy;
  EXPECT_GT(r.accuracy.expected, 0u) << "workload produced no triggers";
}

/// Crash schedules composed with the strategies: "journal" is crash
/// chaos alone over a perfect channel; "journal_net" and "redo_net" stack
/// the §9 chaos channel on top, the latter recovering without a journal.
using CrashParam = std::tuple<std::string, std::string, std::uint64_t>;

class CrashChaosTest : public ::testing::TestWithParam<CrashParam> {};

TEST_P(CrashChaosTest, StrategyStaysOracleExactAcrossCrashes) {
  const auto& [name, schedule, seed] = GetParam();
  core::Experiment experiment(chaos_experiment_config(seed));
  experiment.enable_failover(chaos_crashes(schedule != "redo_net"));
  if (schedule != "journal") {
    experiment.enable_channel(chaos_channel(0.2));
  }
  const auto run = experiment.simulation().run_sharded(
      chaos_factory(experiment, name), {.shards = 4, .threads = 1});
  expect_perfect_chaos(run);
  const sim::Metrics& m = run.metrics;
  EXPECT_GT(m.fo_crashes, 0u) << name;
  EXPECT_EQ(m.fo_recoveries, m.fo_crashes) << name;
  EXPECT_GT(m.fo_recovery_ticks, 0u) << name;
  EXPECT_GT(m.fo_checkpoints, 0u) << name;
  EXPECT_GT(m.fo_checkpoint_bytes, 0u) << name;
  EXPECT_GT(m.fo_degraded_ticks, 0u) << name;
  EXPECT_GT(m.fo_buffered_reports, 0u) << name;
  if (schedule == "redo_net") {
    EXPECT_EQ(m.fo_journal_records, 0u) << name;
    EXPECT_EQ(m.fo_journal_replays, 0u) << name;
  } else {
    EXPECT_GT(m.fo_journal_records, 0u) << name;
    EXPECT_GT(m.fo_journal_bytes, 0u) << name;
  }
  if (schedule == "journal") {
    // Crash chaos over a perfect channel must not wake the net protocol.
    EXPECT_EQ(m.net_retransmissions, 0u) << name;
    EXPECT_EQ(m.net_outages, 0u) << name;
    EXPECT_EQ(m.net_delivery_latency_ms.count(), 0u) << name;
  } else {
    EXPECT_GT(m.net_retransmissions, 0u) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, CrashChaosTest,
    ::testing::Combine(::testing::Values("prd", "sp", "mwpsr", "gbsr", "pbsr",
                                         "pbsr_cached", "opt"),
                       ::testing::Values("journal", "journal_net", "redo_net"),
                       ::testing::Values(7u, 11u, 23u)),
    [](const ::testing::TestParamInfo<CrashParam>& info) {
      return std::get<0>(info.param) + "_" + std::get<1>(info.param) +
             "_seed" + std::to_string(std::get<2>(info.param));
    });

TEST(CrashChurnTest, CrashesComposeWithChurnWithoutLosingExactness) {
  for (const char* name : {"mwpsr", "pbsr", "opt"}) {
    core::Experiment experiment(chaos_experiment_config(43));
    experiment.enable_churn(experiment.churn_config(/*installs_per_tick=*/1.0,
                                                    /*removes_per_tick=*/0.5));
    experiment.enable_channel(chaos_channel(0.2));
    experiment.enable_failover(chaos_crashes(/*journal=*/true));
    const auto run = experiment.simulation().run_sharded(
        chaos_factory(experiment, name), {.shards = 4, .threads = 1});
    expect_perfect_chaos(run);
    EXPECT_GT(run.metrics.alarms_installed, 0u) << name;
    EXPECT_GT(run.metrics.fo_crashes, 0u) << name;
  }
}

TEST(CrashReplayTest, CrashScheduleReplaysBitIdentically) {
  core::Experiment experiment(chaos_experiment_config(31));
  experiment.enable_channel(chaos_channel(0.2));
  experiment.enable_failover(chaos_crashes(/*journal=*/true));
  const auto factory = experiment.rect(saferegion::MotionModel(1.0, 32));
  const auto first = experiment.simulation().run_sharded(
      factory, {.shards = 4, .threads = 1});
  // A different strategy in between must not perturb the replay.
  (void)experiment.simulation().run_sharded(experiment.optimal(),
                                            {.shards = 4, .threads = 1});
  const auto again = experiment.simulation().run_sharded(
      factory, {.shards = 4, .threads = 1});
  EXPECT_EQ(again.trigger_log, first.trigger_log);
  EXPECT_EQ(again.metrics.fo_crashes, first.metrics.fo_crashes);
  EXPECT_EQ(again.metrics.fo_recovery_ticks, first.metrics.fo_recovery_ticks);
  EXPECT_EQ(again.metrics.fo_checkpoint_bytes,
            first.metrics.fo_checkpoint_bytes);
  EXPECT_EQ(again.metrics.fo_journal_bytes, first.metrics.fo_journal_bytes);
  EXPECT_EQ(again.metrics.fo_buffered_reports,
            first.metrics.fo_buffered_reports);
  EXPECT_EQ(again.metrics.net_retransmissions,
            first.metrics.net_retransmissions);
  EXPECT_EQ(again.metrics.uplink_messages, first.metrics.uplink_messages);
}

// ---------------------------------------------------------------------------
// Sharded crash determinism: bit-identical at any thread count.
// ---------------------------------------------------------------------------

void expect_bit_identical_with_failover(const sim::RunResult& a,
                                        const sim::RunResult& b) {
  EXPECT_EQ(b.trigger_log, a.trigger_log);
  const sim::Metrics& m = a.metrics;
  const sim::Metrics& n = b.metrics;
  EXPECT_EQ(n.uplink_messages, m.uplink_messages);
  EXPECT_EQ(n.uplink_bytes, m.uplink_bytes);
  EXPECT_EQ(n.downstream_region_bytes, m.downstream_region_bytes);
  EXPECT_EQ(n.downstream_notice_bytes, m.downstream_notice_bytes);
  EXPECT_EQ(n.client_checks, m.client_checks);
  EXPECT_EQ(n.client_check_ops, m.client_check_ops);
  EXPECT_EQ(n.server_alarm_ops, m.server_alarm_ops);
  EXPECT_EQ(n.server_region_ops, m.server_region_ops);
  EXPECT_EQ(n.handoff_messages, m.handoff_messages);
  EXPECT_EQ(n.handoff_bytes, m.handoff_bytes);
  EXPECT_EQ(n.triggers, m.triggers);
  EXPECT_EQ(n.net_retransmissions, m.net_retransmissions);
  EXPECT_EQ(n.net_duplicates_dropped, m.net_duplicates_dropped);
  EXPECT_EQ(n.net_lease_fallback_ticks, m.net_lease_fallback_ticks);
  EXPECT_EQ(n.net_buffered_reports, m.net_buffered_reports);
  EXPECT_EQ(n.net_outages, m.net_outages);
  EXPECT_EQ(n.fo_crashes, m.fo_crashes);
  EXPECT_EQ(n.fo_recoveries, m.fo_recoveries);
  EXPECT_EQ(n.fo_recovery_ticks, m.fo_recovery_ticks);
  EXPECT_EQ(n.fo_checkpoints, m.fo_checkpoints);
  EXPECT_EQ(n.fo_checkpoint_bytes, m.fo_checkpoint_bytes);
  EXPECT_EQ(n.fo_journal_records, m.fo_journal_records);
  EXPECT_EQ(n.fo_journal_bytes, m.fo_journal_bytes);
  EXPECT_EQ(n.fo_journal_replays, m.fo_journal_replays);
  EXPECT_EQ(n.fo_redo_events, m.fo_redo_events);
  EXPECT_EQ(n.fo_reregistrations, m.fo_reregistrations);
  EXPECT_EQ(n.fo_reregistration_bytes, m.fo_reregistration_bytes);
  EXPECT_EQ(n.fo_grant_voids, m.fo_grant_voids);
  EXPECT_EQ(n.fo_degraded_ticks, m.fo_degraded_ticks);
  EXPECT_EQ(n.fo_buffered_reports, m.fo_buffered_reports);
}

class ShardedCrashDeterminismTest : public ::testing::Test {
 protected:
  void check(const std::string& name, bool journal) {
    core::Experiment experiment(chaos_experiment_config(53));
    experiment.enable_channel(chaos_channel(0.2));
    experiment.enable_failover(chaos_crashes(journal));
    const auto factory = chaos_factory(experiment, name);
    const auto ref = experiment.simulation().run_sharded(
        factory, {.shards = 4, .threads = 1});
    expect_perfect_chaos(ref);
    EXPECT_GT(ref.metrics.fo_crashes, 0u) << name;
    for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
      expect_bit_identical_with_failover(
          ref, experiment.simulation().run_sharded(
                   factory, {.shards = 4, .threads = threads}));
    }
  }
};

TEST_F(ShardedCrashDeterminismTest, MwpsrBitIdenticalAcrossThreadCounts) {
  check("mwpsr", /*journal=*/true);
}

TEST_F(ShardedCrashDeterminismTest, SafePeriodBitIdenticalAcrossThreadCounts) {
  check("sp", /*journal=*/true);
}

TEST_F(ShardedCrashDeterminismTest, PbsrBitIdenticalAcrossThreadCounts) {
  check("pbsr", /*journal=*/true);
}

TEST_F(ShardedCrashDeterminismTest, OptJournallessBitIdenticalAcrossThreads) {
  check("opt", /*journal=*/false);
}

TEST(FailoverNoOpTest, UnarmedShardedRunCountsNoFailoverWork) {
  core::Experiment experiment(chaos_experiment_config(61));
  const auto run = experiment.simulation().run_sharded(
      experiment.rect(saferegion::MotionModel(1.0, 32)),
      {.shards = 4, .threads = 2});
  const sim::Metrics& m = run.metrics;
  EXPECT_EQ(m.fo_crashes, 0u);
  EXPECT_EQ(m.fo_recoveries, 0u);
  EXPECT_EQ(m.fo_checkpoints, 0u);
  EXPECT_EQ(m.fo_checkpoint_bytes, 0u);
  EXPECT_EQ(m.fo_journal_records, 0u);
  EXPECT_EQ(m.fo_grant_voids, 0u);
  EXPECT_EQ(m.fo_degraded_ticks, 0u);
  EXPECT_EQ(m.fo_buffered_reports, 0u);
}

// With the unified tick pipeline (DESIGN.md §11), the former monolithic
// run mode is a one-shard cluster — so a single-server crash takes the
// whole service down, every client degrades and buffers, and recovery
// restores checkpoint + journal like any shard. The old engine refused
// this configuration outright.
TEST(SingleShardFailoverTest, MonolithicRunSurvivesCrashRecovery) {
  core::Experiment experiment(chaos_experiment_config(61));
  experiment.enable_failover(chaos_crashes(/*journal=*/true));
  const auto run = experiment.simulation().run(
      experiment.rect(saferegion::MotionModel(1.0, 32)));
  expect_perfect_chaos(run);
  const sim::Metrics& m = run.metrics;
  EXPECT_GT(m.fo_crashes, 0u);
  EXPECT_EQ(m.fo_recoveries, m.fo_crashes);
  EXPECT_GT(m.fo_checkpoints, 0u);
  EXPECT_GT(m.fo_degraded_ticks, 0u);
  EXPECT_GT(m.fo_buffered_reports, 0u);
  EXPECT_EQ(m.handoff_messages, 0u);  // one shard: no boundaries to cross
}

// Journal-less single-server recovery: the redo ledger plus client
// re-registration rebuilds the whole service's state.
TEST(SingleShardFailoverTest, MonolithicRedoRecoveryStaysOracleExact) {
  core::Experiment experiment(chaos_experiment_config(61));
  experiment.enable_failover(chaos_crashes(/*journal=*/false));
  const auto run = experiment.simulation().run(
      experiment.rect(saferegion::MotionModel(1.0, 32)));
  expect_perfect_chaos(run);
  const sim::Metrics& m = run.metrics;
  EXPECT_GT(m.fo_crashes, 0u);
  EXPECT_EQ(m.fo_journal_records, 0u);
  EXPECT_GT(m.fo_reregistrations, 0u);
}

// ---------------------------------------------------------------------------
// ClientLink retransmission backoff: property sweep (satellite).
// ---------------------------------------------------------------------------

/// 4 km x 4 km world with one public alarm, mirroring net_test.cpp.
struct LinkWorld {
  LinkWorld()
      : grid(Rect(0, 0, 4000, 4000), 4, 4), server(store, grid, metrics) {
    store.install(crash_world_alarm(0, Rect(1400, 400, 1700, 700)));
  }

  alarms::AlarmStore store;
  grid::GridOverlay grid;
  sim::Metrics metrics;
  sim::Server server;
};

TEST(ClientLinkBackoffTest, BackoffDoublesPerRoundAndResetsAfterEveryAck) {
  // Property: within one reliable exchange the retransmission waits start
  // at the channel's base RTO and double per failed round (monotone
  // non-decreasing); the next exchange starts from the base RTO again
  // (the ACK reset). Checked across seeds so the property does not hinge
  // on one lucky loss pattern.
  net::ChannelConfig c;
  c.uplink_loss = 0.4;
  c.latency_base_ms = 40.0;  // no jitter: base RTO is exactly 81 ms
  const double base_rto = 2.0 * c.latency_base_ms + 1.0;
  for (const std::uint64_t seed : {3u, 17u, 29u}) {
    LinkWorld w;
    net::ClientLink link(w.server, c, seed, 1);
    std::size_t multi_round_exchanges = 0;
    for (std::uint64_t t = 0; t < 400; ++t) {
      (void)link.report(0, {100, 100}, t);
      const auto& waits = link.last_exchange_backoffs(0);
      if (waits.empty()) continue;  // clean exchange: no retransmissions
      EXPECT_DOUBLE_EQ(waits.front(), base_rto)
          << "seed " << seed << " tick " << t << ": RTO not reset by ACK";
      for (std::size_t i = 1; i < waits.size(); ++i) {
        EXPECT_GE(waits[i], waits[i - 1]);  // monotone non-decreasing
        EXPECT_DOUBLE_EQ(waits[i], 2.0 * waits[i - 1]);
      }
      if (waits.size() >= 2) ++multi_round_exchanges;
    }
    // p(loss)=0.4 over 400 reports: the doubling branch must have run.
    EXPECT_GT(multi_round_exchanges, 0u) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Removal-graveyard bound and compaction semantics (satellite).
// ---------------------------------------------------------------------------

TEST(AlarmStoreGraveyardTest, CompactionKeepsTombsObservableByPendingStamps) {
  LinkWorld w;
  w.server.enable_dynamics(1);
  ASSERT_TRUE(w.server.remove_alarm(0, /*tick=*/10));
  ASSERT_EQ(w.server.graveyard().size(), 1u);

  // Watermark 9 < removed_at 10: a buffered report stamped inside the
  // alarm's lifetime may still arrive, so the tomb must survive…
  EXPECT_EQ(w.server.compact_graveyard(9), 0u);
  ASSERT_EQ(w.server.graveyard().size(), 1u);
  const auto fired = w.server.handle_buffered_update(0, {1500, 550}, 5);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 0u);

  // …and watermark == removed_at makes it unobservable: dropped.
  EXPECT_EQ(w.server.compact_graveyard(10), 1u);
  EXPECT_TRUE(w.server.graveyard().empty());
}

TEST(AlarmStoreGraveyardTest, GraveyardStaysBoundedUnderSustainedChurn) {
  LinkWorld w;
  w.server.enable_dynamics(1);
  std::size_t high_water = 0;
  for (std::uint64_t t = 1; t <= 600; ++t) {
    alarms::SpatialAlarm a =
        crash_world_alarm(1000 + static_cast<alarms::AlarmId>(t),
                          Rect(100, 100, 300, 300));
    w.server.install_alarm(a, t);
    if (t > 1) {
      ASSERT_TRUE(
          w.server.remove_alarm(1000 + static_cast<alarms::AlarmId>(t - 1), t));
    }
    // The run loop compacts every tick with the pending-stamp watermark;
    // model a client lagging 5 ticks behind.
    if (t % 25 == 0) (void)w.server.compact_graveyard(t - 5);
    high_water = std::max(high_water, w.server.graveyard().size());
  }
  // 599 removals total, but compaction holds the live set to the lag
  // window plus one compaction period — far below the removal count.
  EXPECT_LE(high_water, 32u);
  (void)w.server.compact_graveyard(601);
  EXPECT_TRUE(w.server.graveyard().empty());
}

}  // namespace
}  // namespace salarm
