// End-to-end tests of the public facade: SpatialAlarmService (server) +
// ClientMonitor (device) talking through real wire messages.
#include <gtest/gtest.h>

#include "core/client_monitor.h"
#include "core/spatial_alarm_service.h"
#include "saferegion/wire_format.h"

namespace salarm::core {
namespace {

using geo::Point;
using geo::Rect;

SpatialAlarmService::Config test_config() {
  SpatialAlarmService::Config cfg;
  cfg.universe = Rect(0, 0, 10000, 10000);
  cfg.grid_cell_area_sqm = 4e6;  // 2 km x 2 km cells
  return cfg;
}

TEST(SpatialAlarmServiceTest, InstallAssignsDenseIds) {
  SpatialAlarmService service(test_config());
  const auto a = service.install(alarms::AlarmScope::kPrivate, 1,
                                 Rect(100, 100, 300, 300));
  const auto b = service.install(alarms::AlarmScope::kPublic, 0,
                                 Rect(500, 500, 700, 700));
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(service.alarm_count(), 2u);
  EXPECT_TRUE(service.uninstall(a));
  EXPECT_FALSE(service.uninstall(a));
  EXPECT_EQ(service.alarm_count(), 1u);
}

TEST(SpatialAlarmServiceTest, RejectsOutOfUniverseInput) {
  SpatialAlarmService service(test_config());
  EXPECT_THROW(service.install(alarms::AlarmScope::kPublic, 0,
                               Rect(9000, 9000, 11000, 11000)),
               PreconditionError);
  EXPECT_THROW(service.process_update(1, {-5, 0}, 0.0, 0),
               PreconditionError);
}

TEST(SpatialAlarmServiceTest, FiresOnEntryOncePerSubscriber) {
  SpatialAlarmService service(test_config());
  const auto id = service.install(alarms::AlarmScope::kPublic, 0,
                                  Rect(1000, 1000, 1500, 1500));
  auto r1 = service.process_update(7, {1200, 1200}, 0.0, 5);
  ASSERT_EQ(r1.fired.size(), 1u);
  EXPECT_EQ(r1.fired[0], id);
  // One-shot per subscriber.
  EXPECT_TRUE(service.process_update(7, {1200, 1200}, 0.0, 6).fired.empty());
  // Other subscribers still fire.
  EXPECT_EQ(service.process_update(8, {1100, 1100}, 0.0, 7).fired.size(), 1u);
  ASSERT_EQ(service.trigger_log().size(), 2u);
  EXPECT_EQ(service.trigger_log()[0].tick, 5u);
}

TEST(SpatialAlarmServiceTest, PrivateAlarmsOnlyFireForSubscribers) {
  SpatialAlarmService service(test_config());
  service.install(alarms::AlarmScope::kPrivate, 3, Rect(0, 0, 500, 500));
  EXPECT_TRUE(service.process_update(4, {100, 100}, 0.0, 0).fired.empty());
  EXPECT_EQ(service.process_update(3, {100, 100}, 0.0, 0).fired.size(), 1u);
}

TEST(SpatialAlarmServiceTest, MoveKeepsIdAndTriggerState) {
  SpatialAlarmService service(test_config());
  const auto id = service.install(alarms::AlarmScope::kPublic, 0,
                                  Rect(1000, 1000, 1400, 1400));
  EXPECT_EQ(service.process_update(1, {1200, 1200}, 0.0, 0).fired.size(),
            1u);
  service.move(id, Rect(5000, 5000, 5400, 5400));
  // Subscriber 1 already consumed the alarm; subscriber 2 gets it at the
  // new place.
  EXPECT_TRUE(service.process_update(1, {5200, 5200}, 0.0, 1).fired.empty());
  EXPECT_EQ(service.process_update(2, {5200, 5200}, 0.0, 2).fired.size(),
            1u);
  EXPECT_THROW(service.move(id, Rect(9000, 9000, 11000, 11000)),
               PreconditionError);
}

TEST(ServiceClientLoopTest, RectRegionRoundTrip) {
  SpatialAlarmService service(test_config());
  service.install(alarms::AlarmScope::kPublic, 0, Rect(3000, 900, 3400, 1300));

  ClientMonitor monitor;
  EXPECT_TRUE(monitor.should_report({1000, 1000}));  // no region yet

  const auto update =
      service.process_update(1, {1000, 1000}, 0.0, 0, RegionKind::kRect);
  EXPECT_TRUE(update.fired.empty());
  monitor.receive(update.safe_region_message);
  EXPECT_TRUE(monitor.has_region());

  // Walking inside the cell, short of the alarm: no report needed.
  EXPECT_FALSE(monitor.should_report({1500, 1000}));
  // At the alarm's west edge the region must end: report required.
  EXPECT_TRUE(monitor.should_report({3050, 1000}));
}

TEST(ServiceClientLoopTest, PyramidRegionRoundTrip) {
  auto cfg = test_config();
  cfg.pyramid.height = 4;
  SpatialAlarmService service(cfg);
  service.install(alarms::AlarmScope::kPublic, 0, Rect(900, 900, 1200, 1200));

  ClientMonitor monitor;
  const auto update =
      service.process_update(1, {300, 300}, 0.0, 0, RegionKind::kPyramid);
  monitor.receive(update.safe_region_message);

  EXPECT_FALSE(monitor.should_report({400, 400}));
  EXPECT_TRUE(monitor.should_report({1000, 1000}));  // inside the alarm
  // Outside the base cell (2 km wide): must report.
  EXPECT_TRUE(monitor.should_report({2500, 300}));
  EXPECT_GT(monitor.check_ops(), monitor.checks());  // descents cost extra
}

TEST(ServiceClientLoopTest, SimulatedWalkTriggersExactlyOnce) {
  // March a subscriber straight through an alarm region, reporting only
  // when the monitor says so; the alarm must fire exactly once.
  SpatialAlarmService service(test_config());
  service.install(alarms::AlarmScope::kPublic, 0, Rect(4000, 900, 4400, 1300));

  ClientMonitor monitor;
  std::size_t fired = 0;
  std::size_t reports = 0;
  for (int step = 0; step <= 300; ++step) {
    const Point pos{step * 20.0, 1000.0};  // 0 .. 6000 m east
    if (monitor.should_report(pos)) {
      ++reports;
      const auto update =
          service.process_update(1, pos, 0.0, static_cast<std::uint64_t>(step),
                                 RegionKind::kRect);
      fired += update.fired.size();
      monitor.receive(update.safe_region_message);
    }
  }
  EXPECT_EQ(fired, 1u);
  EXPECT_GT(reports, 1u);
  // Far fewer reports than steps: the safe region did its job.
  EXPECT_LT(reports, 40u);
}

TEST(ServiceClientLoopTest, MalformedMessagesRejected) {
  ClientMonitor monitor;
  const std::vector<std::uint8_t> empty;
  EXPECT_THROW(monitor.receive(empty), PreconditionError);
  const auto notice = wire::encode(wire::TriggerNoticeMsg{1, ""});
  EXPECT_THROW(monitor.receive(notice), PreconditionError);
}

}  // namespace
}  // namespace salarm::core
