#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/bitio.h"
#include "common/rng.h"
#include "saferegion/pyramid.h"
#include "saferegion/wire_format.h"

namespace salarm::wire {
namespace {

using geo::Point;
using geo::Rect;

TEST(BitIoTest, WriterReaderRoundTrip) {
  salarm::BitWriter w;
  const std::vector<bool> pattern{1, 0, 0, 1, 1, 1, 0, 1, 0, 1, 1};
  for (const bool b : pattern) w.push(b);
  EXPECT_EQ(w.bit_count(), pattern.size());
  EXPECT_EQ(w.bytes().size(), 2u);
  salarm::BitReader r(w.bytes(), w.bit_count());
  for (const bool b : pattern) EXPECT_EQ(r.next(), b);
  EXPECT_TRUE(r.exhausted());
  EXPECT_THROW(r.next(), salarm::PreconditionError);
}

TEST(BitIoTest, ReaderValidatesBitCount) {
  const std::vector<std::uint8_t> bytes{0xFF};
  EXPECT_THROW(salarm::BitReader(bytes, 9), salarm::PreconditionError);
  EXPECT_NO_THROW(salarm::BitReader(bytes, 8));
}

TEST(WireFormatTest, PositionUpdateRoundTrip) {
  const PositionUpdate m{42, {123.5, -7.25}, 99.75};
  const auto bytes = encode(m);
  EXPECT_EQ(bytes.size(), encoded_size(m));
  EXPECT_EQ(bytes.size(), 29u);
  const PositionUpdate d = decode_position_update(bytes);
  EXPECT_EQ(d.subscriber, m.subscriber);
  EXPECT_EQ(d.position, m.position);
  EXPECT_DOUBLE_EQ(d.time_s, m.time_s);
}

TEST(WireFormatTest, RectSafeRegionRoundTrip) {
  const RectSafeRegionMsg m{Rect(1.5, 2.5, 100.25, 200.125)};
  const auto bytes = encode(m);
  EXPECT_EQ(bytes.size(), encoded_size(m));
  EXPECT_EQ(bytes.size(), rect_message_size());
  EXPECT_EQ(decode_rect_safe_region(bytes).rect, m.rect);
}

TEST(WireFormatTest, SafePeriodAndTriggerRoundTrip) {
  const SafePeriodMsg sp{17.25};
  const auto sp_bytes = encode(sp);
  EXPECT_EQ(sp_bytes.size(), encoded_size(sp));
  EXPECT_DOUBLE_EQ(decode_safe_period(sp_bytes).period_s, 17.25);

  const TriggerNoticeMsg tn{1234, "fuel below 1/4 near I-85 exit 86"};
  const auto tn_bytes = encode(tn);
  EXPECT_EQ(tn_bytes.size(), encoded_size(tn));
  EXPECT_EQ(tn_bytes.size(), trigger_notice_size(tn.message.size()));
  const auto tn_decoded = decode_trigger_notice(tn_bytes);
  EXPECT_EQ(tn_decoded.alarm, 1234u);
  EXPECT_EQ(tn_decoded.message, tn.message);
}

TEST(WireFormatTest, AlarmPushRoundTrip) {
  AlarmPushMsg m;
  m.cell = Rect(0, 0, 1000, 1000);
  m.alarms.push_back({7, Rect(10, 20, 30, 40), "dry cleaning ready"});
  m.alarms.push_back({9, Rect(100, 200, 300, 400), "congestion on 85 North"});
  const auto bytes = encode(m);
  EXPECT_EQ(bytes.size(), encoded_size(m));
  EXPECT_EQ(bytes.size(),
            alarm_push_size(2, m.alarms[0].message.size() +
                                   m.alarms[1].message.size()));
  const AlarmPushMsg d = decode_alarm_push(bytes);
  EXPECT_EQ(d.cell, m.cell);
  ASSERT_EQ(d.alarms.size(), 2u);
  EXPECT_EQ(d.alarms[0].id, 7u);
  EXPECT_EQ(d.alarms[0].message, "dry cleaning ready");
  EXPECT_EQ(d.alarms[1].region, m.alarms[1].region);
}

TEST(WireFormatTest, AlarmPushSizeGrowsLinearly) {
  EXPECT_EQ(alarm_push_size(0, 0) + 38, alarm_push_size(1, 0));
  EXPECT_EQ(alarm_push_size(10, 0) + 10 * 38 + 500, alarm_push_size(20, 500));
}

TEST(WireFormatTest, PyramidSafeRegionRoundTrip) {
  const Rect cell(0, 0, 900, 900);
  const std::vector<Rect> alarms{Rect(100, 100, 400, 300),
                                 Rect(500, 500, 800, 800)};
  saferegion::PyramidConfig cfg;
  cfg.height = 4;
  const auto bitmap = saferegion::PyramidBitmap::build(cell, alarms, cfg);
  const auto msg = PyramidSafeRegionMsg::from(bitmap);
  const auto bytes = encode(msg);
  EXPECT_EQ(bytes.size(), encoded_size(msg));
  EXPECT_EQ(bytes.size(), pyramid_message_size(bitmap.bit_size()));
  const auto decoded_msg = decode_pyramid_safe_region(bytes);
  const auto restored = decoded_msg.decode();
  EXPECT_TRUE(restored == bitmap);
}

TEST(WireFormatTest, EmptyPyramidIsTiny) {
  const Rect cell(0, 0, 900, 900);
  const auto bitmap =
      saferegion::PyramidBitmap::build(cell, {}, saferegion::PyramidConfig{});
  const auto msg = PyramidSafeRegionMsg::from(bitmap);
  // 1 bit payload: 40-byte header + 1 byte.
  EXPECT_EQ(encode(msg).size(), 41u);
}

TEST(WireFormatTest, DecodersRejectWrongType) {
  const auto bytes = encode(TriggerNoticeMsg{5, ""});
  EXPECT_THROW(decode_position_update(bytes), salarm::PreconditionError);
  EXPECT_THROW(decode_rect_safe_region(bytes), salarm::PreconditionError);
  EXPECT_THROW(decode_alarm_push(bytes), salarm::PreconditionError);
}

TEST(WireFormatTest, DecodersRejectTruncation) {
  auto bytes = encode(PositionUpdate{1, {2, 3}, 4});
  bytes.pop_back();
  EXPECT_THROW(decode_position_update(bytes), salarm::PreconditionError);

  auto push = encode(
      AlarmPushMsg{Rect(0, 0, 1, 1), {{1, Rect(0, 0, 1, 1), ""}}});
  push.resize(push.size() - 10);
  EXPECT_THROW(decode_alarm_push(push), salarm::PreconditionError);
}

TEST(WireFormatTest, DecodersRejectTrailingBytes) {
  auto bytes = encode(SafePeriodMsg{1.0});
  bytes.push_back(0);
  EXPECT_THROW(decode_safe_period(bytes), salarm::PreconditionError);
}

TEST(WireFormatTest, PyramidPayloadValidated) {
  PyramidSafeRegionMsg bad;
  bad.cell = Rect(0, 0, 1, 1);
  bad.bit_count = 10;
  bad.bits = {0xFF};  // needs 2 bytes
  EXPECT_THROW(encode(bad), salarm::PreconditionError);
}

}  // namespace
}  // namespace salarm::wire
