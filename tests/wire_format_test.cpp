#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/bitio.h"
#include "common/rng.h"
#include "saferegion/pyramid.h"
#include "saferegion/wire_format.h"

namespace salarm::wire {
namespace {

using geo::Point;
using geo::Rect;

TEST(BitIoTest, WriterReaderRoundTrip) {
  salarm::BitWriter w;
  const std::vector<bool> pattern{1, 0, 0, 1, 1, 1, 0, 1, 0, 1, 1};
  for (const bool b : pattern) w.push(b);
  EXPECT_EQ(w.bit_count(), pattern.size());
  EXPECT_EQ(w.bytes().size(), 2u);
  salarm::BitReader r(w.bytes(), w.bit_count());
  for (const bool b : pattern) EXPECT_EQ(r.next(), b);
  EXPECT_TRUE(r.exhausted());
  EXPECT_THROW(r.next(), salarm::PreconditionError);
}

TEST(BitIoTest, ReaderValidatesBitCount) {
  const std::vector<std::uint8_t> bytes{0xFF};
  EXPECT_THROW(salarm::BitReader(bytes, 9), salarm::PreconditionError);
  EXPECT_NO_THROW(salarm::BitReader(bytes, 8));
}

TEST(WireFormatTest, PositionUpdateRoundTrip) {
  const PositionUpdate m{42, {123.5, -7.25}, 99.75, 1009};
  const auto bytes = encode(m);
  EXPECT_EQ(bytes.size(), encoded_size(m));
  EXPECT_EQ(bytes.size(), 33u);
  const PositionUpdate d = decode_position_update(bytes);
  EXPECT_EQ(d.subscriber, m.subscriber);
  EXPECT_EQ(d.position, m.position);
  EXPECT_DOUBLE_EQ(d.time_s, m.time_s);
  EXPECT_EQ(d.seq, 1009u);
}

TEST(WireFormatTest, RectSafeRegionRoundTrip) {
  const RectSafeRegionMsg m{Rect(1.5, 2.5, 100.25, 200.125)};
  const auto bytes = encode(m);
  EXPECT_EQ(bytes.size(), encoded_size(m));
  EXPECT_EQ(bytes.size(), rect_message_size());
  EXPECT_EQ(decode_rect_safe_region(bytes).rect, m.rect);
}

TEST(WireFormatTest, SafePeriodAndTriggerRoundTrip) {
  const SafePeriodMsg sp{17.25};
  const auto sp_bytes = encode(sp);
  EXPECT_EQ(sp_bytes.size(), encoded_size(sp));
  EXPECT_DOUBLE_EQ(decode_safe_period(sp_bytes).period_s, 17.25);

  const TriggerNoticeMsg tn{1234, "fuel below 1/4 near I-85 exit 86"};
  const auto tn_bytes = encode(tn);
  EXPECT_EQ(tn_bytes.size(), encoded_size(tn));
  EXPECT_EQ(tn_bytes.size(), trigger_notice_size(tn.message.size()));
  const auto tn_decoded = decode_trigger_notice(tn_bytes);
  EXPECT_EQ(tn_decoded.alarm, 1234u);
  EXPECT_EQ(tn_decoded.message, tn.message);
}

TEST(WireFormatTest, AlarmPushRoundTrip) {
  AlarmPushMsg m;
  m.cell = Rect(0, 0, 1000, 1000);
  m.alarms.push_back({7, Rect(10, 20, 30, 40), "dry cleaning ready"});
  m.alarms.push_back({9, Rect(100, 200, 300, 400), "congestion on 85 North"});
  const auto bytes = encode(m);
  EXPECT_EQ(bytes.size(), encoded_size(m));
  EXPECT_EQ(bytes.size(),
            alarm_push_size(2, m.alarms[0].message.size() +
                                   m.alarms[1].message.size()));
  const AlarmPushMsg d = decode_alarm_push(bytes);
  EXPECT_EQ(d.cell, m.cell);
  ASSERT_EQ(d.alarms.size(), 2u);
  EXPECT_EQ(d.alarms[0].id, 7u);
  EXPECT_EQ(d.alarms[0].message, "dry cleaning ready");
  EXPECT_EQ(d.alarms[1].region, m.alarms[1].region);
}

TEST(WireFormatTest, AlarmPushSizeGrowsLinearly) {
  EXPECT_EQ(alarm_push_size(0, 0) + 38, alarm_push_size(1, 0));
  EXPECT_EQ(alarm_push_size(10, 0) + 10 * 38 + 500, alarm_push_size(20, 500));
}

TEST(WireFormatTest, PyramidSafeRegionRoundTrip) {
  const Rect cell(0, 0, 900, 900);
  const std::vector<Rect> alarms{Rect(100, 100, 400, 300),
                                 Rect(500, 500, 800, 800)};
  saferegion::PyramidConfig cfg;
  cfg.height = 4;
  const auto bitmap = saferegion::PyramidBitmap::build(cell, alarms, cfg);
  const auto msg = PyramidSafeRegionMsg::from(bitmap);
  const auto bytes = encode(msg);
  EXPECT_EQ(bytes.size(), encoded_size(msg));
  EXPECT_EQ(bytes.size(), pyramid_message_size(bitmap.bit_size()));
  const auto decoded_msg = decode_pyramid_safe_region(bytes);
  const auto restored = decoded_msg.decode();
  EXPECT_TRUE(restored == bitmap);
}

TEST(WireFormatTest, EmptyPyramidIsTiny) {
  const Rect cell(0, 0, 900, 900);
  const auto bitmap =
      saferegion::PyramidBitmap::build(cell, {}, saferegion::PyramidConfig{});
  const auto msg = PyramidSafeRegionMsg::from(bitmap);
  // 1 bit payload: 40-byte header + 1 byte.
  EXPECT_EQ(encode(msg).size(), 41u);
}

TEST(WireFormatTest, DecodersRejectWrongType) {
  const auto bytes = encode(TriggerNoticeMsg{5, ""});
  EXPECT_THROW(decode_position_update(bytes), salarm::PreconditionError);
  EXPECT_THROW(decode_rect_safe_region(bytes), salarm::PreconditionError);
  EXPECT_THROW(decode_alarm_push(bytes), salarm::PreconditionError);
}

TEST(WireFormatTest, DecodersRejectTruncation) {
  auto bytes = encode(PositionUpdate{1, {2, 3}, 4});
  bytes.pop_back();
  EXPECT_THROW(decode_position_update(bytes), salarm::PreconditionError);

  auto push = encode(
      AlarmPushMsg{Rect(0, 0, 1, 1), {{1, Rect(0, 0, 1, 1), ""}}});
  push.resize(push.size() - 10);
  EXPECT_THROW(decode_alarm_push(push), salarm::PreconditionError);
}

TEST(WireFormatTest, DecodersRejectTrailingBytes) {
  auto bytes = encode(SafePeriodMsg{1.0});
  bytes.push_back(0);
  EXPECT_THROW(decode_safe_period(bytes), salarm::PreconditionError);
}

TEST(WireFormatTest, PyramidPayloadValidated) {
  PyramidSafeRegionMsg bad;
  bad.cell = Rect(0, 0, 1, 1);
  bad.bit_count = 10;
  bad.bits = {0xFF};  // needs 2 bytes
  EXPECT_THROW(encode(bad), salarm::PreconditionError);
}

TEST(WireFormatTest, InvalidationRoundTrip) {
  // Revoke/shrink pushes carry no alert content.
  const InvalidationMsg revoke{0, 6, 17, Rect(1, 2, 3, 4), ""};
  const auto revoke_bytes = encode(revoke);
  EXPECT_EQ(revoke_bytes.size(), encoded_size(revoke));
  EXPECT_EQ(revoke_bytes.size(), invalidation_message_size(0));
  const auto revoke_decoded = decode_invalidation(revoke_bytes);
  EXPECT_EQ(revoke_decoded.action, 0);
  EXPECT_EQ(revoke_decoded.seq, 6u);
  EXPECT_EQ(revoke_decoded.alarm, 17u);
  EXPECT_EQ(revoke_decoded.region, revoke.region);
  EXPECT_TRUE(revoke_decoded.message.empty());

  // Alarm-add pushes carry the alarm's message.
  const InvalidationMsg add{2, 7, 90001, Rect(10, 10, 20, 20),
                            "ozone alert downtown"};
  const auto add_bytes = encode(add);
  EXPECT_EQ(add_bytes.size(), encoded_size(add));
  EXPECT_EQ(add_bytes.size(), invalidation_message_size(add.message.size()));
  const auto add_decoded = decode_invalidation(add_bytes);
  EXPECT_EQ(add_decoded.action, 2);
  EXPECT_EQ(add_decoded.alarm, 90001u);
  EXPECT_EQ(add_decoded.message, add.message);
}

TEST(WireFormatTest, InvalidationRejectsCorruptPayloads) {
  const InvalidationMsg m{1, 1, 5, Rect(0, 0, 1, 1), ""};
  auto bytes = encode(m);

  // Bad type byte.
  auto bad_type = bytes;
  bad_type[0] = static_cast<std::uint8_t>(MessageType::kSafePeriod);
  EXPECT_THROW(decode_invalidation(bad_type), salarm::PreconditionError);

  // Unknown action byte (only 0/1/2 are defined).
  auto bad_action = bytes;
  bad_action[1] = 7;
  EXPECT_THROW(decode_invalidation(bad_action), salarm::PreconditionError);

  // Trailing garbage.
  auto long_buf = bytes;
  long_buf.push_back(0);
  EXPECT_THROW(decode_invalidation(long_buf), salarm::PreconditionError);
}

// Every strict prefix of a valid message must throw — decoding may never
// read past the buffer or fall into UB on short input.
template <typename Decoder>
void expect_all_prefixes_throw(const std::vector<std::uint8_t>& bytes,
                               Decoder decode) {
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW(decode(std::span(bytes.data(), len)),
                 salarm::PreconditionError)
        << "prefix of length " << len << " accepted";
  }
}

TEST(WireFormatTest, TruncationSweepThrowsForEveryPrefix) {
  expect_all_prefixes_throw(encode(PositionUpdate{1, {2, 3}, 4}),
                            [](auto b) { return decode_position_update(b); });
  expect_all_prefixes_throw(encode(RectSafeRegionMsg{Rect(0, 0, 1, 1)}),
                            [](auto b) { return decode_rect_safe_region(b); });
  expect_all_prefixes_throw(encode(SafePeriodMsg{3.5}),
                            [](auto b) { return decode_safe_period(b); });
  expect_all_prefixes_throw(encode(TriggerNoticeMsg{9, "low fuel"}),
                            [](auto b) { return decode_trigger_notice(b); });
  expect_all_prefixes_throw(
      encode(AlarmPushMsg{Rect(0, 0, 9, 9), {{1, Rect(1, 1, 2, 2), "hi"}}}),
      [](auto b) { return decode_alarm_push(b); });
  expect_all_prefixes_throw(
      encode(InvalidationMsg{2, 1, 5, Rect(0, 0, 1, 1), "msg"}),
      [](auto b) { return decode_invalidation(b); });

  const auto bitmap = saferegion::PyramidBitmap::build(
      Rect(0, 0, 900, 900), std::vector<Rect>{Rect(10, 10, 200, 200)},
      saferegion::PyramidConfig{});
  expect_all_prefixes_throw(
      encode(PyramidSafeRegionMsg::from(bitmap)),
      [](auto b) { return decode_pyramid_safe_region(b); });
}

TEST(WireFormatTest, AckRoundTrip) {
  const AckMsg m{1234, 0xDEADBEEF};
  const auto bytes = encode(m);
  EXPECT_EQ(bytes.size(), ack_message_size());
  const AckMsg d = decode_ack(bytes);
  EXPECT_EQ(d.subscriber, 1234u);
  EXPECT_EQ(d.seq, 0xDEADBEEFu);

  // Wrong type byte and every strict prefix must throw.
  auto bad = bytes;
  bad[0] = static_cast<std::uint8_t>(MessageType::kSafePeriod);
  EXPECT_THROW(decode_ack(bad), salarm::PreconditionError);
  expect_all_prefixes_throw(bytes, [](auto b) { return decode_ack(b); });
}

// DESIGN.md §9: the channel may reorder and duplicate invalidation pushes;
// the decoded sequence numbers are what lets the client restore order and
// drop copies. These tests pin the wire-level behaviour the protocol
// relies on.
TEST(WireFormatTest, InvalidationSequenceSurvivesReordering) {
  const InvalidationMsg first{1, 41, 7, Rect(0, 0, 5, 5), ""};
  const InvalidationMsg second{1, 42, 8, Rect(5, 5, 9, 9), ""};
  const auto first_bytes = encode(first);
  const auto second_bytes = encode(second);

  // Delivered out of order: decoding is order-independent, and the seq
  // fields alone recover the original send order.
  const auto late = decode_invalidation(second_bytes);
  const auto early = decode_invalidation(first_bytes);
  EXPECT_LT(early.seq, late.seq);
  EXPECT_EQ(early.alarm, 7u);
  EXPECT_EQ(late.alarm, 8u);
}

TEST(WireFormatTest, InvalidationDuplicateCopiesDecodeIdentically) {
  const InvalidationMsg m{2, 99, 13, Rect(1, 1, 2, 2), "copy me"};
  const auto bytes = encode(m);
  const auto copy_bytes = bytes;  // the channel re-delivers the same frame
  const auto a = decode_invalidation(bytes);
  const auto b = decode_invalidation(copy_bytes);
  // Identical seq is exactly what the duplicate-suppression window keys on.
  EXPECT_EQ(a.seq, b.seq);
  EXPECT_EQ(a.action, b.action);
  EXPECT_EQ(a.alarm, b.alarm);
  EXPECT_EQ(a.region, b.region);
  EXPECT_EQ(a.message, b.message);
}

TEST(WireFormatTest, AlarmPushRejectsReserveBomb) {
  // An attacker-controlled alarm count far beyond what the payload can hold
  // must be rejected up front, not fed to vector::reserve.
  auto bytes = encode(AlarmPushMsg{Rect(0, 0, 1, 1), {}});
  // Layout: type(1) + cell rect(32) + count(4); patch the count field.
  ASSERT_EQ(bytes.size(), 37u);
  bytes[33] = 0xFF;
  bytes[34] = 0xFF;
  bytes[35] = 0xFF;
  bytes[36] = 0xFF;
  EXPECT_THROW(decode_alarm_push(bytes), salarm::PreconditionError);
}

}  // namespace
}  // namespace salarm::wire
