#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "alarms/alarm_store.h"
#include "alarms/spatial_alarm.h"
#include "common/error.h"
#include "common/rng.h"

namespace salarm::alarms {
namespace {

using geo::Point;
using geo::Rect;

SpatialAlarm make_private(AlarmId id, SubscriberId owner, const Rect& region) {
  SpatialAlarm a;
  a.id = id;
  a.scope = AlarmScope::kPrivate;
  a.owner = owner;
  a.region = region;
  a.subscribers = {owner};
  return a;
}

SpatialAlarm make_public(AlarmId id, const Rect& region) {
  SpatialAlarm a;
  a.id = id;
  a.scope = AlarmScope::kPublic;
  a.region = region;
  return a;
}

SpatialAlarm make_shared(AlarmId id, SubscriberId owner,
                         std::vector<SubscriberId> subs, const Rect& region) {
  SpatialAlarm a;
  a.id = id;
  a.scope = AlarmScope::kShared;
  a.owner = owner;
  a.region = region;
  a.subscribers = std::move(subs);
  return a;
}

TEST(AlarmStoreTest, InstallValidation) {
  AlarmStore store;
  store.install(make_private(0, 1, Rect(0, 0, 10, 10)));
  // Duplicate ids rejected.
  EXPECT_THROW(store.install(make_private(0, 1, Rect(0, 0, 1, 1))),
               salarm::PreconditionError);
  // Region must have positive area.
  EXPECT_THROW(store.install(make_private(1, 1, Rect(0, 0, 0, 10))),
               salarm::PreconditionError);
  // Public alarms with subscriber lists rejected.
  SpatialAlarm bad = make_public(1, Rect(0, 0, 1, 1));
  bad.subscribers = {3};
  EXPECT_THROW(store.install(bad), salarm::PreconditionError);
  // Non-public without subscribers rejected.
  SpatialAlarm empty = make_private(1, 1, Rect(0, 0, 1, 1));
  empty.subscribers.clear();
  EXPECT_THROW(store.install(empty), salarm::PreconditionError);
}

TEST(AlarmStoreTest, SparseIdsAreFirstClass) {
  // The cluster tier installs per-shard slices of a global id space: ids
  // may be any unique subset, in any order.
  AlarmStore store;
  store.install(make_private(5, 1, Rect(0, 0, 10, 10)));
  store.install(make_public(2, Rect(20, 20, 30, 30)));
  EXPECT_EQ(store.size(), 2u);
  EXPECT_TRUE(store.installed(5));
  EXPECT_TRUE(store.installed(2));
  EXPECT_FALSE(store.installed(0));
  EXPECT_FALSE(store.installed(100));
  EXPECT_EQ(store.alarm(5).id, 5u);
  EXPECT_EQ(store.alarm(2).id, 2u);
  EXPECT_THROW(store.alarm(0), salarm::PreconditionError);

  const auto hits = store.relevant_in_window(Rect(0, 0, 50, 50), 1);
  ASSERT_EQ(hits.size(), 2u);

  AlarmStore bulk;
  bulk.install_bulk({make_public(9, Rect(0, 0, 1, 1)),
                     make_public(3, Rect(2, 2, 3, 3))});
  EXPECT_TRUE(bulk.installed(9));
  EXPECT_TRUE(bulk.installed(3));
  EXPECT_TRUE(bulk.uninstall(9));
  EXPECT_FALSE(bulk.installed(9));
  EXPECT_FALSE(bulk.uninstall(9));
  EXPECT_TRUE(bulk.installed(3));
}

TEST(AlarmStoreTest, RelevanceByScope) {
  AlarmStore store;
  store.install(make_private(0, 1, Rect(0, 0, 10, 10)));
  store.install(make_shared(1, 1, {1, 2, 3}, Rect(0, 0, 10, 10)));
  store.install(make_public(2, Rect(0, 0, 10, 10)));

  EXPECT_TRUE(store.relevant(store.alarm(0), 1));
  EXPECT_FALSE(store.relevant(store.alarm(0), 2));
  EXPECT_TRUE(store.relevant(store.alarm(1), 2));
  EXPECT_TRUE(store.relevant(store.alarm(1), 3));
  EXPECT_FALSE(store.relevant(store.alarm(1), 4));
  EXPECT_TRUE(store.relevant(store.alarm(2), 999));  // public: everyone
}

TEST(AlarmStoreTest, ProcessPositionFiresAndSpends) {
  AlarmStore store;
  store.install(make_private(0, 7, Rect(0, 0, 10, 10)));
  store.install(make_public(1, Rect(5, 5, 20, 20)));
  std::vector<TriggerEvent> log;

  // Subscriber 7 strictly inside both regions: both fire.
  auto fired = store.process_position(7, {6, 6}, 3, &log);
  std::sort(fired.begin(), fired.end());
  EXPECT_EQ(fired, (std::vector<AlarmId>{0, 1}));
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].tick, 3u);

  // One-shot: the same position no longer fires anything for 7.
  EXPECT_TRUE(store.process_position(7, {6, 6}, 4, &log).empty());
  EXPECT_TRUE(store.spent(0, 7));
  EXPECT_TRUE(store.spent(1, 7));

  // A different subscriber only gets the public alarm.
  fired = store.process_position(8, {6, 6}, 5, nullptr);
  EXPECT_EQ(fired, (std::vector<AlarmId>{1}));
  EXPECT_FALSE(store.spent(0, 8));
}

TEST(AlarmStoreTest, BoundaryDoesNotTriggerOpenInterior) {
  // Trigger semantics are open-interior: touching the boundary is safe,
  // one step inside fires.
  AlarmStore store;
  store.install(make_public(0, Rect(0, 0, 10, 10)));
  EXPECT_TRUE(store.process_position(1, {10, 10}, 0, nullptr).empty());
  EXPECT_TRUE(store.process_position(1, {10, 5}, 0, nullptr).empty());
  EXPECT_EQ(store.process_position(1, {9.99, 5}, 1, nullptr).size(), 1u);
}

TEST(AlarmStoreTest, ResetTriggersRestoresRelevance) {
  AlarmStore store;
  store.install(make_public(0, Rect(0, 0, 10, 10)));
  (void)store.process_position(1, {5, 5}, 0, nullptr);
  EXPECT_TRUE(store.spent(0, 1));
  store.reset_triggers();
  EXPECT_FALSE(store.spent(0, 1));
  EXPECT_EQ(store.process_position(1, {5, 5}, 0, nullptr).size(), 1u);
}

TEST(AlarmStoreTest, UninstallRemovesFromQueries) {
  AlarmStore store;
  store.install(make_public(0, Rect(0, 0, 10, 10)));
  store.install(make_public(1, Rect(20, 20, 30, 30)));
  EXPECT_TRUE(store.uninstall(0));
  EXPECT_FALSE(store.uninstall(0));  // already gone
  EXPECT_FALSE(store.uninstall(99));
  EXPECT_TRUE(store.process_position(1, {5, 5}, 0, nullptr).empty());
  EXPECT_THROW(store.alarm(0), salarm::PreconditionError);
  EXPECT_EQ(store.relevant_in_window(Rect(0, 0, 50, 50), 1).size(), 1u);
}

TEST(AlarmStoreTest, BulkInstallMatchesIncremental) {
  Rng rng(5);
  const Rect universe(0, 0, 10000, 10000);
  AlarmWorkloadConfig cfg;
  cfg.alarm_count = 400;
  cfg.subscriber_count = 50;
  const auto workload = generate_alarm_workload(cfg, universe, rng);

  AlarmStore incremental;
  for (auto a : workload) incremental.install(std::move(a));
  AlarmStore bulk;
  bulk.install_bulk(workload);

  Rng qrng(6);
  for (int q = 0; q < 30; ++q) {
    const Point c{qrng.uniform(0, 10000), qrng.uniform(0, 10000)};
    const auto window = Rect::centered_square(c, 2000).intersection(universe);
    const auto s = static_cast<SubscriberId>(qrng.index(50));
    const auto a = incremental.relevant_in_window(*window, s);
    const auto b = bulk.relevant_in_window(*window, s);
    std::set<AlarmId> ia, ib;
    for (const auto* x : a) ia.insert(x->id);
    for (const auto* x : b) ib.insert(x->id);
    EXPECT_EQ(ia, ib);
  }
  // Bulk store stays mutable.
  EXPECT_TRUE(bulk.uninstall(0));
  bulk.move_alarm(1, Rect(10, 10, 60, 60));
}

TEST(AlarmStoreTest, BulkInstallValidation) {
  AlarmStore store;
  store.install(make_public(0, Rect(0, 0, 10, 10)));
  EXPECT_THROW(store.install_bulk({make_public(1, Rect(0, 0, 5, 5))}),
               salarm::PreconditionError);  // store not empty
  AlarmStore fresh;
  EXPECT_THROW(fresh.install_bulk({make_public(3, Rect(0, 0, 5, 5)),
                                   make_public(3, Rect(1, 1, 5, 5))}),
               salarm::PreconditionError);  // duplicate ids
}

TEST(AlarmStoreTest, MoveAlarmFollowsTarget) {
  AlarmStore store;
  store.install(make_public(0, Rect(0, 0, 10, 10)));
  // Before the move: fires inside the old region.
  EXPECT_EQ(store.process_position(1, {5, 5}, 0, nullptr).size(), 1u);
  store.move_alarm(0, Rect(100, 100, 110, 110));
  EXPECT_EQ(store.alarm(0).region, Rect(100, 100, 110, 110));
  // Old location no longer covered for a fresh subscriber.
  EXPECT_TRUE(store.process_position(2, {5, 5}, 1, nullptr).empty());
  // New location fires for subscriber 2 ...
  EXPECT_EQ(store.process_position(2, {105, 105}, 2, nullptr).size(), 1u);
  // ... but not for subscriber 1, whose trigger state was preserved.
  EXPECT_TRUE(store.process_position(1, {105, 105}, 3, nullptr).empty());
  // Nearest-distance queries see the new region.
  EXPECT_DOUBLE_EQ(store.nearest_relevant_distance({100, 105}, 3), 0.0);
}

TEST(AlarmStoreTest, MoveAlarmValidation) {
  AlarmStore store;
  store.install(make_public(0, Rect(0, 0, 10, 10)));
  EXPECT_THROW(store.move_alarm(5, Rect(0, 0, 1, 1)),
               salarm::PreconditionError);
  EXPECT_THROW(store.move_alarm(0, Rect(0, 0, 0, 10)),
               salarm::PreconditionError);
  store.uninstall(0);
  EXPECT_THROW(store.move_alarm(0, Rect(0, 0, 1, 1)),
               salarm::PreconditionError);
}

TEST(AlarmStoreTest, RelevantInWindowFiltersSpentAndScope) {
  AlarmStore store;
  store.install(make_private(0, 1, Rect(0, 0, 10, 10)));
  store.install(make_private(1, 2, Rect(0, 0, 10, 10)));
  store.install(make_public(2, Rect(5, 0, 15, 10)));
  const Rect window(0, 0, 20, 20);
  EXPECT_EQ(store.relevant_in_window(window, 1).size(), 2u);  // own + public
  store.mark_spent(2, 1);
  EXPECT_EQ(store.relevant_in_window(window, 1).size(), 1u);
  EXPECT_EQ(store.relevant_in_window(window, 2).size(), 2u);  // unaffected
}

TEST(AlarmStoreTest, NearestRelevantDistance) {
  AlarmStore store;
  store.install(make_private(0, 1, Rect(10, 0, 12, 2)));
  store.install(make_public(1, Rect(100, 0, 102, 2)));
  // Subscriber 1 sees its private alarm at distance 5.
  EXPECT_DOUBLE_EQ(store.nearest_relevant_distance({5, 1}, 1), 5.0);
  // Subscriber 2 only sees the public alarm.
  EXPECT_DOUBLE_EQ(store.nearest_relevant_distance({5, 1}, 2), 95.0);
  // Spend the public alarm for 2: nothing left.
  store.mark_spent(1, 2);
  EXPECT_TRUE(std::isinf(store.nearest_relevant_distance({5, 1}, 2)));
}

TEST(AlarmStoreTest, IndexAccessCounterMoves) {
  AlarmStore store;
  Rng rng(3);
  for (AlarmId i = 0; i < 200; ++i) {
    const Point c{rng.uniform(0, 1000), rng.uniform(0, 1000)};
    store.install(make_public(i, Rect::centered_square(c, 20)));
  }
  store.reset_index_node_accesses();
  (void)store.process_position(1, {500, 500}, 0, nullptr);
  EXPECT_GT(store.index_node_accesses(), 0u);
}

// ---------------------------------------------------------------------------
// Erase / re-insert property sweep
// ---------------------------------------------------------------------------

class StoreChurnPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

// Random installs, uninstalls and re-installs over a sparse id space,
// cross-checked against a plain map model — exactly the stress the dynamics
// tier (src/dynamics) puts on the store's swap-and-pop slot bookkeeping.
TEST_P(StoreChurnPropertyTest, EraseReinsertMatchesReferenceModel) {
  constexpr std::size_t kIdSpace = 1000;  // sparse: far more ids than alarms
  constexpr int kOps = 600;
  const Rect universe(0, 0, 5000, 5000);

  Rng rng(GetParam());
  AlarmStore store;
  std::map<AlarmId, Rect> model;

  const auto random_region = [&] {
    const Point c{rng.uniform(100, 4900), rng.uniform(100, 4900)};
    return Rect::centered_square(c, rng.uniform(10, 150));
  };

  for (int op = 0; op < kOps; ++op) {
    const double dice = rng.uniform(0.0, 1.0);
    if (dice < 0.55 || model.empty()) {
      // Install under a random sparse id (ids are reused after erase).
      const auto id = static_cast<AlarmId>(rng.index(kIdSpace));
      if (model.count(id) != 0) {
        EXPECT_THROW(store.install(make_public(id, random_region())),
                     salarm::PreconditionError);
      } else {
        const Rect region = random_region();
        store.install(make_public(id, region));
        model.emplace(id, region);
      }
    } else if (dice < 0.95) {
      // Uninstall an existing alarm (or a vacant id: must return false).
      const auto id = static_cast<AlarmId>(rng.index(kIdSpace));
      EXPECT_EQ(store.uninstall(id), model.erase(id) != 0);
    } else {
      // Rewind: clear + bulk re-install of the surviving set.
      std::vector<SpatialAlarm> survivors;
      for (const auto& [id, region] : model) {
        survivors.push_back(make_public(id, region));
      }
      store.clear();
      store.install_bulk(std::move(survivors));
    }

    // Invariants after every op.
    ASSERT_EQ(store.size(), model.size());
    std::set<AlarmId> store_ids;
    for (const auto& a : store.all()) {
      store_ids.insert(a.id);
      const auto it = model.find(a.id);
      ASSERT_TRUE(it != model.end());
      EXPECT_EQ(a.region, it->second);
      EXPECT_TRUE(store.installed(a.id));
      EXPECT_EQ(store.alarm(a.id).id, a.id);
    }
    ASSERT_EQ(store_ids.size(), store.size());  // no duplicate slots
  }

  // Spatial queries over the final state agree with a brute-force scan.
  for (int q = 0; q < 25; ++q) {
    const Point c{rng.uniform(0, 5000), rng.uniform(0, 5000)};
    const Rect window = Rect::centered_square(c, 800)
                            .intersection(universe)
                            .value_or(Rect(0, 0, 1, 1));
    std::set<AlarmId> got;
    for (const auto* a : store.relevant_in_window(window, 0)) {
      got.insert(a->id);
    }
    std::set<AlarmId> expected;
    for (const auto& [id, region] : model) {
      if (region.intersects(window)) expected.insert(id);
    }
    EXPECT_EQ(got, expected);
  }

  // A vacated id past the end of the slot table stays uninstallable-clean.
  EXPECT_FALSE(store.installed(kIdSpace + 7));
  EXPECT_FALSE(store.uninstall(kIdSpace + 7));
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreChurnPropertyTest,
                         ::testing::Values(11u, 12u, 13u));

// ---------------------------------------------------------------------------
// Workload generator
// ---------------------------------------------------------------------------

TEST(AlarmWorkloadTest, RejectsBadConfig) {
  Rng rng(1);
  const Rect universe(0, 0, 1000, 1000);
  AlarmWorkloadConfig cfg;
  cfg.alarm_count = 0;
  EXPECT_THROW(generate_alarm_workload(cfg, universe, rng),
               salarm::PreconditionError);
  cfg = {};
  cfg.public_fraction = 1.5;
  EXPECT_THROW(generate_alarm_workload(cfg, universe, rng),
               salarm::PreconditionError);
  cfg = {};
  cfg.region_side_lo = -1;
  EXPECT_THROW(generate_alarm_workload(cfg, universe, rng),
               salarm::PreconditionError);
}

class WorkloadSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WorkloadSeedTest, GeneratesPaperShapedWorkload) {
  Rng rng(GetParam());
  const Rect universe(0, 0, 10000, 10000);
  AlarmWorkloadConfig cfg;
  cfg.alarm_count = 3000;
  cfg.subscriber_count = 500;
  cfg.public_fraction = 0.10;
  const auto alarms = generate_alarm_workload(cfg, universe, rng);
  ASSERT_EQ(alarms.size(), cfg.alarm_count);

  std::size_t n_public = 0;
  std::size_t n_private = 0;
  std::size_t n_shared = 0;
  for (std::size_t i = 0; i < alarms.size(); ++i) {
    const SpatialAlarm& a = alarms[i];
    EXPECT_EQ(a.id, i);  // dense ids
    EXPECT_TRUE(universe.contains(a.region));
    EXPECT_GT(a.region.area(), 0.0);
    EXPECT_LE(a.region.width(), cfg.region_side_hi + 1e-9);
    switch (a.scope) {
      case AlarmScope::kPublic:
        ++n_public;
        EXPECT_TRUE(a.subscribers.empty());
        break;
      case AlarmScope::kPrivate:
        ++n_private;
        ASSERT_EQ(a.subscribers.size(), 1u);
        EXPECT_EQ(a.subscribers[0], a.owner);
        break;
      case AlarmScope::kShared:
        ++n_shared;
        EXPECT_GE(a.subscribers.size(), 1u);
        EXPECT_LE(a.subscribers.size(), cfg.shared_subscribers_hi);
        EXPECT_TRUE(std::find(a.subscribers.begin(), a.subscribers.end(),
                              a.owner) != a.subscribers.end());
        break;
    }
    EXPECT_LT(a.owner, cfg.subscriber_count);
  }
  // Mix close to 10% public and private:shared close to 2:1.
  EXPECT_NEAR(static_cast<double>(n_public) / cfg.alarm_count, 0.10, 0.03);
  EXPECT_NEAR(static_cast<double>(n_private) /
                  static_cast<double>(n_private + n_shared),
              2.0 / 3.0, 0.05);
}

TEST_P(WorkloadSeedTest, InstallsCleanlyIntoStore) {
  Rng rng(GetParam() + 50);
  const Rect universe(0, 0, 10000, 10000);
  AlarmWorkloadConfig cfg;
  cfg.alarm_count = 1000;
  cfg.subscriber_count = 100;
  auto alarms = generate_alarm_workload(cfg, universe, rng);
  AlarmStore store;
  store.install_bulk(std::move(alarms));
  EXPECT_EQ(store.size(), cfg.alarm_count);

  // relevant_in_window agrees with a brute-force scan.
  Rng qrng(GetParam() + 99);
  for (int q = 0; q < 20; ++q) {
    const Point c{qrng.uniform(0, 10000), qrng.uniform(0, 10000)};
    const Rect window = Rect::centered_square(c, 1500).intersection(universe)
                            .value_or(Rect(0, 0, 1, 1));
    const auto s = static_cast<SubscriberId>(qrng.index(100));
    const auto got = store.relevant_in_window(window, s);
    std::set<AlarmId> got_ids;
    for (const auto* a : got) got_ids.insert(a->id);
    std::set<AlarmId> expected;
    for (AlarmId i = 0; i < store.size(); ++i) {
      const SpatialAlarm& a = store.alarm(i);
      if (a.region.intersects(window) && store.relevant(a, s)) {
        expected.insert(i);
      }
    }
    EXPECT_EQ(got_ids, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorkloadSeedTest,
                         ::testing::Values(100u, 200u, 300u));

}  // namespace
}  // namespace salarm::alarms
