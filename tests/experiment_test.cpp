#include <cstdlib>

#include <gtest/gtest.h>

#include "core/experiment.h"

namespace salarm::core {
namespace {

ExperimentConfig tiny() {
  ExperimentConfig cfg;
  cfg.universe_km = 4.0;
  cfg.vehicles = 20;
  cfg.minutes = 1.0;
  cfg.alarm_count = 120;
  cfg.seed = 5;
  return cfg;
}

TEST(ExperimentConfigTest, TicksIncludeInitialPositions) {
  ExperimentConfig cfg;
  cfg.minutes = 2.0;
  cfg.tick_seconds = 1.0;
  EXPECT_EQ(cfg.ticks(), 121u);
  cfg.tick_seconds = 0.5;
  EXPECT_EQ(cfg.ticks(), 241u);
}

TEST(ExperimentConfigTest, EnvOverridesApply) {
  ::setenv("SALARM_VEHICLES", "77", 1);
  ::setenv("SALARM_MINUTES", "3.5", 1);
  ::setenv("SALARM_ALARMS", "999", 1);
  ::setenv("SALARM_SEED", "123", 1);
  const ExperimentConfig cfg = tiny().with_env_overrides();
  EXPECT_EQ(cfg.vehicles, 77u);
  EXPECT_DOUBLE_EQ(cfg.minutes, 3.5);
  EXPECT_EQ(cfg.alarm_count, 999u);
  EXPECT_EQ(cfg.seed, 123u);
  ::unsetenv("SALARM_VEHICLES");
  ::unsetenv("SALARM_MINUTES");
  ::unsetenv("SALARM_ALARMS");
  ::unsetenv("SALARM_SEED");
}

TEST(ExperimentConfigTest, FullScaleSelectsPaperParameters) {
  ::setenv("SALARM_FULL", "1", 1);
  const ExperimentConfig cfg = tiny().with_env_overrides();
  EXPECT_EQ(cfg.vehicles, 10000u);
  EXPECT_DOUBLE_EQ(cfg.minutes, 60.0);
  ::unsetenv("SALARM_FULL");
  const ExperimentConfig plain = tiny().with_env_overrides();
  EXPECT_EQ(plain.vehicles, 20u);
}

TEST(ExperimentTest, BuildsConsistentWorkload) {
  Experiment experiment(tiny());
  EXPECT_EQ(experiment.store().size(), 120u);
  EXPECT_EQ(experiment.network().largest_component_size(),
            experiment.network().node_count());
  EXPECT_TRUE(experiment.grid().universe().contains(
      experiment.network().bounding_box()));
  EXPECT_GT(experiment.max_speed_bound(),
            experiment.network().max_speed_mps());
}

TEST(ExperimentTest, RejectsBadPublicPercent) {
  ExperimentConfig cfg = tiny();
  cfg.public_percent = 150.0;
  EXPECT_THROW(Experiment{cfg}, PreconditionError);
}

TEST(ExperimentTest, OracleIsCachedAndStable) {
  Experiment experiment(tiny());
  const auto& first = experiment.simulation().oracle();
  const auto size = first.size();
  // Running a strategy must not change the oracle.
  (void)experiment.simulation().run(experiment.periodic());
  EXPECT_EQ(experiment.simulation().oracle().size(), size);
}

TEST(ExperimentTest, SameSeedSameWorkload) {
  Experiment a(tiny());
  Experiment b(tiny());
  const auto ra = a.simulation().run(a.periodic());
  const auto rb = b.simulation().run(b.periodic());
  EXPECT_EQ(ra.metrics.triggers, rb.metrics.triggers);
  EXPECT_EQ(ra.metrics.server_alarm_ops, rb.metrics.server_alarm_ops);
}

TEST(ExperimentTest, DifferentSeedDifferentWorkload) {
  ExperimentConfig other = tiny();
  other.seed = 6;
  Experiment a(tiny());
  Experiment b(other);
  const auto ra = a.simulation().run(a.periodic());
  const auto rb = b.simulation().run(b.periodic());
  // Almost surely different trigger counts on different workloads.
  EXPECT_NE(ra.metrics.server_alarm_ops, rb.metrics.server_alarm_ops);
}

}  // namespace
}  // namespace salarm::core
