#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "common/units.h"
#include "grid/grid_overlay.h"

namespace salarm::grid {
namespace {

using geo::Point;
using geo::Rect;

TEST(GridOverlayTest, ExplicitDimensions) {
  const GridOverlay g(Rect(0, 0, 100, 50), 10, 5);
  EXPECT_EQ(g.cols(), 10u);
  EXPECT_EQ(g.rows(), 5u);
  EXPECT_EQ(g.cell_count(), 50u);
  EXPECT_DOUBLE_EQ(g.cell_width(), 10.0);
  EXPECT_DOUBLE_EQ(g.cell_height(), 10.0);
  EXPECT_DOUBLE_EQ(g.cell_area(), 100.0);
}

TEST(GridOverlayTest, WithCellAreaApproximatesTarget) {
  const Rect universe(0, 0, 32000, 32000);
  for (const double sqkm : {0.4, 0.625, 1.11, 2.5, 10.0}) {
    const GridOverlay g =
        GridOverlay::with_cell_area(universe, sqkm_to_sqm(sqkm));
    // Cells tile the universe exactly and area is within 30% of target
    // (integral cell counts force some rounding).
    EXPECT_NEAR(g.cell_area() * static_cast<double>(g.cell_count()),
                universe.area(), 1e-3);
    EXPECT_NEAR(g.cell_area(), sqkm_to_sqm(sqkm), 0.3 * sqkm_to_sqm(sqkm));
  }
}

TEST(GridOverlayTest, WithCellAreaValidation) {
  const Rect universe(0, 0, 100, 100);
  EXPECT_THROW(GridOverlay::with_cell_area(universe, 0.0), PreconditionError);
  EXPECT_THROW(GridOverlay::with_cell_area(universe, -5.0), PreconditionError);
  EXPECT_THROW(GridOverlay::with_cell_area(universe, 1e9), PreconditionError);
  EXPECT_THROW(GridOverlay(universe, 0, 3), PreconditionError);
  EXPECT_THROW(GridOverlay(Rect(0, 0, 0, 100), 1, 1), PreconditionError);
}

TEST(GridOverlayTest, CellOfMapsInteriorPoints) {
  const GridOverlay g(Rect(0, 0, 100, 100), 10, 10);
  EXPECT_EQ(g.cell_of({5, 5}), (CellId{0, 0}));
  EXPECT_EQ(g.cell_of({95, 95}), (CellId{9, 9}));
  EXPECT_EQ(g.cell_of({15, 85}), (CellId{1, 8}));
}

TEST(GridOverlayTest, CellOfBoundaryConventions) {
  const GridOverlay g(Rect(0, 0, 100, 100), 10, 10);
  // Interior shared edges belong to the upper cell (half-open cells).
  EXPECT_EQ(g.cell_of({10, 5}), (CellId{1, 0}));
  EXPECT_EQ(g.cell_of({5, 10}), (CellId{0, 1}));
  // Universe max boundary folds into the last cell.
  EXPECT_EQ(g.cell_of({100, 100}), (CellId{9, 9}));
  EXPECT_EQ(g.cell_of({0, 0}), (CellId{0, 0}));
  // Outside the universe is a precondition violation.
  EXPECT_THROW(g.cell_of({-0.001, 5}), salarm::PreconditionError);
  EXPECT_THROW(g.cell_of({5, 100.001}), salarm::PreconditionError);
}

TEST(GridOverlayTest, CellRectTilesUniverse) {
  const GridOverlay g(Rect(10, 20, 110, 70), 4, 5);
  double total = 0.0;
  for (std::uint32_t r = 0; r < g.rows(); ++r) {
    for (std::uint32_t c = 0; c < g.cols(); ++c) {
      const Rect cell = g.cell_rect({c, r});
      total += cell.area();
      EXPECT_TRUE(g.universe().contains(cell));
    }
  }
  EXPECT_NEAR(total, g.universe().area(), 1e-9);
  EXPECT_THROW(g.cell_rect({4, 0}), salarm::PreconditionError);
  EXPECT_THROW(g.cell_rect({0, 5}), salarm::PreconditionError);
}

TEST(GridOverlayTest, FlatIndexIsBijective) {
  const GridOverlay g(Rect(0, 0, 100, 100), 7, 3);
  std::vector<bool> seen(g.cell_count(), false);
  for (std::uint32_t r = 0; r < g.rows(); ++r) {
    for (std::uint32_t c = 0; c < g.cols(); ++c) {
      const std::size_t idx = g.flat_index({c, r});
      ASSERT_LT(idx, g.cell_count());
      EXPECT_FALSE(seen[idx]);
      seen[idx] = true;
    }
  }
}

TEST(GridOverlayTest, CellsIntersecting) {
  const GridOverlay g(Rect(0, 0, 100, 100), 10, 10);
  // Window spanning a 2x2 block.
  const auto cells = g.cells_intersecting(Rect(15, 15, 25, 25));
  EXPECT_EQ(cells.size(), 4u);
  // Point-sized window inside one cell.
  EXPECT_EQ(g.cells_intersecting(Rect(5, 5, 5, 5)).size(), 1u);
  // Fully outside.
  EXPECT_TRUE(g.cells_intersecting(Rect(200, 200, 300, 300)).empty());
  // Entire universe.
  EXPECT_EQ(g.cells_intersecting(Rect(-10, -10, 200, 200)).size(), 100u);
}

class GridPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GridPropertyTest, EveryPointMapsToContainingCell) {
  salarm::Rng rng(GetParam());
  const Rect universe(-500, -200, 1500, 800);
  const GridOverlay g(universe, 13, 7);
  for (int i = 0; i < 1000; ++i) {
    const Point p{rng.uniform(universe.lo().x, universe.hi().x),
                  rng.uniform(universe.lo().y, universe.hi().y)};
    const CellId id = g.cell_of(p);
    EXPECT_TRUE(g.cell_rect(id).contains(p))
        << "point (" << p.x << ',' << p.y << ") not in its cell";
  }
}

TEST_P(GridPropertyTest, CellsIntersectingAgreesWithGeometry) {
  salarm::Rng rng(GetParam() + 100);
  const Rect universe(0, 0, 1000, 1000);
  const GridOverlay g(universe, 9, 11);
  for (int i = 0; i < 200; ++i) {
    const Rect window =
        Rect::bounding({rng.uniform(-100, 1100), rng.uniform(-100, 1100)},
                       {rng.uniform(-100, 1100), rng.uniform(-100, 1100)});
    const auto cells = g.cells_intersecting(window);
    std::size_t brute = 0;
    for (std::uint32_t r = 0; r < g.rows(); ++r) {
      for (std::uint32_t c = 0; c < g.cols(); ++c) {
        if (g.cell_rect({c, r}).intersects(window)) ++brute;
      }
    }
    EXPECT_EQ(cells.size(), brute);
    for (const CellId id : cells) {
      EXPECT_TRUE(g.cell_rect(id).intersects(window));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridPropertyTest,
                         ::testing::Values(11u, 22u, 33u));

}  // namespace
}  // namespace salarm::grid
