#include <cmath>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "mobility/trace.h"
#include "mobility/trace_generator.h"
#include "roadnet/network_builder.h"

namespace salarm::mobility {
namespace {

roadnet::RoadNetwork test_network(std::uint64_t seed = 2) {
  roadnet::NetworkConfig cfg;
  cfg.width_m = 8000;
  cfg.height_m = 8000;
  cfg.spacing_m = 1000;
  Rng rng(seed);
  return roadnet::build_synthetic_network(cfg, rng);
}

TraceConfig small_trace_config() {
  TraceConfig cfg;
  cfg.vehicle_count = 50;
  cfg.tick_seconds = 1.0;
  cfg.seed = 7;
  return cfg;
}

TEST(RecordedTraceTest, AppendAndAccess) {
  RecordedTrace trace(2, 0.5);
  trace.append_tick({{{1, 2}, 0.0, 5.0}, {{3, 4}, 1.0, 6.0}});
  trace.append_tick({{{1, 3}, 0.0, 5.0}, {{3, 5}, 1.0, 6.0}});
  EXPECT_EQ(trace.tick_count(), 2u);
  EXPECT_EQ(trace.vehicle_count(), 2u);
  EXPECT_DOUBLE_EQ(trace.duration_seconds(), 1.0);
  EXPECT_EQ(trace.sample(1, 1).pos, (geo::Point{3, 5}));
  EXPECT_THROW(trace.sample(2, 0), salarm::PreconditionError);
  EXPECT_THROW(trace.sample(0, 2), salarm::PreconditionError);
  EXPECT_THROW(trace.append_tick({{{0, 0}, 0.0, 0.0}}),
               salarm::PreconditionError);
}

TEST(TraceGeneratorTest, RejectsBadConfig) {
  const auto net = test_network();
  TraceConfig cfg = small_trace_config();
  cfg.vehicle_count = 0;
  EXPECT_THROW(TraceGenerator(net, cfg), salarm::PreconditionError);
  cfg = small_trace_config();
  cfg.tick_seconds = 0;
  EXPECT_THROW(TraceGenerator(net, cfg), salarm::PreconditionError);
  cfg = small_trace_config();
  cfg.speed_factor_lo = 0;
  EXPECT_THROW(TraceGenerator(net, cfg), salarm::PreconditionError);
}

TEST(TraceGeneratorTest, PositionsStayOnTheMap) {
  const auto net = test_network();
  const geo::Rect box = net.bounding_box();
  TraceGenerator gen(net, small_trace_config());
  for (int t = 0; t < 300; ++t) {
    gen.step();
    for (const VehicleSample& s : gen.samples()) {
      EXPECT_TRUE(box.contains(s.pos))
          << "tick " << t << ": (" << s.pos.x << ',' << s.pos.y << ')';
    }
  }
}

TEST(TraceGeneratorTest, SpeedsAreBoundedByNetworkPhysics) {
  const auto net = test_network();
  TraceConfig cfg = small_trace_config();
  TraceGenerator gen(net, cfg);
  // Bound: fastest road * highest vehicle factor * generous noise margin.
  const double bound = net.max_speed_mps() * cfg.speed_factor_hi * 1.5;
  for (int t = 0; t < 300; ++t) {
    const auto before = gen.samples();
    gen.step();
    const auto& after = gen.samples();
    for (std::size_t v = 0; v < after.size(); ++v) {
      const double moved = geo::distance(before[v].pos, after[v].pos);
      EXPECT_LE(moved, bound * cfg.tick_seconds + 1e-9);
      EXPECT_LE(after[v].speed_mps, bound + 1e-9);
    }
  }
}

TEST(TraceGeneratorTest, VehiclesActuallyMove) {
  const auto net = test_network();
  TraceGenerator gen(net, small_trace_config());
  const auto start = gen.samples();
  for (int t = 0; t < 120; ++t) gen.step();
  const auto& end = gen.samples();
  std::size_t moved = 0;
  for (std::size_t v = 0; v < end.size(); ++v) {
    if (geo::distance(start[v].pos, end[v].pos) > 100.0) ++moved;
  }
  // Nearly all vehicles should have traveled far after two minutes.
  EXPECT_GT(moved, end.size() * 8 / 10);
}

TEST(TraceGeneratorTest, ResetReplaysIdentically) {
  const auto net = test_network();
  TraceGenerator gen(net, small_trace_config());
  std::vector<std::vector<VehicleSample>> first;
  first.push_back(gen.samples());
  for (int t = 0; t < 50; ++t) {
    gen.step();
    first.push_back(gen.samples());
  }
  gen.reset();
  EXPECT_EQ(gen.tick_index(), 0u);
  EXPECT_DOUBLE_EQ(gen.time_seconds(), 0.0);
  for (std::size_t t = 0; t < first.size(); ++t) {
    const auto& replay = gen.samples();
    ASSERT_EQ(replay.size(), first[t].size());
    for (std::size_t v = 0; v < replay.size(); ++v) {
      EXPECT_EQ(replay[v].pos, first[t][v].pos) << "t=" << t << " v=" << v;
      EXPECT_DOUBLE_EQ(replay[v].speed_mps, first[t][v].speed_mps);
    }
    if (t + 1 < first.size()) gen.step();
  }
}

TEST(TraceGeneratorTest, TwoGeneratorsSameSeedAgree) {
  const auto net = test_network();
  TraceGenerator a(net, small_trace_config());
  TraceGenerator b(net, small_trace_config());
  for (int t = 0; t < 30; ++t) {
    a.step();
    b.step();
    for (std::size_t v = 0; v < a.samples().size(); ++v) {
      EXPECT_EQ(a.samples()[v].pos, b.samples()[v].pos);
    }
  }
}

TEST(TraceGeneratorTest, DifferentSeedsDiverge) {
  const auto net = test_network();
  TraceConfig cfg = small_trace_config();
  TraceGenerator a(net, cfg);
  cfg.seed = 8;
  TraceGenerator b(net, cfg);
  a.step();
  b.step();
  std::size_t different = 0;
  for (std::size_t v = 0; v < a.samples().size(); ++v) {
    if (!(a.samples()[v].pos == b.samples()[v].pos)) ++different;
  }
  EXPECT_GT(different, 0u);
}

TEST(TraceGeneratorTest, RecordMatchesStreaming) {
  const auto net = test_network();
  TraceGenerator recording(net, small_trace_config());
  const RecordedTrace trace = recording.record(40);
  EXPECT_EQ(trace.tick_count(), 40u);

  TraceGenerator streaming(net, small_trace_config());
  for (std::size_t t = 0; t < trace.tick_count(); ++t) {
    for (std::size_t v = 0; v < trace.vehicle_count(); ++v) {
      EXPECT_EQ(trace.sample(t, static_cast<VehicleId>(v)).pos,
                streaming.samples()[v].pos);
    }
    if (t + 1 < trace.tick_count()) streaming.step();
  }
}

TEST(TraceGeneratorTest, HeadingTracksMotion) {
  const auto net = test_network();
  TraceGenerator gen(net, small_trace_config());
  for (int t = 0; t < 100; ++t) {
    const auto before = gen.samples();
    gen.step();
    const auto& after = gen.samples();
    for (std::size_t v = 0; v < after.size(); ++v) {
      const geo::Point moved = after[v].pos - before[v].pos;
      if (geo::norm(moved) > 1e-6) {
        EXPECT_NEAR(after[v].heading, geo::heading(moved), 1e-9);
      }
    }
  }
}

TEST(TraceGeneratorTest, DwellPausesVehicles) {
  // With an enormous dwell, vehicles that arrive stay parked.
  const auto net = test_network();
  TraceConfig cfg = small_trace_config();
  cfg.max_dwell_seconds = 1e9;
  TraceGenerator gen(net, cfg);
  std::size_t parked_checks = 0;
  std::vector<geo::Point> parked_pos(cfg.vehicle_count);
  std::vector<bool> parked(cfg.vehicle_count, false);
  for (int t = 0; t < 400; ++t) {
    gen.step();
    const auto& s = gen.samples();
    for (std::size_t v = 0; v < s.size(); ++v) {
      if (parked[v]) {
        EXPECT_EQ(s[v].pos, parked_pos[v]);
        ++parked_checks;
      } else if (s[v].speed_mps == 0.0 && t > 0) {
        parked[v] = true;
        parked_pos[v] = s[v].pos;
      }
    }
  }
  EXPECT_GT(parked_checks, 0u);  // at least one vehicle arrived and parked
}

}  // namespace
}  // namespace salarm::mobility
