#include <gtest/gtest.h>

#include "common/rng.h"
#include "geometry/segment.h"

namespace salarm::geo {
namespace {

const Rect kRect(0, 0, 10, 10);

TEST(ClipSegmentTest, FullyInside) {
  const auto c = clip_segment({2, 2}, {8, 8}, kRect);
  ASSERT_TRUE(c.has_value());
  EXPECT_DOUBLE_EQ(c->first, 0.0);
  EXPECT_DOUBLE_EQ(c->second, 1.0);
}

TEST(ClipSegmentTest, CrossingThrough) {
  const auto c = clip_segment({-10, 5}, {30, 5}, kRect);
  ASSERT_TRUE(c.has_value());
  EXPECT_DOUBLE_EQ(c->first, 0.25);   // enters at x=0
  EXPECT_DOUBLE_EQ(c->second, 0.5);   // exits at x=10
}

TEST(ClipSegmentTest, Miss) {
  EXPECT_FALSE(clip_segment({-5, 20}, {15, 20}, kRect).has_value());
  EXPECT_FALSE(clip_segment({-5, -5}, {-1, 9}, kRect).has_value());
}

TEST(ClipSegmentTest, VerticalAndHorizontal) {
  const auto v = clip_segment({5, -10}, {5, 20}, kRect);
  ASSERT_TRUE(v.has_value());
  EXPECT_NEAR(v->first, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(v->second, 2.0 / 3.0, 1e-12);
  // Axis-parallel line outside the slab.
  EXPECT_FALSE(clip_segment({20, -10}, {20, 20}, kRect).has_value());
}

TEST(SegmentInteriorTest, CornerCutting) {
  // Both endpoints outside, the chord clips the corner.
  EXPECT_TRUE(segment_intersects_interior({-2, 6}, {8, 16}, kRect));
  // The chord exactly through the corner point (0,10): a touch, not an
  // interior crossing.
  EXPECT_FALSE(segment_intersects_interior({-5, 5}, {5, 15}, kRect));
}

TEST(SegmentInteriorTest, EdgeRiding) {
  // A segment running exactly along the boundary never enters the
  // interior.
  EXPECT_FALSE(segment_intersects_interior({0, 2}, {0, 8}, kRect));
  EXPECT_FALSE(segment_intersects_interior({-5, 10}, {15, 10}, kRect));
}

TEST(SegmentInteriorTest, EndpointsAndDegenerate) {
  EXPECT_TRUE(segment_intersects_interior({5, 5}, {5, 5}, kRect));
  EXPECT_FALSE(segment_intersects_interior({0, 0}, {0, 0}, kRect));
  EXPECT_TRUE(segment_intersects_interior({5, 5}, {20, 5}, kRect));
  EXPECT_FALSE(
      segment_intersects_interior({1, 1}, {2, 2}, Rect(0, 5, 0, 8)));
}

TEST(SegmentInteriorTest, AgreesWithDenseSampling) {
  // Property: the analytic answer matches dense sampling of the segment.
  Rng rng(5);
  for (int round = 0; round < 500; ++round) {
    const Rect r = Rect::bounding({rng.uniform(0, 50), rng.uniform(0, 50)},
                                  {rng.uniform(0, 50), rng.uniform(0, 50)});
    const Point a{rng.uniform(-20, 70), rng.uniform(-20, 70)};
    const Point b{rng.uniform(-20, 70), rng.uniform(-20, 70)};
    bool sampled = false;
    for (int i = 0; i <= 2000; ++i) {
      if (r.interior_contains(lerp(a, b, i / 2000.0))) {
        sampled = true;
        break;
      }
    }
    const bool analytic = segment_intersects_interior(a, b, r);
    // Dense sampling can miss razor-thin clips but never false-positives.
    if (sampled) {
      EXPECT_TRUE(analytic) << "round " << round;
    }
    if (!analytic) {
      EXPECT_FALSE(sampled) << "round " << round;
    }
  }
}

}  // namespace
}  // namespace salarm::geo
