// Unified tick-pipeline tests (DESIGN.md §11).
//
// The golden tests replicate the historical monolithic run loop — the one
// Simulation::run owned before every mode was routed through TickPipeline —
// verbatim against a self-contained workload, and assert the pipeline's
// {shards = 1, threads = 1} run is bit-identical to it: every metric
// counter, every RunningStat moment, every trigger event. The phase tests
// pin the documented serial-phase order (and its tier gating) through the
// PhaseObserver hook; the ordering tests pin the canonical (tick,
// subscriber, alarm) trigger-log contract for both run modes.
#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "alarms/alarm_store.h"
#include "core/experiment.h"
#include "dynamics/churn.h"
#include "grid/grid_overlay.h"
#include "mobility/random_waypoint.h"
#include "net/link.h"
#include "sim/server.h"
#include "sim/simulation.h"
#include "sim/tick_pipeline.h"
#include "strategies/rect_region_strategy.h"
#include "strategies/safe_period.h"

namespace salarm {
namespace {

// ---------------------------------------------------------------------------
// Golden workload: self-contained (source, store, grid, simulation) so the
// reference loop below can drive the identical trace directly.
// ---------------------------------------------------------------------------

constexpr std::size_t kVehicles = 100;
constexpr std::size_t kTicks = 200;
constexpr std::uint64_t kChurnSeed = 97;
constexpr std::uint64_t kChannelSeed = 101;

struct GoldenWorkload {
  GoldenWorkload()
      : universe(0.0, 0.0, 6000.0, 6000.0),
        grid(universe, 4, 4),
        source(universe, waypoint_config()),
        sim(source, store, grid, kTicks) {
    alarms::AlarmWorkloadConfig workload;
    workload.alarm_count = 500;
    workload.subscriber_count = kVehicles;
    Rng rng(12345);
    store.install_bulk(
        alarms::generate_alarm_workload(workload, universe, rng));
  }

  static mobility::RandomWaypointConfig waypoint_config() {
    mobility::RandomWaypointConfig cfg;
    cfg.vehicle_count = kVehicles;
    cfg.tick_seconds = 1.0;
    cfg.seed = 4242;
    return cfg;
  }

  sim::Simulation::StrategyFactory rect() const {
    return [](net::ClientLink& link) {
      return std::make_unique<strategies::RectRegionStrategy>(
          link, kVehicles, saferegion::MotionModel(1.0, 32),
          saferegion::MwpsrOptions{});
    };
  }

  sim::Simulation::StrategyFactory safe_period() const {
    const double bound = source.max_speed_bound();
    return [bound](net::ClientLink& link) {
      return std::make_unique<strategies::SafePeriodStrategy>(
          link, kVehicles, bound, /*tick_seconds=*/1.0);
    };
  }

  geo::Rect universe;
  grid::GridOverlay grid;
  mobility::RandomWaypointSource source;
  alarms::AlarmStore store;
  sim::Simulation sim;
};

/// The pre-pipeline Simulation::run body, preserved verbatim (modulo the
/// oracle scoring, which the caller does not need): one monolithic
/// sim::Server, a serial churn + graveyard + channel prologue per tick,
/// then the in-order subscriber loop. This is the behavioral baseline the
/// unified pipeline must reproduce bit-for-bit.
sim::RunResult reference_monolithic_run(
    mobility::PositionSource& source, alarms::AlarmStore& store,
    const grid::GridOverlay& grid, std::size_t ticks,
    const sim::Simulation::StrategyFactory& factory,
    const net::ChannelConfig& channel, std::uint64_t channel_seed,
    dynamics::AlarmScheduler* churn) {
  store.reset_triggers();
  store.reset_index_node_accesses();
  source.reset();

  sim::RunResult result;
  sim::Server server(store, grid, result.metrics);
  if (churn != nullptr) {
    server.enable_dynamics(source.vehicle_count());
    churn->reset();
  }
  net::ClientLink link(server, channel, channel_seed,
                       source.vehicle_count());
  const auto strategy = factory(link);
  result.strategy = std::string(strategy->name());

  for (mobility::VehicleId v = 0; v < source.samples().size(); ++v) {
    strategy->initialize(v, source.samples()[v]);
  }
  for (std::size_t t = 1; t < ticks; ++t) {
    source.step();
    if (churn != nullptr) {
      churn->for_each_due(
          static_cast<std::uint64_t>(t), [&](const dynamics::ChurnEvent& e) {
            if (e.kind == dynamics::ChurnEvent::Kind::kInstall) {
              server.install_alarm(e.alarm, t);
            } else {
              (void)server.remove_alarm(e.id, t);
            }
          });
      (void)server.compact_graveyard(link.min_pending_stamp(t));
    }
    link.begin_tick(t);
    const auto& samples = source.samples();
    for (mobility::VehicleId v = 0; v < samples.size(); ++v) {
      strategy->on_tick(v, samples[v], t);
    }
  }
  link.finish();

  result.metrics.merge(link.link_metrics());
  result.trigger_log = server.trigger_log();
  std::sort(result.trigger_log.begin(), result.trigger_log.end());
  store.reset_triggers();
  return result;
}

/// Bit-identity across every counter and distribution a run reports.
void expect_bit_identical(const sim::RunResult& ref,
                          const sim::RunResult& got) {
  EXPECT_EQ(got.strategy, ref.strategy);
  EXPECT_EQ(got.trigger_log, ref.trigger_log);
  const sim::Metrics& m = ref.metrics;
  const sim::Metrics& n = got.metrics;
  EXPECT_EQ(n.uplink_messages, m.uplink_messages);
  EXPECT_EQ(n.uplink_bytes, m.uplink_bytes);
  EXPECT_EQ(n.downstream_region_bytes, m.downstream_region_bytes);
  EXPECT_EQ(n.downstream_notice_bytes, m.downstream_notice_bytes);
  EXPECT_EQ(n.client_checks, m.client_checks);
  EXPECT_EQ(n.client_check_ops, m.client_check_ops);
  EXPECT_EQ(n.server_alarm_ops, m.server_alarm_ops);
  EXPECT_EQ(n.server_region_ops, m.server_region_ops);
  EXPECT_EQ(n.handoff_messages, m.handoff_messages);
  EXPECT_EQ(n.handoff_bytes, m.handoff_bytes);
  EXPECT_EQ(n.alarms_installed, m.alarms_installed);
  EXPECT_EQ(n.alarms_removed, m.alarms_removed);
  EXPECT_EQ(n.invalidation_pushes, m.invalidation_pushes);
  EXPECT_EQ(n.invalidation_bytes, m.invalidation_bytes);
  EXPECT_EQ(n.net_retransmissions, m.net_retransmissions);
  EXPECT_EQ(n.net_duplicates_dropped, m.net_duplicates_dropped);
  EXPECT_EQ(n.net_ack_messages, m.net_ack_messages);
  EXPECT_EQ(n.net_ack_bytes, m.net_ack_bytes);
  EXPECT_EQ(n.net_lease_fallback_ticks, m.net_lease_fallback_ticks);
  EXPECT_EQ(n.net_buffered_reports, m.net_buffered_reports);
  EXPECT_EQ(n.net_outages, m.net_outages);
  EXPECT_EQ(n.fo_crashes, m.fo_crashes);
  EXPECT_EQ(n.fo_recoveries, m.fo_recoveries);
  EXPECT_EQ(n.fo_checkpoints, m.fo_checkpoints);
  EXPECT_EQ(n.safe_region_recomputes, m.safe_region_recomputes);
  EXPECT_EQ(n.triggers, m.triggers);
  EXPECT_EQ(n.region_payload_bytes.count(), m.region_payload_bytes.count());
  EXPECT_EQ(n.region_payload_bytes.sum(), m.region_payload_bytes.sum());
  EXPECT_EQ(n.region_payload_bytes.variance(),
            m.region_payload_bytes.variance());
  EXPECT_EQ(n.net_delivery_latency_ms.count(),
            m.net_delivery_latency_ms.count());
  EXPECT_EQ(n.net_delivery_latency_ms.sum(), m.net_delivery_latency_ms.sum());
}

TEST(PipelineGoldenTest, StaticRunMatchesHistoricalMonolithicLoop) {
  GoldenWorkload w;
  for (const auto& factory : {w.rect(), w.safe_period()}) {
    const auto ref = reference_monolithic_run(
        w.source, w.store, w.grid, kTicks, factory, net::ChannelConfig{},
        /*channel_seed=*/0, /*churn=*/nullptr);
    const auto got = w.sim.run(factory);
    expect_bit_identical(ref, got);
    // The pipeline run is additionally scored against the oracle — the
    // degenerate one-shard cluster must stay 100% accurate.
    EXPECT_EQ(got.accuracy.missed, 0u);
    EXPECT_EQ(got.accuracy.spurious, 0u);
    EXPECT_EQ(got.accuracy.late, 0u);
    EXPECT_GT(got.accuracy.expected, 0u);
  }
}

TEST(PipelineGoldenTest, ChurnAndFaultyChannelRunMatchesHistoricalLoop) {
  GoldenWorkload w;

  dynamics::ChurnConfig churn;
  churn.installs_per_tick = 0.5;
  churn.removes_per_tick = 0.25;
  churn.subscriber_count = kVehicles;

  net::ChannelConfig channel;
  channel.uplink_loss = 0.1;
  channel.downlink_loss = 0.1;
  channel.duplicate_rate = 0.05;
  channel.outage_start_per_tick = 0.01;
  channel.outage_mean_ticks = 3.0;

  // Snapshot the initial alarm set before arming churn, then build a twin
  // scheduler from the identical (config, universe, alarms, ticks, seed)
  // inputs — AlarmScheduler construction is a pure function of them, so
  // the twin replays the exact timeline the simulation precomputed.
  const std::vector<alarms::SpatialAlarm> initial = w.store.all();
  w.sim.set_churn(churn, kChurnSeed);
  w.sim.set_channel(channel, kChannelSeed);
  dynamics::AlarmScheduler twin(churn, w.universe, initial, kTicks,
                                kChurnSeed);

  const auto factory = w.rect();
  const auto ref = reference_monolithic_run(w.source, w.store, w.grid, kTicks,
                                            factory, channel, kChannelSeed,
                                            &twin);
  const auto got = w.sim.run(factory);
  expect_bit_identical(ref, got);
  EXPECT_GT(got.metrics.alarms_installed, 0u);
  EXPECT_GT(got.metrics.net_retransmissions, 0u);
  EXPECT_EQ(got.accuracy.missed, 0u);
  EXPECT_EQ(got.accuracy.spurious, 0u);
  EXPECT_EQ(got.accuracy.late, 0u);
}

// ---------------------------------------------------------------------------
// Serial-phase ordering (the PhaseObserver hook).
// ---------------------------------------------------------------------------

core::ExperimentConfig phase_config(std::uint64_t seed) {
  core::ExperimentConfig cfg;
  cfg.universe_km = 6.0;
  cfg.vehicles = 60;
  cfg.minutes = 2.0;
  cfg.alarm_count = 400;
  cfg.public_percent = 10.0;
  cfg.grid_cell_sqkm = 2.5;
  cfg.seed = seed;
  return cfg;
}

using PhaseTrace = std::vector<std::pair<sim::TickPhase, std::uint64_t>>;

TEST(PipelinePhaseOrderTest, AllTiersFireInDocumentedOrderEveryTick) {
  core::Experiment experiment(phase_config(17));
  experiment.enable_churn(experiment.churn_config(0.5, 0.25));
  net::ChannelConfig channel;
  channel.uplink_loss = 0.2;
  channel.downlink_loss = 0.2;
  channel.outage_start_per_tick = 0.01;
  channel.outage_mean_ticks = 3.0;
  experiment.enable_channel(channel);
  failover::FailoverConfig crashes;
  crashes.crash_per_tick = 0.03;
  crashes.crash_mean_down_ticks = 4.0;
  crashes.checkpoint_interval_ticks = 20;
  experiment.enable_failover(crashes);

  PhaseTrace trace;
  experiment.simulation().set_phase_observer(
      [&](sim::TickPhase phase, std::uint64_t tick) {
        trace.emplace_back(phase, tick);
      });
  const auto run = experiment.simulation().run_sharded(
      experiment.rect(saferegion::MotionModel(1.0, 32)),
      {.shards = 2, .threads = 1});
  experiment.simulation().set_phase_observer({});
  EXPECT_EQ(run.accuracy.missed, 0u);
  EXPECT_EQ(run.accuracy.spurious, 0u);

  const sim::TickPhase expected[] = {
      sim::TickPhase::kFailoverBegin, sim::TickPhase::kChurn,
      sim::TickPhase::kCheckpoints,   sim::TickPhase::kGraveyard,
      sim::TickPhase::kChannel,       sim::TickPhase::kSubscribers,
  };
  const std::size_t ticks = experiment.simulation().ticks();
  ASSERT_EQ(trace.size(), (ticks - 1) * std::size(expected));
  for (std::size_t t = 1; t < ticks; ++t) {
    for (std::size_t i = 0; i < std::size(expected); ++i) {
      const auto& [phase, tick] = trace[(t - 1) * std::size(expected) + i];
      ASSERT_EQ(phase, expected[i]) << "tick " << t << " slot " << i;
      ASSERT_EQ(tick, t) << "slot " << i;
    }
  }
}

TEST(PipelinePhaseOrderTest, UnarmedTiersAreSkippedEntirely) {
  // A static, perfect-channel, immortal run has only the channel phase and
  // the subscriber fan-out — the tier gating must not even announce the
  // others.
  core::Experiment experiment(phase_config(19));
  PhaseTrace trace;
  experiment.simulation().set_phase_observer(
      [&](sim::TickPhase phase, std::uint64_t tick) {
        trace.emplace_back(phase, tick);
      });
  (void)experiment.simulation().run(experiment.safe_period());
  experiment.simulation().set_phase_observer({});

  const std::size_t ticks = experiment.simulation().ticks();
  ASSERT_EQ(trace.size(), (ticks - 1) * 2);
  for (std::size_t t = 1; t < ticks; ++t) {
    EXPECT_EQ(trace[(t - 1) * 2].first, sim::TickPhase::kChannel);
    EXPECT_EQ(trace[(t - 1) * 2 + 1].first, sim::TickPhase::kSubscribers);
  }
}

// ---------------------------------------------------------------------------
// Canonical trigger-log order: every run mode reports (tick, subscriber,
// alarm) order, produced in exactly one place
// (cluster::ShardedServer::merged_trigger_log).
// ---------------------------------------------------------------------------

TEST(PipelineTriggerOrderTest, BothRunModesReportCanonicalOrder) {
  core::Experiment experiment(phase_config(23));
  const auto factory = experiment.rect(saferegion::MotionModel(1.0, 32));
  const auto mono = experiment.simulation().run(factory);
  const auto sharded = experiment.simulation().run_sharded(
      factory, {.shards = 3, .threads = 2});
  ASSERT_GT(mono.trigger_log.size(), 0u);
  EXPECT_TRUE(std::is_sorted(mono.trigger_log.begin(),
                             mono.trigger_log.end()));
  EXPECT_TRUE(std::is_sorted(sharded.trigger_log.begin(),
                             sharded.trigger_log.end()));
  // Sharding is exact: the merged log is the same canonical sequence.
  EXPECT_EQ(sharded.trigger_log, mono.trigger_log);
}

}  // namespace
}  // namespace salarm
