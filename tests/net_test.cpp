// Net tier tests (DESIGN.md §9): the fault-injecting channel, the
// reliability protocol of net::ClientLink, and the headline invariant —
// every strategy stays oracle-exact under arbitrary loss / delay /
// duplication / outage schedules, monolithic and sharded alike.
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "alarms/alarm_store.h"
#include "core/experiment.h"
#include "grid/grid_overlay.h"
#include "net/channel.h"
#include "net/link.h"
#include "sim/server.h"

namespace salarm {
namespace {

using geo::Point;
using geo::Rect;

// ---------------------------------------------------------------------------
// Channel configuration and draw determinism.
// ---------------------------------------------------------------------------

TEST(ChannelConfigTest, AllZeroIsNotFaulty) {
  EXPECT_FALSE(net::ChannelConfig{}.faulty());
}

TEST(ChannelConfigTest, AnySingleKnobMakesItFaulty) {
  net::ChannelConfig c;
  c.uplink_loss = 0.1;
  EXPECT_TRUE(c.faulty());
  c = {};
  c.downlink_loss = 0.1;
  EXPECT_TRUE(c.faulty());
  c = {};
  c.duplicate_rate = 0.1;
  EXPECT_TRUE(c.faulty());
  c = {};
  c.latency_base_ms = 5.0;
  EXPECT_TRUE(c.faulty());
  c = {};
  c.outage_start_per_tick = 0.01;
  c.outage_mean_ticks = 2.0;
  EXPECT_TRUE(c.faulty());
}

TEST(ChannelConfigTest, ChannelRejectsInvalidConfigs) {
  net::ChannelConfig c;
  c.uplink_loss = 1.0;  // certain loss would never deliver anything
  EXPECT_THROW(net::FaultyChannel(c, 1, 1), PreconditionError);
  c = {};
  c.downlink_loss = -0.1;
  EXPECT_THROW(net::FaultyChannel(c, 1, 1), PreconditionError);
  c = {};
  c.duplicate_rate = 1.5;
  EXPECT_THROW(net::FaultyChannel(c, 1, 1), PreconditionError);
  c = {};
  c.outage_start_per_tick = 0.5;
  c.outage_mean_ticks = 0.5;  // outages must last at least one tick
  EXPECT_THROW(net::FaultyChannel(c, 1, 1), PreconditionError);
}

net::ChannelConfig full_fault_config() {
  net::ChannelConfig c;
  c.uplink_loss = 0.2;
  c.downlink_loss = 0.2;
  c.duplicate_rate = 0.15;
  c.latency_base_ms = 40.0;
  c.latency_jitter_ms = 80.0;
  c.outage_start_per_tick = 0.02;
  c.outage_mean_ticks = 3.0;
  return c;
}

TEST(FaultyChannelTest, SameSeedReplaysBitIdentically) {
  const auto config = full_fault_config();
  net::FaultyChannel a(config, 99, 4);
  net::FaultyChannel b(config, 99, 4);
  for (int i = 0; i < 500; ++i) {
    const alarms::SubscriberId s = static_cast<alarms::SubscriberId>(i % 4);
    EXPECT_EQ(a.lose_uplink(s), b.lose_uplink(s));
    EXPECT_EQ(a.lose_downlink(s), b.lose_downlink(s));
    EXPECT_EQ(a.duplicate(s), b.duplicate(s));
    EXPECT_EQ(a.latency_ms(s), b.latency_ms(s));
    EXPECT_EQ(a.outage_starts(s), b.outage_starts(s));
    EXPECT_EQ(a.outage_duration_ticks(s), b.outage_duration_ticks(s));
  }
}

TEST(FaultyChannelTest, SubscriberStreamsAreIndependent) {
  // Draws for subscriber 0 must not depend on whether (or how often) other
  // subscribers draw — the property that makes sharded runs bit-identical
  // at any thread count.
  const auto config = full_fault_config();
  net::FaultyChannel solo(config, 7, 2);
  net::FaultyChannel interleaved(config, 7, 2);
  std::vector<double> solo_draws;
  std::vector<double> interleaved_draws;
  for (int i = 0; i < 200; ++i) {
    solo_draws.push_back(solo.latency_ms(0));
    (void)interleaved.latency_ms(1);  // extra traffic on another session
    (void)interleaved.outage_duration_ticks(1);
    interleaved_draws.push_back(interleaved.latency_ms(0));
  }
  EXPECT_EQ(solo_draws, interleaved_draws);
}

TEST(FaultyChannelTest, OutageDurationsHaveAtLeastOneTick) {
  net::ChannelConfig c;
  c.outage_start_per_tick = 0.5;
  c.outage_mean_ticks = 4.0;
  net::FaultyChannel channel(c, 3, 1);
  double total = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const auto d = channel.outage_duration_ticks(0);
    EXPECT_GE(d, 1u);
    total += static_cast<double>(d);
  }
  const double mean = total / 2000.0;
  EXPECT_GT(mean, 2.0);  // loose band around the configured mean of 4
  EXPECT_LT(mean, 6.0);
}

// ---------------------------------------------------------------------------
// ClientLink protocol behaviour against a hand-built world.
// ---------------------------------------------------------------------------

/// 4 km x 4 km world with one public alarm, mirroring strategies_test.cpp.
struct NetWorld {
  NetWorld() : grid(Rect(0, 0, 4000, 4000), 4, 4), server(store, grid, metrics) {
    alarms::SpatialAlarm alarm;
    alarm.id = 0;
    alarm.scope = alarms::AlarmScope::kPublic;
    alarm.region = Rect(1400, 400, 1700, 700);
    alarm.message = "test alert";
    store.install(std::move(alarm));
  }

  alarms::AlarmStore store;
  grid::GridOverlay grid;
  sim::Metrics metrics;
  sim::Server server;
};

TEST(ClientLinkTest, PerfectChannelIsPurePassThrough) {
  NetWorld w;
  net::ClientLink link(w.server, net::ChannelConfig{}, 5, 2);
  EXPECT_FALSE(link.faulty());
  for (std::uint64_t t = 0; t < 10; ++t) {
    (void)link.report(0, {100, 100}, t);
  }
  // No protocol machinery ran: no sequence numbers, no ACKs, no samples.
  EXPECT_EQ(link.uplink_seq(0), 0u);
  EXPECT_EQ(w.metrics.uplink_messages, 10u);
  EXPECT_EQ(w.metrics.net_ack_messages, 0u);
  EXPECT_EQ(w.metrics.net_retransmissions, 0u);
  EXPECT_EQ(w.metrics.net_delivery_latency_ms.count(), 0u);
}

TEST(ClientLinkTest, LossForcesRetransmissionsAndInflatesBandwidth) {
  NetWorld w;
  net::ChannelConfig c;
  c.uplink_loss = 0.4;
  net::ClientLink link(w.server, c, 11, 1);
  for (std::uint64_t t = 0; t < 400; ++t) {
    (void)link.report(0, {100, 100}, t);
  }
  EXPECT_EQ(w.metrics.uplink_messages,
            400u + w.metrics.net_retransmissions);
  EXPECT_GT(w.metrics.net_retransmissions, 0u);
  EXPECT_EQ(w.metrics.uplink_bytes,
            w.metrics.uplink_messages *
                wire::encoded_size(wire::PositionUpdate{}));
  EXPECT_EQ(link.uplink_seq(0), 400u);
}

TEST(ClientLinkTest, CertainDuplicationIsFullySuppressedAndCounted) {
  NetWorld w;
  net::ChannelConfig c;
  c.duplicate_rate = 1.0;  // the network copies every delivered payload
  net::ClientLink link(w.server, c, 13, 1);
  for (std::uint64_t t = 0; t < 50; ++t) {
    (void)link.report(0, {100, 100}, t);
  }
  // No loss: one round per exchange, so exactly one suppressed copy and
  // two ACKs (one per received copy) per report.
  EXPECT_EQ(w.metrics.net_retransmissions, 0u);
  EXPECT_EQ(w.metrics.net_duplicates_dropped, 50u);
  EXPECT_EQ(w.metrics.net_ack_messages, 100u);
  EXPECT_EQ(w.metrics.net_ack_bytes, 100u * wire::ack_message_size());
  EXPECT_EQ(w.metrics.uplink_messages, 50u);  // duplicates are not reports
}

TEST(ClientLinkTest, PureDelayChannelRecordsTheLatencyDistribution) {
  NetWorld w;
  net::ChannelConfig c;
  c.latency_base_ms = 50.0;  // no jitter: every delivery takes exactly 50 ms
  net::ClientLink link(w.server, c, 17, 1);
  for (std::uint64_t t = 0; t < 25; ++t) {
    (void)link.report(0, {100, 100}, t);
  }
  EXPECT_EQ(w.metrics.net_delivery_latency_ms.count(), 25u);
  EXPECT_DOUBLE_EQ(w.metrics.net_delivery_latency_ms.mean(), 50.0);
  EXPECT_DOUBLE_EQ(w.metrics.net_delivery_latency_ms.max(), 50.0);
}

TEST(ClientLinkTest, OutageBuffersReportsAndFlushFiresAtStampTicks) {
  NetWorld w;
  net::ChannelConfig c;
  c.outage_start_per_tick = 0.9;
  c.outage_mean_ticks = 50.0;  // long outages: stays down while we probe
  net::ClientLink link(w.server, c, 19, 1);

  // Drive ticks until the carrier drops (p=0.9 per tick; bounded search).
  std::uint64_t t = 1;
  for (; t < 100 && !link.in_outage(0); ++t) link.begin_tick(t);
  ASSERT_TRUE(link.in_outage(0));

  // The client detects the loss as a synthetic revoke: lease fallback.
  const auto pushes = link.take_invalidations(0);
  ASSERT_EQ(pushes.size(), 1u);
  EXPECT_EQ(pushes[0].action, dynamics::InvalidationAction::kRevoke);
  EXPECT_TRUE(link.take_invalidations(0).empty());  // delivered once

  // Grant requests fail outright while disconnected.
  EXPECT_FALSE(link.request_safe_period(0, {100, 100}, 20.0, 1.0).has_value());

  // Reports inside the alarm region are buffered with their stamp ticks.
  EXPECT_TRUE(link.report(0, {1500, 550}, t).empty());
  EXPECT_TRUE(link.report(0, {1500, 551}, t + 1).empty());
  EXPECT_EQ(w.metrics.net_buffered_reports, 2u);
  EXPECT_EQ(w.metrics.uplink_messages, 0u);
  EXPECT_EQ(link.uplink_seq(0), 0u);

  // End-of-run flush: server-side checking fires the alarm exactly once,
  // at the first buffered sample's original tick.
  link.finish();
  EXPECT_EQ(link.uplink_seq(0), 2u);
  EXPECT_EQ(w.metrics.uplink_messages, 2u);
  ASSERT_EQ(w.server.trigger_log().size(), 1u);
  EXPECT_EQ(w.server.trigger_log()[0].alarm, 0u);
  EXPECT_EQ(w.server.trigger_log()[0].subscriber, 0u);
  EXPECT_EQ(w.server.trigger_log()[0].tick, t);
  EXPECT_GT(link.link_metrics().net_lease_fallback_ticks, 0u);
  EXPECT_EQ(link.link_metrics().net_outages, 1u);
}

// ---------------------------------------------------------------------------
// Temporal evaluation of buffered reports against alarm churn.
// ---------------------------------------------------------------------------

TEST(BufferedUpdateTest, IgnoresAlarmsInstalledAfterTheStamp) {
  NetWorld w;
  w.server.enable_dynamics(1);
  alarms::SpatialAlarm late;
  late.id = 9;
  late.scope = alarms::AlarmScope::kPublic;
  late.region = Rect(3000, 3000, 3300, 3300);
  w.server.install_alarm(late, /*tick=*/5);

  // Stamp 3 predates the install: the report was taken when the alarm did
  // not exist, so it must not fire.
  EXPECT_TRUE(w.server.handle_buffered_update(0, {3100, 3100}, 3).empty());
  // Stamp 6 postdates it: fires.
  const auto fired = w.server.handle_buffered_update(0, {3100, 3100}, 6);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 9u);
}

TEST(BufferedUpdateTest, RemovedAlarmStillFiresFromTheGraveyard) {
  NetWorld w;
  w.server.enable_dynamics(1);
  ASSERT_TRUE(w.server.remove_alarm(0, /*tick=*/5));

  // Stamp 6 is after the removal: nothing to fire.
  EXPECT_TRUE(w.server.handle_buffered_update(0, {1500, 550}, 6).empty());
  // Stamp 3 is within the alarm's lifetime: the graveyard serves the fire,
  // exactly once.
  const auto fired = w.server.handle_buffered_update(0, {1500, 550}, 3);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 0u);
  EXPECT_TRUE(w.server.handle_buffered_update(0, {1500, 550}, 3).empty());
  ASSERT_EQ(w.server.trigger_log().size(), 1u);
  EXPECT_EQ(w.server.trigger_log()[0].tick, 3u);
}

// ---------------------------------------------------------------------------
// Integration: oracle-exactness for every strategy under chaos schedules.
// ---------------------------------------------------------------------------

core::ExperimentConfig chaos_experiment_config(std::uint64_t seed) {
  core::ExperimentConfig cfg;
  cfg.universe_km = 6.0;
  cfg.vehicles = 60;
  cfg.minutes = 2.0;
  cfg.alarm_count = 400;
  cfg.public_percent = 10.0;
  cfg.grid_cell_sqkm = 2.5;
  cfg.seed = seed;
  return cfg;
}

sim::Simulation::StrategyFactory chaos_factory(
    const core::Experiment& experiment, const std::string& name) {
  if (name == "prd") return experiment.periodic();
  if (name == "sp") return experiment.safe_period();
  if (name == "mwpsr") return experiment.rect(saferegion::MotionModel(1.0, 32));
  if (name == "gbsr") {
    saferegion::PyramidConfig cfg;
    cfg.height = 1;
    return experiment.bitmap(cfg);
  }
  if (name == "pbsr") {
    saferegion::PyramidConfig cfg;
    cfg.height = 5;
    return experiment.bitmap(cfg);
  }
  if (name == "pbsr_cached") {
    saferegion::PyramidConfig cfg;
    cfg.height = 5;
    return experiment.bitmap_cached(cfg);
  }
  if (name == "opt") return experiment.optimal();
  throw PreconditionError("unknown strategy: " + name);
}

/// Chaos schedule for a given loss rate: delay + jitter (reordering),
/// duplication and burst outages are always on, so even the loss=0 corner
/// exercises every fault class except drops.
net::ChannelConfig chaos_channel(double loss) {
  net::ChannelConfig c;
  c.uplink_loss = loss;
  c.downlink_loss = loss;
  c.duplicate_rate = 0.1;
  c.latency_base_ms = 40.0;
  c.latency_jitter_ms = 80.0;
  c.outage_start_per_tick = 0.01;
  c.outage_mean_ticks = 3.0;
  return c;
}

void expect_perfect_chaos(const sim::RunResult& r) {
  EXPECT_EQ(r.accuracy.missed, 0u) << r.strategy;
  EXPECT_EQ(r.accuracy.spurious, 0u) << r.strategy;
  EXPECT_EQ(r.accuracy.late, 0u) << r.strategy;
  EXPECT_GT(r.accuracy.expected, 0u) << "workload produced no triggers";
}

using ChaosParam = std::tuple<std::string, int, std::uint64_t>;

class ChaosAccuracyTest : public ::testing::TestWithParam<ChaosParam> {};

TEST_P(ChaosAccuracyTest, StrategyStaysOracleExactUnderChaos) {
  const auto& [name, loss_pct, seed] = GetParam();
  core::Experiment experiment(chaos_experiment_config(seed));
  experiment.enable_channel(chaos_channel(loss_pct / 100.0));
  const auto run =
      experiment.simulation().run(chaos_factory(experiment, name));
  expect_perfect_chaos(run);
  // The protocol must have actually worked for its exactness: outages
  // forced lease fallbacks, duplication was suppressed, and (when lossy)
  // retransmissions happened.
  EXPECT_GT(run.metrics.net_outages, 0u) << name;
  EXPECT_GT(run.metrics.net_lease_fallback_ticks, 0u) << name;
  EXPECT_GT(run.metrics.net_duplicates_dropped, 0u) << name;
  EXPECT_GT(run.metrics.net_delivery_latency_ms.count(), 0u) << name;
  if (loss_pct > 0) EXPECT_GT(run.metrics.net_retransmissions, 0u) << name;
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, ChaosAccuracyTest,
    ::testing::Combine(::testing::Values("prd", "sp", "mwpsr", "gbsr", "pbsr",
                                         "pbsr_cached", "opt"),
                       ::testing::Values(0, 5, 20, 50),
                       ::testing::Values(7u, 11u, 23u)),
    [](const ::testing::TestParamInfo<ChaosParam>& info) {
      return std::get<0>(info.param) + "_loss" +
             std::to_string(std::get<1>(info.param)) + "_seed" +
             std::to_string(std::get<2>(info.param));
    });

TEST(ChaosReplayTest, FaultScheduleReplaysBitIdentically) {
  core::Experiment experiment(chaos_experiment_config(31));
  experiment.enable_channel(chaos_channel(0.2));
  const auto factory = experiment.rect(saferegion::MotionModel(1.0, 32));
  const auto first = experiment.simulation().run(factory);
  // A different strategy in between must not perturb the channel replay.
  (void)experiment.simulation().run(experiment.optimal());
  const auto again = experiment.simulation().run(factory);
  EXPECT_EQ(again.trigger_log, first.trigger_log);
  EXPECT_EQ(again.metrics.uplink_messages, first.metrics.uplink_messages);
  EXPECT_EQ(again.metrics.net_retransmissions,
            first.metrics.net_retransmissions);
  EXPECT_EQ(again.metrics.net_duplicates_dropped,
            first.metrics.net_duplicates_dropped);
  EXPECT_EQ(again.metrics.net_outages, first.metrics.net_outages);
  EXPECT_EQ(again.metrics.net_buffered_reports,
            first.metrics.net_buffered_reports);
  EXPECT_EQ(again.metrics.net_delivery_latency_ms.sum(),
            first.metrics.net_delivery_latency_ms.sum());
}

TEST(ChaosChurnTest, FaultsAndChurnComposeWithoutLosingExactness) {
  for (const char* name : {"mwpsr", "pbsr", "opt"}) {
    core::Experiment experiment(chaos_experiment_config(43));
    experiment.enable_churn(experiment.churn_config(/*installs_per_tick=*/1.0,
                                                    /*removes_per_tick=*/0.5));
    experiment.enable_channel(chaos_channel(0.2));
    const auto run =
        experiment.simulation().run(chaos_factory(experiment, name));
    expect_perfect_chaos(run);
    EXPECT_GT(run.metrics.alarms_installed, 0u) << name;
    EXPECT_GT(run.metrics.net_retransmissions, 0u) << name;
  }
}

// ---------------------------------------------------------------------------
// Sharded chaos: bit-identical at any thread count, faults included.
// ---------------------------------------------------------------------------

void expect_bit_identical_with_net(const sim::RunResult& a,
                                   const sim::RunResult& b) {
  EXPECT_EQ(b.trigger_log, a.trigger_log);
  const sim::Metrics& m = a.metrics;
  const sim::Metrics& n = b.metrics;
  EXPECT_EQ(n.uplink_messages, m.uplink_messages);
  EXPECT_EQ(n.uplink_bytes, m.uplink_bytes);
  EXPECT_EQ(n.downstream_region_bytes, m.downstream_region_bytes);
  EXPECT_EQ(n.downstream_notice_bytes, m.downstream_notice_bytes);
  EXPECT_EQ(n.client_checks, m.client_checks);
  EXPECT_EQ(n.client_check_ops, m.client_check_ops);
  EXPECT_EQ(n.server_alarm_ops, m.server_alarm_ops);
  EXPECT_EQ(n.server_region_ops, m.server_region_ops);
  EXPECT_EQ(n.handoff_messages, m.handoff_messages);
  EXPECT_EQ(n.handoff_bytes, m.handoff_bytes);
  EXPECT_EQ(n.triggers, m.triggers);
  EXPECT_EQ(n.net_retransmissions, m.net_retransmissions);
  EXPECT_EQ(n.net_duplicates_dropped, m.net_duplicates_dropped);
  EXPECT_EQ(n.net_ack_messages, m.net_ack_messages);
  EXPECT_EQ(n.net_ack_bytes, m.net_ack_bytes);
  EXPECT_EQ(n.net_lease_fallback_ticks, m.net_lease_fallback_ticks);
  EXPECT_EQ(n.net_buffered_reports, m.net_buffered_reports);
  EXPECT_EQ(n.net_outages, m.net_outages);
  EXPECT_EQ(n.net_delivery_latency_ms.count(),
            m.net_delivery_latency_ms.count());
  EXPECT_EQ(n.net_delivery_latency_ms.sum(), m.net_delivery_latency_ms.sum());
}

class ShardedChaosTest : public ::testing::Test {
 protected:
  void check(const std::string& name) {
    core::Experiment experiment(chaos_experiment_config(53));
    experiment.enable_channel(chaos_channel(0.2));
    const auto factory = chaos_factory(experiment, name);
    const auto ref = experiment.simulation().run_sharded(
        factory, {.shards = 4, .threads = 1});
    expect_perfect_chaos(ref);
    EXPECT_GT(ref.metrics.net_retransmissions, 0u) << name;
    for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
      expect_bit_identical_with_net(
          ref, experiment.simulation().run_sharded(
                   factory, {.shards = 4, .threads = threads}));
    }
  }
};

TEST_F(ShardedChaosTest, MwpsrBitIdenticalAcrossThreadCounts) {
  check("mwpsr");
}

TEST_F(ShardedChaosTest, SafePeriodBitIdenticalAcrossThreadCounts) {
  check("sp");
}

TEST_F(ShardedChaosTest, PbsrBitIdenticalAcrossThreadCounts) {
  check("pbsr");
}

TEST_F(ShardedChaosTest, OptBitIdenticalAcrossThreadCounts) { check("opt"); }

TEST(ShardedChaosTest2, PassthroughChannelMatchesNoChannelBitForBit) {
  // The all-zero config must be a provable no-op: a run with set_channel({})
  // is indistinguishable from one that never touched the channel API.
  core::Experiment experiment(chaos_experiment_config(61));
  const auto factory = experiment.rect(saferegion::MotionModel(1.0, 32));
  const auto bare = experiment.simulation().run(factory);
  experiment.enable_channel(net::ChannelConfig{});
  const auto with_channel = experiment.simulation().run(factory);
  expect_bit_identical_with_net(bare, with_channel);
  EXPECT_EQ(with_channel.metrics.net_ack_messages, 0u);
  EXPECT_EQ(with_channel.metrics.net_delivery_latency_ms.count(), 0u);
}

}  // namespace
}  // namespace salarm
