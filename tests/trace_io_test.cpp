#include <sstream>

#include <gtest/gtest.h>

#include "common/error.h"
#include "mobility/trace_generator.h"
#include "mobility/trace_io.h"
#include "roadnet/network_builder.h"

namespace salarm::mobility {
namespace {

RecordedTrace sample_trace() {
  roadnet::NetworkConfig net_cfg;
  net_cfg.width_m = 4000;
  net_cfg.height_m = 4000;
  Rng rng(3);
  static const auto network = roadnet::build_synthetic_network(net_cfg, rng);
  TraceConfig cfg;
  cfg.vehicle_count = 7;
  cfg.tick_seconds = 0.5;
  cfg.seed = 11;
  TraceGenerator gen(network, cfg);
  return gen.record(25);
}

TEST(TraceIoTest, RoundTripsExactlyEnough) {
  const RecordedTrace original = sample_trace();
  std::stringstream buffer;
  write_trace_csv(original, buffer);
  const RecordedTrace restored = read_trace_csv(buffer);

  ASSERT_EQ(restored.tick_count(), original.tick_count());
  ASSERT_EQ(restored.vehicle_count(), original.vehicle_count());
  EXPECT_DOUBLE_EQ(restored.tick_seconds(), original.tick_seconds());
  for (std::size_t t = 0; t < original.tick_count(); ++t) {
    for (VehicleId v = 0; v < original.vehicle_count(); ++v) {
      const auto& a = original.sample(t, v);
      const auto& b = restored.sample(t, v);
      // 10 significant digits of precision survive the text round-trip.
      EXPECT_NEAR(a.pos.x, b.pos.x, 1e-5);
      EXPECT_NEAR(a.pos.y, b.pos.y, 1e-5);
      EXPECT_NEAR(a.heading, b.heading, 1e-8);
      EXPECT_NEAR(a.speed_mps, b.speed_mps, 1e-7);
    }
  }
}

TEST(TraceIoTest, AcceptsShuffledVehiclesWithinTick) {
  std::stringstream buffer;
  buffer << "# tick_seconds=1\n";
  buffer << "tick,vehicle,x,y,heading,speed\n";
  buffer << "0,1,10,20,0,5\n";
  buffer << "0,0,1,2,0,5\n";
  buffer << "1,0,2,3,0,5\n";
  buffer << "1,1,11,21,0,5\n";
  const RecordedTrace trace = read_trace_csv(buffer);
  EXPECT_EQ(trace.tick_count(), 2u);
  EXPECT_EQ(trace.vehicle_count(), 2u);
  EXPECT_EQ(trace.sample(0, 0).pos, (geo::Point{1, 2}));
  EXPECT_EQ(trace.sample(0, 1).pos, (geo::Point{10, 20}));
}

TEST(TraceIoTest, RejectsMalformedInput) {
  const auto expect_reject = [](const std::string& text) {
    std::stringstream buffer(text);
    EXPECT_THROW(read_trace_csv(buffer), salarm::PreconditionError) << text;
  };
  // Missing tick_seconds comment.
  expect_reject("tick,vehicle,x,y,heading,speed\n0,0,1,2,0,5\n");
  // Wrong header.
  expect_reject("# tick_seconds=1\ntick,vehicle,x,y\n0,0,1,2\n");
  // Non-numeric field.
  expect_reject(
      "# tick_seconds=1\ntick,vehicle,x,y,heading,speed\n0,0,abc,2,0,5\n");
  // Wrong field count.
  expect_reject("# tick_seconds=1\ntick,vehicle,x,y,heading,speed\n0,0,1\n");
  // Duplicate vehicle in a tick.
  expect_reject(
      "# tick_seconds=1\ntick,vehicle,x,y,heading,speed\n"
      "0,0,1,2,0,5\n0,0,3,4,0,5\n");
  // Missing vehicle in second tick.
  expect_reject(
      "# tick_seconds=1\ntick,vehicle,x,y,heading,speed\n"
      "0,0,1,2,0,5\n0,1,3,4,0,5\n1,0,5,6,0,5\n");
  // Empty trace.
  expect_reject("# tick_seconds=1\ntick,vehicle,x,y,heading,speed\n");
  // Bad tick_seconds.
  expect_reject(
      "# tick_seconds=0\ntick,vehicle,x,y,heading,speed\n0,0,1,2,0,5\n");
}

TEST(TraceIoTest, FileRoundTrip) {
  const RecordedTrace original = sample_trace();
  const std::string path = ::testing::TempDir() + "/salarm_trace.csv";
  save_trace_csv(original, path);
  const RecordedTrace restored = load_trace_csv(path);
  EXPECT_EQ(restored.tick_count(), original.tick_count());
  EXPECT_EQ(restored.vehicle_count(), original.vehicle_count());
  EXPECT_THROW(load_trace_csv("/nonexistent/dir/trace.csv"),
               salarm::PreconditionError);
}

}  // namespace
}  // namespace salarm::mobility
