#include <sstream>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "roadnet/network_builder.h"
#include "mobility/trace_generator.h"
#include "roadnet/network_io.h"

namespace salarm::roadnet {
namespace {

RoadNetwork sample_network() {
  NetworkConfig cfg;
  cfg.width_m = 4000;
  cfg.height_m = 4000;
  Rng rng(6);
  return build_synthetic_network(cfg, rng);
}

TEST(NetworkIoTest, RoundTrips) {
  const RoadNetwork original = sample_network();
  std::stringstream buffer;
  write_network_csv(original, buffer);
  const RoadNetwork restored = read_network_csv(buffer);

  ASSERT_EQ(restored.node_count(), original.node_count());
  ASSERT_EQ(restored.edge_count(), original.edge_count());
  for (NodeId n = 0; n < original.node_count(); ++n) {
    EXPECT_NEAR(restored.node(n).pos.x, original.node(n).pos.x, 1e-5);
    EXPECT_NEAR(restored.node(n).pos.y, original.node(n).pos.y, 1e-5);
  }
  for (EdgeId e = 0; e < original.edge_count(); ++e) {
    EXPECT_EQ(restored.edge(e).a, original.edge(e).a);
    EXPECT_EQ(restored.edge(e).b, original.edge(e).b);
    EXPECT_EQ(restored.edge(e).road_class, original.edge(e).road_class);
    // 10 significant digits survive the text round-trip.
    EXPECT_NEAR(restored.edge(e).speed_mps, original.edge(e).speed_mps,
                1e-7);
  }
  EXPECT_EQ(restored.largest_component_size(),
            original.largest_component_size());
  EXPECT_DOUBLE_EQ(restored.max_speed_mps(), original.max_speed_mps());
}

TEST(NetworkIoTest, RejectsMalformedInput) {
  const auto expect_reject = [](const std::string& text) {
    std::stringstream buffer(text);
    EXPECT_THROW(read_network_csv(buffer), salarm::PreconditionError)
        << text;
  };
  expect_reject("");                                    // empty
  expect_reject("wrong magic\nnodes,0\nid,x,y\n");      // bad magic
  // Sparse node ids.
  expect_reject(
      "# salarm-road-network v1\nnodes,2\nid,x,y\n0,0,0\n5,1,1\n"
      "edges,0\na,b,speed_mps,class\n");
  // Unknown road class.
  expect_reject(
      "# salarm-road-network v1\nnodes,2\nid,x,y\n0,0,0\n1,10,0\n"
      "edges,1\na,b,speed_mps,class\n0,1,10,autobahn\n");
  // Edge referencing a missing node.
  expect_reject(
      "# salarm-road-network v1\nnodes,2\nid,x,y\n0,0,0\n1,10,0\n"
      "edges,1\na,b,speed_mps,class\n0,7,10,local\n");
  // Count larger than rows present.
  expect_reject(
      "# salarm-road-network v1\nnodes,3\nid,x,y\n0,0,0\n1,10,0\n");
}

TEST(NetworkIoTest, FileRoundTripAndErrors) {
  const RoadNetwork original = sample_network();
  const std::string path = ::testing::TempDir() + "/salarm_network.csv";
  save_network_csv(original, path);
  const RoadNetwork restored = load_network_csv(path);
  EXPECT_EQ(restored.node_count(), original.node_count());
  EXPECT_THROW(load_network_csv("/nonexistent/net.csv"),
               salarm::PreconditionError);
}

TEST(NetworkIoTest, ImportedNetworkDrivesTraces) {
  // The imported network must be usable as a trace substrate.
  const RoadNetwork original = sample_network();
  std::stringstream buffer;
  write_network_csv(original, buffer);
  const RoadNetwork restored = read_network_csv(buffer);

  mobility::TraceConfig cfg;
  cfg.vehicle_count = 10;
  cfg.seed = 3;
  mobility::TraceGenerator gen(restored, cfg);
  for (int t = 0; t < 50; ++t) gen.step();
  for (const auto& s : gen.samples()) {
    EXPECT_TRUE(restored.bounding_box().contains(s.pos));
  }
}

}  // namespace
}  // namespace salarm::roadnet
