#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "geometry/rect.h"
#include "saferegion/pyramid.h"

namespace salarm::saferegion {
namespace {

using geo::Point;
using geo::Rect;

const Rect kCell(0, 0, 900, 900);

TEST(PyramidTest, ValidatesInputs) {
  PyramidConfig cfg;
  cfg.height = 0;
  EXPECT_THROW(PyramidBitmap::build(kCell, {}, cfg),
               salarm::PreconditionError);
  cfg = {};
  cfg.fanout_u = 1;
  EXPECT_THROW(PyramidBitmap::build(kCell, {}, cfg),
               salarm::PreconditionError);
  cfg = {};
  EXPECT_THROW(PyramidBitmap::build(Rect(0, 0, 0, 10), {}, cfg),
               salarm::PreconditionError);
}

TEST(PyramidTest, EmptyCellIsEntirelySafe) {
  const auto bm = PyramidBitmap::build(kCell, {}, PyramidConfig{});
  EXPECT_DOUBLE_EQ(bm.coverage(), 1.0);
  EXPECT_EQ(bm.bit_size(), 1u);  // single safe root bit
  EXPECT_EQ(bm.node_count(), 1u);
  const auto c = bm.locate({450, 450});
  EXPECT_TRUE(c.safe);
  EXPECT_EQ(c.levels, 1);
}

TEST(PyramidTest, FullyCoveredCellIsSolidUnsafe) {
  const std::vector<Rect> alarms{Rect(-10, -10, 910, 910)};
  const auto bm = PyramidBitmap::build(kCell, alarms, PyramidConfig{});
  EXPECT_DOUBLE_EQ(bm.coverage(), 0.0);
  EXPECT_EQ(bm.bit_size(), 2u);  // unsafe root + solid flag
  const auto c = bm.locate({450, 450});
  EXPECT_FALSE(c.safe);
  EXPECT_EQ(c.levels, 1);  // no descent into a solid block
}

TEST(PyramidTest, GbsrIsHeightOne) {
  // One alarm in the center third: the root subdivides once; the center
  // child is unsafe, the 8 others safe.
  const std::vector<Rect> alarms{Rect(350, 350, 550, 550)};
  PyramidConfig cfg;
  cfg.height = 1;
  const auto bm = PyramidBitmap::build(kCell, alarms, cfg);
  // Root (2 bits: unsafe+subdivided) + 9 leaf bits.
  EXPECT_EQ(bm.bit_size(), 11u);
  EXPECT_NEAR(bm.coverage(), 8.0 / 9.0, 1e-12);
  EXPECT_TRUE(bm.locate({100, 100}).safe);
  EXPECT_FALSE(bm.locate({450, 450}).safe);
  EXPECT_EQ(bm.locate({450, 450}).levels, 2);
}

TEST(PyramidTest, DeeperPyramidRefinesCoverage) {
  const std::vector<Rect> alarms{Rect(350, 350, 550, 550)};
  double prev_coverage = 0.0;
  for (int h = 1; h <= 6; ++h) {
    PyramidConfig cfg;
    cfg.height = h;
    const auto bm = PyramidBitmap::build(kCell, alarms, cfg);
    const double cov = bm.coverage();
    EXPECT_GE(cov, prev_coverage - 1e-12) << "height " << h;
    prev_coverage = cov;
  }
  // The alarm covers (200/900)^2 ≈ 4.94% of the cell; deep refinement
  // should approach 1 - that.
  EXPECT_NEAR(prev_coverage, 1.0 - (200.0 * 200.0) / (900.0 * 900.0), 0.01);
}

TEST(PyramidTest, LocateCountsDescentLevels) {
  const std::vector<Rect> alarms{Rect(350, 350, 550, 550)};
  PyramidConfig cfg;
  cfg.height = 4;
  const auto bm = PyramidBitmap::build(kCell, alarms, cfg);
  // Far corner: safe at level 1 (the 3x3 child).
  EXPECT_EQ(bm.locate({50, 50}).levels, 2);
  // Points near the alarm boundary need deeper descents.
  const auto near_boundary = bm.locate({352, 450});
  EXPECT_GE(near_boundary.levels, 3);
  EXPECT_LE(near_boundary.levels, cfg.height + 1);
  // Inside the alarm: unsafe, found at whatever level turns solid.
  EXPECT_FALSE(bm.locate({450, 450}).safe);
}

TEST(PyramidTest, SafeRegionNeverOverlapsAlarms) {
  // Property: any point strictly inside an alarm region must be unsafe.
  Rng rng(17);
  for (int round = 0; round < 30; ++round) {
    std::vector<Rect> alarms;
    const int n = 1 + static_cast<int>(rng.index(6));
    for (int i = 0; i < n; ++i) {
      const Point c{rng.uniform(-50, 950), rng.uniform(-50, 950)};
      alarms.push_back(Rect::centered_square(c, rng.uniform(30, 400)));
    }
    PyramidConfig cfg;
    cfg.height = 1 + static_cast<int>(rng.index(5));
    const auto bm = PyramidBitmap::build(kCell, alarms, cfg);
    for (int probe = 0; probe < 200; ++probe) {
      const Point p{rng.uniform(0, 900), rng.uniform(0, 900)};
      const auto c = bm.locate(p);
      if (c.safe) {
        for (const Rect& a : alarms) {
          EXPECT_FALSE(a.interior_contains(p))
              << "safe point inside alarm " << a.to_string();
        }
      }
    }
  }
}

TEST(PyramidTest, CoverageMatchesMonteCarlo) {
  Rng rng(23);
  std::vector<Rect> alarms{Rect(100, 100, 400, 300), Rect(600, 500, 800, 900),
                           Rect(300, 250, 700, 450)};
  PyramidConfig cfg;
  cfg.height = 6;
  const auto bm = PyramidBitmap::build(kCell, alarms, cfg);
  int safe = 0;
  const int samples = 20000;
  for (int i = 0; i < samples; ++i) {
    const Point p{rng.uniform(0, 900), rng.uniform(0, 900)};
    if (bm.locate(p).safe) ++safe;
  }
  EXPECT_NEAR(bm.coverage(), static_cast<double>(safe) / samples, 0.02);
}

TEST(PyramidTest, OpsCounterCountsIntersectionTests) {
  const std::vector<Rect> alarms{Rect(350, 350, 550, 550)};
  std::uint64_t ops = 0;
  PyramidConfig cfg;
  cfg.height = 3;
  (void)PyramidBitmap::build(kCell, alarms, cfg, &ops);
  EXPECT_GT(ops, 0u);
  std::uint64_t deeper_ops = 0;
  cfg.height = 6;
  (void)PyramidBitmap::build(kCell, alarms, cfg, &deeper_ops);
  EXPECT_GT(deeper_ops, ops);
}

TEST(PyramidTest, PaperExampleBitAccounting) {
  // Figure 3(d): a 3x3 pyramid of height 2 where level 1 has 3 safe cells
  // and 6 subdivided cells costs 1 + 9 + 54 paper-bits = 64, and our
  // decodable encoding costs 2 + (3 + 2*6) + 54 = 71 bits.
  // Reproduce that shape: an alarm layout leaving exactly 3 of the 9 level-1
  // cells alarm-free and all 6 others partially covered.
  // Level-1 cells are 300x300. Alarms clip corners of 6 cells:
  std::vector<Rect> alarms;
  const std::vector<std::pair<int, int>> unsafe_cells{
      {0, 0}, {1, 0}, {2, 0}, {0, 1}, {0, 2}, {1, 2}};
  for (const auto& [cx, cy] : unsafe_cells) {
    const double x = cx * 300.0;
    const double y = cy * 300.0;
    alarms.push_back(Rect(x + 100, y + 100, x + 160, y + 160));
  }
  PyramidConfig cfg;
  cfg.height = 2;
  const auto bm = PyramidBitmap::build(kCell, alarms, cfg);
  EXPECT_EQ(bm.paper_bit_size(), 64u);
  EXPECT_EQ(bm.bit_size(), 71u);
}

TEST(PyramidTest, SerializeRoundTrips) {
  Rng rng(31);
  for (int round = 0; round < 25; ++round) {
    std::vector<Rect> alarms;
    const int n = static_cast<int>(rng.index(8));
    for (int i = 0; i < n; ++i) {
      const Point c{rng.uniform(0, 900), rng.uniform(0, 900)};
      alarms.push_back(Rect::centered_square(c, rng.uniform(20, 350)));
    }
    PyramidConfig cfg;
    cfg.height = 1 + static_cast<int>(rng.index(6));
    cfg.fanout_u = 2 + static_cast<int>(rng.index(3));
    cfg.fanout_v = 2 + static_cast<int>(rng.index(3));
    const auto bm = PyramidBitmap::build(kCell, alarms, cfg);
    const auto bytes = bm.serialize();
    EXPECT_EQ(bytes.size(), bm.byte_size());
    const auto restored =
        PyramidBitmap::deserialize(kCell, cfg, bytes, bm.bit_size());
    EXPECT_TRUE(bm == restored);
    // Containment answers agree everywhere.
    for (int probe = 0; probe < 100; ++probe) {
      const Point p{rng.uniform(0, 900), rng.uniform(0, 900)};
      const auto a = bm.locate(p);
      const auto b = restored.locate(p);
      EXPECT_EQ(a.safe, b.safe);
      EXPECT_EQ(a.levels, b.levels);
    }
  }
}

TEST(PyramidTest, DeserializeRejectsMalformedStreams) {
  const std::vector<Rect> alarms{Rect(350, 350, 550, 550)};
  PyramidConfig cfg;
  cfg.height = 2;
  const auto bm = PyramidBitmap::build(kCell, alarms, cfg);
  auto bytes = bm.serialize();
  // Truncated stream.
  EXPECT_THROW(
      PyramidBitmap::deserialize(kCell, cfg, bytes, bm.bit_size() - 5),
      salarm::PreconditionError);
  // Excess bits claimed.
  EXPECT_THROW(PyramidBitmap::deserialize(kCell, cfg, bytes,
                                          bytes.size() * 8 + 1),
               salarm::PreconditionError);
}

TEST(PyramidTest, NonSquareFanout) {
  PyramidConfig cfg;
  cfg.fanout_u = 4;
  cfg.fanout_v = 2;
  cfg.height = 3;
  const std::vector<Rect> alarms{Rect(0, 0, 250, 500)};
  const auto bm = PyramidBitmap::build(kCell, alarms, cfg);
  EXPECT_GT(bm.coverage(), 0.5);
  EXPECT_LT(bm.coverage(), 1.0);
  // Sound on probes.
  Rng rng(5);
  for (int probe = 0; probe < 200; ++probe) {
    const Point p{rng.uniform(0, 900), rng.uniform(0, 900)};
    if (bm.locate(p).safe) {
      EXPECT_FALSE(alarms[0].interior_contains(p));
    }
  }
}

TEST(PyramidTest, BitBudgetCapsEncodingSize) {
  // Many alarms at high height: unlimited build far exceeds a tight
  // budget; the capped build must respect it exactly while staying sound.
  Rng rng(41);
  std::vector<Rect> alarms;
  for (int i = 0; i < 12; ++i) {
    const Point c{rng.uniform(0, 900), rng.uniform(0, 900)};
    alarms.push_back(Rect::centered_square(c, rng.uniform(60, 250)));
  }
  PyramidConfig unlimited;
  unlimited.height = 7;
  unlimited.max_bits = 0;
  const auto full = PyramidBitmap::build(kCell, alarms, unlimited);

  PyramidConfig capped = unlimited;
  capped.max_bits = 256;
  const auto small = PyramidBitmap::build(kCell, alarms, capped);

  EXPECT_GT(full.bit_size(), 256u);
  EXPECT_LE(small.bit_size(), 256u);
  // Coverage can only shrink under the cap, never grow.
  EXPECT_LE(small.coverage(), full.coverage() + 1e-12);
  EXPECT_GT(small.coverage(), 0.0);
  // Soundness unaffected: safe points are never inside an alarm.
  for (int probe = 0; probe < 300; ++probe) {
    const Point p{rng.uniform(0, 900), rng.uniform(0, 900)};
    if (small.locate(p).safe) {
      for (const Rect& a : alarms) EXPECT_FALSE(a.interior_contains(p));
    }
    // Capped-safe implies uncapped-safe (the cap only coarsens).
    if (small.locate(p).safe) {
      EXPECT_TRUE(full.locate(p).safe);
    }
  }
  // Round-trips like any other pyramid.
  const auto restored = PyramidBitmap::deserialize(
      kCell, capped, small.serialize(), small.bit_size());
  EXPECT_TRUE(restored == small);
}

TEST(PyramidTest, BitBudgetMonotoneCoverage) {
  Rng rng(43);
  std::vector<Rect> alarms;
  for (int i = 0; i < 8; ++i) {
    const Point c{rng.uniform(0, 900), rng.uniform(0, 900)};
    alarms.push_back(Rect::centered_square(c, rng.uniform(80, 300)));
  }
  double prev = -1.0;
  for (const std::size_t budget : {64u, 128u, 256u, 512u, 2048u, 8192u}) {
    PyramidConfig cfg;
    cfg.height = 6;
    cfg.max_bits = budget;
    const auto bm = PyramidBitmap::build(kCell, alarms, cfg);
    EXPECT_LE(bm.bit_size(), budget);
    EXPECT_GE(bm.coverage(), prev - 1e-12) << "budget " << budget;
    prev = bm.coverage();
  }
}

TEST(PyramidTest, IntersectMatchesPointwiseAnd) {
  Rng rng(59);
  for (int round = 0; round < 25; ++round) {
    auto make_alarms = [&](int n) {
      std::vector<Rect> alarms;
      for (int i = 0; i < n; ++i) {
        const Point c{rng.uniform(0, 900), rng.uniform(0, 900)};
        alarms.push_back(Rect::centered_square(c, rng.uniform(40, 350)));
      }
      return alarms;
    };
    PyramidConfig cfg;
    cfg.height = 1 + static_cast<int>(rng.index(5));
    const auto alarms_a = make_alarms(static_cast<int>(rng.index(5)));
    const auto alarms_b = make_alarms(static_cast<int>(rng.index(5)));
    const auto a = PyramidBitmap::build(kCell, alarms_a, cfg);
    const auto b = PyramidBitmap::build(kCell, alarms_b, cfg);
    std::uint64_t ops = 0;
    const auto both = a.intersect(b, &ops);
    EXPECT_GT(ops, 0u);
    for (int probe = 0; probe < 200; ++probe) {
      const Point p{rng.uniform(0, 900), rng.uniform(0, 900)};
      EXPECT_EQ(both.locate(p).safe,
                a.locate(p).safe && b.locate(p).safe)
          << "round " << round;
    }
    // Coverage of the intersection cannot exceed either input.
    EXPECT_LE(both.coverage(), a.coverage() + 1e-12);
    EXPECT_LE(both.coverage(), b.coverage() + 1e-12);
    // Round-trips like any built pyramid.
    const auto restored = PyramidBitmap::deserialize(
        kCell, cfg, both.serialize(), both.bit_size());
    EXPECT_TRUE(restored == both);
  }
}

TEST(PyramidTest, IntersectWithAllSafeIsIdentityOnSafeSet) {
  const std::vector<Rect> alarms{Rect(350, 350, 550, 550)};
  PyramidConfig cfg;
  cfg.height = 3;
  const auto bm = PyramidBitmap::build(kCell, alarms, cfg);
  const auto empty = PyramidBitmap::build(kCell, {}, cfg);
  const auto merged = bm.intersect(empty);
  Rng rng(61);
  for (int probe = 0; probe < 300; ++probe) {
    const Point p{rng.uniform(0, 900), rng.uniform(0, 900)};
    EXPECT_EQ(merged.locate(p).safe, bm.locate(p).safe);
  }
}

TEST(PyramidTest, IntersectRejectsMismatchedInputs) {
  PyramidConfig cfg;
  const auto a = PyramidBitmap::build(kCell, {}, cfg);
  PyramidConfig other = cfg;
  other.height = cfg.height + 1;
  const auto b = PyramidBitmap::build(kCell, {}, other);
  EXPECT_THROW((void)a.intersect(b), salarm::PreconditionError);
  const auto c =
      PyramidBitmap::build(Rect(0, 0, 500, 500), {}, cfg);
  EXPECT_THROW((void)a.intersect(c), salarm::PreconditionError);
}

TEST(PyramidTest, LocateRequiresPointInCell) {
  const auto bm = PyramidBitmap::build(kCell, {}, PyramidConfig{});
  EXPECT_THROW(bm.locate({-1, 0}), salarm::PreconditionError);
}

}  // namespace
}  // namespace salarm::saferegion
