#include <gtest/gtest.h>

#include "sim/cost_model.h"
#include "sim/metrics.h"
#include "sim/oracle.h"

namespace salarm::sim {
namespace {

using alarms::TriggerEvent;

TEST(CompareTriggersTest, EmptyIsPerfect) {
  const auto report = compare_triggers({}, {});
  EXPECT_TRUE(report.perfect());
  EXPECT_EQ(report.expected, 0u);
  EXPECT_EQ(report.observed, 0u);
}

TEST(CompareTriggersTest, ExactMatchIsPerfect) {
  const std::vector<TriggerEvent> events{{1, 2, 10}, {3, 4, 20}};
  const auto report = compare_triggers(events, events);
  EXPECT_TRUE(report.perfect());
  EXPECT_EQ(report.expected, 2u);
  EXPECT_EQ(report.observed, 2u);
}

TEST(CompareTriggersTest, DetectsMissed) {
  const std::vector<TriggerEvent> expected{{1, 2, 10}, {3, 4, 20}};
  const std::vector<TriggerEvent> observed{{1, 2, 10}};
  const auto report = compare_triggers(expected, observed);
  EXPECT_FALSE(report.perfect());
  EXPECT_EQ(report.missed, 1u);
  EXPECT_EQ(report.spurious, 0u);
  EXPECT_EQ(report.late, 0u);
}

TEST(CompareTriggersTest, DetectsSpurious) {
  const std::vector<TriggerEvent> expected{{1, 2, 10}};
  const std::vector<TriggerEvent> observed{{1, 2, 10}, {9, 9, 5}};
  const auto report = compare_triggers(expected, observed);
  EXPECT_EQ(report.spurious, 1u);
  EXPECT_EQ(report.missed, 0u);
}

TEST(CompareTriggersTest, DetectsLate) {
  const std::vector<TriggerEvent> expected{{1, 2, 10}};
  const std::vector<TriggerEvent> observed{{1, 2, 12}};
  const auto report = compare_triggers(expected, observed);
  EXPECT_EQ(report.late, 1u);
  EXPECT_FALSE(report.perfect());
}

TEST(CompareTriggersTest, EarlyIsNotLate) {
  // An observation earlier than the oracle would indicate an oracle bug,
  // not lateness; it is not counted as late (and not as spurious either —
  // the pair exists in both sets).
  const std::vector<TriggerEvent> expected{{1, 2, 10}};
  const std::vector<TriggerEvent> observed{{1, 2, 8}};
  const auto report = compare_triggers(expected, observed);
  EXPECT_EQ(report.late, 0u);
  EXPECT_EQ(report.missed, 0u);
  EXPECT_EQ(report.spurious, 0u);
}

TEST(MetricsTest, MergeAddsAllCounters) {
  Metrics a;
  a.uplink_messages = 10;
  a.client_check_ops = 5;
  a.server_alarm_ops = 7;
  a.region_payload_bytes.add(100.0);
  Metrics b;
  b.uplink_messages = 3;
  b.downstream_region_bytes = 50;
  b.triggers = 2;
  b.region_payload_bytes.add(200.0);
  a.merge(b);
  EXPECT_EQ(a.uplink_messages, 13u);
  EXPECT_EQ(a.downstream_region_bytes, 50u);
  EXPECT_EQ(a.client_check_ops, 5u);
  EXPECT_EQ(a.triggers, 2u);
  EXPECT_EQ(a.region_payload_bytes.count(), 2u);
  EXPECT_DOUBLE_EQ(a.region_payload_bytes.mean(), 150.0);
}

TEST(MetricsTest, ToStringMentionsKeyCounters) {
  Metrics m;
  m.uplink_messages = 42;
  const std::string s = m.to_string();
  EXPECT_NE(s.find("uplink_messages=42"), std::string::npos);
  EXPECT_NE(s.find("triggers=0"), std::string::npos);
}

TEST(CostModelTest, ClientEnergyIsContainmentOnly) {
  const CostModel cost;
  Metrics m;
  m.client_check_ops = 1000;
  m.uplink_messages = 50;
  EXPECT_DOUBLE_EQ(cost.client_energy_mwh(m),
                   1000 * cost.check_mwh_per_op);
  // Radio energy covers the transmissions instead.
  EXPECT_DOUBLE_EQ(cost.client_radio_mwh(m),
                   50 * cost.tx_mwh_per_message);
}

TEST(CostModelTest, BandwidthExcludesNotices) {
  const CostModel cost;
  Metrics m;
  m.downstream_region_bytes = 1'000'000;  // 8 Mbit
  m.downstream_notice_bytes = 999'999'999;
  EXPECT_DOUBLE_EQ(cost.downstream_mbps(m, 8.0), 1.0);
}

TEST(CostModelTest, ServerMinutesSplitAndAdd) {
  const CostModel cost;
  Metrics m;
  m.server_alarm_ops = 600'000'000;   // 60 s at 0.1 us/op
  m.server_region_ops = 1'200'000'000;
  EXPECT_DOUBLE_EQ(cost.server_alarm_minutes(m), 1.0);
  EXPECT_DOUBLE_EQ(cost.server_region_minutes(m), 2.0);
  EXPECT_DOUBLE_EQ(cost.server_total_minutes(m), 3.0);
}

}  // namespace
}  // namespace salarm::sim
