// Cluster tier: shard map geometry, border-alarm replication, session
// handoffs (trigger dedup across shards), safe-period escape clamping, the
// parallel tick executor, and the exactness of the sharded run mode
// against the monolithic server.
#include <cmath>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "cluster/parallel_executor.h"
#include "cluster/shard_map.h"
#include "cluster/sharded_server.h"
#include "core/experiment.h"
#include "saferegion/wire_format.h"

namespace salarm::cluster {
namespace {

using geo::Point;
using geo::Rect;

// ---------------------------------------------------------------------------
// ShardMap
// ---------------------------------------------------------------------------

TEST(ShardMapTest, EveryCellHasExactlyOneOwnerAndExtentsTile) {
  const grid::GridOverlay grid(Rect(0, 0, 8000, 4000), 8, 4);
  const ShardMap map(grid, 4);
  ASSERT_EQ(map.shard_count(), 4u);

  double total_area = 0.0;
  for (std::size_t i = 0; i < map.shard_count(); ++i) {
    total_area += map.shard_extent(i).area();
  }
  EXPECT_DOUBLE_EQ(total_area, grid.universe().area());

  for (std::uint32_t col = 0; col < grid.cols(); ++col) {
    for (std::uint32_t row = 0; row < grid.rows(); ++row) {
      const std::size_t owner = map.shard_of_cell({col, row});
      ASSERT_LT(owner, map.shard_count());
      EXPECT_TRUE(
          map.shard_extent(owner).contains(grid.cell_rect({col, row})));
    }
  }
  // Point ownership follows cell ownership.
  EXPECT_EQ(map.shard_of({100, 100}), map.shard_of_cell(grid.cell_of({100, 100})));
  EXPECT_EQ(map.shard_of({7900, 3900}),
            map.shard_of_cell(grid.cell_of({7900, 3900})));
}

TEST(ShardMapTest, ShardsAreContiguousAndOrdered) {
  const grid::GridOverlay grid(Rect(0, 0, 6000, 1000), 6, 1);
  const ShardMap map(grid, 3);
  ASSERT_EQ(map.shard_count(), 3u);
  std::size_t last = 0;
  for (std::uint32_t col = 0; col < grid.cols(); ++col) {
    const std::size_t owner = map.shard_of_cell({col, 0});
    EXPECT_GE(owner, last);  // monotone left to right
    last = owner;
  }
  EXPECT_EQ(last, 2u);
}

TEST(ShardMapTest, ShardCountClampsToStripeCount) {
  const grid::GridOverlay grid(Rect(0, 0, 4000, 4000), 4, 4);
  const ShardMap map(grid, 16);
  EXPECT_EQ(map.shard_count(), 4u);
}

TEST(ShardMapTest, StripesByRowsWhenGridIsTaller) {
  const grid::GridOverlay grid(Rect(0, 0, 2000, 8000), 2, 8);
  const ShardMap map(grid, 4);
  ASSERT_EQ(map.shard_count(), 4u);
  // Rows 0-1 belong to shard 0, rows 6-7 to shard 3.
  EXPECT_EQ(map.shard_of_cell({0, 0}), 0u);
  EXPECT_EQ(map.shard_of_cell({1, 0}), 0u);
  EXPECT_EQ(map.shard_of_cell({0, 7}), 3u);
}

TEST(ShardMapTest, EscapeDistanceIgnoresUniverseEdges) {
  const grid::GridOverlay grid(Rect(0, 0, 4000, 4000), 4, 4);
  const ShardMap map(grid, 2);  // boundary at x = 2000
  // Shard 0: only its right side is internal.
  EXPECT_DOUBLE_EQ(map.escape_distance(0, {100, 2000}), 1900.0);
  // Shard 1: only its left side is internal.
  EXPECT_DOUBLE_EQ(map.escape_distance(1, {3900, 100}), 1900.0);
  // Point on the boundary itself: zero escape distance.
  EXPECT_DOUBLE_EQ(map.escape_distance(1, {2000, 500}), 0.0);
}

TEST(ShardMapTest, SingleShardEscapesNowhere) {
  const grid::GridOverlay grid(Rect(0, 0, 4000, 4000), 4, 4);
  const ShardMap map(grid, 1);
  EXPECT_TRUE(std::isinf(map.escape_distance(0, {2000, 2000})));
}

// ---------------------------------------------------------------------------
// ParallelTickExecutor
// ---------------------------------------------------------------------------

TEST(ParallelTickExecutorTest, RunsEveryTaskExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 4u}) {
    ParallelTickExecutor executor(threads);
    std::vector<int> hits(64, 0);
    std::vector<std::function<void()>> tasks;
    for (std::size_t i = 0; i < hits.size(); ++i) {
      tasks.push_back([&hits, i] { ++hits[i]; });
    }
    executor.run(tasks);
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
              static_cast<int>(hits.size()));
  }
}

TEST(ParallelTickExecutorTest, ReusableAcrossBatches) {
  ParallelTickExecutor executor(2);
  int total = 0;
  std::mutex m;
  for (int batch = 0; batch < 50; ++batch) {
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 8; ++i) {
      tasks.push_back([&] {
        std::lock_guard lock(m);
        ++total;
      });
    }
    executor.run(tasks);
  }
  EXPECT_EQ(total, 50 * 8);
}

TEST(ParallelTickExecutorTest, RethrowsTaskException) {
  for (const std::size_t threads : {1u, 3u}) {
    ParallelTickExecutor executor(threads);
    std::vector<std::function<void()>> tasks;
    tasks.push_back([] {});
    tasks.push_back([] { throw std::runtime_error("boom"); });
    tasks.push_back([] {});
    EXPECT_THROW(executor.run(tasks), std::runtime_error);
    // The pool survives a throwing batch.
    std::vector<std::function<void()>> ok{[] {}, [] {}};
    executor.run(ok);
  }
}

// ---------------------------------------------------------------------------
// ShardedServer on a hand-built world
// ---------------------------------------------------------------------------

alarms::SpatialAlarm public_alarm(alarms::AlarmId id, const Rect& region) {
  alarms::SpatialAlarm a;
  a.id = id;
  a.scope = alarms::AlarmScope::kPublic;
  a.region = region;
  a.message = "alert";
  return a;
}

/// 4 km x 4 km, 4x4 grid, two shards split at x = 2000. Alarm 0 straddles
/// the boundary; alarm 1 lives wholly in shard 1.
struct TwoShardWorld {
  TwoShardWorld() {
    store.install(public_alarm(0, Rect(1800, 1000, 2200, 1400)));
    store.install(public_alarm(1, Rect(3000, 3000, 3300, 3300)));
    server = std::make_unique<ShardedServer>(store, grid, 2, 8);
  }

  grid::GridOverlay grid{Rect(0, 0, 4000, 4000), 4, 4};
  alarms::AlarmStore store;
  std::unique_ptr<ShardedServer> server;
};

TEST(ShardedServerTest, BorderAlarmIsReplicatedToBothShards) {
  TwoShardWorld w;
  ASSERT_EQ(w.server->shard_count(), 2u);
  EXPECT_TRUE(w.server->shard_store(0).installed(0));
  EXPECT_TRUE(w.server->shard_store(1).installed(0));
  // The interior alarm lives only in its owning shard.
  EXPECT_FALSE(w.server->shard_store(0).installed(1));
  EXPECT_TRUE(w.server->shard_store(1).installed(1));
}

TEST(ShardedServerTest, HandoffTransfersSpentStateAcrossTheBoundary) {
  TwoShardWorld w;
  // Fire the border alarm from the shard-0 side.
  w.server->set_active_shard(0);
  const auto fired = w.server->handle_position_update(7, {1900, 1200}, 1);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 0u);

  // Cross into shard 1 and report from inside the same (replicated) alarm:
  // the handoff must have marked it spent, so it must NOT fire again.
  w.server->set_active_shard(1);
  const auto refired = w.server->handle_position_update(7, {2100, 1200}, 2);
  EXPECT_TRUE(refired.empty());
  EXPECT_TRUE(w.server->shard_store(1).spent(0, 7));

  // The handoff is an explicit, charged inter-shard message on the
  // receiving shard, sized by the real wire format.
  EXPECT_EQ(w.server->shard_metrics(1).handoff_messages, 1u);
  EXPECT_EQ(w.server->shard_metrics(1).handoff_bytes,
            wire::handoff_message_size(1));
  EXPECT_EQ(w.server->shard_metrics(0).handoff_messages, 0u);

  // Moving back is another handoff; alarm 0 stays spent in shard 0.
  w.server->set_active_shard(0);
  EXPECT_TRUE(w.server->handle_position_update(7, {1900, 1200}, 3).empty());
  EXPECT_EQ(w.server->shard_metrics(0).handoff_messages, 1u);
}

TEST(ShardedServerTest, FirstContactIsPlacementNotHandoff) {
  TwoShardWorld w;
  w.server->set_active_shard(1);
  (void)w.server->handle_position_update(3, {3500, 500}, 1);
  EXPECT_EQ(w.server->merged_metrics().handoff_messages, 0u);
}

TEST(ShardedServerTest, SafePeriodGrantIsCappedByEscapeDistance) {
  TwoShardWorld w;
  // Subscriber deep in shard 0 with alarm 0 spent for them: the shard-0
  // slice holds no relevant alarm, but alarm 1 (unknown to shard 0) is
  // still live 3 km away — an unclamped grant would be infinite and miss
  // it. The clamp caps the granted travel distance at the escape distance.
  w.server->set_active_shard(0);
  (void)w.server->handle_position_update(5, {1900, 1200}, 1);  // spends 0
  const double period =
      w.server->compute_safe_period(5, {400, 1200}, 20.0, 1.0);
  EXPECT_TRUE(std::isfinite(period));
  EXPECT_LE(period, (2000.0 - 400.0) / 20.0);
}

TEST(ShardedServerTest, MergedMetricsUseStableShardOrder) {
  TwoShardWorld w;
  w.server->set_active_shard(0);
  (void)w.server->handle_position_update(1, {500, 500}, 1);
  w.server->set_active_shard(1);
  (void)w.server->handle_position_update(2, {3500, 500}, 1);
  const sim::Metrics merged = w.server->merged_metrics();
  EXPECT_EQ(merged.uplink_messages,
            w.server->shard_metrics(0).uplink_messages +
                w.server->shard_metrics(1).uplink_messages);
  EXPECT_EQ(merged.uplink_messages, 2u);
}

// ---------------------------------------------------------------------------
// Sharded run mode: exactness against the monolithic server
// ---------------------------------------------------------------------------

core::ExperimentConfig cluster_config() {
  core::ExperimentConfig cfg;
  cfg.universe_km = 8.0;
  cfg.vehicles = 100;
  cfg.minutes = 3.0;
  cfg.alarm_count = 640;
  cfg.public_percent = 10.0;
  cfg.grid_cell_sqkm = 2.5;
  cfg.seed = 11;
  return cfg;
}

void expect_perfect(const sim::RunResult& r) {
  EXPECT_EQ(r.accuracy.missed, 0u) << r.strategy;
  EXPECT_EQ(r.accuracy.spurious, 0u) << r.strategy;
  EXPECT_EQ(r.accuracy.late, 0u) << r.strategy;
  EXPECT_GT(r.accuracy.expected, 0u) << "workload produced no triggers";
}

class ShardedAccuracyTest : public ::testing::Test {
 protected:
  ShardedAccuracyTest() : experiment_(cluster_config()) {}

  sim::RunResult run_sharded(const sim::Simulation::StrategyFactory& f) {
    return experiment_.simulation().run_sharded(f, {.shards = 4});
  }

  core::Experiment experiment_;
};

TEST_F(ShardedAccuracyTest, PeriodicIsPerfect) {
  expect_perfect(run_sharded(experiment_.periodic()));
}

TEST_F(ShardedAccuracyTest, SafePeriodIsPerfect) {
  expect_perfect(run_sharded(experiment_.safe_period()));
}

TEST_F(ShardedAccuracyTest, WeightedRectIsPerfect) {
  expect_perfect(run_sharded(experiment_.rect(saferegion::MotionModel(1.0, 32))));
}

TEST_F(ShardedAccuracyTest, PbsrIsPerfect) {
  saferegion::PyramidConfig cfg;
  cfg.height = 5;
  expect_perfect(run_sharded(experiment_.bitmap(cfg)));
}

TEST_F(ShardedAccuracyTest, CachedPbsrIsPerfect) {
  saferegion::PyramidConfig cfg;
  cfg.height = 5;
  expect_perfect(run_sharded(experiment_.bitmap_cached(cfg)));
}

TEST_F(ShardedAccuracyTest, OptimalIsPerfect) {
  expect_perfect(run_sharded(experiment_.optimal()));
}

/// Client-visible metrics must be *identical* to the monolithic run for
/// the strategies whose protocol is untouched by sharding (PRD, MWPSR,
/// PBSR, OPT): safe regions are computed within one grid cell, cells never
/// span shards, and every alarm intersecting a cell is replicated into its
/// shard. (SP is exempt — its grants are additionally escape-clamped; the
/// server_*_ops counters are exempt — per-shard R*-trees have different
/// shapes.)
class ShardedEqualityTest
    : public ::testing::TestWithParam<const char*> {
 protected:
  ShardedEqualityTest() : experiment_(cluster_config()) {}

  sim::Simulation::StrategyFactory factory() {
    const std::string which = GetParam();
    if (which == "prd") return experiment_.periodic();
    if (which == "mwpsr") {
      return experiment_.rect(saferegion::MotionModel(1.0, 32));
    }
    if (which == "pbsr") {
      saferegion::PyramidConfig cfg;
      cfg.height = 5;
      return experiment_.bitmap(cfg);
    }
    return experiment_.optimal();
  }

  core::Experiment experiment_;
};

TEST_P(ShardedEqualityTest, ClientVisibleMetricsMatchMonolithic) {
  const auto f = factory();
  const auto mono = experiment_.simulation().run(f);
  const auto sharded = experiment_.simulation().run_sharded(f, {.shards = 4});
  expect_perfect(mono);
  expect_perfect(sharded);

  EXPECT_EQ(sharded.trigger_log, mono.trigger_log);
  const sim::Metrics& a = mono.metrics;
  const sim::Metrics& b = sharded.metrics;
  EXPECT_EQ(b.uplink_messages, a.uplink_messages);
  EXPECT_EQ(b.uplink_bytes, a.uplink_bytes);
  EXPECT_EQ(b.downstream_region_bytes, a.downstream_region_bytes);
  EXPECT_EQ(b.downstream_notice_bytes, a.downstream_notice_bytes);
  EXPECT_EQ(b.client_checks, a.client_checks);
  EXPECT_EQ(b.client_check_ops, a.client_check_ops);
  EXPECT_EQ(b.safe_region_recomputes, a.safe_region_recomputes);
  EXPECT_EQ(b.triggers, a.triggers);
  EXPECT_EQ(b.region_payload_bytes.count(), a.region_payload_bytes.count());
  EXPECT_EQ(b.region_payload_bytes.sum(), a.region_payload_bytes.sum());
  EXPECT_EQ(b.region_payload_bytes.min(), a.region_payload_bytes.min());
  EXPECT_EQ(b.region_payload_bytes.max(), a.region_payload_bytes.max());
  // The monolithic run never pays inter-shard traffic.
  EXPECT_EQ(a.handoff_messages, 0u);
  EXPECT_EQ(a.handoff_bytes, 0u);
}

INSTANTIATE_TEST_SUITE_P(Strategies, ShardedEqualityTest,
                         ::testing::Values("prd", "mwpsr", "pbsr", "opt"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

TEST(ShardedSingleShardTest, SafePeriodDegeneratesToMonolithic) {
  // With one shard the escape distance is infinite, so SP's grants — and
  // therefore every metric — match the monolithic run exactly.
  core::Experiment experiment(cluster_config());
  const auto f = experiment.safe_period();
  const auto mono = experiment.simulation().run(f);
  const auto sharded = experiment.simulation().run_sharded(f, {.shards = 1});
  EXPECT_EQ(sharded.trigger_log, mono.trigger_log);
  EXPECT_EQ(sharded.metrics.uplink_messages, mono.metrics.uplink_messages);
  EXPECT_EQ(sharded.metrics.safe_region_recomputes,
            mono.metrics.safe_region_recomputes);
  EXPECT_EQ(sharded.metrics.handoff_messages, 0u);
}

TEST(ShardedHandoffTest, CrossingsProduceHandoffTraffic) {
  core::Experiment experiment(cluster_config());
  const auto run = experiment.simulation().run_sharded(
      experiment.periodic(), {.shards = 4});
  // Vehicles roam an 8 km universe split into 4 stripes for 3 minutes;
  // some must cross a boundary.
  EXPECT_GT(run.metrics.handoff_messages, 0u);
  EXPECT_GT(run.metrics.handoff_bytes, 0u);
  EXPECT_GE(run.metrics.handoff_bytes,
            run.metrics.handoff_messages * wire::handoff_message_size(0));
}

}  // namespace
}  // namespace salarm::cluster
