// Tests for the PositionSource implementations beyond the road-network
// generator: the random-waypoint model and recorded-trace replay —
// including driving a full metered simulation from a recorded trace.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "mobility/position_source.h"
#include "mobility/random_waypoint.h"
#include "mobility/trace_generator.h"
#include "roadnet/network_builder.h"
#include "strategies/rect_region_strategy.h"

namespace salarm::mobility {
namespace {

using geo::Point;
using geo::Rect;

const Rect kRegion(0, 0, 5000, 5000);

RandomWaypointConfig waypoint_config() {
  RandomWaypointConfig cfg;
  cfg.vehicle_count = 40;
  cfg.seed = 9;
  return cfg;
}

TEST(RandomWaypointTest, RejectsBadConfig) {
  RandomWaypointConfig cfg = waypoint_config();
  cfg.vehicle_count = 0;
  EXPECT_THROW(RandomWaypointSource(kRegion, cfg),
               salarm::PreconditionError);
  cfg = waypoint_config();
  cfg.speed_lo_mps = 0;
  EXPECT_THROW(RandomWaypointSource(kRegion, cfg),
               salarm::PreconditionError);
  EXPECT_THROW(RandomWaypointSource(Rect(0, 0, 0, 10), waypoint_config()),
               salarm::PreconditionError);
}

TEST(RandomWaypointTest, StaysInRegionAndRespectsSpeedBound) {
  RandomWaypointSource source(kRegion, waypoint_config());
  auto previous = source.samples();
  for (int t = 0; t < 500; ++t) {
    source.step();
    const auto& now = source.samples();
    for (std::size_t v = 0; v < now.size(); ++v) {
      EXPECT_TRUE(kRegion.contains(now[v].pos));
      EXPECT_LE(geo::distance(previous[v].pos, now[v].pos),
                source.max_speed_bound() * source.tick_seconds() + 1e-9);
    }
    previous = now;
  }
}

TEST(RandomWaypointTest, ResetReplaysIdentically) {
  RandomWaypointSource source(kRegion, waypoint_config());
  std::vector<std::vector<VehicleSample>> first;
  first.push_back(source.samples());
  for (int t = 0; t < 60; ++t) {
    source.step();
    first.push_back(source.samples());
  }
  source.reset();
  for (std::size_t t = 0; t < first.size(); ++t) {
    for (std::size_t v = 0; v < first[t].size(); ++v) {
      EXPECT_EQ(source.samples()[v].pos, first[t][v].pos);
    }
    if (t + 1 < first.size()) source.step();
  }
}

TEST(RandomWaypointTest, VehiclesMakeProgress) {
  RandomWaypointSource source(kRegion, waypoint_config());
  const auto start = source.samples();
  for (int t = 0; t < 300; ++t) source.step();
  std::size_t moved = 0;
  for (std::size_t v = 0; v < start.size(); ++v) {
    if (geo::distance(start[v].pos, source.samples()[v].pos) > 200.0) {
      ++moved;
    }
  }
  EXPECT_GT(moved, start.size() / 2);
}

TEST(RecordedTraceSourceTest, ReplaysTraceExactly) {
  roadnet::NetworkConfig net_cfg;
  net_cfg.width_m = 4000;
  net_cfg.height_m = 4000;
  Rng rng(2);
  const auto network = roadnet::build_synthetic_network(net_cfg, rng);
  TraceConfig cfg;
  cfg.vehicle_count = 10;
  cfg.seed = 4;
  TraceGenerator gen(network, cfg);
  const RecordedTrace trace = gen.record(30);

  RecordedTraceSource source(trace);
  EXPECT_EQ(source.vehicle_count(), 10u);
  EXPECT_EQ(source.tick_count(), 30u);
  for (std::size_t t = 0; t < trace.tick_count(); ++t) {
    for (VehicleId v = 0; v < trace.vehicle_count(); ++v) {
      EXPECT_EQ(source.samples()[v].pos, trace.sample(t, v).pos);
    }
    if (t + 1 < trace.tick_count()) source.step();
  }
  EXPECT_THROW(source.step(), salarm::PreconditionError);
  source.reset();
  EXPECT_EQ(source.tick_index(), 0u);
  // Extent covers every sample.
  for (std::size_t t = 0; t < trace.tick_count(); ++t) {
    for (VehicleId v = 0; v < trace.vehicle_count(); ++v) {
      EXPECT_TRUE(source.extent().contains(trace.sample(t, v).pos));
    }
  }
}

TEST(RecordedTraceSourceTest, DrivesAFullSimulation) {
  // A recorded trace (the path imported real-world traces take) must be a
  // drop-in workload for the metered simulator, with 100% accuracy.
  roadnet::NetworkConfig net_cfg;
  net_cfg.width_m = 6000;
  net_cfg.height_m = 6000;
  Rng rng(12);
  const auto network = roadnet::build_synthetic_network(net_cfg, rng);
  TraceConfig cfg;
  cfg.vehicle_count = 50;
  cfg.seed = 21;
  TraceGenerator gen(network, cfg);
  const RecordedTrace trace = gen.record(120);
  RecordedTraceSource source(trace);

  alarms::AlarmStore store;
  alarms::AlarmWorkloadConfig workload;
  workload.alarm_count = 300;
  workload.subscriber_count = 50;
  Rng arng(8);
  const geo::Rect universe = network.bounding_box();
  store.install_bulk(
      alarms::generate_alarm_workload(workload, universe, arng));
  grid::GridOverlay grid(universe, 4, 4);

  sim::Simulation simulation(source, store, grid, trace.tick_count());
  const auto run = simulation.run([&](net::ClientLink& link) {
    return std::make_unique<strategies::RectRegionStrategy>(
        link, 50, saferegion::MotionModel(1.0, 32));
  });
  EXPECT_EQ(run.accuracy.missed, 0u);
  EXPECT_EQ(run.accuracy.late, 0u);
  EXPECT_GT(run.accuracy.expected, 0u);
  EXPECT_LT(run.metrics.uplink_messages,
            static_cast<std::uint64_t>(50 * trace.tick_count()));
}

}  // namespace
}  // namespace salarm::mobility
