#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "geometry/rect.h"
#include "saferegion/motion_model.h"
#include "saferegion/mwpsr.h"

namespace salarm::saferegion {
namespace {

using geo::Point;
using geo::Rect;

const Rect kCell(0, 0, 1000, 1000);
const Point kCenter{500, 500};

MotionModel uniform() { return MotionModel::uniform(); }

TEST(WeightedPerimeterTest, UniformEqualsPerimeter) {
  const Rect r(100, 200, 400, 450);
  const QuadrantWeights quarters{{0.25, 0.25, 0.25, 0.25}};
  EXPECT_NEAR(weighted_perimeter(r, {200, 300}, quarters), r.perimeter(),
              1e-9);
  EXPECT_THROW(weighted_perimeter(r, {0, 0}, quarters),
               salarm::PreconditionError);
}

TEST(WeightedPerimeterTest, WeightsStretchTheObjective) {
  // All mass on quadrant I: only +x/+y extents count.
  const QuadrantWeights east_north{{1.0, 0.0, 0.0, 0.0}};
  const Rect r(0, 0, 10, 10);
  EXPECT_NEAR(weighted_perimeter(r, {2, 2}, east_north), 4.0 * (8 + 8), 1e-9);
}

TEST(MwpsrTest, RequiresPositionInCell) {
  EXPECT_THROW(
      compute_mwpsr({-1, 500}, 0.0, kCell, {}, uniform()),
      salarm::PreconditionError);
}

TEST(MwpsrTest, NoAlarmsYieldsWholeCell) {
  const auto r = compute_mwpsr(kCenter, 0.0, kCell, {}, uniform());
  EXPECT_EQ(r.rect, kCell);
  EXPECT_FALSE(r.inside_alarm);
}

TEST(MwpsrTest, PositionInsideAlarmReturnsIntersection) {
  const std::vector<Rect> alarms{Rect(400, 400, 700, 700),
                                 Rect(450, 300, 800, 650)};
  const auto r = compute_mwpsr(kCenter, 0.0, kCell, alarms, uniform());
  EXPECT_TRUE(r.inside_alarm);
  EXPECT_EQ(r.rect, Rect(450, 400, 700, 650));
}

TEST(MwpsrTest, SingleAlarmInQuadrantI) {
  // Alarm northeast of the subscriber; the region must stop at the alarm
  // in at least one axis while stretching fully elsewhere.
  const std::vector<Rect> alarms{Rect(700, 700, 800, 800)};
  const auto r = compute_mwpsr(kCenter, 0.0, kCell, alarms, uniform());
  EXPECT_FALSE(r.inside_alarm);
  EXPECT_TRUE(r.rect.contains(kCenter));
  EXPECT_TRUE(kCell.contains(r.rect));
  EXPECT_FALSE(r.rect.interiors_intersect(alarms[0]));
  // Optimal here: give up either the x-range beyond 700 or the y-range
  // beyond 700; both choices yield perimeter 2*(1000 + 700 + 500) hmm —
  // either way the rect must reach the three unconstrained cell borders.
  EXPECT_DOUBLE_EQ(r.rect.lo().x, 0.0);
  EXPECT_DOUBLE_EQ(r.rect.lo().y, 0.0);
  EXPECT_TRUE(r.rect.hi().x == 1000.0 || r.rect.hi().y == 1000.0);
}

TEST(MwpsrTest, AlarmStraddlingAxisBlocksBothQuadrants) {
  // Alarm spanning the +x axis east of the subscriber: any safe rectangle
  // with positive height must stop before the alarm's west edge.
  const std::vector<Rect> alarms{Rect(700, 400, 800, 600)};
  const auto r = compute_mwpsr(kCenter, 0.0, kCell, alarms, uniform());
  EXPECT_FALSE(r.rect.interiors_intersect(alarms[0]));
  EXPECT_TRUE(r.rect.contains(kCenter));
  // Height is positive (the cell is wide open north/south), so the east
  // edge must stop at 700.
  EXPECT_GT(r.rect.height(), 0.0);
  EXPECT_LE(r.rect.hi().x, 700.0 + 1e-9);
}

TEST(MwpsrTest, OverlappingAlarmsHandled) {
  // Two overlapping alarm regions (the case [10] cannot handle).
  const std::vector<Rect> alarms{Rect(600, 600, 800, 800),
                                 Rect(550, 650, 700, 900)};
  const auto r = compute_mwpsr(kCenter, 0.0, kCell, alarms, uniform());
  EXPECT_FALSE(r.inside_alarm);
  for (const Rect& a : alarms) {
    EXPECT_FALSE(r.rect.interiors_intersect(a));
  }
  EXPECT_TRUE(r.rect.contains(kCenter));
}

TEST(MwpsrTest, WeightedStretchesTowardHeading) {
  // Alarms at symmetric positions east and north; heading east should
  // prefer keeping the eastward extent.
  const std::vector<Rect> alarms{Rect(800, 420, 900, 580),   // east
                                 Rect(420, 800, 580, 900)};  // north
  const MotionModel steady(1.0, 2);
  const auto east = compute_mwpsr(kCenter, 0.0, kCell, alarms, steady);
  const auto north =
      compute_mwpsr(kCenter, M_PI / 2, kCell, alarms, steady);
  const double east_extent_when_east = east.rect.hi().x - kCenter.x;
  const double east_extent_when_north = north.rect.hi().x - kCenter.x;
  const double north_extent_when_east = east.rect.hi().y - kCenter.y;
  const double north_extent_when_north = north.rect.hi().y - kCenter.y;
  EXPECT_GE(east_extent_when_east, east_extent_when_north);
  EXPECT_GE(north_extent_when_north, north_extent_when_east);
}

TEST(MwpsrTest, NonWeightedIgnoresHeading) {
  const std::vector<Rect> alarms{Rect(800, 420, 900, 580),
                                 Rect(420, 800, 580, 900)};
  MwpsrOptions opts;
  opts.weighted = false;
  const MotionModel steady(1.0, 2);
  const auto a = compute_mwpsr(kCenter, 0.0, kCell, alarms, steady, opts);
  const auto b =
      compute_mwpsr(kCenter, M_PI / 2, kCell, alarms, steady, opts);
  EXPECT_EQ(a.rect, b.rect);
}

TEST(MwpsrTest, DegenerateAtCellBorder) {
  // Subscriber exactly on the cell's east border.
  const Point p{1000, 500};
  const auto r = compute_mwpsr(p, 0.0, kCell, {}, uniform());
  EXPECT_TRUE(r.rect.contains(p));
  EXPECT_DOUBLE_EQ(r.rect.hi().x, 1000.0);
}

TEST(MwpsrTest, PositionOnAlarmCornerIsNotInside) {
  // Alarm whose corner touches the position: under open-interior trigger
  // semantics the alarm has not fired, and the safe region may share its
  // boundary but not its interior.
  const std::vector<Rect> alarms{Rect(500, 500, 600, 600)};
  const auto r = compute_mwpsr(kCenter, 0.0, kCell, alarms, uniform());
  EXPECT_FALSE(r.inside_alarm);
  EXPECT_TRUE(r.rect.contains(kCenter));
  EXPECT_LE(geo::overlap_area(r.rect, alarms[0]), 1e-9);
}

TEST(MwpsrTest, PositionStrictlyInsideAlarmUsesDefinitionTwo) {
  const std::vector<Rect> alarms{Rect(400, 400, 700, 700)};
  const auto r = compute_mwpsr(kCenter, 0.0, kCell, alarms, uniform());
  EXPECT_TRUE(r.inside_alarm);
  EXPECT_EQ(r.rect, alarms[0]);
}

TEST(MwpsrTest, AutoAssemblyAvoidsNeedleCollapse) {
  // A thin alarm just south of the position spanning its x: the greedy
  // order can collapse the region to a zero-width needle while a wide
  // strip with a slightly larger perimeter exists. kAuto must find the
  // strip.
  const Rect cell(1600, 6400, 3200, 8000);
  const Point p{1843.0, 8000.0};  // riding the cell's top edge
  const std::vector<Rect> alarms{Rect(1700, 7850, 2100, 7950)};
  const auto r = compute_mwpsr(p, M_PI, cell, alarms, uniform());
  EXPECT_TRUE(r.rect.contains(p));
  EXPECT_GT(r.rect.width(), 100.0);  // not a needle
  EXPECT_LE(geo::overlap_area(r.rect, alarms[0]), 1e-9);
}

// ---------------------------------------------------------------------------
// Property sweep: soundness on random workloads, and greedy vs exhaustive.
// ---------------------------------------------------------------------------

struct MwpsrSweep {
  std::uint64_t seed;
  int alarm_count;
  bool weighted;
};

class MwpsrPropertyTest : public ::testing::TestWithParam<MwpsrSweep> {};

std::vector<Rect> random_alarms(Rng& rng, int n, const Rect& cell) {
  std::vector<Rect> out;
  for (int i = 0; i < n; ++i) {
    const Point c{rng.uniform(cell.lo().x - 100, cell.hi().x + 100),
                  rng.uniform(cell.lo().y - 100, cell.hi().y + 100)};
    const Rect a = Rect::centered_square(c, rng.uniform(20, 300));
    if (a.intersects(cell)) out.push_back(a);
  }
  return out;
}

TEST_P(MwpsrPropertyTest, SafeRegionIsSound) {
  const auto param = GetParam();
  Rng rng(param.seed);
  const MotionModel model(1.0, 8);
  for (int round = 0; round < 100; ++round) {
    const auto alarms = random_alarms(rng, param.alarm_count, kCell);
    const Point p{rng.uniform(0, 1000), rng.uniform(0, 1000)};
    const double heading = rng.uniform(-M_PI, M_PI);
    MwpsrOptions opts;
    opts.weighted = param.weighted;
    const auto r = compute_mwpsr(p, heading, kCell, alarms, model, opts);
    EXPECT_TRUE(r.rect.contains(p));
    EXPECT_TRUE(kCell.contains(r.rect));
    if (!r.inside_alarm) {
      for (const Rect& a : alarms) {
        // A degenerate (zero-area) safe region has an empty interior and
        // cannot overlap anything; overlap area (up to floating-point
        // epsilon on edges computed via relative extents) is the right
        // test.
        EXPECT_LE(geo::overlap_area(r.rect, a), 1e-9)
            << "round " << round << " alarm " << a.to_string()
            << " region " << r.rect.to_string();
      }
    }
    EXPECT_GT(r.ops, 0u);
  }
}

TEST_P(MwpsrPropertyTest, GreedyNeverBeatsExhaustive) {
  const auto param = GetParam();
  Rng rng(param.seed + 77);
  const MotionModel model(1.0, 4);
  for (int round = 0; round < 40; ++round) {
    const auto alarms =
        random_alarms(rng, std::min(param.alarm_count, 6), kCell);
    const Point p{rng.uniform(100, 900), rng.uniform(100, 900)};
    const double heading = rng.uniform(-M_PI, M_PI);
    MwpsrOptions greedy;
    greedy.weighted = param.weighted;
    greedy.assembly = MwpsrAssembly::kGreedy;
    greedy.area_tiebreak_epsilon = 0.0;  // pure paper objective
    MwpsrOptions exhaustive = greedy;
    exhaustive.assembly = MwpsrAssembly::kExhaustive;
    const auto g = compute_mwpsr(p, heading, kCell, alarms, model, greedy);
    const auto e =
        compute_mwpsr(p, heading, kCell, alarms, model, exhaustive);
    if (g.inside_alarm) continue;
    const QuadrantWeights w = param.weighted
                                  ? model.quadrant_weights(heading)
                                  : QuadrantWeights{{0.25, 0.25, 0.25, 0.25}};
    EXPECT_LE(weighted_perimeter(g.rect, p, w),
              weighted_perimeter(e.rect, p, w) + 1e-9);
    // Exhaustive must also be sound.
    for (const Rect& a : alarms) {
      EXPECT_LE(geo::overlap_area(e.rect, a), 1e-9);
    }
  }
}

TEST_P(MwpsrPropertyTest, PruningDoesNotChangeResult) {
  const auto param = GetParam();
  Rng rng(param.seed + 154);
  const MotionModel model(1.0, 16);
  for (int round = 0; round < 50; ++round) {
    const auto alarms = random_alarms(rng, param.alarm_count, kCell);
    const Point p{rng.uniform(0, 1000), rng.uniform(0, 1000)};
    const double heading = rng.uniform(-M_PI, M_PI);
    MwpsrOptions pruned;
    pruned.weighted = param.weighted;
    pruned.assembly = MwpsrAssembly::kExhaustive;
    pruned.area_tiebreak_epsilon = 0.0;  // exact argmax comparison
    MwpsrOptions unpruned = pruned;
    unpruned.prune_dominated = false;
    const auto a = compute_mwpsr(p, heading, kCell, alarms, model, pruned);
    const auto b = compute_mwpsr(p, heading, kCell, alarms, model, unpruned);
    EXPECT_EQ(a.rect, b.rect);
    EXPECT_LE(a.ops, b.ops);  // pruning can only reduce work downstream
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, MwpsrPropertyTest,
    ::testing::Values(MwpsrSweep{1, 3, true}, MwpsrSweep{2, 10, true},
                      MwpsrSweep{3, 30, true}, MwpsrSweep{4, 10, false},
                      MwpsrSweep{5, 30, false}, MwpsrSweep{6, 80, true}));

}  // namespace
}  // namespace salarm::saferegion
