#include <cmath>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "geometry/point.h"
#include "geometry/rect.h"

namespace salarm::geo {
namespace {

TEST(PointTest, Arithmetic) {
  const Point a{1.0, 2.0};
  const Point b{3.0, -1.0};
  EXPECT_EQ(a + b, (Point{4.0, 1.0}));
  EXPECT_EQ(a - b, (Point{-2.0, 3.0}));
  EXPECT_EQ(a * 2.0, (Point{2.0, 4.0}));
  EXPECT_EQ(2.0 * a, (Point{2.0, 4.0}));
  EXPECT_DOUBLE_EQ(dot(a, b), 1.0);
}

TEST(PointTest, DistanceAndNorm) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(squared_distance({0, 0}, {3, 4}), 25.0);
  EXPECT_DOUBLE_EQ(norm({-3, 4}), 5.0);
}

TEST(PointTest, Heading) {
  EXPECT_DOUBLE_EQ(heading({1, 0}), 0.0);
  EXPECT_DOUBLE_EQ(heading({0, 1}), M_PI / 2);
  EXPECT_DOUBLE_EQ(heading({-1, 0}), M_PI);
  EXPECT_DOUBLE_EQ(heading({0, -1}), -M_PI / 2);
  EXPECT_DOUBLE_EQ(heading({0, 0}), 0.0);  // documented convention
}

TEST(PointTest, Lerp) {
  const Point a{0, 0};
  const Point b{10, 20};
  EXPECT_EQ(lerp(a, b, 0.0), a);
  EXPECT_EQ(lerp(a, b, 1.0), b);
  EXPECT_EQ(lerp(a, b, 0.5), (Point{5, 10}));
}

TEST(PointTest, NormalizeAngle) {
  EXPECT_NEAR(normalize_angle(3 * M_PI), M_PI, 1e-12);
  EXPECT_NEAR(normalize_angle(-3 * M_PI), M_PI, 1e-12);
  EXPECT_NEAR(normalize_angle(M_PI / 4), M_PI / 4, 1e-12);
  EXPECT_NEAR(normalize_angle(-M_PI / 4), -M_PI / 4, 1e-12);
  const double a = normalize_angle(7.5 * M_PI);
  EXPECT_GT(a, -M_PI);
  EXPECT_LE(a, M_PI);
}

TEST(RectTest, ConstructionValidation) {
  EXPECT_NO_THROW(Rect(0, 0, 1, 1));
  EXPECT_NO_THROW(Rect(0, 0, 0, 0));  // degenerate allowed
  EXPECT_THROW(Rect(1, 0, 0, 1), PreconditionError);
  EXPECT_THROW(Rect(0, 1, 1, 0), PreconditionError);
}

TEST(RectTest, BoundingNormalizesCorners) {
  const Rect r = Rect::bounding({5, 1}, {2, 7});
  EXPECT_EQ(r, Rect(2, 1, 5, 7));
}

TEST(RectTest, CenteredSquare) {
  const Rect r = Rect::centered_square({10, 10}, 4.0);
  EXPECT_EQ(r, Rect(8, 8, 12, 12));
  EXPECT_THROW(Rect::centered_square({0, 0}, -1.0), PreconditionError);
}

TEST(RectTest, BasicMeasures) {
  const Rect r(1, 2, 4, 6);
  EXPECT_DOUBLE_EQ(r.width(), 3.0);
  EXPECT_DOUBLE_EQ(r.height(), 4.0);
  EXPECT_DOUBLE_EQ(r.area(), 12.0);
  EXPECT_DOUBLE_EQ(r.perimeter(), 14.0);
  EXPECT_DOUBLE_EQ(r.margin(), 7.0);
  EXPECT_EQ(r.center(), (Point{2.5, 4.0}));
  EXPECT_FALSE(r.degenerate());
  EXPECT_TRUE(Rect(0, 0, 0, 5).degenerate());
}

TEST(RectTest, ClosedVsInteriorPointContainment) {
  const Rect r(0, 0, 10, 10);
  // Interior point: both.
  EXPECT_TRUE(r.contains(Point{5, 5}));
  EXPECT_TRUE(r.interior_contains(Point{5, 5}));
  // Boundary point: closed only.
  EXPECT_TRUE(r.contains(Point{0, 5}));
  EXPECT_FALSE(r.interior_contains(Point{0, 5}));
  EXPECT_TRUE(r.contains(Point{10, 10}));
  EXPECT_FALSE(r.interior_contains(Point{10, 10}));
  // Outside: neither.
  EXPECT_FALSE(r.contains(Point{10.0001, 5}));
  EXPECT_FALSE(r.interior_contains(Point{-1, 5}));
}

TEST(RectTest, RectContainment) {
  const Rect outer(0, 0, 10, 10);
  EXPECT_TRUE(outer.contains(Rect(2, 2, 8, 8)));
  EXPECT_TRUE(outer.contains(outer));  // closed: itself
  EXPECT_FALSE(outer.contains(Rect(2, 2, 11, 8)));
}

TEST(RectTest, ClosedVsInteriorIntersection) {
  const Rect a(0, 0, 10, 10);
  const Rect touching(10, 0, 20, 10);   // share an edge
  const Rect corner(10, 10, 20, 20);    // share a corner
  const Rect overlapping(5, 5, 15, 15);
  const Rect disjoint(11, 0, 20, 10);
  EXPECT_TRUE(a.intersects(touching));
  EXPECT_FALSE(a.interiors_intersect(touching));
  EXPECT_TRUE(a.intersects(corner));
  EXPECT_FALSE(a.interiors_intersect(corner));
  EXPECT_TRUE(a.intersects(overlapping));
  EXPECT_TRUE(a.interiors_intersect(overlapping));
  EXPECT_FALSE(a.intersects(disjoint));
  EXPECT_FALSE(a.interiors_intersect(disjoint));
}

TEST(RectTest, IntersectionGeometry) {
  const Rect a(0, 0, 10, 10);
  const Rect b(5, 5, 15, 15);
  const auto i = a.intersection(b);
  ASSERT_TRUE(i.has_value());
  EXPECT_EQ(*i, Rect(5, 5, 10, 10));
  // Touching rectangles intersect in a degenerate rect.
  const auto t = a.intersection(Rect(10, 0, 20, 10));
  ASSERT_TRUE(t.has_value());
  EXPECT_TRUE(t->degenerate());
  EXPECT_FALSE(a.intersection(Rect(20, 20, 30, 30)).has_value());
}

TEST(RectTest, UnitedCoversBoth) {
  const Rect a(0, 0, 1, 1);
  const Rect b(5, -2, 6, 0.5);
  const Rect u = a.united(b);
  EXPECT_TRUE(u.contains(a));
  EXPECT_TRUE(u.contains(b));
  EXPECT_EQ(u, Rect(0, -2, 6, 1));
  EXPECT_EQ(a.united(Point{-1, 3}), Rect(-1, 0, 1, 3));
}

TEST(RectTest, Expanded) {
  EXPECT_EQ(Rect(0, 0, 10, 10).expanded(2), Rect(-2, -2, 12, 12));
  EXPECT_EQ(Rect(0, 0, 10, 10).expanded(-2), Rect(2, 2, 8, 8));
  EXPECT_THROW(Rect(0, 0, 2, 2).expanded(-2.5), PreconditionError);
}

TEST(RectTest, DistanceToPoint) {
  const Rect r(0, 0, 10, 10);
  EXPECT_DOUBLE_EQ(r.distance({5, 5}), 0.0);      // inside
  EXPECT_DOUBLE_EQ(r.distance({0, 0}), 0.0);      // boundary
  EXPECT_DOUBLE_EQ(r.distance({15, 5}), 5.0);     // beside
  EXPECT_DOUBLE_EQ(r.distance({13, 14}), 5.0);    // diagonal (3,4)
  EXPECT_DOUBLE_EQ(r.squared_distance({13, 14}), 25.0);
}

TEST(RectTest, BoundaryDistance) {
  const Rect r(0, 0, 10, 10);
  EXPECT_DOUBLE_EQ(r.boundary_distance({5, 5}), 5.0);   // center
  EXPECT_DOUBLE_EQ(r.boundary_distance({1, 5}), 1.0);   // near left edge
  EXPECT_DOUBLE_EQ(r.boundary_distance({0, 5}), 0.0);   // on the edge
  EXPECT_DOUBLE_EQ(r.boundary_distance({15, 5}), 5.0);  // outside
}

TEST(RectTest, OverlapArea) {
  EXPECT_DOUBLE_EQ(overlap_area(Rect(0, 0, 10, 10), Rect(5, 5, 15, 15)), 25.0);
  EXPECT_DOUBLE_EQ(overlap_area(Rect(0, 0, 10, 10), Rect(10, 0, 20, 10)), 0.0);
  EXPECT_DOUBLE_EQ(overlap_area(Rect(0, 0, 10, 10), Rect(20, 20, 30, 30)), 0.0);
  EXPECT_DOUBLE_EQ(overlap_area(Rect(0, 0, 4, 4), Rect(1, 1, 2, 2)), 1.0);
}

// ---------------------------------------------------------------------------
// Property sweeps over random rectangle pairs.
// ---------------------------------------------------------------------------

class RectPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RectPropertyTest, IntersectionConsistency) {
  Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    const Rect a = Rect::bounding({rng.uniform(-50, 50), rng.uniform(-50, 50)},
                                  {rng.uniform(-50, 50), rng.uniform(-50, 50)});
    const Rect b = Rect::bounding({rng.uniform(-50, 50), rng.uniform(-50, 50)},
                                  {rng.uniform(-50, 50), rng.uniform(-50, 50)});
    const auto inter = a.intersection(b);
    EXPECT_EQ(inter.has_value(), a.intersects(b));
    if (inter) {
      EXPECT_TRUE(a.contains(*inter));
      EXPECT_TRUE(b.contains(*inter));
      EXPECT_DOUBLE_EQ(inter->area(), overlap_area(a, b));
    }
    // interiors_intersect implies intersects; positive overlap area iff
    // interiors intersect.
    EXPECT_TRUE(!a.interiors_intersect(b) || a.intersects(b));
    EXPECT_EQ(overlap_area(a, b) > 0.0, a.interiors_intersect(b));
    // union contains both, intersection symmetric.
    const Rect u = a.united(b);
    EXPECT_TRUE(u.contains(a) && u.contains(b));
    EXPECT_EQ(a.intersects(b), b.intersects(a));
  }
}

TEST_P(RectPropertyTest, DistanceConsistency) {
  Rng rng(GetParam() * 31 + 1);
  for (int i = 0; i < 500; ++i) {
    const Rect r = Rect::bounding({rng.uniform(-50, 50), rng.uniform(-50, 50)},
                                  {rng.uniform(-50, 50), rng.uniform(-50, 50)});
    const Point p{rng.uniform(-80, 80), rng.uniform(-80, 80)};
    const double d = r.distance(p);
    EXPECT_GE(d, 0.0);
    EXPECT_EQ(d == 0.0, r.contains(p));
    EXPECT_NEAR(d * d, r.squared_distance(p), 1e-9);
    if (r.contains(p)) {
      // boundary distance bounded by half the smaller side
      EXPECT_LE(r.boundary_distance(p),
                std::min(r.width(), r.height()) / 2 + 1e-12);
    } else {
      EXPECT_DOUBLE_EQ(r.boundary_distance(p), d);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RectPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace salarm::geo
