#include <limits>
#include <queue>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "common/units.h"
#include "roadnet/network_builder.h"
#include "roadnet/road_network.h"
#include "roadnet/shortest_path.h"

namespace salarm::roadnet {
namespace {

TEST(RoadNetworkTest, AddNodesAndEdges) {
  RoadNetwork net;
  const NodeId a = net.add_node({0, 0});
  const NodeId b = net.add_node({100, 0});
  const NodeId c = net.add_node({100, 100});
  const EdgeId e1 = net.add_edge(a, b, 10.0, RoadClass::kArterial);
  net.add_edge(b, c, 20.0, RoadClass::kHighway);
  EXPECT_EQ(net.node_count(), 3u);
  EXPECT_EQ(net.edge_count(), 2u);
  EXPECT_DOUBLE_EQ(net.edge(e1).length_m, 100.0);
  EXPECT_DOUBLE_EQ(net.max_speed_mps(), 20.0);
  EXPECT_EQ(net.neighbors(b).size(), 2u);
  EXPECT_EQ(net.neighbors(a).size(), 1u);
  EXPECT_EQ(net.neighbors(a)[0].neighbor, b);
}

TEST(RoadNetworkTest, EdgeValidation) {
  RoadNetwork net;
  const NodeId a = net.add_node({0, 0});
  const NodeId b = net.add_node({1, 0});
  net.add_node({0, 0});  // duplicate position, distinct node
  EXPECT_THROW(net.add_edge(a, a, 10.0, RoadClass::kLocal),
               salarm::PreconditionError);  // self loop
  EXPECT_THROW(net.add_edge(a, 99, 10.0, RoadClass::kLocal),
               salarm::PreconditionError);  // missing endpoint
  EXPECT_THROW(net.add_edge(a, b, 0.0, RoadClass::kLocal),
               salarm::PreconditionError);  // zero speed
  EXPECT_THROW(net.add_edge(a, 2, 10.0, RoadClass::kLocal),
               salarm::PreconditionError);  // zero length
}

TEST(RoadNetworkTest, BoundingBoxAndComponents) {
  RoadNetwork net;
  EXPECT_THROW(net.bounding_box(), salarm::PreconditionError);
  const NodeId a = net.add_node({-5, 2});
  const NodeId b = net.add_node({10, 8});
  net.add_node({3, -7});  // isolated
  net.add_edge(a, b, 5.0, RoadClass::kLocal);
  EXPECT_EQ(net.bounding_box(), geo::Rect(-5, -7, 10, 8));
  EXPECT_EQ(net.largest_component_size(), 2u);
}

TEST(NetworkBuilderTest, RejectsBadConfig) {
  Rng rng(1);
  NetworkConfig cfg;
  cfg.width_m = -1;
  EXPECT_THROW(build_synthetic_network(cfg, rng), salarm::PreconditionError);
  cfg = {};
  cfg.spacing_m = 0;
  EXPECT_THROW(build_synthetic_network(cfg, rng), salarm::PreconditionError);
  cfg = {};
  cfg.jitter_fraction = 0.5;
  EXPECT_THROW(build_synthetic_network(cfg, rng), salarm::PreconditionError);
  cfg = {};
  cfg.local_drop_probability = 1.0;
  EXPECT_THROW(build_synthetic_network(cfg, rng), salarm::PreconditionError);
}

NetworkConfig small_config() {
  NetworkConfig cfg;
  cfg.width_m = 8000;
  cfg.height_m = 8000;
  cfg.spacing_m = 1000;
  return cfg;
}

class NetworkSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NetworkSeedTest, SyntheticNetworkIsConnectedAndInBounds) {
  Rng rng(GetParam());
  const NetworkConfig cfg = small_config();
  const RoadNetwork net = build_synthetic_network(cfg, rng);
  EXPECT_EQ(net.largest_component_size(), net.node_count());
  EXPECT_GE(net.node_count(), 81u);  // 9x9 lattice
  const geo::Rect box = net.bounding_box();
  EXPECT_NEAR(box.width(), cfg.width_m, 1e-6);
  EXPECT_NEAR(box.height(), cfg.height_m, 1e-6);
  // All three road classes present with their configured speeds.
  bool saw_highway = false;
  bool saw_arterial = false;
  bool saw_local = false;
  for (EdgeId e = 0; e < net.edge_count(); ++e) {
    const RoadEdge& edge = net.edge(e);
    switch (edge.road_class) {
      case RoadClass::kHighway:
        saw_highway = true;
        EXPECT_DOUBLE_EQ(edge.speed_mps, cfg.highway_speed_mps);
        break;
      case RoadClass::kArterial:
        saw_arterial = true;
        EXPECT_DOUBLE_EQ(edge.speed_mps, cfg.arterial_speed_mps);
        break;
      case RoadClass::kLocal:
        saw_local = true;
        EXPECT_DOUBLE_EQ(edge.speed_mps, cfg.local_speed_mps);
        break;
    }
  }
  EXPECT_TRUE(saw_highway);
  EXPECT_TRUE(saw_arterial);
  EXPECT_TRUE(saw_local);
}

TEST_P(NetworkSeedTest, DropNeverLeavesDegreeOneNodes) {
  Rng rng(GetParam() * 7 + 3);
  NetworkConfig cfg = small_config();
  cfg.local_drop_probability = 0.3;  // aggressive
  const RoadNetwork net = build_synthetic_network(cfg, rng);
  for (NodeId n = 0; n < net.node_count(); ++n) {
    EXPECT_GE(net.neighbors(n).size(), 2u) << "node " << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetworkSeedTest,
                         ::testing::Values(1u, 2u, 3u, 42u, 1234u));

TEST(NetworkBuilderTest, DeterministicForSameSeed) {
  Rng rng1(5);
  Rng rng2(5);
  const RoadNetwork a = build_synthetic_network(small_config(), rng1);
  const RoadNetwork b = build_synthetic_network(small_config(), rng2);
  ASSERT_EQ(a.node_count(), b.node_count());
  ASSERT_EQ(a.edge_count(), b.edge_count());
  for (NodeId n = 0; n < a.node_count(); ++n) {
    EXPECT_EQ(a.node(n).pos, b.node(n).pos);
  }
}

// ---------------------------------------------------------------------------
// Router
// ---------------------------------------------------------------------------

/// Plain Dijkstra used as the oracle for A* optimality checks.
double dijkstra_time(const RoadNetwork& net, NodeId from, NodeId to) {
  std::vector<double> dist(net.node_count(),
                           std::numeric_limits<double>::infinity());
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> open;
  dist[from] = 0;
  open.push({0, from});
  while (!open.empty()) {
    const auto [d, n] = open.top();
    open.pop();
    if (d > dist[n]) continue;
    for (const auto& adj : net.neighbors(n)) {
      const RoadEdge& e = net.edge(adj.edge);
      const double nd = d + e.length_m / e.speed_mps;
      if (nd < dist[adj.neighbor]) {
        dist[adj.neighbor] = nd;
        open.push({nd, adj.neighbor});
      }
    }
  }
  return dist[to];
}

TEST(RouterTest, TrivialAndUnreachableRoutes) {
  RoadNetwork net;
  const NodeId a = net.add_node({0, 0});
  const NodeId b = net.add_node({100, 0});
  const NodeId c = net.add_node({500, 500});  // disconnected
  net.add_node({600, 600});
  net.add_edge(a, b, 10.0, RoadClass::kLocal);
  Router router(net);
  const Route self = router.route(a, a);
  ASSERT_EQ(self.nodes.size(), 1u);
  EXPECT_DOUBLE_EQ(self.travel_time_s, 0.0);
  EXPECT_TRUE(router.route(a, c).empty());
  EXPECT_THROW(router.route(a, 99), salarm::PreconditionError);
}

TEST(RouterTest, PrefersFasterRoad) {
  // Two paths a->d: direct slow edge (length 200, speed 5 => 40s) vs detour
  // over fast edges (length 300, speed 30 => 10s).
  RoadNetwork net;
  const NodeId a = net.add_node({0, 0});
  const NodeId b = net.add_node({100, 100});
  const NodeId d = net.add_node({200, 0});
  net.add_edge(a, d, 5.0, RoadClass::kLocal);
  net.add_edge(a, b, 30.0, RoadClass::kHighway);
  net.add_edge(b, d, 30.0, RoadClass::kHighway);
  Router router(net);
  const Route r = router.route(a, d);
  ASSERT_EQ(r.nodes.size(), 3u);
  EXPECT_EQ(r.nodes[1], b);
  EXPECT_NEAR(r.travel_time_s, 2 * std::hypot(100, 100) / 30.0, 1e-9);
}

class RouterSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RouterSeedTest, AStarMatchesDijkstra) {
  Rng rng(GetParam());
  NetworkConfig cfg = small_config();
  const RoadNetwork net = build_synthetic_network(cfg, rng);
  Router router(net);
  for (int q = 0; q < 40; ++q) {
    const auto from = static_cast<NodeId>(rng.index(net.node_count()));
    const auto to = static_cast<NodeId>(rng.index(net.node_count()));
    const Route r = router.route(from, to);
    ASSERT_FALSE(r.empty());
    EXPECT_NEAR(r.travel_time_s, dijkstra_time(net, from, to), 1e-6);
    // Route is a connected node path from->to along existing edges.
    EXPECT_EQ(r.nodes.front(), from);
    EXPECT_EQ(r.nodes.back(), to);
    for (std::size_t i = 0; i + 1 < r.nodes.size(); ++i) {
      bool adjacent = false;
      for (const auto& adj : net.neighbors(r.nodes[i])) {
        adjacent |= adj.neighbor == r.nodes[i + 1];
      }
      EXPECT_TRUE(adjacent) << "leg " << i << " not an edge";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RouterSeedTest,
                         ::testing::Values(7u, 8u, 9u));

TEST(RouterTest, ReusableAcrossQueries) {
  Rng rng(11);
  const RoadNetwork net = build_synthetic_network(small_config(), rng);
  Router router(net);
  const Route first = router.route(0, static_cast<NodeId>(net.node_count() - 1));
  const Route again = router.route(0, static_cast<NodeId>(net.node_count() - 1));
  EXPECT_EQ(first.nodes, again.nodes);
  EXPECT_DOUBLE_EQ(first.travel_time_s, again.travel_time_s);
}

}  // namespace
}  // namespace salarm::roadnet
