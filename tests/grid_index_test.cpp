#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "alarms/grid_index.h"
#include "common/error.h"
#include "common/rng.h"
#include "index/rstar_tree.h"

namespace salarm::alarms {
namespace {

using geo::Point;
using geo::Rect;

const Rect kUniverse(0, 0, 10000, 10000);

TEST(GridAlarmIndexTest, InsertEraseBasics) {
  grid::GridOverlay overlay(kUniverse, 10, 10);
  GridAlarmIndex index(overlay);
  EXPECT_EQ(index.size(), 0u);
  index.insert(0, Rect(100, 100, 300, 300));
  index.insert(1, Rect(900, 900, 1200, 1100));  // spans multiple buckets
  EXPECT_EQ(index.size(), 2u);
  EXPECT_TRUE(index.erase(0, Rect(100, 100, 300, 300)));
  EXPECT_FALSE(index.erase(0, Rect(100, 100, 300, 300)));
  EXPECT_FALSE(index.erase(1, Rect(0, 0, 1, 1)));  // wrong region
  EXPECT_EQ(index.size(), 1u);
}

TEST(GridAlarmIndexTest, RejectsOutOfUniverseRegion) {
  grid::GridOverlay overlay(kUniverse, 10, 10);
  GridAlarmIndex index(overlay);
  EXPECT_THROW(index.insert(0, Rect(9000, 9000, 11000, 9500)),
               salarm::PreconditionError);
}

TEST(GridAlarmIndexTest, SpanningAlarmVisitedOnce) {
  grid::GridOverlay overlay(kUniverse, 10, 10);
  GridAlarmIndex index(overlay);
  // Covers a 3x3 block of buckets.
  index.insert(7, Rect(1500, 1500, 3500, 3500));
  int visits = 0;
  index.visit(Rect(0, 0, 10000, 10000), [&](AlarmId id, const Rect&) {
    EXPECT_EQ(id, 7u);
    ++visits;
    return true;
  });
  EXPECT_EQ(visits, 1);
}

TEST(GridAlarmIndexTest, ContainingPoint) {
  grid::GridOverlay overlay(kUniverse, 10, 10);
  GridAlarmIndex index(overlay);
  index.insert(0, Rect(100, 100, 500, 500));
  index.insert(1, Rect(400, 400, 900, 900));
  auto hits = index.containing({450, 450});
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<AlarmId>{0, 1}));
  EXPECT_TRUE(index.containing({5000, 5000}).empty());
}

TEST(GridAlarmIndexTest, BucketAccessCounter) {
  grid::GridOverlay overlay(kUniverse, 10, 10);
  GridAlarmIndex index(overlay);
  index.insert(0, Rect(100, 100, 200, 200));
  index.reset_bucket_accesses();
  (void)index.containing({150, 150});
  EXPECT_EQ(index.bucket_accesses(), 1u);  // point query = one bucket
  (void)index.containing({150, 150});
  EXPECT_EQ(index.bucket_accesses(), 2u);
  // A window spanning 4 buckets.
  index.visit(Rect(500, 500, 1500, 1500),
              [](AlarmId, const Rect&) { return true; });
  EXPECT_EQ(index.bucket_accesses(), 6u);
}

class GridIndexEquivalenceTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GridIndexEquivalenceTest, AgreesWithRStarTree) {
  Rng rng(GetParam());
  grid::GridOverlay overlay(kUniverse, 16, 16);
  GridAlarmIndex grid_index(overlay);
  index::RStarTree tree;

  std::vector<std::pair<AlarmId, Rect>> reference;
  for (AlarmId id = 0; id < 500; ++id) {
    const Point c{rng.uniform(300, 9700), rng.uniform(300, 9700)};
    const Rect region = Rect::centered_square(c, rng.uniform(50, 500));
    grid_index.insert(id, region);
    tree.insert({region, id});
    reference.emplace_back(id, region);
  }

  // Random window queries agree with the tree and with brute force.
  for (int q = 0; q < 60; ++q) {
    const Point c{rng.uniform(0, 10000), rng.uniform(0, 10000)};
    const auto window =
        Rect::centered_square(c, rng.uniform(100, 3000)).intersection(
            kUniverse);
    if (!window) continue;
    std::set<AlarmId> from_grid;
    grid_index.visit(*window, [&](AlarmId id, const Rect&) {
      from_grid.insert(id);
      return true;
    });
    std::set<AlarmId> from_tree;
    for (const auto& e : tree.search(*window)) {
      from_tree.insert(static_cast<AlarmId>(e.id));
    }
    std::set<AlarmId> brute;
    for (const auto& [id, region] : reference) {
      if (region.intersects(*window)) brute.insert(id);
    }
    EXPECT_EQ(from_grid, brute);
    EXPECT_EQ(from_tree, brute);
  }

  // Erase half and re-check point queries.
  for (std::size_t i = 0; i < reference.size(); i += 2) {
    EXPECT_TRUE(grid_index.erase(reference[i].first, reference[i].second));
  }
  for (int q = 0; q < 40; ++q) {
    const Point p{rng.uniform(0, 10000), rng.uniform(0, 10000)};
    auto hits = grid_index.containing(p);
    std::sort(hits.begin(), hits.end());
    std::vector<AlarmId> brute;
    for (std::size_t i = 1; i < reference.size(); i += 2) {
      if (reference[i].second.contains(p)) brute.push_back(reference[i].first);
    }
    std::sort(brute.begin(), brute.end());
    EXPECT_EQ(hits, brute);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridIndexEquivalenceTest,
                         ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace salarm::alarms
