// Integration tests: every processing strategy must reproduce the oracle's
// trigger sequence exactly (the paper's 100% accuracy requirement) on a
// real workload, and the comparative metric orderings the paper reports
// must hold.
#include <algorithm>
#include <cmath>
#include <thread>

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "sim/cost_model.h"

namespace salarm {
namespace {

core::ExperimentConfig small_config() {
  core::ExperimentConfig cfg;
  cfg.universe_km = 8.0;
  cfg.vehicles = 120;
  cfg.minutes = 4.0;
  cfg.alarm_count = 700;  // keeps the per-km² density near the paper's
  cfg.public_percent = 10.0;
  cfg.grid_cell_sqkm = 2.5;
  cfg.seed = 7;
  return cfg;
}

class StrategyAccuracyTest : public ::testing::Test {
 protected:
  StrategyAccuracyTest() : experiment_(small_config()) {}
  core::Experiment experiment_;
};

void expect_perfect(const sim::RunResult& r) {
  EXPECT_EQ(r.accuracy.missed, 0u) << r.strategy;
  EXPECT_EQ(r.accuracy.spurious, 0u) << r.strategy;
  EXPECT_EQ(r.accuracy.late, 0u) << r.strategy;
  EXPECT_GT(r.accuracy.expected, 0u) << "workload produced no triggers";
  EXPECT_EQ(r.metrics.triggers, r.accuracy.expected) << r.strategy;
}

TEST_F(StrategyAccuracyTest, PeriodicIsPerfect) {
  expect_perfect(experiment_.simulation().run(experiment_.periodic()));
}

TEST_F(StrategyAccuracyTest, SafePeriodIsPerfect) {
  expect_perfect(experiment_.simulation().run(experiment_.safe_period()));
}

TEST_F(StrategyAccuracyTest, WeightedRectIsPerfect) {
  expect_perfect(experiment_.simulation().run(
      experiment_.rect(saferegion::MotionModel(1.0, 32))));
}

TEST_F(StrategyAccuracyTest, NonWeightedRectIsPerfect) {
  saferegion::MwpsrOptions opts;
  opts.weighted = false;
  expect_perfect(experiment_.simulation().run(
      experiment_.rect(saferegion::MotionModel::uniform(), opts)));
}

TEST_F(StrategyAccuracyTest, GbsrIsPerfect) {
  saferegion::PyramidConfig cfg;
  cfg.height = 1;
  expect_perfect(experiment_.simulation().run(experiment_.bitmap(cfg)));
}

TEST_F(StrategyAccuracyTest, PbsrIsPerfect) {
  saferegion::PyramidConfig cfg;
  cfg.height = 5;
  expect_perfect(experiment_.simulation().run(experiment_.bitmap(cfg)));
}

TEST_F(StrategyAccuracyTest, OptimalIsPerfect) {
  expect_perfect(experiment_.simulation().run(experiment_.optimal()));
}

TEST_F(StrategyAccuracyTest, ExhaustiveRectIsPerfect) {
  saferegion::MwpsrOptions opts;
  opts.assembly = saferegion::MwpsrAssembly::kExhaustive;
  expect_perfect(experiment_.simulation().run(
      experiment_.rect(saferegion::MotionModel(1.0, 8), opts)));
}

// ---------------------------------------------------------------------------
// Comparative orderings from the paper's evaluation.
// ---------------------------------------------------------------------------

class StrategyComparisonTest : public ::testing::Test {
 protected:
  StrategyComparisonTest() : experiment_(small_config()) {
    prd_ = experiment_.simulation().run(experiment_.periodic());
    sp_ = experiment_.simulation().run(experiment_.safe_period());
    mwpsr_ = experiment_.simulation().run(
        experiment_.rect(saferegion::MotionModel(1.0, 32)));
    saferegion::PyramidConfig pyramid;
    pyramid.height = 5;
    pbsr_ = experiment_.simulation().run(experiment_.bitmap(pyramid));
    opt_ = experiment_.simulation().run(experiment_.optimal());
  }

  core::Experiment experiment_;
  sim::RunResult prd_, sp_, mwpsr_, pbsr_, opt_;
};

TEST_F(StrategyComparisonTest, PeriodicSendsEverySample) {
  const auto expected = static_cast<std::uint64_t>(
      experiment_.config().vehicles * experiment_.simulation().ticks());
  EXPECT_EQ(prd_.metrics.uplink_messages, expected);
}

TEST_F(StrategyComparisonTest, MessageOrderingMatchesFigure6a) {
  // OPT <= safe-region approaches < SP << PRD.
  EXPECT_LT(opt_.metrics.uplink_messages, sp_.metrics.uplink_messages);
  EXPECT_LT(mwpsr_.metrics.uplink_messages, sp_.metrics.uplink_messages);
  EXPECT_LT(pbsr_.metrics.uplink_messages, sp_.metrics.uplink_messages);
  EXPECT_LT(sp_.metrics.uplink_messages, prd_.metrics.uplink_messages);
  // Safe region approaches use a small fraction of the PRD firehose
  // (the paper reports <3%; allow slack at this reduced scale).
  EXPECT_LT(mwpsr_.metrics.uplink_messages,
            prd_.metrics.uplink_messages / 10);
}

TEST_F(StrategyComparisonTest, ClientEnergyOrderingMatchesFigure6c) {
  const sim::CostModel cost;
  EXPECT_LT(cost.client_energy_mwh(mwpsr_.metrics),
            cost.client_energy_mwh(opt_.metrics));
  EXPECT_LT(cost.client_energy_mwh(pbsr_.metrics),
            cost.client_energy_mwh(opt_.metrics));
}

TEST_F(StrategyComparisonTest, ServerLoadOrderingMatchesFigure6d) {
  const sim::CostModel cost;
  EXPECT_LT(cost.server_total_minutes(mwpsr_.metrics),
            cost.server_total_minutes(prd_.metrics));
  EXPECT_LT(cost.server_total_minutes(pbsr_.metrics),
            cost.server_total_minutes(prd_.metrics));
  EXPECT_LT(cost.server_total_minutes(mwpsr_.metrics),
            cost.server_total_minutes(sp_.metrics));
  // PRD does no safe-region computation at all.
  EXPECT_EQ(prd_.metrics.server_region_ops, 0u);
}

TEST_F(StrategyComparisonTest, DownstreamBandwidthOrderingMatchesFigure6b) {
  // Safe-region approaches ship far less than OPT's full alarm pushes.
  EXPECT_LT(pbsr_.metrics.downstream_region_bytes,
            opt_.metrics.downstream_region_bytes);
  EXPECT_LT(mwpsr_.metrics.downstream_region_bytes,
            opt_.metrics.downstream_region_bytes);
}

TEST_F(StrategyComparisonTest, RunsAreReproducible) {
  const auto again = experiment_.simulation().run(
      experiment_.rect(saferegion::MotionModel(1.0, 32)));
  EXPECT_EQ(again.metrics.uplink_messages, mwpsr_.metrics.uplink_messages);
  EXPECT_EQ(again.metrics.server_alarm_ops, mwpsr_.metrics.server_alarm_ops);
  EXPECT_EQ(again.metrics.downstream_region_bytes,
            mwpsr_.metrics.downstream_region_bytes);
  EXPECT_EQ(again.metrics.triggers, mwpsr_.metrics.triggers);
}

TEST_F(StrategyComparisonTest, AllStrategiesTriggerTheSameEvents) {
  EXPECT_EQ(prd_.metrics.triggers, opt_.metrics.triggers);
  EXPECT_EQ(sp_.metrics.triggers, opt_.metrics.triggers);
  EXPECT_EQ(mwpsr_.metrics.triggers, opt_.metrics.triggers);
  EXPECT_EQ(pbsr_.metrics.triggers, opt_.metrics.triggers);
}

// ---------------------------------------------------------------------------
// Parameter trends within a strategy family.
// ---------------------------------------------------------------------------

TEST(StrategyTrendTest, DeeperPyramidsSendFewerMessages) {
  core::ExperimentConfig cfg = small_config();
  cfg.public_percent = 20.0;  // density high enough for GBSR to hurt
  core::Experiment experiment(cfg);
  saferegion::PyramidConfig p1;
  p1.height = 1;
  const auto gbsr = experiment.simulation().run(experiment.bitmap(p1));
  saferegion::PyramidConfig p5;
  p5.height = 5;
  const auto pbsr = experiment.simulation().run(experiment.bitmap(p5));
  EXPECT_LT(pbsr.metrics.uplink_messages, gbsr.metrics.uplink_messages);
  // Deeper pyramids also refine coverage, costing more client ops/check.
  EXPECT_GT(static_cast<double>(pbsr.metrics.client_check_ops) /
                static_cast<double>(pbsr.metrics.client_checks),
            0.99 * static_cast<double>(gbsr.metrics.client_check_ops) /
                static_cast<double>(gbsr.metrics.client_checks));
}

TEST(StrategyTrendTest, LargerCellsMeanFewerMessagesForRect) {
  core::ExperimentConfig small_cells = small_config();
  small_cells.grid_cell_sqkm = 0.4;
  core::ExperimentConfig large_cells = small_config();
  large_cells.grid_cell_sqkm = 10.0;
  core::Experiment a(small_cells);
  core::Experiment b(large_cells);
  const auto model = saferegion::MotionModel(1.0, 32);
  const auto small_run = a.simulation().run(a.rect(model));
  const auto large_run = b.simulation().run(b.rect(model));
  EXPECT_LT(large_run.metrics.uplink_messages,
            small_run.metrics.uplink_messages);
}

TEST(StrategyTrendTest, DownstreamLossNeverCostsAccuracy) {
  core::Experiment experiment(small_config());
  const saferegion::MotionModel model(1.0, 32);
  const auto clean = experiment.simulation().run(experiment.rect(model));

  net::ChannelConfig lossy_channel;
  lossy_channel.downlink_loss = 0.4;
  experiment.enable_channel(lossy_channel);
  const auto lossy = experiment.simulation().run(experiment.rect(model));
  EXPECT_EQ(lossy.accuracy.missed, 0u);
  EXPECT_EQ(lossy.accuracy.late, 0u);
  EXPECT_GT(lossy.metrics.uplink_messages, clean.metrics.uplink_messages);

  saferegion::PyramidConfig pyramid;
  pyramid.height = 4;
  const auto lossy_bitmap =
      experiment.simulation().run(experiment.bitmap(pyramid));
  EXPECT_EQ(lossy_bitmap.accuracy.missed, 0u);
  EXPECT_EQ(lossy_bitmap.accuracy.late, 0u);
}

TEST(StrategyTrendTest, CornerBaselineMissesTriggers) {
  // The paper's claim about [10], at integration level: the corner
  // baseline loses alarms on a real workload.
  core::Experiment experiment(small_config());
  const auto run = experiment.simulation().run(
      experiment.rect_corner_baseline(saferegion::MotionModel(1.0, 32)));
  EXPECT_GT(run.accuracy.missed + run.accuracy.late, 0u);
}

TEST(StrategyTrendTest, PublicBitmapCacheKeepsAccuracyAndCutsOps) {
  core::ExperimentConfig cfg = small_config();
  cfg.public_percent = 20.0;  // make the shared public work dominant
  core::Experiment experiment(cfg);
  saferegion::PyramidConfig pyramid;
  pyramid.height = 5;
  const auto plain = experiment.simulation().run(experiment.bitmap(pyramid));
  const auto cached =
      experiment.simulation().run(experiment.bitmap_cached(pyramid));
  EXPECT_EQ(cached.accuracy.missed, 0u);
  EXPECT_EQ(cached.accuracy.late, 0u);
  EXPECT_EQ(cached.accuracy.spurious, 0u);
  EXPECT_EQ(cached.metrics.triggers, plain.metrics.triggers);
  // The shared public bitmap is built once per cell instead of once per
  // recompute: substantially fewer safe-region ops.
  EXPECT_LT(cached.metrics.server_region_ops,
            plain.metrics.server_region_ops);
}

TEST(StrategyTrendTest, MorePublicAlarmsMeansMoreWork) {
  core::ExperimentConfig low = small_config();
  low.public_percent = 1.0;
  core::ExperimentConfig high = small_config();
  high.public_percent = 20.0;
  core::Experiment a(low);
  core::Experiment b(high);
  saferegion::PyramidConfig pyramid;
  pyramid.height = 5;
  const auto low_run = a.simulation().run(a.bitmap(pyramid));
  const auto high_run = b.simulation().run(b.bitmap(pyramid));
  EXPECT_LT(low_run.metrics.uplink_messages,
            high_run.metrics.uplink_messages);
  EXPECT_LT(low_run.metrics.triggers, high_run.metrics.triggers);
}

// ---------------------------------------------------------------------------
// Cluster determinism: a sharded run is bit-identical for any thread count.
// The fan-out groups subscribers by owning shard in stable order and merges
// per-shard results in stable shard order, so nothing — not even the
// floating-point payload statistics — may depend on scheduling.
// ---------------------------------------------------------------------------

void expect_bit_identical(const sim::RunResult& a, const sim::RunResult& b) {
  EXPECT_EQ(b.trigger_log, a.trigger_log);
  const sim::Metrics& m = a.metrics;
  const sim::Metrics& n = b.metrics;
  EXPECT_EQ(n.uplink_messages, m.uplink_messages);
  EXPECT_EQ(n.uplink_bytes, m.uplink_bytes);
  EXPECT_EQ(n.downstream_region_bytes, m.downstream_region_bytes);
  EXPECT_EQ(n.downstream_notice_bytes, m.downstream_notice_bytes);
  EXPECT_EQ(n.client_checks, m.client_checks);
  EXPECT_EQ(n.client_check_ops, m.client_check_ops);
  EXPECT_EQ(n.server_alarm_ops, m.server_alarm_ops);
  EXPECT_EQ(n.server_region_ops, m.server_region_ops);
  EXPECT_EQ(n.handoff_messages, m.handoff_messages);
  EXPECT_EQ(n.handoff_bytes, m.handoff_bytes);
  EXPECT_EQ(n.safe_region_recomputes, m.safe_region_recomputes);
  EXPECT_EQ(n.triggers, m.triggers);
  EXPECT_EQ(n.region_payload_bytes.count(), m.region_payload_bytes.count());
  EXPECT_EQ(n.region_payload_bytes.sum(), m.region_payload_bytes.sum());
  EXPECT_EQ(n.region_payload_bytes.mean(), m.region_payload_bytes.mean());
  EXPECT_EQ(n.region_payload_bytes.variance(),
            m.region_payload_bytes.variance());
  EXPECT_EQ(n.region_payload_bytes.min(), m.region_payload_bytes.min());
  EXPECT_EQ(n.region_payload_bytes.max(), m.region_payload_bytes.max());
}

class ShardedDeterminismTest : public ::testing::Test {
 protected:
  ShardedDeterminismTest() : experiment_(small_config()) {}

  void check(const sim::Simulation::StrategyFactory& factory) {
    const auto ref = experiment_.simulation().run_sharded(
        factory, {.shards = 4, .threads = 1});
    expect_perfect(ref);
    const std::size_t hw = std::max<std::size_t>(
        2, std::thread::hardware_concurrency());
    for (const std::size_t threads : {std::size_t{2}, hw}) {
      expect_bit_identical(ref, experiment_.simulation().run_sharded(
                                    factory, {.shards = 4,
                                              .threads = threads}));
    }
  }

  core::Experiment experiment_;
};

TEST_F(ShardedDeterminismTest, MwpsrBitIdenticalAcrossThreadCounts) {
  check(experiment_.rect(saferegion::MotionModel(1.0, 32)));
}

TEST_F(ShardedDeterminismTest, SafePeriodBitIdenticalAcrossThreadCounts) {
  check(experiment_.safe_period());
}

TEST_F(ShardedDeterminismTest, PbsrBitIdenticalAcrossThreadCounts) {
  saferegion::PyramidConfig pyramid;
  pyramid.height = 5;
  check(experiment_.bitmap(pyramid));
}

}  // namespace
}  // namespace salarm
