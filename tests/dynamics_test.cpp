// Dynamics-tier tests (DESIGN.md §8): churn scheduler determinism and
// timeline invariants, the outstanding-grant session index, the client-side
// bitmap shrink, and — the paper's core requirement carried over to a
// time-varying alarm set — 100% accuracy for every strategy under churn,
// monolithic and sharded, bit-identical at any thread count.
#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <tuple>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/experiment.h"
#include "dynamics/churn.h"
#include "dynamics/session_index.h"
#include "saferegion/pyramid.h"

namespace salarm {
namespace {

// ---------------------------------------------------------------------------
// AlarmScheduler: the precomputed churn timeline.
// ---------------------------------------------------------------------------

std::vector<alarms::SpatialAlarm> sparse_seed_alarms() {
  std::vector<alarms::SpatialAlarm> alarms;
  for (const alarms::AlarmId id : {0u, 3u, 17u}) {
    alarms::SpatialAlarm a;
    a.id = id;
    a.scope = alarms::AlarmScope::kPublic;
    a.region = geo::Rect(100.0 * id, 0.0, 100.0 * id + 50.0, 50.0);
    alarms.push_back(a);
  }
  return alarms;
}

dynamics::ChurnConfig busy_churn() {
  dynamics::ChurnConfig cfg;
  cfg.installs_per_tick = 1.5;
  cfg.removes_per_tick = 0.75;
  cfg.ttl_ticks_lo = 5;
  cfg.ttl_ticks_hi = 20;
  cfg.region_side_lo = 50.0;
  cfg.region_side_hi = 200.0;
  cfg.subscriber_count = 40;
  return cfg;
}

const geo::Rect kUniverse(0.0, 0.0, 4000.0, 4000.0);

TEST(AlarmSchedulerTest, SameSeedReplaysIdentically) {
  const auto seed_alarms = sparse_seed_alarms();
  dynamics::AlarmScheduler a(busy_churn(), kUniverse, seed_alarms, 200, 99);
  dynamics::AlarmScheduler b(busy_churn(), kUniverse, seed_alarms, 200, 99);
  ASSERT_EQ(a.timeline().size(), b.timeline().size());
  EXPECT_GT(a.timeline().size(), 100u);
  for (std::size_t i = 0; i < a.timeline().size(); ++i) {
    const auto& x = a.timeline()[i];
    const auto& y = b.timeline()[i];
    EXPECT_EQ(x.tick, y.tick);
    EXPECT_EQ(x.kind, y.kind);
    EXPECT_EQ(x.id, y.id);
    EXPECT_EQ(x.alarm.region.lo().x, y.alarm.region.lo().x);
    EXPECT_EQ(x.alarm.subscribers, y.alarm.subscribers);
  }
}

TEST(AlarmSchedulerTest, DifferentSeedsDiverge) {
  const auto seed_alarms = sparse_seed_alarms();
  dynamics::AlarmScheduler a(busy_churn(), kUniverse, seed_alarms, 200, 99);
  dynamics::AlarmScheduler b(busy_churn(), kUniverse, seed_alarms, 200, 100);
  bool differ = a.timeline().size() != b.timeline().size();
  for (std::size_t i = 0;
       !differ && i < std::min(a.timeline().size(), b.timeline().size());
       ++i) {
    differ = a.timeline()[i].tick != b.timeline()[i].tick ||
             a.timeline()[i].id != b.timeline()[i].id;
  }
  EXPECT_TRUE(differ);
}

TEST(AlarmSchedulerTest, TimelineInvariantsHold) {
  const auto seed_alarms = sparse_seed_alarms();
  const std::uint64_t ticks = 300;
  dynamics::AlarmScheduler scheduler(busy_churn(), kUniverse, seed_alarms,
                                     ticks, 1234);
  EXPECT_EQ(scheduler.first_new_id(), 18u);  // one past the largest seed id

  std::set<alarms::AlarmId> live;
  for (const auto& a : seed_alarms) live.insert(a.id);
  std::uint64_t last_tick = 1;
  alarms::AlarmId last_installed = 0;
  bool saw_install = false, saw_remove = false, saw_expire = false;
  for (const auto& e : scheduler.timeline()) {
    ASSERT_GE(e.tick, last_tick);
    ASSERT_LT(e.tick, ticks);
    last_tick = e.tick;
    switch (e.kind) {
      case dynamics::ChurnEvent::Kind::kInstall:
        saw_install = true;
        ASSERT_GE(e.id, scheduler.first_new_id());
        if (last_installed != 0) {
          ASSERT_GT(e.id, last_installed);  // ids are monotone
        }
        last_installed = e.id;
        ASSERT_EQ(e.alarm.id, e.id);
        ASSERT_TRUE(kUniverse.contains(e.alarm.region));
        ASSERT_GT(e.alarm.region.width(), 0.0);
        if (e.alarm.scope == alarms::AlarmScope::kPublic) {
          ASSERT_TRUE(e.alarm.subscribers.empty());
        } else {
          ASSERT_FALSE(e.alarm.subscribers.empty());
        }
        ASSERT_TRUE(live.insert(e.id).second);  // ids never reused
        break;
      case dynamics::ChurnEvent::Kind::kRemove:
      case dynamics::ChurnEvent::Kind::kExpire:
        (e.kind == dynamics::ChurnEvent::Kind::kRemove ? saw_remove
                                                       : saw_expire) = true;
        // Only alarms live at this point in the timeline are removed.
        ASSERT_EQ(live.erase(e.id), 1u);
        break;
    }
  }
  EXPECT_TRUE(saw_install);
  EXPECT_TRUE(saw_remove);
  EXPECT_TRUE(saw_expire);
}

TEST(AlarmSchedulerTest, ForEachDueVisitsEveryEventOnceAndResets) {
  const auto seed_alarms = sparse_seed_alarms();
  dynamics::AlarmScheduler scheduler(busy_churn(), kUniverse, seed_alarms,
                                     150, 7);
  for (int round = 0; round < 2; ++round) {
    std::vector<std::pair<std::uint64_t, alarms::AlarmId>> seen;
    for (std::uint64_t t = 1; t < 150; ++t) {
      scheduler.for_each_due(t, [&](const dynamics::ChurnEvent& e) {
        EXPECT_EQ(e.tick, t);
        seen.emplace_back(e.tick, e.id);
      });
    }
    ASSERT_EQ(seen.size(), scheduler.timeline().size());
    for (std::size_t i = 0; i < seen.size(); ++i) {
      EXPECT_EQ(seen[i].first, scheduler.timeline()[i].tick);
      EXPECT_EQ(seen[i].second, scheduler.timeline()[i].id);
    }
    scheduler.reset();
  }
}

TEST(AlarmSchedulerTest, OutOfOrderConsumptionThrows) {
  dynamics::AlarmScheduler scheduler(busy_churn(), kUniverse,
                                     sparse_seed_alarms(), 100, 7);
  scheduler.for_each_due(50, [](const dynamics::ChurnEvent&) {});
  EXPECT_THROW(scheduler.for_each_due(10, [](const dynamics::ChurnEvent&) {}),
               PreconditionError);
  scheduler.reset();
  EXPECT_NO_THROW(
      scheduler.for_each_due(10, [](const dynamics::ChurnEvent&) {}));
}

// ---------------------------------------------------------------------------
// SessionIndex: one outstanding grant per subscriber.
// ---------------------------------------------------------------------------

TEST(SessionIndexTest, RecordReplaceClearLookup) {
  dynamics::SessionIndex index;
  EXPECT_EQ(index.lookup(4), nullptr);
  EXPECT_FALSE(index.clear(4));

  index.record(4, dynamics::GrantKind::kRect, geo::Rect(0, 0, 10, 10));
  ASSERT_NE(index.lookup(4), nullptr);
  EXPECT_EQ(index.lookup(4)->kind, dynamics::GrantKind::kRect);
  EXPECT_EQ(index.size(), 1u);

  // A new grant replaces the old one — still a single entry.
  index.record(4, dynamics::GrantKind::kPyramid, geo::Rect(50, 50, 60, 60));
  EXPECT_EQ(index.size(), 1u);
  EXPECT_EQ(index.lookup(4)->kind, dynamics::GrantKind::kPyramid);
  EXPECT_EQ(index.lookup(4)->bounds.lo().x, 50.0);

  EXPECT_TRUE(index.clear(4));
  EXPECT_EQ(index.size(), 0u);
  EXPECT_EQ(index.lookup(4), nullptr);
}

TEST(SessionIndexTest, VisitIntersectingFindsExactlyTheOverlappingGrants) {
  dynamics::SessionIndex index;
  for (alarms::SubscriberId s = 0; s < 20; ++s) {
    const double x = 100.0 * s;
    index.record(s, dynamics::GrantKind::kRect,
                 geo::Rect(x, 0.0, x + 50.0, 50.0));
  }
  std::vector<alarms::SubscriberId> hit;
  index.visit_intersecting(
      geo::Rect(240.0, 10.0, 460.0, 20.0),
      [&](alarms::SubscriberId s, const dynamics::SessionIndex::Grant& g) {
        EXPECT_EQ(g.kind, dynamics::GrantKind::kRect);
        hit.push_back(s);
        return true;
      });
  std::sort(hit.begin(), hit.end());
  // Grants at x=[300,350] and [400,450]; closed intersection also picks up
  // the box ending exactly at 250.
  EXPECT_EQ(hit, (std::vector<alarms::SubscriberId>{2, 3, 4}));
  EXPECT_GT(index.node_accesses(), 0u);

  // Early stop after the first match.
  int visits = 0;
  index.visit_intersecting(
      geo::Rect(0.0, 0.0, 2000.0, 50.0),
      [&](alarms::SubscriberId, const dynamics::SessionIndex::Grant&) {
        ++visits;
        return false;
      });
  EXPECT_EQ(visits, 1);
}

// ---------------------------------------------------------------------------
// PyramidBitmap::mark_unsafe: the client-side conservative shrink.
// ---------------------------------------------------------------------------

TEST(PyramidMarkUnsafeTest, FlipsOverlappedNodesAndKeepsDisjointOnesSafe) {
  const geo::Rect cell(0.0, 0.0, 900.0, 900.0);
  saferegion::PyramidConfig config;
  config.height = 2;
  // One alarm in the lower-left 300-cell so the root is subdivided.
  const geo::Rect existing(0.0, 0.0, 250.0, 250.0);
  auto bitmap = saferegion::PyramidBitmap::build(
      cell, std::vector<geo::Rect>{existing}, config);
  ASSERT_TRUE(bitmap.locate({450.0, 450.0}).safe);
  ASSERT_TRUE(bitmap.locate({750.0, 150.0}).safe);
  const double before = bitmap.coverage();

  bitmap.mark_unsafe(geo::Rect(350.0, 350.0, 550.0, 550.0));
  EXPECT_FALSE(bitmap.locate({450.0, 450.0}).safe);
  // The disjoint middle-right child stays safe.
  EXPECT_TRUE(bitmap.locate({750.0, 150.0}).safe);
  EXPECT_LT(bitmap.coverage(), before);
}

TEST(PyramidMarkUnsafeTest, BoundaryTouchDoesNotShrink) {
  const geo::Rect cell(0.0, 0.0, 900.0, 900.0);
  saferegion::PyramidConfig config;
  config.height = 2;
  auto bitmap = saferegion::PyramidBitmap::build(
      cell, std::vector<geo::Rect>{geo::Rect(0.0, 0.0, 100.0, 100.0)},
      config);
  const double before = bitmap.coverage();
  // Open-interior semantics: a region that only touches the cell's edge
  // cannot fire inside it — the bitmap must not lose coverage.
  bitmap.mark_unsafe(geo::Rect(900.0, 0.0, 1200.0, 900.0));
  EXPECT_EQ(bitmap.coverage(), before);
  EXPECT_TRUE(bitmap.locate({850.0, 450.0}).safe);
}

TEST(PyramidMarkUnsafeTest, AllSafeBitmapGoesUnsafeInsideTheRegion) {
  const geo::Rect cell(0.0, 0.0, 900.0, 900.0);
  saferegion::PyramidConfig config;
  config.height = 3;
  auto bitmap =
      saferegion::PyramidBitmap::build(cell, std::vector<geo::Rect>{}, config);
  ASSERT_EQ(bitmap.coverage(), 1.0);
  bitmap.mark_unsafe(geo::Rect(100.0, 100.0, 200.0, 200.0));
  EXPECT_FALSE(bitmap.locate({150.0, 150.0}).safe);  // soundness
}

// ---------------------------------------------------------------------------
// Integration: 100% accuracy under churn for every strategy and multiple
// seeds, monolithic and sharded, bit-identical across thread counts.
// ---------------------------------------------------------------------------

core::ExperimentConfig churn_experiment_config(std::uint64_t seed) {
  core::ExperimentConfig cfg;
  cfg.universe_km = 8.0;
  cfg.vehicles = 100;
  cfg.minutes = 3.0;
  cfg.alarm_count = 600;
  cfg.public_percent = 10.0;
  cfg.grid_cell_sqkm = 2.5;
  cfg.seed = seed;
  return cfg;
}

sim::Simulation::StrategyFactory factory_by_name(
    const core::Experiment& experiment, const std::string& name) {
  if (name == "prd") return experiment.periodic();
  if (name == "sp") return experiment.safe_period();
  if (name == "mwpsr") return experiment.rect(saferegion::MotionModel(1.0, 32));
  if (name == "gbsr") {
    saferegion::PyramidConfig cfg;
    cfg.height = 1;
    return experiment.bitmap(cfg);
  }
  if (name == "pbsr") {
    saferegion::PyramidConfig cfg;
    cfg.height = 5;
    return experiment.bitmap(cfg);
  }
  if (name == "pbsr_cached") {
    saferegion::PyramidConfig cfg;
    cfg.height = 5;
    return experiment.bitmap_cached(cfg);
  }
  if (name == "opt") return experiment.optimal();
  throw PreconditionError("unknown strategy: " + name);
}

void expect_perfect_churn(const sim::RunResult& r) {
  EXPECT_EQ(r.accuracy.missed, 0u) << r.strategy;
  EXPECT_EQ(r.accuracy.spurious, 0u) << r.strategy;
  EXPECT_EQ(r.accuracy.late, 0u) << r.strategy;
  EXPECT_GT(r.accuracy.expected, 0u) << "workload produced no triggers";
  EXPECT_EQ(r.metrics.triggers, r.accuracy.expected) << r.strategy;
  EXPECT_GT(r.metrics.alarms_installed, 0u) << r.strategy;
  EXPECT_GT(r.metrics.alarms_removed, 0u) << r.strategy;
}

using ChurnParam = std::tuple<std::string, std::uint64_t>;

class ChurnAccuracyTest : public ::testing::TestWithParam<ChurnParam> {};

TEST_P(ChurnAccuracyTest, StrategyStaysPerfectUnderChurn) {
  const auto& [name, seed] = GetParam();
  core::Experiment experiment(churn_experiment_config(seed));
  experiment.enable_churn(experiment.churn_config(/*installs_per_tick=*/1.0,
                                                  /*removes_per_tick=*/0.5));
  const auto run =
      experiment.simulation().run(factory_by_name(experiment, name));
  expect_perfect_churn(run);
  // Silence-holding strategies must have received invalidation pushes on a
  // workload this dense (PRD reports every tick and holds no grants... but
  // the server still records them; only the push count is strategy-shaped).
  if (name != "prd") {
    EXPECT_GT(run.metrics.invalidation_pushes, 0u) << name;
    EXPECT_GT(run.metrics.invalidation_bytes, 0u) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, ChurnAccuracyTest,
    ::testing::Combine(::testing::Values("prd", "sp", "mwpsr", "gbsr", "pbsr",
                                         "pbsr_cached", "opt"),
                       ::testing::Values(7u, 11u, 23u)),
    [](const ::testing::TestParamInfo<ChurnParam>& info) {
      return std::get<0>(info.param) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

TEST(ChurnRewindTest, RunsAreReproducibleUnderChurn) {
  core::Experiment experiment(churn_experiment_config(13));
  experiment.enable_churn(experiment.churn_config(1.0, 0.5));
  const auto factory = experiment.rect(saferegion::MotionModel(1.0, 32));
  const auto first = experiment.simulation().run(factory);
  // A different strategy in between exercises the store rewind.
  (void)experiment.simulation().run(experiment.optimal());
  const auto again = experiment.simulation().run(factory);
  EXPECT_EQ(again.trigger_log, first.trigger_log);
  EXPECT_EQ(again.metrics.uplink_messages, first.metrics.uplink_messages);
  EXPECT_EQ(again.metrics.invalidation_pushes,
            first.metrics.invalidation_pushes);
  EXPECT_EQ(again.metrics.invalidation_bytes,
            first.metrics.invalidation_bytes);
  EXPECT_EQ(again.metrics.alarms_installed, first.metrics.alarms_installed);
  EXPECT_EQ(again.metrics.alarms_removed, first.metrics.alarms_removed);
}

void expect_bit_identical(const sim::RunResult& a, const sim::RunResult& b) {
  EXPECT_EQ(b.trigger_log, a.trigger_log);
  const sim::Metrics& m = a.metrics;
  const sim::Metrics& n = b.metrics;
  EXPECT_EQ(n.uplink_messages, m.uplink_messages);
  EXPECT_EQ(n.uplink_bytes, m.uplink_bytes);
  EXPECT_EQ(n.downstream_region_bytes, m.downstream_region_bytes);
  EXPECT_EQ(n.downstream_notice_bytes, m.downstream_notice_bytes);
  EXPECT_EQ(n.client_checks, m.client_checks);
  EXPECT_EQ(n.client_check_ops, m.client_check_ops);
  EXPECT_EQ(n.server_alarm_ops, m.server_alarm_ops);
  EXPECT_EQ(n.server_region_ops, m.server_region_ops);
  EXPECT_EQ(n.handoff_messages, m.handoff_messages);
  EXPECT_EQ(n.handoff_bytes, m.handoff_bytes);
  EXPECT_EQ(n.alarms_installed, m.alarms_installed);
  EXPECT_EQ(n.alarms_removed, m.alarms_removed);
  EXPECT_EQ(n.invalidation_pushes, m.invalidation_pushes);
  EXPECT_EQ(n.invalidation_bytes, m.invalidation_bytes);
  EXPECT_EQ(n.safe_region_recomputes, m.safe_region_recomputes);
  EXPECT_EQ(n.triggers, m.triggers);
  EXPECT_EQ(n.region_payload_bytes.count(), m.region_payload_bytes.count());
  EXPECT_EQ(n.region_payload_bytes.sum(), m.region_payload_bytes.sum());
}

class ShardedChurnTest : public ::testing::Test {
 protected:
  void check(const std::string& name) {
    core::Experiment experiment(churn_experiment_config(19));
    experiment.enable_churn(experiment.churn_config(1.0, 0.5));
    const auto factory = factory_by_name(experiment, name);
    const auto ref = experiment.simulation().run_sharded(
        factory, {.shards = 4, .threads = 1});
    expect_perfect_churn(ref);
    for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
      expect_bit_identical(ref,
                           experiment.simulation().run_sharded(
                               factory, {.shards = 4, .threads = threads}));
    }
  }
};

TEST_F(ShardedChurnTest, MwpsrBitIdenticalAcrossThreadCounts) {
  check("mwpsr");
}

TEST_F(ShardedChurnTest, SafePeriodBitIdenticalAcrossThreadCounts) {
  check("sp");
}

TEST_F(ShardedChurnTest, PbsrBitIdenticalAcrossThreadCounts) {
  check("pbsr");
}

TEST_F(ShardedChurnTest, OptBitIdenticalAcrossThreadCounts) { check("opt"); }

}  // namespace
}  // namespace salarm
