// Tests for the Hu et al. [10]-style corner-candidate baseline — including
// the *negative* results the paper claims: unsound regions when alarms
// overlap or straddle the axes through the subscriber position.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "saferegion/corner_baseline.h"
#include "saferegion/mwpsr.h"

namespace salarm::saferegion {
namespace {

using geo::Point;
using geo::Rect;

const Rect kCell(0, 0, 1000, 1000);
const Point kCenter{500, 500};

TEST(CornerBaselineTest, MatchesMwpsrOnSimpleQuadrantAlarms) {
  // One alarm cleanly inside a quadrant: both algorithms must produce a
  // sound region containing the position.
  const std::vector<Rect> alarms{Rect(700, 700, 800, 800)};
  const MotionModel model(1.0, 32);
  const auto baseline =
      compute_corner_baseline(kCenter, 0.0, kCell, alarms, model);
  EXPECT_TRUE(baseline.rect.contains(kCenter));
  EXPECT_TRUE(kCell.contains(baseline.rect));
  EXPECT_LE(geo::overlap_area(baseline.rect, alarms[0]), 1e-9);
}

TEST(CornerBaselineTest, AxisStraddlingAlarmProducesUnsoundRegion) {
  // The paper's claim: an alarm straddling the +x axis is mishandled. The
  // alarm (300,450)-(400,900) seen from (100,500) has nearest corner
  // (300,450), which lands in quadrant IV and constrains only y-below;
  // quadrant I never learns about the alarm, the optimizer keeps the full
  // eastward extent by capping y-below, and the "safe" region stretches
  // east across the alarm's interior.
  const Point p{100, 500};
  const std::vector<Rect> alarms{Rect(300, 450, 400, 900)};
  const MotionModel model(1.0, 32);
  const auto baseline = compute_corner_baseline(p, 0.0, kCell, alarms, model);
  EXPECT_GT(geo::overlap_area(baseline.rect, alarms[0]), 0.0)
      << "expected the documented unsoundness";
  // MWPSR handles the same input correctly.
  const auto sound = compute_mwpsr(p, 0.0, kCell, alarms, model);
  EXPECT_LE(geo::overlap_area(sound.rect, alarms[0]), 1e-9);
}

TEST(CornerBaselineTest, UnsoundnessRateOnRandomWorkloads) {
  // Quantify the failure: across random cells, the baseline overlaps an
  // alarm interior in a meaningful fraction of cases; MWPSR never does.
  Rng rng(77);
  const MotionModel model(1.0, 32);
  int baseline_unsound = 0;
  int mwpsr_unsound = 0;
  const int rounds = 300;
  for (int round = 0; round < rounds; ++round) {
    std::vector<Rect> alarms;
    const int n = 2 + static_cast<int>(rng.index(8));
    for (int i = 0; i < n; ++i) {
      const Point c{rng.uniform(-100, 1100), rng.uniform(-100, 1100)};
      alarms.push_back(Rect::centered_square(c, rng.uniform(50, 400)));
    }
    Point p;
    do {
      p = {rng.uniform(0, 1000), rng.uniform(0, 1000)};
    } while ([&] {
      for (const Rect& a : alarms) {
        if (a.interior_contains(p)) return true;
      }
      return false;
    }());
    const double heading = rng.uniform(-M_PI, M_PI);
    const auto base = compute_corner_baseline(p, heading, kCell, alarms,
                                              model);
    const auto sound = compute_mwpsr(p, heading, kCell, alarms, model);
    auto overlaps = [&](const Rect& r) {
      for (const Rect& a : alarms) {
        if (geo::overlap_area(r, a) > 1e-9) return true;
      }
      return false;
    };
    baseline_unsound += overlaps(base.rect) ? 1 : 0;
    mwpsr_unsound += sound.inside_alarm ? 0 : (overlaps(sound.rect) ? 1 : 0);
  }
  EXPECT_EQ(mwpsr_unsound, 0);
  EXPECT_GT(baseline_unsound, rounds / 20)
      << "the baseline should fail noticeably often on dense workloads";
}

TEST(CornerBaselineTest, RegionAlwaysContainsPositionAndFitsCell) {
  Rng rng(78);
  const MotionModel model(1.0, 8);
  for (int round = 0; round < 200; ++round) {
    std::vector<Rect> alarms;
    for (int i = 0; i < 5; ++i) {
      const Point c{rng.uniform(0, 1000), rng.uniform(0, 1000)};
      alarms.push_back(Rect::centered_square(c, rng.uniform(50, 300)));
    }
    const Point p{rng.uniform(0, 1000), rng.uniform(0, 1000)};
    const auto r = compute_corner_baseline(p, 0.0, kCell, alarms, model);
    EXPECT_TRUE(r.rect.contains(p));
    EXPECT_TRUE(kCell.contains(r.rect));
    EXPECT_GT(r.ops, 0u);
  }
}

}  // namespace
}  // namespace salarm::saferegion
