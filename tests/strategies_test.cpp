// Behavioral unit tests of the five processing strategies against a
// hand-built world (store + grid + server behind a perfect link), independent of the trace
// generator: exactly when does each strategy talk to the server, what does
// it cost, and how does it react to triggers.
#include <gtest/gtest.h>

#include "alarms/alarm_store.h"
#include "grid/grid_overlay.h"
#include "net/link.h"
#include "sim/server.h"
#include "strategies/bitmap_region_strategy.h"
#include "strategies/optimal.h"
#include "strategies/periodic.h"
#include "strategies/rect_region_strategy.h"
#include "strategies/safe_period.h"

namespace salarm::strategies {
namespace {

using geo::Point;
using geo::Rect;

/// A 4 km x 4 km world with 1 km cells and one public alarm in the middle
/// of the first cell's east neighbor.
struct World {
  World() : grid(Rect(0, 0, 4000, 4000), 4, 4), server(store, grid, metrics) {
    alarms::SpatialAlarm alarm;
    alarm.id = 0;
    alarm.scope = alarms::AlarmScope::kPublic;
    alarm.region = Rect(1400, 400, 1700, 700);
    alarm.message = "test alert";
    store.install(std::move(alarm));
  }

  mobility::VehicleSample at(double x, double y, double heading = 0.0) {
    return {{x, y}, heading, 15.0};
  }

  alarms::AlarmStore store;
  grid::GridOverlay grid;
  sim::Metrics metrics;
  sim::Server server;
  /// Perfect pass-through link (all-zero ChannelConfig): these tests pin
  /// down strategy behaviour; the faulty-channel behaviour lives in
  /// net_test.cpp.
  net::ClientLink link{server, net::ChannelConfig{}, 0, 8};
};

TEST(PeriodicStrategyTest, SendsEverySample) {
  World w;
  PeriodicStrategy prd(w.link);
  prd.initialize(0, w.at(100, 100));
  for (std::uint64_t t = 1; t <= 10; ++t) {
    prd.on_tick(0, w.at(100.0 + 10 * static_cast<double>(t), 100), t);
  }
  EXPECT_EQ(w.metrics.uplink_messages, 11u);
  EXPECT_EQ(w.metrics.client_checks, 0u);  // no client-side smarts
  EXPECT_EQ(w.metrics.downstream_region_bytes, 0u);
}

TEST(SafePeriodStrategyTest, StaysSilentUntilExpiry) {
  World w;
  // True speed 15 m/s; subscriber starts 900+ m from the alarm region, so
  // the first grant is tens of seconds long.
  SafePeriodStrategy sp(w.link, 1, /*max_speed=*/20.0, /*tick=*/1.0);
  sp.initialize(0, w.at(100, 550));
  EXPECT_EQ(w.metrics.uplink_messages, 1u);
  const double distance = Rect(1400, 400, 1700, 700).distance({100, 550});
  const auto expected_expiry = static_cast<std::uint64_t>(distance / 20.0);
  // Silent strictly before the expiry tick.
  for (std::uint64_t t = 1; t < expected_expiry; ++t) {
    sp.on_tick(0, w.at(100 + 15.0 * static_cast<double>(t), 550), t);
  }
  EXPECT_EQ(w.metrics.uplink_messages, 1u);
  // At (or right after) expiry it reports again.
  sp.on_tick(0, w.at(100 + 15.0 * static_cast<double>(expected_expiry), 550),
             expected_expiry);
  EXPECT_EQ(w.metrics.uplink_messages, 2u);
}

TEST(SafePeriodStrategyTest, NoRelevantAlarmsMeansOneMessageEver) {
  World w;
  w.store.mark_spent(0, 0);  // the only alarm is spent for subscriber 0
  SafePeriodStrategy sp(w.link, 1, 20.0, 1.0);
  sp.initialize(0, w.at(100, 100));
  for (std::uint64_t t = 1; t <= 500; ++t) {
    sp.on_tick(0, w.at(100 + static_cast<double>(t), 100), t);
  }
  EXPECT_EQ(w.metrics.uplink_messages, 1u);
}

TEST(SafePeriodStrategyTest, RejectsNonPositiveAssumption) {
  World w;
  EXPECT_THROW(SafePeriodStrategy(w.link, 1, 20.0, 1.0, 0.0),
               PreconditionError);
}

TEST(RectRegionStrategyTest, OneCheckPerTickAndReportOnExit) {
  World w;
  RectRegionStrategy rect(w.link, 1, saferegion::MotionModel::uniform());
  rect.initialize(0, w.at(500, 550));
  EXPECT_EQ(w.metrics.uplink_messages, 1u);
  EXPECT_EQ(w.metrics.safe_region_recomputes, 1u);
  const auto bytes_after_init = w.metrics.downstream_region_bytes;
  EXPECT_EQ(bytes_after_init, wire::rect_message_size());

  // Wandering inside the first cell, far from the alarm: checks but no
  // messages (the region spans the whole empty cell).
  for (std::uint64_t t = 1; t <= 20; ++t) {
    rect.on_tick(0, w.at(500 + static_cast<double>(t), 550), t);
  }
  EXPECT_EQ(w.metrics.uplink_messages, 1u);
  EXPECT_EQ(w.metrics.client_checks, 20u);
  EXPECT_EQ(w.metrics.client_check_ops, 20u);  // rect check = 1 op

  // Jump across the cell border: must report and refresh.
  rect.on_tick(0, w.at(1100, 550), 21);
  EXPECT_EQ(w.metrics.uplink_messages, 2u);
  EXPECT_EQ(w.metrics.safe_region_recomputes, 2u);
  EXPECT_GT(w.metrics.downstream_region_bytes, bytes_after_init);
}

TEST(RectRegionStrategyTest, TriggersWhenEnteringAlarm) {
  World w;
  RectRegionStrategy rect(w.link, 1, saferegion::MotionModel::uniform());
  rect.initialize(0, w.at(1100, 550));
  // Step into the alarm region; the region must have excluded it, so the
  // client reports and the server fires the alarm.
  rect.on_tick(0, w.at(1500, 550), 1);
  EXPECT_EQ(w.metrics.triggers, 1u);
  EXPECT_TRUE(w.store.spent(0, 0));
  EXPECT_GT(w.metrics.downstream_notice_bytes, 0u);
  // After the trigger, the same spot is safe (one-shot): region grows and
  // the subscriber can sit there silently.
  const auto msgs = w.metrics.uplink_messages;
  for (std::uint64_t t = 2; t <= 10; ++t) {
    rect.on_tick(0, w.at(1500, 550), t);
  }
  EXPECT_EQ(w.metrics.uplink_messages, msgs);
}

TEST(BitmapRegionStrategyTest, RefreshOnCellExitOnly) {
  World w;
  saferegion::PyramidConfig cfg;
  cfg.height = 3;
  BitmapRegionStrategy pbsr(w.link, 1, cfg);
  pbsr.initialize(0, w.at(500, 550));
  EXPECT_EQ(w.metrics.safe_region_recomputes, 1u);

  // Inside the (empty, fully safe) cell: no contact at all.
  for (std::uint64_t t = 1; t <= 10; ++t) {
    pbsr.on_tick(0, w.at(500 + static_cast<double>(t) * 20, 550), t);
  }
  EXPECT_EQ(w.metrics.uplink_messages, 1u);
  EXPECT_EQ(w.metrics.safe_region_recomputes, 1u);

  // Cross into the alarm's cell: one report, one refresh.
  pbsr.on_tick(0, w.at(1100, 550), 11);
  EXPECT_EQ(w.metrics.uplink_messages, 2u);
  EXPECT_EQ(w.metrics.safe_region_recomputes, 2u);

  // Standing just outside the alarm inside an unsafe sliver: reports every
  // tick but never recomputes (paper §4.2).
  const auto recomputes = w.metrics.safe_region_recomputes;
  const auto msgs = w.metrics.uplink_messages;
  for (std::uint64_t t = 12; t <= 15; ++t) {
    pbsr.on_tick(0, w.at(1399, 550), t);  // 1 m west of the alarm edge
  }
  EXPECT_EQ(w.metrics.safe_region_recomputes, recomputes);
  EXPECT_EQ(w.metrics.uplink_messages, msgs + 4);
}

TEST(BitmapRegionStrategyTest, TriggerRefreshesBitmap) {
  World w;
  saferegion::PyramidConfig cfg;
  cfg.height = 4;
  BitmapRegionStrategy pbsr(w.link, 1, cfg);
  pbsr.initialize(0, w.at(1100, 550));
  const auto recomputes = w.metrics.safe_region_recomputes;
  // Step into the alarm: report fires the alarm, and per §4.2 the bitmap
  // is refreshed with the triggered alarm now part of the safe region.
  pbsr.on_tick(0, w.at(1500, 550), 1);
  EXPECT_EQ(w.metrics.triggers, 1u);
  EXPECT_EQ(w.metrics.safe_region_recomputes, recomputes + 1);
  // The refreshed bitmap marks the spent alarm safe: silence follows.
  const auto msgs = w.metrics.uplink_messages;
  for (std::uint64_t t = 2; t <= 8; ++t) {
    pbsr.on_tick(0, w.at(1500, 550), t);
  }
  EXPECT_EQ(w.metrics.uplink_messages, msgs);
}

TEST(OptimalStrategyTest, PushesOnCellChangeAndReportsOnlyTriggers) {
  World w;
  OptimalStrategy opt(w.link, 1);
  opt.initialize(0, w.at(1100, 550));  // the alarm's cell
  EXPECT_EQ(w.metrics.uplink_messages, 1u);
  const auto push_bytes = w.metrics.downstream_region_bytes;
  EXPECT_GT(push_bytes, 0u);

  // Wandering in the cell outside the alarm: per-tick scans, no messages.
  for (std::uint64_t t = 1; t <= 10; ++t) {
    opt.on_tick(0, w.at(1100, 540 + static_cast<double>(t)), t);
  }
  EXPECT_EQ(w.metrics.uplink_messages, 1u);
  EXPECT_EQ(w.metrics.downstream_region_bytes, push_bytes);
  // Each tick costs 1 (cell test) + 1 (one pushed alarm).
  EXPECT_EQ(w.metrics.client_check_ops, 20u);

  // Entering the alarm: exactly one report, client prunes its copy.
  opt.on_tick(0, w.at(1500, 550), 11);
  EXPECT_EQ(w.metrics.uplink_messages, 2u);
  EXPECT_EQ(w.metrics.triggers, 1u);
  for (std::uint64_t t = 12; t <= 20; ++t) {
    opt.on_tick(0, w.at(1500, 550), t);
  }
  EXPECT_EQ(w.metrics.uplink_messages, 2u);
}

TEST(StrategyNamesTest, ReportCorrectly) {
  World w;
  EXPECT_EQ(PeriodicStrategy(w.link).name(), "PRD");
  EXPECT_EQ(SafePeriodStrategy(w.link, 1, 20, 1).name(), "SP");
  EXPECT_EQ(RectRegionStrategy(w.link, 1,
                               saferegion::MotionModel::uniform())
                .name(),
            "MWPSR");
  saferegion::MwpsrOptions non_weighted;
  non_weighted.weighted = false;
  EXPECT_EQ(RectRegionStrategy(w.link, 1,
                               saferegion::MotionModel::uniform(),
                               non_weighted)
                .name(),
            "RECT");
  EXPECT_EQ(RectRegionStrategy(w.link, 1,
                               saferegion::MotionModel::uniform(), {}, true)
                .name(),
            "RECT[10]");
  saferegion::PyramidConfig gbsr;
  gbsr.height = 1;
  EXPECT_EQ(BitmapRegionStrategy(w.link, 1, gbsr).name(), "GBSR");
  saferegion::PyramidConfig pbsr;
  pbsr.height = 5;
  EXPECT_EQ(BitmapRegionStrategy(w.link, 1, pbsr).name(), "PBSR");
  EXPECT_EQ(OptimalStrategy(w.link, 1).name(), "OPT");
}

}  // namespace
}  // namespace salarm::strategies
