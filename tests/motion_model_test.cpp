#include <cmath>

#include <gtest/gtest.h>

#include "common/error.h"
#include "saferegion/motion_model.h"

namespace salarm::saferegion {
namespace {

TEST(MotionModelTest, RejectsBadParameters) {
  EXPECT_THROW(MotionModel(1.0, 0), salarm::PreconditionError);
  EXPECT_THROW(MotionModel(-0.5, 4), salarm::PreconditionError);
  EXPECT_THROW(MotionModel(4.0, 4), salarm::PreconditionError);  // y/z < 1
  EXPECT_NO_THROW(MotionModel(1.0, 2));
  EXPECT_NO_THROW(MotionModel(3.9, 4));
}

TEST(MotionModelTest, UniformModelIsFlat) {
  const MotionModel m = MotionModel::uniform();
  for (double phi = -M_PI; phi <= M_PI; phi += 0.1) {
    EXPECT_NEAR(m.pdf(phi), 1.0 / (2.0 * M_PI), 1e-12);
  }
}

class MotionModelZTest : public ::testing::TestWithParam<int> {};

TEST_P(MotionModelZTest, IntegratesToOne) {
  const int z = GetParam();
  const MotionModel m(1.0, z);
  EXPECT_NEAR(m.mass(-M_PI, M_PI), 1.0, 1e-9);
  // Also via fine Riemann sum as an independent check.
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double phi = -M_PI + (i + 0.5) * 2.0 * M_PI / n;
    sum += m.pdf(phi) * 2.0 * M_PI / n;
  }
  EXPECT_NEAR(sum, 1.0, 1e-3);
}

TEST_P(MotionModelZTest, PeakAndFloorMatchFigure1b) {
  const int z = GetParam();
  const MotionModel m(1.0, z);
  const double ratio = 1.0 / z;
  // Peak value (1 + y/z)/2pi at phi = 0 ... up to quantization within the
  // first step: the first step's midpoint is at pi/(2z).
  const double expected_peak =
      (1.0 + ratio * (M_PI / 2.0 - M_PI / (2.0 * z)) * 2.0 / M_PI) /
      (2.0 * M_PI);
  EXPECT_NEAR(m.pdf(0.0), expected_peak, 1e-12);
  // The floor at |phi| = pi mirrors the peak around 1/2pi.
  EXPECT_NEAR(m.pdf(M_PI) + m.pdf(0.0), 2.0 / (2.0 * M_PI), 1e-12);
  EXPECT_GT(m.pdf(0.0), 1.0 / (2.0 * M_PI));
  EXPECT_LT(m.pdf(M_PI), 1.0 / (2.0 * M_PI));
}

TEST_P(MotionModelZTest, ConstantOnFirstStepThenNonIncreasing) {
  const int z = GetParam();
  const MotionModel m(1.0, z);
  const double w = M_PI / z;
  const double first = m.pdf(1e-9);
  // Constant for 0 <= phi < pi/z (the paper's granularity property).
  for (double phi = 0.0; phi < w - 1e-9; phi += w / 17.0) {
    EXPECT_DOUBLE_EQ(m.pdf(phi), first);
  }
  // Strictly smaller on the next step, non-increasing overall.
  EXPECT_LT(m.pdf(w + 1e-9), first);
  double prev = first;
  for (double phi = w / 2; phi < M_PI; phi += w) {
    const double cur = m.pdf(phi);
    EXPECT_LE(cur, prev + 1e-15);
    prev = cur;
  }
}

TEST_P(MotionModelZTest, SymmetricInPhi) {
  const MotionModel m(1.0, GetParam());
  for (double phi = 0.0; phi <= M_PI; phi += 0.07) {
    EXPECT_DOUBLE_EQ(m.pdf(phi), m.pdf(-phi));
  }
}

INSTANTIATE_TEST_SUITE_P(ZValues, MotionModelZTest,
                         ::testing::Values(2, 4, 8, 16, 32));

TEST(MotionModelTest, MassIsAdditive) {
  const MotionModel m(1.0, 8);
  const double whole = m.mass(-1.0, 2.0);
  const double split = m.mass(-1.0, 0.3) + m.mass(0.3, 2.0);
  EXPECT_NEAR(whole, split, 1e-12);
  EXPECT_DOUBLE_EQ(m.mass(1.0, 1.0), 0.0);
  EXPECT_THROW(m.mass(1.0, 0.5), salarm::PreconditionError);
}

TEST(MotionModelTest, QuadrantWeightsSumToOne) {
  for (const double heading : {0.0, 0.3, M_PI / 2, -2.5, 3.0}) {
    const MotionModel m(1.0, 4);
    const QuadrantWeights w = m.quadrant_weights(heading);
    EXPECT_NEAR(w[0] + w[1] + w[2] + w[3], 1.0, 1e-9) << heading;
    for (std::size_t q = 0; q < 4; ++q) EXPECT_GT(w[q], 0.0);
  }
}

TEST(MotionModelTest, HeadingEastFavorsEastQuadrants) {
  const MotionModel m(1.0, 4);
  // Heading 0 (east) splits its mass across quadrants I and IV, which
  // should each outweigh II and III.
  const QuadrantWeights w = m.quadrant_weights(0.0);
  EXPECT_NEAR(w[0], w[3], 1e-9);  // symmetric about the x axis
  EXPECT_NEAR(w[1], w[2], 1e-9);
  EXPECT_GT(w[0], w[1]);
}

TEST(MotionModelTest, HeadingIntoQuadrantCenterMaximizesThatQuadrant) {
  const MotionModel m(1.0, 8);
  // Heading pi/4 points into the center of quadrant I.
  const QuadrantWeights w = m.quadrant_weights(M_PI / 4);
  EXPECT_GT(w[0], w[1]);
  EXPECT_GT(w[0], w[2]);
  EXPECT_GT(w[0], w[3]);
  EXPECT_GT(w[0], 0.26);  // above the uniform quarter
  EXPECT_NEAR(w[1], w[3], 1e-9);  // symmetric neighbors
}

TEST(MotionModelTest, UniformWeightsAreQuarters) {
  const MotionModel m = MotionModel::uniform();
  const QuadrantWeights w = m.quadrant_weights(1.234);
  for (std::size_t q = 0; q < 4; ++q) EXPECT_NEAR(w[q], 0.25, 1e-9);
}

TEST(MotionModelTest, WeightsRotateWithHeading) {
  const MotionModel m(1.0, 8);
  const QuadrantWeights east = m.quadrant_weights(M_PI / 4);
  const QuadrantWeights north = m.quadrant_weights(M_PI / 4 + M_PI / 2);
  // Rotating the heading by 90 degrees rotates the weights one quadrant.
  EXPECT_NEAR(north.w[1], east.w[0], 1e-9);
  EXPECT_NEAR(north.w[2], east.w[1], 1e-9);
  EXPECT_NEAR(north.w[3], east.w[2], 1e-9);
  EXPECT_NEAR(north.w[0], east.w[3], 1e-9);
}

TEST(MotionModelTest, LargerYzRatioIsMoreConcentrated) {
  const MotionModel weak(0.25, 4);
  const MotionModel strong(3.0, 4);
  const QuadrantWeights ww = weak.quadrant_weights(M_PI / 4);
  const QuadrantWeights sw = strong.quadrant_weights(M_PI / 4);
  EXPECT_GT(sw[0], ww[0]);
  EXPECT_LT(sw[2], ww[2]);
}

}  // namespace
}  // namespace salarm::saferegion
