#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geometry/rect.h"
#include "index/rstar_tree.h"

namespace salarm::index {
namespace {

using geo::Point;
using geo::Rect;

Rect random_rect(Rng& rng, double extent, double max_side) {
  const Point lo{rng.uniform(0.0, extent), rng.uniform(0.0, extent)};
  return Rect(lo, {lo.x + rng.uniform(0.0, max_side),
                   lo.y + rng.uniform(0.0, max_side)});
}

std::multiset<std::uint64_t> ids_of(const std::vector<Entry>& entries) {
  std::multiset<std::uint64_t> out;
  for (const Entry& e : entries) out.insert(e.id);
  return out;
}

TEST(RStarTreeTest, EmptyTree) {
  RStarTree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1u);
  EXPECT_TRUE(tree.search(Rect(0, 0, 100, 100)).empty());
  EXPECT_TRUE(tree.nearest({0, 0}, 3).empty());
  EXPECT_TRUE(std::isinf(tree.nearest_distance({0, 0})));
  EXPECT_FALSE(tree.erase({Rect(0, 0, 1, 1), 7}));
  tree.check_invariants();
}

TEST(RStarTreeTest, RejectsTinyCapacity) {
  EXPECT_THROW(RStarTree(3), salarm::PreconditionError);
  EXPECT_NO_THROW(RStarTree(4));
}

TEST(RStarTreeTest, SingleEntry) {
  RStarTree tree;
  tree.insert({Rect(10, 10, 20, 20), 42});
  EXPECT_EQ(tree.size(), 1u);
  const auto hits = tree.search(Rect(0, 0, 15, 15));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, 42u);
  EXPECT_TRUE(tree.search(Rect(21, 21, 30, 30)).empty());
  // Touching windows hit (closed semantics).
  EXPECT_EQ(tree.search(Rect(20, 20, 30, 30)).size(), 1u);
  tree.check_invariants();
}

TEST(RStarTreeTest, PointSearchFindsContainingRects) {
  RStarTree tree;
  tree.insert({Rect(0, 0, 10, 10), 1});
  tree.insert({Rect(5, 5, 15, 15), 2});
  tree.insert({Rect(20, 20, 30, 30), 3});
  const auto hits = ids_of(tree.search(Point{7, 7}));
  EXPECT_EQ(hits, (std::multiset<std::uint64_t>{1, 2}));
  // Boundary point hits (closed containment).
  EXPECT_EQ(tree.search(Point{10, 10}).size(), 2u);
}

TEST(RStarTreeTest, DuplicateIdsAreAMultiset) {
  RStarTree tree;
  tree.insert({Rect(0, 0, 1, 1), 5});
  tree.insert({Rect(0, 0, 1, 1), 5});
  EXPECT_EQ(tree.size(), 2u);
  EXPECT_TRUE(tree.erase({Rect(0, 0, 1, 1), 5}));
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_TRUE(tree.erase({Rect(0, 0, 1, 1), 5}));
  EXPECT_TRUE(tree.empty());
}

TEST(RStarTreeTest, EraseRequiresExactMatch) {
  RStarTree tree;
  tree.insert({Rect(0, 0, 1, 1), 5});
  EXPECT_FALSE(tree.erase({Rect(0, 0, 1, 2), 5}));  // wrong rect
  EXPECT_FALSE(tree.erase({Rect(0, 0, 1, 1), 6}));  // wrong id
  EXPECT_EQ(tree.size(), 1u);
}

TEST(RStarTreeTest, GrowsAndKeepsInvariants) {
  RStarTree tree(8);
  Rng rng(3);
  for (std::uint64_t i = 0; i < 500; ++i) {
    tree.insert({random_rect(rng, 1000.0, 20.0), i});
  }
  EXPECT_EQ(tree.size(), 500u);
  EXPECT_GT(tree.height(), 1u);
  tree.check_invariants();
}

TEST(RStarTreeTest, VisitEarlyStop) {
  RStarTree tree;
  for (std::uint64_t i = 0; i < 100; ++i) {
    tree.insert({Rect(0, 0, 1, 1), i});
  }
  int visited = 0;
  tree.visit(Rect(0, 0, 1, 1), [&](const Entry&) {
    ++visited;
    return visited < 10;
  });
  EXPECT_EQ(visited, 10);
}

TEST(RStarTreeTest, NodeAccessCounterAdvances) {
  RStarTree tree;
  Rng rng(4);
  for (std::uint64_t i = 0; i < 200; ++i) {
    tree.insert({random_rect(rng, 100.0, 5.0), i});
  }
  tree.reset_node_accesses();
  EXPECT_EQ(tree.node_accesses(), 0u);
  (void)tree.search(Rect(0, 0, 100, 100));
  const auto after_big = tree.node_accesses();
  EXPECT_GT(after_big, 0u);
  (void)tree.search(Rect(0, 0, 1, 1));
  EXPECT_GT(tree.node_accesses(), after_big);
}

TEST(RStarTreeTest, NearestBasics) {
  RStarTree tree;
  tree.insert({Rect(10, 0, 12, 2), 1});
  tree.insert({Rect(20, 0, 22, 2), 2});
  tree.insert({Rect(-5, 0, -3, 2), 3});
  const auto nn = tree.nearest({0, 1}, 2);
  ASSERT_EQ(nn.size(), 2u);
  EXPECT_EQ(nn[0].entry.id, 3u);
  EXPECT_DOUBLE_EQ(nn[0].distance, 3.0);
  EXPECT_EQ(nn[1].entry.id, 1u);
  EXPECT_DOUBLE_EQ(nn[1].distance, 10.0);
  EXPECT_DOUBLE_EQ(tree.nearest_distance({0, 1}), 3.0);
  // Inside a rect → distance 0.
  EXPECT_DOUBLE_EQ(tree.nearest_distance({11, 1}), 0.0);
}

TEST(RStarTreeTest, NearestWithFilter) {
  RStarTree tree;
  tree.insert({Rect(1, 0, 2, 1), 1});
  tree.insert({Rect(5, 0, 6, 1), 2});
  const auto nn = tree.nearest(
      {0, 0.5}, 1, [](const Entry& e) { return e.id != 1; });
  ASSERT_EQ(nn.size(), 1u);
  EXPECT_EQ(nn[0].entry.id, 2u);
  EXPECT_DOUBLE_EQ(
      tree.nearest_distance({0, 0.5},
                            [](const Entry& e) { return e.id != 1; }),
      5.0);
  // Filter rejecting everything → infinity.
  EXPECT_TRUE(std::isinf(
      tree.nearest_distance({0, 0}, [](const Entry&) { return false; })));
}

// ---------------------------------------------------------------------------
// Randomized equivalence against brute force, swept over tree capacities
// and workload sizes.
// ---------------------------------------------------------------------------

struct SweepParam {
  std::size_t capacity;
  std::size_t entries;
  std::uint64_t seed;
};

class RStarSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(RStarSweepTest, SearchMatchesBruteForce) {
  const auto [capacity, n, seed] = GetParam();
  Rng rng(seed);
  RStarTree tree(capacity);
  std::vector<Entry> reference;
  for (std::uint64_t i = 0; i < n; ++i) {
    const Entry e{random_rect(rng, 500.0, 40.0), i};
    tree.insert(e);
    reference.push_back(e);
  }
  tree.check_invariants();
  for (int q = 0; q < 50; ++q) {
    const Rect window = random_rect(rng, 500.0, 120.0);
    std::multiset<std::uint64_t> expected;
    for (const Entry& e : reference) {
      if (e.rect.intersects(window)) expected.insert(e.id);
    }
    EXPECT_EQ(ids_of(tree.search(window)), expected);
  }
}

TEST_P(RStarSweepTest, KnnMatchesBruteForce) {
  const auto [capacity, n, seed] = GetParam();
  Rng rng(seed + 1000);
  RStarTree tree(capacity);
  std::vector<Entry> reference;
  for (std::uint64_t i = 0; i < n; ++i) {
    const Entry e{random_rect(rng, 500.0, 40.0), i};
    tree.insert(e);
    reference.push_back(e);
  }
  for (int q = 0; q < 20; ++q) {
    const Point p{rng.uniform(0, 500), rng.uniform(0, 500)};
    const std::size_t k = 1 + static_cast<std::size_t>(rng.index(10));
    auto nn = tree.nearest(p, k);
    ASSERT_EQ(nn.size(), std::min(k, reference.size()));
    std::vector<double> expected;
    for (const Entry& e : reference) expected.push_back(e.rect.distance(p));
    std::sort(expected.begin(), expected.end());
    for (std::size_t i = 0; i < nn.size(); ++i) {
      EXPECT_NEAR(nn[i].distance, expected[i], 1e-9);
      if (i > 0) {
        EXPECT_GE(nn[i].distance, nn[i - 1].distance);
      }
    }
  }
}

TEST_P(RStarSweepTest, EraseHalfKeepsQueriesCorrect) {
  const auto [capacity, n, seed] = GetParam();
  Rng rng(seed + 2000);
  RStarTree tree(capacity);
  std::vector<Entry> reference;
  for (std::uint64_t i = 0; i < n; ++i) {
    const Entry e{random_rect(rng, 500.0, 40.0), i};
    tree.insert(e);
    reference.push_back(e);
  }
  // Erase every other entry.
  std::vector<Entry> kept;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    if (i % 2 == 0) {
      EXPECT_TRUE(tree.erase(reference[i]));
    } else {
      kept.push_back(reference[i]);
    }
  }
  EXPECT_EQ(tree.size(), kept.size());
  tree.check_invariants();
  for (int q = 0; q < 30; ++q) {
    const Rect window = random_rect(rng, 500.0, 120.0);
    std::multiset<std::uint64_t> expected;
    for (const Entry& e : kept) {
      if (e.rect.intersects(window)) expected.insert(e.id);
    }
    EXPECT_EQ(ids_of(tree.search(window)), expected);
  }
  // Erase the rest; the tree must drain to empty cleanly.
  for (const Entry& e : kept) EXPECT_TRUE(tree.erase(e));
  EXPECT_TRUE(tree.empty());
  tree.check_invariants();
}

INSTANTIATE_TEST_SUITE_P(
    CapacityAndSize, RStarSweepTest,
    ::testing::Values(SweepParam{4, 64, 10}, SweepParam{8, 256, 20},
                      SweepParam{16, 1024, 30}, SweepParam{32, 400, 40},
                      SweepParam{16, 2000, 50}));

TEST(RStarTreeTest, BulkLoadEmptyAndTiny) {
  const RStarTree empty = RStarTree::bulk_load({});
  EXPECT_TRUE(empty.empty());
  empty.check_invariants();

  RStarTree one = RStarTree::bulk_load({{Rect(0, 0, 1, 1), 7}});
  EXPECT_EQ(one.size(), 1u);
  one.check_invariants();
  EXPECT_EQ(one.search(Rect(0, 0, 2, 2)).size(), 1u);
}

class BulkLoadTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BulkLoadTest, MatchesBruteForceAndStaysMutable) {
  const std::size_t n = GetParam();
  Rng rng(n * 7 + 5);
  std::vector<Entry> entries;
  for (std::uint64_t i = 0; i < n; ++i) {
    entries.push_back({random_rect(rng, 1000.0, 30.0), i});
  }
  RStarTree tree = RStarTree::bulk_load(entries);
  EXPECT_EQ(tree.size(), n);
  tree.check_invariants();

  for (int q = 0; q < 40; ++q) {
    const Rect window = random_rect(rng, 1000.0, 200.0);
    std::multiset<std::uint64_t> expected;
    for (const Entry& e : entries) {
      if (e.rect.intersects(window)) expected.insert(e.id);
    }
    EXPECT_EQ(ids_of(tree.search(window)), expected);
  }

  // The packed tree must accept further mutations.
  for (std::uint64_t i = 0; i < 50; ++i) {
    const Entry e{random_rect(rng, 1000.0, 30.0), n + i};
    tree.insert(e);
    entries.push_back(e);
  }
  for (std::size_t i = 0; i < entries.size(); i += 3) {
    EXPECT_TRUE(tree.erase(entries[i]));
  }
  tree.check_invariants();
}

INSTANTIATE_TEST_SUITE_P(Sizes, BulkLoadTest,
                         ::testing::Values(5u, 17u, 100u, 1000u, 5000u));

TEST(RStarTreeTest, BulkLoadQueryQualityComparableToIncremental) {
  Rng rng(9);
  std::vector<Entry> entries;
  for (std::uint64_t i = 0; i < 5000; ++i) {
    entries.push_back({random_rect(rng, 10000.0, 50.0), i});
  }
  RStarTree incremental;
  for (const Entry& e : entries) incremental.insert(e);
  RStarTree packed = RStarTree::bulk_load(entries);
  // Same answers...
  const Rect probe(2000, 2000, 4000, 4000);
  EXPECT_EQ(ids_of(packed.search(probe)), ids_of(incremental.search(probe)));
  // ...with comparable node reads per window query (STR's win is build
  // time; R*'s insertion heuristics already pack well).
  packed.reset_node_accesses();
  incremental.reset_node_accesses();
  Rng qrng(11);
  for (int q = 0; q < 200; ++q) {
    const Rect window = random_rect(qrng, 10000.0, 400.0);
    (void)packed.search(window);
  }
  qrng = Rng(11);
  for (int q = 0; q < 200; ++q) {
    const Rect window = random_rect(qrng, 10000.0, 400.0);
    (void)incremental.search(window);
  }
  EXPECT_LE(static_cast<double>(packed.node_accesses()),
            1.25 * static_cast<double>(incremental.node_accesses()));
}

TEST(RStarTreeTest, InterleavedInsertEraseStaysConsistent) {
  Rng rng(99);
  RStarTree tree(8);
  std::vector<Entry> live;
  std::uint64_t next_id = 0;
  for (int round = 0; round < 2000; ++round) {
    if (live.empty() || rng.chance(0.6)) {
      const Entry e{random_rect(rng, 200.0, 15.0), next_id++};
      tree.insert(e);
      live.push_back(e);
    } else {
      const std::size_t pick = rng.index(live.size());
      EXPECT_TRUE(tree.erase(live[pick]));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    if (round % 250 == 0) tree.check_invariants();
  }
  tree.check_invariants();
  EXPECT_EQ(tree.size(), live.size());
  std::multiset<std::uint64_t> expected;
  for (const Entry& e : live) expected.insert(e.id);
  EXPECT_EQ(ids_of(tree.search(Rect(-10, -10, 300, 300))), expected);
}

}  // namespace
}  // namespace salarm::index
