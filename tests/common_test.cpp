#include <cmath>
#include <cstdint>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/units.h"

namespace salarm {
namespace {

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStatTest, KnownSequence) {
  RunningStat s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatTest, SingleObservationHasZeroVariance) {
  RunningStat s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
}

TEST(RunningStatTest, MergeMatchesSequential) {
  Rng rng(7);
  RunningStat whole;
  RunningStat left;
  RunningStat right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-50.0, 50.0);
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStatTest, MergeWithEmptyIsIdentity) {
  RunningStat a;
  a.add(1.0);
  a.add(2.0);
  RunningStat empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  RunningStat b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

// Property sweep backing the cluster tier's metrics merge: a sequence
// split into shards at arbitrary points and Welford-merged shard by shard
// must agree with the single-pass accumulator, including uneven and empty
// parts. Each parameter is a different (seed, shard count) draw.
class RunningStatMergeProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t>> {
};

TEST_P(RunningStatMergeProperty, SplitMergeMatchesSinglePass) {
  const auto [seed, parts] = GetParam();
  Rng rng(seed);
  const auto n = static_cast<std::size_t>(rng.uniform_int(0, 2000));

  // Random split points — parts of wildly different sizes, possibly empty.
  std::vector<std::size_t> owner(n);
  for (auto& o : owner) o = rng.index(parts);

  RunningStat whole;
  std::vector<RunningStat> shards(parts);
  for (std::size_t i = 0; i < n; ++i) {
    // Mix magnitudes so a numerically sloppy merge would show up.
    const double x = rng.uniform(-1e6, 1e6) + rng.uniform(-1.0, 1.0);
    whole.add(x);
    shards[owner[i]].add(x);
  }

  RunningStat merged;
  for (const RunningStat& shard : shards) merged.merge(shard);

  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_DOUBLE_EQ(merged.min(), whole.min());
  EXPECT_DOUBLE_EQ(merged.max(), whole.max());
  EXPECT_NEAR(merged.sum(), whole.sum(), 1e-6 * (1.0 + std::abs(whole.sum())));
  EXPECT_NEAR(merged.mean(), whole.mean(),
              1e-9 * (1.0 + std::abs(whole.mean())));
  EXPECT_NEAR(merged.variance(), whole.variance(),
              1e-9 * (1.0 + whole.variance()));
}

INSTANTIATE_TEST_SUITE_P(
    RandomSplits, RunningStatMergeProperty,
    ::testing::Combine(::testing::Values(std::uint64_t{1}, std::uint64_t{7},
                                         std::uint64_t{42}, std::uint64_t{1234},
                                         std::uint64_t{99999}),
                       ::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{5}, std::size_t{16})));

TEST(HistogramTest, BinBoundaries) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bins(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(HistogramTest, CountsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(1.0);    // bin 0
  h.add(2.0);    // bin 1 (half-open bins)
  h.add(9.99);   // bin 4
  h.add(-5.0);   // clamped to bin 0
  h.add(42.0);   // clamped to bin 4
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(4), 2u);
}

TEST(HistogramTest, QuantileInterpolates) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.0);
  EXPECT_LE(h.quantile(0.0), h.quantile(1.0));
}

TEST(HistogramTest, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(5.0, 5.0, 3), PreconditionError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), PreconditionError);
  Histogram h(0.0, 1.0, 2);
  EXPECT_THROW(h.bin_count(2), PreconditionError);
  EXPECT_THROW(h.quantile(1.5), PreconditionError);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
  }
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-3.0, 7.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 7.0);
  }
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(RngTest, ForkIsIndependentOfParentDrawCount) {
  // Forking first and drawing later must equal forking fresh: the child
  // stream depends only on the parent state at fork time.
  Rng a(77);
  Rng child_a = a.fork();
  Rng b(77);
  Rng child_b = b.fork();
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(child_a.uniform(0.0, 1.0), child_b.uniform(0.0, 1.0));
  }
}

TEST(RngTest, RejectsBadArguments) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform(2.0, 1.0), PreconditionError);
  EXPECT_THROW(rng.uniform_int(3, 2), PreconditionError);
  EXPECT_THROW(rng.index(0), PreconditionError);
  EXPECT_THROW(rng.chance(1.5), PreconditionError);
  EXPECT_THROW(rng.normal(0.0, -1.0), PreconditionError);
}

TEST(UnitsTest, Conversions) {
  EXPECT_DOUBLE_EQ(kmh_to_mps(36.0), 10.0);
  EXPECT_DOUBLE_EQ(mps_to_kmh(10.0), 36.0);
  EXPECT_DOUBLE_EQ(sqkm_to_sqm(2.5), 2.5e6);
  EXPECT_DOUBLE_EQ(sqm_to_sqkm(2.5e6), 2.5);
}

TEST(ErrorTest, MacrosThrowTypedExceptions) {
  EXPECT_THROW(SALARM_REQUIRE(false, "nope"), PreconditionError);
  EXPECT_THROW(SALARM_ASSERT(false, "bug"), InvariantError);
  EXPECT_NO_THROW(SALARM_REQUIRE(true, ""));
  EXPECT_NO_THROW(SALARM_ASSERT(true, ""));
}

}  // namespace
}  // namespace salarm
