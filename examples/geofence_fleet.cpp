// Fleet geofencing: a delivery fleet moves on a synthetic road network;
// dispatch installs shared geofence alarms around depots and customer
// sites. Every vehicle runs the safe-region protocol through the public
// API (ClientMonitor), and the example reports how much communication the
// distributed architecture saves versus naive periodic reporting.
//
//   $ ./build/examples/geofence_fleet
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "core/client_monitor.h"
#include "core/spatial_alarm_service.h"
#include "mobility/trace_generator.h"
#include "roadnet/network_builder.h"

using namespace salarm;

int main() {
  // Road network and fleet.
  roadnet::NetworkConfig net_cfg;
  net_cfg.width_m = 12000;
  net_cfg.height_m = 12000;
  Rng rng(2024);
  const auto network = roadnet::build_synthetic_network(net_cfg, rng);

  mobility::TraceConfig trace_cfg;
  trace_cfg.vehicle_count = 60;
  trace_cfg.seed = 7;
  mobility::TraceGenerator fleet(network, trace_cfg);

  // Server with geofences: 25 customer sites (shared by dispatch = owner 0
  // and every driver 0..59) and 2 public hazard zones.
  core::SpatialAlarmService::Config cfg;
  cfg.universe = network.bounding_box();
  core::SpatialAlarmService service(cfg);

  std::vector<alarms::SubscriberId> all_drivers;
  for (alarms::SubscriberId d = 0; d < trace_cfg.vehicle_count; ++d) {
    all_drivers.push_back(d);
  }
  Rng sites(99);
  for (int i = 0; i < 25; ++i) {
    const geo::Point c{sites.uniform(500, 11500), sites.uniform(500, 11500)};
    service.install(alarms::AlarmScope::kShared, 0,
                    geo::Rect::centered_square(c, sites.uniform(150, 400)),
                    all_drivers);
  }
  for (int i = 0; i < 2; ++i) {
    const geo::Point c{sites.uniform(2000, 10000), sites.uniform(2000, 10000)};
    service.install(alarms::AlarmScope::kPublic, 0,
                    geo::Rect::centered_square(c, 800));
  }

  // Drive 20 simulated minutes.
  std::vector<core::ClientMonitor> monitors(trace_cfg.vehicle_count);
  std::size_t reports = 0;
  std::size_t arrivals = 0;
  std::uint64_t downstream_bytes = 0;
  const int ticks = 20 * 60;
  for (int t = 0; t < ticks; ++t) {
    fleet.step();
    for (mobility::VehicleId v = 0; v < trace_cfg.vehicle_count; ++v) {
      const auto& sample = fleet.samples()[v];
      if (!monitors[v].should_report(sample.pos)) continue;
      ++reports;
      const auto update = service.process_update(
          v, sample.pos, sample.heading, static_cast<std::uint64_t>(t));
      downstream_bytes += update.safe_region_message.size();
      monitors[v].receive(update.safe_region_message);
      arrivals += update.fired.size();
    }
  }

  const auto samples = static_cast<double>(ticks) * trace_cfg.vehicle_count;
  std::printf("fleet of %zu vehicles, %d minutes on a %.0f km^2 network\n",
              trace_cfg.vehicle_count, ticks / 60,
              network.bounding_box().area() / 1e6);
  std::printf("geofence arrivals detected: %zu\n", arrivals);
  std::printf("position fixes:   %12.0f\n", samples);
  std::printf("server contacts:  %12zu  (%.2f%% — periodic would send "
              "100%%)\n",
              reports, 100.0 * static_cast<double>(reports) / samples);
  std::printf("downstream bytes: %12llu  (safe regions)\n",
              static_cast<unsigned long long>(downstream_bytes));
  return arrivals > 0 ? 0 : 1;
}
