// Quickstart: install spatial alarms on the server, walk one mobile client
// across the map, and let the safe-region protocol decide when the client
// talks to the server.
//
//   $ ./build/examples/quickstart
//
// Shows the full public API surface: SpatialAlarmService (server side),
// ClientMonitor (device side), and the wire messages between them.
#include <cstdio>

#include "core/client_monitor.h"
#include "core/spatial_alarm_service.h"

using namespace salarm;

int main() {
  // A 10 km x 10 km universe with 2 km x 2 km grid cells.
  core::SpatialAlarmService::Config config;
  config.universe = geo::Rect(0, 0, 10000, 10000);
  config.grid_cell_area_sqm = 4e6;
  core::SpatialAlarmService service(config);

  // "Alert me when I am within 200 m of the dry-clean store" — a private
  // alarm for subscriber 1 — plus a public road-hazard alarm everyone gets.
  const auto dry_clean = service.install(
      alarms::AlarmScope::kPrivate, /*owner=*/1,
      geo::Rect::centered_square({4200, 1000}, 400));
  const auto hazard = service.install(
      alarms::AlarmScope::kPublic, /*owner=*/0,
      geo::Rect::centered_square({7300, 1000}, 600));
  std::printf("installed alarms: dry_clean=%u hazard=%u\n", dry_clean,
              hazard);

  // Subscriber 1 drives east along y = 1000 at 20 m/s, reporting only when
  // its ClientMonitor says the safe region has been left.
  core::ClientMonitor monitor;
  std::size_t reports = 0;
  for (int second = 0; second <= 450; ++second) {
    const geo::Point position{20.0 * second, 1000.0};
    if (!monitor.should_report(position)) continue;

    ++reports;
    const auto update = service.process_update(/*subscriber=*/1, position,
                                               /*heading=*/0.0,
                                               /*tick=*/second);
    monitor.receive(update.safe_region_message);
    for (const alarms::AlarmId fired : update.fired) {
      std::printf("t=%3ds  *** alarm %u fired at (%.0f, %.0f) ***\n", second,
                  fired, position.x, position.y);
    }
  }

  std::printf(
      "\n451 position fixes, %zu server contacts (%.1f%%), "
      "%llu containment ops on the device\n",
      reports, 100.0 * static_cast<double>(reports) / 451.0,
      static_cast<unsigned long long>(monitor.check_ops()));
  std::printf("triggers recorded by the server: %zu (expected 2)\n",
              service.trigger_log().size());
  return service.trigger_log().size() == 2 ? 0 : 1;
}
