// Device heterogeneity (paper §2.1/§4): the same server serves a weak
// client with rectangular safe regions and a strong client with pyramid
// bitmaps of the height it asked for. Both walk the identical route; the
// example contrasts server contacts, downstream bytes and containment work.
//
//   $ ./build/examples/heterogeneous_clients
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "core/client_monitor.h"
#include "core/spatial_alarm_service.h"

using namespace salarm;

namespace {

struct Outcome {
  std::size_t reports = 0;
  std::uint64_t downstream_bytes = 0;
  std::uint64_t check_ops = 0;
  std::size_t triggers = 0;
};

Outcome walk(core::SpatialAlarmService& service, alarms::SubscriberId who,
             core::RegionKind kind) {
  core::ClientMonitor monitor;
  Outcome out;
  // A fixed zig-zag route across the map, 1 fix per second at 15 m/s.
  geo::Point pos{500, 500};
  double heading = 0.0;
  for (int t = 0; t < 1200; ++t) {
    const bool eastward = (t / 300) % 2 == 0;
    heading = eastward ? 0.0 : M_PI / 2.0;
    pos = eastward ? geo::Point{pos.x + 15.0, pos.y}
                   : geo::Point{pos.x, pos.y + 15.0};
    if (!monitor.should_report(pos)) continue;
    ++out.reports;
    const auto update = service.process_update(
        who, pos, heading, static_cast<std::uint64_t>(t), kind);
    out.downstream_bytes += update.safe_region_message.size();
    out.triggers += update.fired.size();
    monitor.receive(update.safe_region_message);
  }
  out.check_ops = monitor.check_ops();
  return out;
}

}  // namespace

int main() {
  core::SpatialAlarmService::Config config;
  config.universe = geo::Rect(0, 0, 12000, 12000);
  config.pyramid.height = 5;  // the strong client's requested granularity
  core::SpatialAlarmService service(config);

  // Public alarms only, so both subscribers face identical constraints.
  Rng rng(11);
  for (int i = 0; i < 140; ++i) {
    const geo::Point c{rng.uniform(300, 11700), rng.uniform(300, 11700)};
    service.install(alarms::AlarmScope::kPublic, 0,
                    geo::Rect::centered_square(c, rng.uniform(120, 400)));
  }

  const Outcome weak = walk(service, 1, core::RegionKind::kRect);
  const Outcome strong = walk(service, 2, core::RegionKind::kPyramid);

  std::printf("identical 1200-fix route, identical public alarms\n\n");
  std::printf("%-26s %14s %16s\n", "", "weak (rect)", "strong (pyramid)");
  std::printf("%-26s %14zu %16zu\n", "server contacts", weak.reports,
              strong.reports);
  std::printf("%-26s %14llu %16llu\n", "downstream bytes",
              static_cast<unsigned long long>(weak.downstream_bytes),
              static_cast<unsigned long long>(strong.downstream_bytes));
  std::printf("%-26s %14llu %16llu\n", "containment ops",
              static_cast<unsigned long long>(weak.check_ops),
              static_cast<unsigned long long>(strong.check_ops));
  std::printf("%-26s %14zu %16zu\n", "alarms triggered", weak.triggers,
              strong.triggers);
  std::printf(
      "\nthe pyramid client does more local work per check but leaves its\n"
      "(larger, finer-grained) safe region less often.\n");
  return weak.triggers == strong.triggers ? 0 : 1;
}
