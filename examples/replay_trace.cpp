// Trace replay: export a generated trace to CSV, load it back (the same
// path real-world traces take into the library), and replay it through the
// full service/monitor protocol.
//
//   $ ./build/examples/replay_trace [trace.csv]
//
// With an argument, the file is loaded instead of generated — point it at
// your own fleet log in the documented CSV format (see
// src/mobility/trace_io.h).
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "core/client_monitor.h"
#include "core/spatial_alarm_service.h"
#include "mobility/trace_generator.h"
#include "mobility/trace_io.h"
#include "roadnet/network_builder.h"

using namespace salarm;

int main(int argc, char** argv) {
  mobility::RecordedTrace trace = [&] {
    if (argc > 1) {
      std::printf("loading trace from %s\n", argv[1]);
      return mobility::load_trace_csv(argv[1]);
    }
    roadnet::NetworkConfig net_cfg;
    net_cfg.width_m = 8000;
    net_cfg.height_m = 8000;
    Rng rng(1);
    const auto network = roadnet::build_synthetic_network(net_cfg, rng);
    mobility::TraceConfig cfg;
    cfg.vehicle_count = 40;
    cfg.seed = 3;
    mobility::TraceGenerator gen(network, cfg);
    auto generated = gen.record(10 * 60);

    // Demonstrate the CSV round trip users would rely on.
    const std::string path = "/tmp/salarm_example_trace.csv";
    mobility::save_trace_csv(generated, path);
    std::printf("generated 40-vehicle trace, saved to %s, reloading...\n",
                path.c_str());
    return mobility::load_trace_csv(path);
  }();

  // Bounding box of the trace defines the universe.
  geo::Rect universe = geo::Rect::bounding(trace.sample(0, 0).pos,
                                           trace.sample(0, 0).pos);
  for (std::size_t t = 0; t < trace.tick_count(); ++t) {
    for (mobility::VehicleId v = 0; v < trace.vehicle_count(); ++v) {
      universe = universe.united(trace.sample(t, v).pos);
    }
  }
  universe = universe.expanded(10.0);

  core::SpatialAlarmService::Config cfg;
  cfg.universe = universe;
  core::SpatialAlarmService service(cfg);
  Rng sites(17);
  for (int i = 0; i < 60; ++i) {
    const geo::Point c{
        sites.uniform(universe.lo().x + 300, universe.hi().x - 300),
        sites.uniform(universe.lo().y + 300, universe.hi().y - 300)};
    service.install(alarms::AlarmScope::kPublic, 0,
                    geo::Rect::centered_square(c, sites.uniform(150, 400)));
  }

  std::vector<core::ClientMonitor> monitors(trace.vehicle_count());
  std::size_t reports = 0;
  std::size_t triggers = 0;
  for (std::size_t t = 0; t < trace.tick_count(); ++t) {
    for (mobility::VehicleId v = 0; v < trace.vehicle_count(); ++v) {
      const auto& sample = trace.sample(t, v);
      if (!monitors[v].should_report(sample.pos)) continue;
      ++reports;
      const auto update = service.process_update(
          v, sample.pos, sample.heading, static_cast<std::uint64_t>(t));
      monitors[v].receive(update.safe_region_message);
      triggers += update.fired.size();
    }
  }

  const double samples =
      static_cast<double>(trace.tick_count()) * trace.vehicle_count();
  std::printf("replayed %zu ticks x %zu vehicles (%.0f fixes)\n",
              trace.tick_count(), trace.vehicle_count(), samples);
  std::printf("server contacts: %zu (%.2f%%), alarms fired: %zu\n", reports,
              100.0 * static_cast<double>(reports) / samples, triggers);
  return triggers > 0 ? 0 : 1;
}
