// Moving-target alarms (paper §1, alarm class 2/3): "alert me when I come
// within 500 m of the ice-cream truck". The truck is itself mobile, so the
// server re-installs the alarm region whenever the truck reports a
// significantly different position; subscribers' safe regions are rebuilt
// the next time they check in.
//
//   $ ./build/examples/moving_target
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/client_monitor.h"
#include "core/spatial_alarm_service.h"

using namespace salarm;

int main() {
  core::SpatialAlarmService::Config config;
  config.universe = geo::Rect(0, 0, 10000, 10000);
  core::SpatialAlarmService service(config);

  // The truck circles the town center; subscriber 1 drives a straight road.
  // The alarm region is a 1 km square centered on the truck, re-installed
  // when the truck drifts >150 m from the last published target.
  auto truck_at = [](int t) {
    const double angle = 2.0 * M_PI * t / 900.0;
    return geo::Point{5000 + 2200 * std::cos(angle),
                      3200 + 2200 * std::sin(angle)};
  };

  geo::Point published = truck_at(0);
  const alarms::AlarmId alarm = service.install(
      alarms::AlarmScope::kShared, /*owner=*/0,
      geo::Rect::centered_square(published, 1000), {1});
  std::size_t republishes = 0;

  core::ClientMonitor monitor;
  std::size_t reports = 0;
  std::size_t encounters = 0;
  for (int t = 0; t < 900; ++t) {
    // Truck side: publish a fresh target when it moved far enough. This
    // invalidates nothing retroactively — subscribers pick up the new
    // region on their next contact, exactly like a newly installed alarm.
    const geo::Point truck = truck_at(t);
    if (geo::distance(truck, published) > 150.0) {
      service.move(alarm, geo::Rect::centered_square(truck, 1000));
      published = truck;
      ++republishes;
      // Server-initiated invalidation: the subscriber's old safe region may
      // now be stale, so the server pushes a refresh at the next report; a
      // production deployment would send an invalidation notice. Here we
      // conservatively force the client to check in.
      monitor = core::ClientMonitor();
    }

    const geo::Point me{t * 8.0, 3200.0};
    if (monitor.should_report(me)) {
      ++reports;
      const auto update =
          service.process_update(1, me, 0.0, static_cast<std::uint64_t>(t));
      monitor.receive(update.safe_region_message);
      encounters += update.fired.size();
    }
  }

  std::printf("truck republished its position %zu times\n", republishes);
  std::printf("subscriber contacted the server %zu times over 900 fixes\n",
              reports);
  std::printf("truck encounters detected: %zu\n", encounters);
  return encounters >= 1 ? 0 : 1;
}
