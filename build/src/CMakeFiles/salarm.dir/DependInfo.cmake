
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alarms/alarm_store.cpp" "src/CMakeFiles/salarm.dir/alarms/alarm_store.cpp.o" "gcc" "src/CMakeFiles/salarm.dir/alarms/alarm_store.cpp.o.d"
  "/root/repo/src/alarms/grid_index.cpp" "src/CMakeFiles/salarm.dir/alarms/grid_index.cpp.o" "gcc" "src/CMakeFiles/salarm.dir/alarms/grid_index.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/CMakeFiles/salarm.dir/common/stats.cpp.o" "gcc" "src/CMakeFiles/salarm.dir/common/stats.cpp.o.d"
  "/root/repo/src/core/client_monitor.cpp" "src/CMakeFiles/salarm.dir/core/client_monitor.cpp.o" "gcc" "src/CMakeFiles/salarm.dir/core/client_monitor.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/CMakeFiles/salarm.dir/core/experiment.cpp.o" "gcc" "src/CMakeFiles/salarm.dir/core/experiment.cpp.o.d"
  "/root/repo/src/core/spatial_alarm_service.cpp" "src/CMakeFiles/salarm.dir/core/spatial_alarm_service.cpp.o" "gcc" "src/CMakeFiles/salarm.dir/core/spatial_alarm_service.cpp.o.d"
  "/root/repo/src/geometry/rect.cpp" "src/CMakeFiles/salarm.dir/geometry/rect.cpp.o" "gcc" "src/CMakeFiles/salarm.dir/geometry/rect.cpp.o.d"
  "/root/repo/src/geometry/segment.cpp" "src/CMakeFiles/salarm.dir/geometry/segment.cpp.o" "gcc" "src/CMakeFiles/salarm.dir/geometry/segment.cpp.o.d"
  "/root/repo/src/grid/grid_overlay.cpp" "src/CMakeFiles/salarm.dir/grid/grid_overlay.cpp.o" "gcc" "src/CMakeFiles/salarm.dir/grid/grid_overlay.cpp.o.d"
  "/root/repo/src/index/rstar_tree.cpp" "src/CMakeFiles/salarm.dir/index/rstar_tree.cpp.o" "gcc" "src/CMakeFiles/salarm.dir/index/rstar_tree.cpp.o.d"
  "/root/repo/src/mobility/position_source.cpp" "src/CMakeFiles/salarm.dir/mobility/position_source.cpp.o" "gcc" "src/CMakeFiles/salarm.dir/mobility/position_source.cpp.o.d"
  "/root/repo/src/mobility/random_waypoint.cpp" "src/CMakeFiles/salarm.dir/mobility/random_waypoint.cpp.o" "gcc" "src/CMakeFiles/salarm.dir/mobility/random_waypoint.cpp.o.d"
  "/root/repo/src/mobility/trace_generator.cpp" "src/CMakeFiles/salarm.dir/mobility/trace_generator.cpp.o" "gcc" "src/CMakeFiles/salarm.dir/mobility/trace_generator.cpp.o.d"
  "/root/repo/src/mobility/trace_io.cpp" "src/CMakeFiles/salarm.dir/mobility/trace_io.cpp.o" "gcc" "src/CMakeFiles/salarm.dir/mobility/trace_io.cpp.o.d"
  "/root/repo/src/roadnet/network_builder.cpp" "src/CMakeFiles/salarm.dir/roadnet/network_builder.cpp.o" "gcc" "src/CMakeFiles/salarm.dir/roadnet/network_builder.cpp.o.d"
  "/root/repo/src/roadnet/network_io.cpp" "src/CMakeFiles/salarm.dir/roadnet/network_io.cpp.o" "gcc" "src/CMakeFiles/salarm.dir/roadnet/network_io.cpp.o.d"
  "/root/repo/src/roadnet/road_network.cpp" "src/CMakeFiles/salarm.dir/roadnet/road_network.cpp.o" "gcc" "src/CMakeFiles/salarm.dir/roadnet/road_network.cpp.o.d"
  "/root/repo/src/roadnet/shortest_path.cpp" "src/CMakeFiles/salarm.dir/roadnet/shortest_path.cpp.o" "gcc" "src/CMakeFiles/salarm.dir/roadnet/shortest_path.cpp.o.d"
  "/root/repo/src/saferegion/corner_baseline.cpp" "src/CMakeFiles/salarm.dir/saferegion/corner_baseline.cpp.o" "gcc" "src/CMakeFiles/salarm.dir/saferegion/corner_baseline.cpp.o.d"
  "/root/repo/src/saferegion/motion_model.cpp" "src/CMakeFiles/salarm.dir/saferegion/motion_model.cpp.o" "gcc" "src/CMakeFiles/salarm.dir/saferegion/motion_model.cpp.o.d"
  "/root/repo/src/saferegion/mwpsr.cpp" "src/CMakeFiles/salarm.dir/saferegion/mwpsr.cpp.o" "gcc" "src/CMakeFiles/salarm.dir/saferegion/mwpsr.cpp.o.d"
  "/root/repo/src/saferegion/pyramid.cpp" "src/CMakeFiles/salarm.dir/saferegion/pyramid.cpp.o" "gcc" "src/CMakeFiles/salarm.dir/saferegion/pyramid.cpp.o.d"
  "/root/repo/src/saferegion/wire_format.cpp" "src/CMakeFiles/salarm.dir/saferegion/wire_format.cpp.o" "gcc" "src/CMakeFiles/salarm.dir/saferegion/wire_format.cpp.o.d"
  "/root/repo/src/sim/metrics.cpp" "src/CMakeFiles/salarm.dir/sim/metrics.cpp.o" "gcc" "src/CMakeFiles/salarm.dir/sim/metrics.cpp.o.d"
  "/root/repo/src/sim/oracle.cpp" "src/CMakeFiles/salarm.dir/sim/oracle.cpp.o" "gcc" "src/CMakeFiles/salarm.dir/sim/oracle.cpp.o.d"
  "/root/repo/src/sim/server.cpp" "src/CMakeFiles/salarm.dir/sim/server.cpp.o" "gcc" "src/CMakeFiles/salarm.dir/sim/server.cpp.o.d"
  "/root/repo/src/sim/simulation.cpp" "src/CMakeFiles/salarm.dir/sim/simulation.cpp.o" "gcc" "src/CMakeFiles/salarm.dir/sim/simulation.cpp.o.d"
  "/root/repo/src/strategies/bitmap_region_strategy.cpp" "src/CMakeFiles/salarm.dir/strategies/bitmap_region_strategy.cpp.o" "gcc" "src/CMakeFiles/salarm.dir/strategies/bitmap_region_strategy.cpp.o.d"
  "/root/repo/src/strategies/optimal.cpp" "src/CMakeFiles/salarm.dir/strategies/optimal.cpp.o" "gcc" "src/CMakeFiles/salarm.dir/strategies/optimal.cpp.o.d"
  "/root/repo/src/strategies/rect_region_strategy.cpp" "src/CMakeFiles/salarm.dir/strategies/rect_region_strategy.cpp.o" "gcc" "src/CMakeFiles/salarm.dir/strategies/rect_region_strategy.cpp.o.d"
  "/root/repo/src/strategies/safe_period.cpp" "src/CMakeFiles/salarm.dir/strategies/safe_period.cpp.o" "gcc" "src/CMakeFiles/salarm.dir/strategies/safe_period.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
