# Empty dependencies file for salarm.
# This may be replaced when dependencies are built.
