file(REMOVE_RECURSE
  "libsalarm.a"
)
