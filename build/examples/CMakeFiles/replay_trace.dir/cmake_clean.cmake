file(REMOVE_RECURSE
  "CMakeFiles/replay_trace.dir/replay_trace.cpp.o"
  "CMakeFiles/replay_trace.dir/replay_trace.cpp.o.d"
  "replay_trace"
  "replay_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replay_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
