# Empty dependencies file for replay_trace.
# This may be replaced when dependencies are built.
