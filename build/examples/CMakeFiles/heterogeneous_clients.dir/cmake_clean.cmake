file(REMOVE_RECURSE
  "CMakeFiles/heterogeneous_clients.dir/heterogeneous_clients.cpp.o"
  "CMakeFiles/heterogeneous_clients.dir/heterogeneous_clients.cpp.o.d"
  "heterogeneous_clients"
  "heterogeneous_clients.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heterogeneous_clients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
