# Empty compiler generated dependencies file for heterogeneous_clients.
# This may be replaced when dependencies are built.
