# Empty compiler generated dependencies file for moving_target.
# This may be replaced when dependencies are built.
