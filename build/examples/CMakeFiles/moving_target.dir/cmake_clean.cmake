file(REMOVE_RECURSE
  "CMakeFiles/moving_target.dir/moving_target.cpp.o"
  "CMakeFiles/moving_target.dir/moving_target.cpp.o.d"
  "moving_target"
  "moving_target.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moving_target.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
