file(REMOVE_RECURSE
  "CMakeFiles/geofence_fleet.dir/geofence_fleet.cpp.o"
  "CMakeFiles/geofence_fleet.dir/geofence_fleet.cpp.o.d"
  "geofence_fleet"
  "geofence_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geofence_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
