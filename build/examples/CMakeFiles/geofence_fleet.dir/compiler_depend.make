# Empty compiler generated dependencies file for geofence_fleet.
# This may be replaced when dependencies are built.
