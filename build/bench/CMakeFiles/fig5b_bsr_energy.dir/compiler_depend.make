# Empty compiler generated dependencies file for fig5b_bsr_energy.
# This may be replaced when dependencies are built.
