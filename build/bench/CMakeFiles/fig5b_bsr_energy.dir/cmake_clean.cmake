file(REMOVE_RECURSE
  "CMakeFiles/fig5b_bsr_energy.dir/fig5b_bsr_energy.cpp.o"
  "CMakeFiles/fig5b_bsr_energy.dir/fig5b_bsr_energy.cpp.o.d"
  "fig5b_bsr_energy"
  "fig5b_bsr_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5b_bsr_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
