# Empty dependencies file for abl_pyramid_fanout.
# This may be replaced when dependencies are built.
