file(REMOVE_RECURSE
  "CMakeFiles/abl_pyramid_fanout.dir/abl_pyramid_fanout.cpp.o"
  "CMakeFiles/abl_pyramid_fanout.dir/abl_pyramid_fanout.cpp.o.d"
  "abl_pyramid_fanout"
  "abl_pyramid_fanout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_pyramid_fanout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
