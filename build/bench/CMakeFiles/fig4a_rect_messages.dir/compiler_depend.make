# Empty compiler generated dependencies file for fig4a_rect_messages.
# This may be replaced when dependencies are built.
