file(REMOVE_RECURSE
  "CMakeFiles/fig4a_rect_messages.dir/fig4a_rect_messages.cpp.o"
  "CMakeFiles/fig4a_rect_messages.dir/fig4a_rect_messages.cpp.o.d"
  "fig4a_rect_messages"
  "fig4a_rect_messages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4a_rect_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
