# Empty dependencies file for fig6a_compare_messages.
# This may be replaced when dependencies are built.
