file(REMOVE_RECURSE
  "CMakeFiles/fig6a_compare_messages.dir/fig6a_compare_messages.cpp.o"
  "CMakeFiles/fig6a_compare_messages.dir/fig6a_compare_messages.cpp.o.d"
  "fig6a_compare_messages"
  "fig6a_compare_messages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6a_compare_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
