file(REMOVE_RECURSE
  "CMakeFiles/scalability_vehicles.dir/scalability_vehicles.cpp.o"
  "CMakeFiles/scalability_vehicles.dir/scalability_vehicles.cpp.o.d"
  "scalability_vehicles"
  "scalability_vehicles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalability_vehicles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
