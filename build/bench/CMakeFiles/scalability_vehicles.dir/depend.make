# Empty dependencies file for scalability_vehicles.
# This may be replaced when dependencies are built.
