file(REMOVE_RECURSE
  "CMakeFiles/abl_bit_budget.dir/abl_bit_budget.cpp.o"
  "CMakeFiles/abl_bit_budget.dir/abl_bit_budget.cpp.o.d"
  "abl_bit_budget"
  "abl_bit_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_bit_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
