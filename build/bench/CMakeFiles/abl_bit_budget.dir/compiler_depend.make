# Empty compiler generated dependencies file for abl_bit_budget.
# This may be replaced when dependencies are built.
