file(REMOVE_RECURSE
  "CMakeFiles/fig6c_compare_energy.dir/fig6c_compare_energy.cpp.o"
  "CMakeFiles/fig6c_compare_energy.dir/fig6c_compare_energy.cpp.o.d"
  "fig6c_compare_energy"
  "fig6c_compare_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6c_compare_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
