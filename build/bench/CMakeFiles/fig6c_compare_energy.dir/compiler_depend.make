# Empty compiler generated dependencies file for fig6c_compare_energy.
# This may be replaced when dependencies are built.
