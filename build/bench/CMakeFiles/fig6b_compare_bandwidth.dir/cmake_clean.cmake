file(REMOVE_RECURSE
  "CMakeFiles/fig6b_compare_bandwidth.dir/fig6b_compare_bandwidth.cpp.o"
  "CMakeFiles/fig6b_compare_bandwidth.dir/fig6b_compare_bandwidth.cpp.o.d"
  "fig6b_compare_bandwidth"
  "fig6b_compare_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6b_compare_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
