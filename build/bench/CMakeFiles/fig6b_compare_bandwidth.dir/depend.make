# Empty dependencies file for fig6b_compare_bandwidth.
# This may be replaced when dependencies are built.
