file(REMOVE_RECURSE
  "CMakeFiles/abl_mobility_model.dir/abl_mobility_model.cpp.o"
  "CMakeFiles/abl_mobility_model.dir/abl_mobility_model.cpp.o.d"
  "abl_mobility_model"
  "abl_mobility_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_mobility_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
