# Empty dependencies file for abl_mobility_model.
# This may be replaced when dependencies are built.
