# Empty compiler generated dependencies file for abl_public_cache.
# This may be replaced when dependencies are built.
