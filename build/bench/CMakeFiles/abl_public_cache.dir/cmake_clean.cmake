file(REMOVE_RECURSE
  "CMakeFiles/abl_public_cache.dir/abl_public_cache.cpp.o"
  "CMakeFiles/abl_public_cache.dir/abl_public_cache.cpp.o.d"
  "abl_public_cache"
  "abl_public_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_public_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
