# Empty compiler generated dependencies file for micro_mwpsr.
# This may be replaced when dependencies are built.
