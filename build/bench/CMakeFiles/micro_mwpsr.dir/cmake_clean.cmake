file(REMOVE_RECURSE
  "CMakeFiles/micro_mwpsr.dir/micro_mwpsr.cpp.o"
  "CMakeFiles/micro_mwpsr.dir/micro_mwpsr.cpp.o.d"
  "micro_mwpsr"
  "micro_mwpsr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_mwpsr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
