# Empty dependencies file for robustness_loss.
# This may be replaced when dependencies are built.
