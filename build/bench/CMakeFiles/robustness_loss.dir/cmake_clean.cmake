file(REMOVE_RECURSE
  "CMakeFiles/robustness_loss.dir/robustness_loss.cpp.o"
  "CMakeFiles/robustness_loss.dir/robustness_loss.cpp.o.d"
  "robustness_loss"
  "robustness_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robustness_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
