# Empty compiler generated dependencies file for fig1b_motion_pdf.
# This may be replaced when dependencies are built.
