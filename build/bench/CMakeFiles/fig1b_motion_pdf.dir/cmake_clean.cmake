file(REMOVE_RECURSE
  "CMakeFiles/fig1b_motion_pdf.dir/fig1b_motion_pdf.cpp.o"
  "CMakeFiles/fig1b_motion_pdf.dir/fig1b_motion_pdf.cpp.o.d"
  "fig1b_motion_pdf"
  "fig1b_motion_pdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1b_motion_pdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
