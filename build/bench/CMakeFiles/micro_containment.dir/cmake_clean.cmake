file(REMOVE_RECURSE
  "CMakeFiles/micro_containment.dir/micro_containment.cpp.o"
  "CMakeFiles/micro_containment.dir/micro_containment.cpp.o.d"
  "micro_containment"
  "micro_containment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_containment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
