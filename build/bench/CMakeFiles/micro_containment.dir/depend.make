# Empty dependencies file for micro_containment.
# This may be replaced when dependencies are built.
