file(REMOVE_RECURSE
  "CMakeFiles/abl_corner_baseline.dir/abl_corner_baseline.cpp.o"
  "CMakeFiles/abl_corner_baseline.dir/abl_corner_baseline.cpp.o.d"
  "abl_corner_baseline"
  "abl_corner_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_corner_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
