# Empty compiler generated dependencies file for abl_corner_baseline.
# This may be replaced when dependencies are built.
