file(REMOVE_RECURSE
  "CMakeFiles/fig5a_bsr_messages.dir/fig5a_bsr_messages.cpp.o"
  "CMakeFiles/fig5a_bsr_messages.dir/fig5a_bsr_messages.cpp.o.d"
  "fig5a_bsr_messages"
  "fig5a_bsr_messages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5a_bsr_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
