# Empty dependencies file for fig5a_bsr_messages.
# This may be replaced when dependencies are built.
