# Empty dependencies file for abl_dominance_pruning.
# This may be replaced when dependencies are built.
