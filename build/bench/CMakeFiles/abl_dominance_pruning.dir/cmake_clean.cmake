file(REMOVE_RECURSE
  "CMakeFiles/abl_dominance_pruning.dir/abl_dominance_pruning.cpp.o"
  "CMakeFiles/abl_dominance_pruning.dir/abl_dominance_pruning.cpp.o.d"
  "abl_dominance_pruning"
  "abl_dominance_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_dominance_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
