# Empty compiler generated dependencies file for abl_safe_period_estimate.
# This may be replaced when dependencies are built.
