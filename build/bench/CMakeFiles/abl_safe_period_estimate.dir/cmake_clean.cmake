file(REMOVE_RECURSE
  "CMakeFiles/abl_safe_period_estimate.dir/abl_safe_period_estimate.cpp.o"
  "CMakeFiles/abl_safe_period_estimate.dir/abl_safe_period_estimate.cpp.o.d"
  "abl_safe_period_estimate"
  "abl_safe_period_estimate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_safe_period_estimate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
