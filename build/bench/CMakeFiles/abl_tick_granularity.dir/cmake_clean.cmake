file(REMOVE_RECURSE
  "CMakeFiles/abl_tick_granularity.dir/abl_tick_granularity.cpp.o"
  "CMakeFiles/abl_tick_granularity.dir/abl_tick_granularity.cpp.o.d"
  "abl_tick_granularity"
  "abl_tick_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_tick_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
