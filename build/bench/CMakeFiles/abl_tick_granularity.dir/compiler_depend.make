# Empty compiler generated dependencies file for abl_tick_granularity.
# This may be replaced when dependencies are built.
