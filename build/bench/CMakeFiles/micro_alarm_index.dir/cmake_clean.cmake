file(REMOVE_RECURSE
  "CMakeFiles/micro_alarm_index.dir/micro_alarm_index.cpp.o"
  "CMakeFiles/micro_alarm_index.dir/micro_alarm_index.cpp.o.d"
  "micro_alarm_index"
  "micro_alarm_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_alarm_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
