# Empty dependencies file for micro_alarm_index.
# This may be replaced when dependencies are built.
