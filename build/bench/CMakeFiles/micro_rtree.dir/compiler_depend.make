# Empty compiler generated dependencies file for micro_rtree.
# This may be replaced when dependencies are built.
