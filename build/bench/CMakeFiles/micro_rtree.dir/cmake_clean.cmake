file(REMOVE_RECURSE
  "CMakeFiles/micro_rtree.dir/micro_rtree.cpp.o"
  "CMakeFiles/micro_rtree.dir/micro_rtree.cpp.o.d"
  "micro_rtree"
  "micro_rtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_rtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
