# Empty dependencies file for fig4b_rect_server_time.
# This may be replaced when dependencies are built.
