# Empty dependencies file for abl_mwpsr_assembly.
# This may be replaced when dependencies are built.
