file(REMOVE_RECURSE
  "CMakeFiles/abl_mwpsr_assembly.dir/abl_mwpsr_assembly.cpp.o"
  "CMakeFiles/abl_mwpsr_assembly.dir/abl_mwpsr_assembly.cpp.o.d"
  "abl_mwpsr_assembly"
  "abl_mwpsr_assembly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_mwpsr_assembly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
