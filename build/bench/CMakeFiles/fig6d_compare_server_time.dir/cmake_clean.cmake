file(REMOVE_RECURSE
  "CMakeFiles/fig6d_compare_server_time.dir/fig6d_compare_server_time.cpp.o"
  "CMakeFiles/fig6d_compare_server_time.dir/fig6d_compare_server_time.cpp.o.d"
  "fig6d_compare_server_time"
  "fig6d_compare_server_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6d_compare_server_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
