# Empty dependencies file for fig6d_compare_server_time.
# This may be replaced when dependencies are built.
