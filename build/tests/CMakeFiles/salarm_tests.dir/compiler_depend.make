# Empty compiler generated dependencies file for salarm_tests.
# This may be replaced when dependencies are built.
