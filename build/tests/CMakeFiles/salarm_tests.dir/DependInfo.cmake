
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/alarms_test.cpp" "tests/CMakeFiles/salarm_tests.dir/alarms_test.cpp.o" "gcc" "tests/CMakeFiles/salarm_tests.dir/alarms_test.cpp.o.d"
  "/root/repo/tests/common_test.cpp" "tests/CMakeFiles/salarm_tests.dir/common_test.cpp.o" "gcc" "tests/CMakeFiles/salarm_tests.dir/common_test.cpp.o.d"
  "/root/repo/tests/corner_baseline_test.cpp" "tests/CMakeFiles/salarm_tests.dir/corner_baseline_test.cpp.o" "gcc" "tests/CMakeFiles/salarm_tests.dir/corner_baseline_test.cpp.o.d"
  "/root/repo/tests/experiment_test.cpp" "tests/CMakeFiles/salarm_tests.dir/experiment_test.cpp.o" "gcc" "tests/CMakeFiles/salarm_tests.dir/experiment_test.cpp.o.d"
  "/root/repo/tests/geometry_test.cpp" "tests/CMakeFiles/salarm_tests.dir/geometry_test.cpp.o" "gcc" "tests/CMakeFiles/salarm_tests.dir/geometry_test.cpp.o.d"
  "/root/repo/tests/grid_index_test.cpp" "tests/CMakeFiles/salarm_tests.dir/grid_index_test.cpp.o" "gcc" "tests/CMakeFiles/salarm_tests.dir/grid_index_test.cpp.o.d"
  "/root/repo/tests/grid_test.cpp" "tests/CMakeFiles/salarm_tests.dir/grid_test.cpp.o" "gcc" "tests/CMakeFiles/salarm_tests.dir/grid_test.cpp.o.d"
  "/root/repo/tests/mobility_test.cpp" "tests/CMakeFiles/salarm_tests.dir/mobility_test.cpp.o" "gcc" "tests/CMakeFiles/salarm_tests.dir/mobility_test.cpp.o.d"
  "/root/repo/tests/motion_model_test.cpp" "tests/CMakeFiles/salarm_tests.dir/motion_model_test.cpp.o" "gcc" "tests/CMakeFiles/salarm_tests.dir/motion_model_test.cpp.o.d"
  "/root/repo/tests/mwpsr_test.cpp" "tests/CMakeFiles/salarm_tests.dir/mwpsr_test.cpp.o" "gcc" "tests/CMakeFiles/salarm_tests.dir/mwpsr_test.cpp.o.d"
  "/root/repo/tests/network_io_test.cpp" "tests/CMakeFiles/salarm_tests.dir/network_io_test.cpp.o" "gcc" "tests/CMakeFiles/salarm_tests.dir/network_io_test.cpp.o.d"
  "/root/repo/tests/oracle_metrics_test.cpp" "tests/CMakeFiles/salarm_tests.dir/oracle_metrics_test.cpp.o" "gcc" "tests/CMakeFiles/salarm_tests.dir/oracle_metrics_test.cpp.o.d"
  "/root/repo/tests/position_source_test.cpp" "tests/CMakeFiles/salarm_tests.dir/position_source_test.cpp.o" "gcc" "tests/CMakeFiles/salarm_tests.dir/position_source_test.cpp.o.d"
  "/root/repo/tests/pyramid_test.cpp" "tests/CMakeFiles/salarm_tests.dir/pyramid_test.cpp.o" "gcc" "tests/CMakeFiles/salarm_tests.dir/pyramid_test.cpp.o.d"
  "/root/repo/tests/roadnet_test.cpp" "tests/CMakeFiles/salarm_tests.dir/roadnet_test.cpp.o" "gcc" "tests/CMakeFiles/salarm_tests.dir/roadnet_test.cpp.o.d"
  "/root/repo/tests/rstar_tree_test.cpp" "tests/CMakeFiles/salarm_tests.dir/rstar_tree_test.cpp.o" "gcc" "tests/CMakeFiles/salarm_tests.dir/rstar_tree_test.cpp.o.d"
  "/root/repo/tests/segment_test.cpp" "tests/CMakeFiles/salarm_tests.dir/segment_test.cpp.o" "gcc" "tests/CMakeFiles/salarm_tests.dir/segment_test.cpp.o.d"
  "/root/repo/tests/service_test.cpp" "tests/CMakeFiles/salarm_tests.dir/service_test.cpp.o" "gcc" "tests/CMakeFiles/salarm_tests.dir/service_test.cpp.o.d"
  "/root/repo/tests/simulation_test.cpp" "tests/CMakeFiles/salarm_tests.dir/simulation_test.cpp.o" "gcc" "tests/CMakeFiles/salarm_tests.dir/simulation_test.cpp.o.d"
  "/root/repo/tests/strategies_test.cpp" "tests/CMakeFiles/salarm_tests.dir/strategies_test.cpp.o" "gcc" "tests/CMakeFiles/salarm_tests.dir/strategies_test.cpp.o.d"
  "/root/repo/tests/trace_io_test.cpp" "tests/CMakeFiles/salarm_tests.dir/trace_io_test.cpp.o" "gcc" "tests/CMakeFiles/salarm_tests.dir/trace_io_test.cpp.o.d"
  "/root/repo/tests/wire_format_test.cpp" "tests/CMakeFiles/salarm_tests.dir/wire_format_test.cpp.o" "gcc" "tests/CMakeFiles/salarm_tests.dir/wire_format_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/salarm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
