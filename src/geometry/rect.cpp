#include "geometry/rect.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.h"

namespace salarm::geo {

Rect::Rect(Point lo, Point hi) : lo_(lo), hi_(hi) {
  SALARM_REQUIRE(lo.x <= hi.x && lo.y <= hi.y, "rect corners out of order");
}

Rect::Rect(double lo_x, double lo_y, double hi_x, double hi_y)
    : Rect(Point{lo_x, lo_y}, Point{hi_x, hi_y}) {}

Rect Rect::bounding(Point a, Point b) {
  return Rect({std::min(a.x, b.x), std::min(a.y, b.y)},
              {std::max(a.x, b.x), std::max(a.y, b.y)});
}

Rect Rect::centered_square(Point c, double side) {
  SALARM_REQUIRE(side >= 0.0, "negative square side");
  const double h = side / 2.0;
  return Rect({c.x - h, c.y - h}, {c.x + h, c.y + h});
}

std::optional<Rect> Rect::intersection(const Rect& r) const {
  if (!intersects(r)) return std::nullopt;
  return Rect({std::max(lo_.x, r.lo_.x), std::max(lo_.y, r.lo_.y)},
              {std::min(hi_.x, r.hi_.x), std::min(hi_.y, r.hi_.y)});
}

Rect Rect::united(const Rect& r) const {
  return Rect({std::min(lo_.x, r.lo_.x), std::min(lo_.y, r.lo_.y)},
              {std::max(hi_.x, r.hi_.x), std::max(hi_.y, r.hi_.y)});
}

Rect Rect::united(Point p) const {
  return Rect({std::min(lo_.x, p.x), std::min(lo_.y, p.y)},
              {std::max(hi_.x, p.x), std::max(hi_.y, p.y)});
}

Rect Rect::expanded(double d) const {
  return Rect({lo_.x - d, lo_.y - d}, {hi_.x + d, hi_.y + d});
}

double Rect::squared_distance(Point p) const {
  const double dx = std::max({lo_.x - p.x, 0.0, p.x - hi_.x});
  const double dy = std::max({lo_.y - p.y, 0.0, p.y - hi_.y});
  return dx * dx + dy * dy;
}

double Rect::distance(Point p) const { return std::sqrt(squared_distance(p)); }

double Rect::boundary_distance(Point p) const {
  if (!contains(p)) return distance(p);
  // Inside: distance to the nearest of the four edges.
  return std::min({p.x - lo_.x, hi_.x - p.x, p.y - lo_.y, hi_.y - p.y});
}

std::string Rect::to_string() const {
  std::ostringstream os;
  os << "[(" << lo_.x << ',' << lo_.y << ")-(" << hi_.x << ',' << hi_.y
     << ")]";
  return os.str();
}

double overlap_area(const Rect& a, const Rect& b) {
  const double w = std::min(a.hi().x, b.hi().x) - std::max(a.lo().x, b.lo().x);
  const double h = std::min(a.hi().y, b.hi().y) - std::max(a.lo().y, b.lo().y);
  if (w <= 0.0 || h <= 0.0) return 0.0;
  return w * h;
}

}  // namespace salarm::geo
