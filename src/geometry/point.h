// 2-D point / vector on the planar Universe of Discourse (meters).
#pragma once

#include <cmath>

namespace salarm::geo {

/// A point (or displacement vector) in the plane, coordinates in meters.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend constexpr Point operator+(Point a, Point b) {
    return {a.x + b.x, a.y + b.y};
  }
  friend constexpr Point operator-(Point a, Point b) {
    return {a.x - b.x, a.y - b.y};
  }
  friend constexpr Point operator*(Point a, double s) {
    return {a.x * s, a.y * s};
  }
  friend constexpr Point operator*(double s, Point a) { return a * s; }
  friend constexpr bool operator==(Point a, Point b) {
    return a.x == b.x && a.y == b.y;
  }
};

constexpr double dot(Point a, Point b) { return a.x * b.x + a.y * b.y; }

inline double norm(Point a) { return std::hypot(a.x, a.y); }

inline double distance(Point a, Point b) { return norm(a - b); }

constexpr double squared_distance(Point a, Point b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Heading of the vector in radians in (-pi, pi]; heading of the zero
/// vector is defined as 0 (east).
inline double heading(Point v) {
  if (v.x == 0.0 && v.y == 0.0) return 0.0;
  return std::atan2(v.y, v.x);
}

/// Linear interpolation: a at t=0, b at t=1.
constexpr Point lerp(Point a, Point b, double t) {
  return {a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t};
}

/// Normalizes an angle to (-pi, pi].
inline double normalize_angle(double a) {
  const double two_pi = 2.0 * M_PI;
  a = std::fmod(a, two_pi);
  if (a <= -M_PI) a += two_pi;
  if (a > M_PI) a -= two_pi;
  return a;
}

}  // namespace salarm::geo
