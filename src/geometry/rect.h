// Axis-aligned rectangles.
//
// Rectangles are the workhorse of the whole library: alarm regions, grid
// cells, safe regions and R*-tree bounding boxes are all Rects. The
// containment conventions matter for correctness of the safe-region
// algorithms and are therefore spelled out:
//
//  * contains(p)            — closed containment (boundary included).
//  * interior_contains(p)   — open containment (boundary excluded).
//  * intersects(r)          — closed intersection (touching counts).
//  * interiors_intersect(r) — open intersection (touching does NOT count).
//
// A safe region may legally *touch* an alarm region (the alarm fires only
// when the subscriber enters the region), so the safe-region algorithms use
// the interior variants.
#pragma once

#include <optional>
#include <string>

#include "geometry/point.h"

namespace salarm::geo {

/// Axis-aligned rectangle [lo.x, hi.x] × [lo.y, hi.y].
/// Invariant: lo.x <= hi.x and lo.y <= hi.y (degenerate zero-width/height
/// rectangles are allowed; they arise legitimately as collapsed safe
/// regions).
class Rect {
 public:
  /// Constructs the empty-extent rectangle at the origin.
  constexpr Rect() = default;

  /// Constructs from corner points; throws PreconditionError if out of
  /// order.
  Rect(Point lo, Point hi);

  /// Constructs from coordinates; throws PreconditionError if out of order.
  Rect(double lo_x, double lo_y, double hi_x, double hi_y);

  /// Builds the bounding box of two arbitrary corner points (any order).
  static Rect bounding(Point a, Point b);

  /// Builds a square of the given side centered at c.
  static Rect centered_square(Point c, double side);

  Point lo() const { return lo_; }
  Point hi() const { return hi_; }
  double width() const { return hi_.x - lo_.x; }
  double height() const { return hi_.y - lo_.y; }
  double area() const { return width() * height(); }
  double perimeter() const { return 2.0 * (width() + height()); }
  double margin() const { return width() + height(); }
  Point center() const { return {(lo_.x + hi_.x) / 2, (lo_.y + hi_.y) / 2}; }
  bool degenerate() const { return width() == 0.0 || height() == 0.0; }

  /// Closed containment: boundary points are inside.
  bool contains(Point p) const {
    return p.x >= lo_.x && p.x <= hi_.x && p.y >= lo_.y && p.y <= hi_.y;
  }

  /// Open containment: boundary points are outside.
  bool interior_contains(Point p) const {
    return p.x > lo_.x && p.x < hi_.x && p.y > lo_.y && p.y < hi_.y;
  }

  /// Closed containment of another rectangle.
  bool contains(const Rect& r) const {
    return r.lo_.x >= lo_.x && r.hi_.x <= hi_.x && r.lo_.y >= lo_.y &&
           r.hi_.y <= hi_.y;
  }

  /// Closed intersection test: rectangles that merely touch intersect.
  bool intersects(const Rect& r) const {
    return lo_.x <= r.hi_.x && r.lo_.x <= hi_.x && lo_.y <= r.hi_.y &&
           r.lo_.y <= hi_.y;
  }

  /// Open intersection test: the intersection must have positive area.
  bool interiors_intersect(const Rect& r) const {
    return lo_.x < r.hi_.x && r.lo_.x < hi_.x && lo_.y < r.hi_.y &&
           r.lo_.y < hi_.y;
  }

  /// Geometric intersection; empty when the rectangles do not (closed)
  /// intersect.
  std::optional<Rect> intersection(const Rect& r) const;

  /// Smallest rectangle containing both.
  Rect united(const Rect& r) const;

  /// Smallest rectangle containing this and p.
  Rect united(Point p) const;

  /// Rectangle grown by d on every side (d may be negative as long as the
  /// result stays valid; otherwise throws PreconditionError).
  Rect expanded(double d) const;

  /// Euclidean distance from p to the closed rectangle (0 when inside).
  double distance(Point p) const;

  /// Squared distance from p to the closed rectangle (0 when inside).
  double squared_distance(Point p) const;

  /// Minimum distance from p to any point of the rectangle's boundary
  /// (positive also when p is strictly inside; used by the safe-period
  /// strategy while a subscriber is inside its current cell).
  double boundary_distance(Point p) const;

  friend bool operator==(const Rect& a, const Rect& b) {
    return a.lo_ == b.lo_ && a.hi_ == b.hi_;
  }

  std::string to_string() const;

 private:
  Point lo_{};
  Point hi_{};
};

/// Area of overlap between two rectangles (0 when disjoint).
double overlap_area(const Rect& a, const Rect& b);

}  // namespace salarm::geo
