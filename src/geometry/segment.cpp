#include "geometry/segment.h"

#include <algorithm>

namespace salarm::geo {

std::optional<std::pair<double, double>> clip_segment(Point a, Point b,
                                                      const Rect& rect) {
  // Liang-Barsky slab clipping against the closed rectangle.
  double t0 = 0.0;
  double t1 = 1.0;
  const double d[2] = {b.x - a.x, b.y - a.y};
  const double lo[2] = {rect.lo().x, rect.lo().y};
  const double hi[2] = {rect.hi().x, rect.hi().y};
  const double start[2] = {a.x, a.y};
  for (int axis = 0; axis < 2; ++axis) {
    if (d[axis] == 0.0) {
      if (start[axis] < lo[axis] || start[axis] > hi[axis]) {
        return std::nullopt;
      }
      continue;
    }
    double enter = (lo[axis] - start[axis]) / d[axis];
    double exit = (hi[axis] - start[axis]) / d[axis];
    if (enter > exit) std::swap(enter, exit);
    t0 = std::max(t0, enter);
    t1 = std::min(t1, exit);
    if (t0 > t1) return std::nullopt;
  }
  return std::make_pair(t0, t1);
}

bool segment_intersects_interior(Point a, Point b, const Rect& rect) {
  if (rect.degenerate()) return false;  // empty interior
  const auto clipped = clip_segment(a, b, rect);
  if (!clipped) return false;
  const auto [t0, t1] = *clipped;
  // A positive-length stay inside the closed rect means the open interior
  // is entered (the boundary has measure zero along a non-tangent chord);
  // a zero-length intersection is a touch. The remaining subtlety is a
  // segment running exactly along an edge: positive length but never
  // interior — its midpoint stays on the boundary.
  if (t1 <= t0) {
    // Single-point contact, or a degenerate (zero-length) segment: decide
    // by the point itself.
    const Point p = lerp(a, b, t0);
    return rect.interior_contains(p);
  }
  const Point mid = lerp(a, b, (t0 + t1) / 2.0);
  return rect.interior_contains(mid);
}

}  // namespace salarm::geo
