// Line-segment geometry.
//
// The simulator and the paper both evaluate alarms at trace-tick
// granularity; between two ticks a fast vehicle can clip an alarm region's
// corner without either endpoint being inside ("corner cutting"). These
// helpers test the continuous motion segment against rectangles so the
// tick-granularity fidelity study (bench/abl_tick_granularity) can measure
// how much the discretization hides.
#pragma once

#include <optional>

#include "geometry/point.h"
#include "geometry/rect.h"

namespace salarm::geo {

/// True when any point of the segment a->b lies strictly inside the
/// rectangle (interior intersection; touching edges/corners does not
/// count, matching the open-interior trigger semantics).
bool segment_intersects_interior(Point a, Point b, const Rect& rect);

/// The parameter interval [t_enter, t_exit] ⊆ [0, 1] for which
/// a + t·(b-a) lies inside the *closed* rectangle; empty when the segment
/// misses it.
std::optional<std::pair<double, double>> clip_segment(Point a, Point b,
                                                      const Rect& rect);

}  // namespace salarm::geo
