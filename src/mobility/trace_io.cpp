#include "mobility/trace_io.h"

#include <charconv>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "common/error.h"

namespace salarm::mobility {

namespace {

constexpr char kHeader[] = "tick,vehicle,x,y,heading,speed";

double parse_double(std::string_view field, const char* what) {
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  SALARM_REQUIRE(ec == std::errc() && ptr == field.data() + field.size(),
                 std::string("malformed ") + what + " field");
  return value;
}

std::uint64_t parse_uint(std::string_view field, const char* what) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  SALARM_REQUIRE(ec == std::errc() && ptr == field.data() + field.size(),
                 std::string("malformed ") + what + " field");
  return value;
}

std::vector<std::string_view> split_fields(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = line.find(',', start);
    if (comma == std::string_view::npos) {
      out.push_back(line.substr(start));
      return out;
    }
    out.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
}

}  // namespace

void write_trace_csv(const RecordedTrace& trace, std::ostream& out) {
  out << "# tick_seconds=" << trace.tick_seconds() << '\n';
  out << kHeader << '\n';
  out.precision(10);
  for (std::size_t t = 0; t < trace.tick_count(); ++t) {
    for (VehicleId v = 0; v < trace.vehicle_count(); ++v) {
      const VehicleSample& s = trace.sample(t, v);
      out << t << ',' << v << ',' << s.pos.x << ',' << s.pos.y << ','
          << s.heading << ',' << s.speed_mps << '\n';
    }
  }
}

RecordedTrace read_trace_csv(std::istream& in) {
  std::string line;

  // Leading comment with the tick duration.
  SALARM_REQUIRE(static_cast<bool>(std::getline(in, line)) &&
                     line.rfind("# tick_seconds=", 0) == 0,
                 "trace must start with '# tick_seconds=...'");
  const double tick_seconds =
      parse_double(std::string_view(line).substr(15), "tick_seconds");
  SALARM_REQUIRE(tick_seconds > 0.0, "tick_seconds must be positive");

  SALARM_REQUIRE(static_cast<bool>(std::getline(in, line)) && line == kHeader,
                 "missing or wrong CSV header");

  // Collect samples grouped by tick.
  std::vector<std::vector<std::pair<VehicleId, VehicleSample>>> ticks;
  std::size_t line_number = 2;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    const auto fields = split_fields(line);
    SALARM_REQUIRE(fields.size() == 6,
                   "line " + std::to_string(line_number) +
                       ": expected 6 fields");
    const auto tick = static_cast<std::size_t>(parse_uint(fields[0], "tick"));
    const auto vehicle =
        static_cast<VehicleId>(parse_uint(fields[1], "vehicle"));
    VehicleSample sample;
    sample.pos.x = parse_double(fields[2], "x");
    sample.pos.y = parse_double(fields[3], "y");
    sample.heading = parse_double(fields[4], "heading");
    sample.speed_mps = parse_double(fields[5], "speed");
    if (tick >= ticks.size()) ticks.resize(tick + 1);
    ticks[tick].emplace_back(vehicle, sample);
  }
  SALARM_REQUIRE(!ticks.empty(), "trace has no samples");

  const std::size_t vehicle_count = ticks.front().size();
  SALARM_REQUIRE(vehicle_count > 0, "tick 0 has no samples");

  RecordedTrace trace(vehicle_count, tick_seconds);
  for (std::size_t t = 0; t < ticks.size(); ++t) {
    SALARM_REQUIRE(ticks[t].size() == vehicle_count,
                   "tick " + std::to_string(t) +
                       " does not list every vehicle exactly once");
    std::vector<VehicleSample> row(vehicle_count);
    std::vector<bool> seen(vehicle_count, false);
    for (const auto& [vehicle, sample] : ticks[t]) {
      SALARM_REQUIRE(vehicle < vehicle_count,
                     "vehicle id out of range at tick " + std::to_string(t));
      SALARM_REQUIRE(!seen[vehicle],
                     "duplicate vehicle at tick " + std::to_string(t));
      seen[vehicle] = true;
      row[vehicle] = sample;
    }
    trace.append_tick(std::move(row));
  }
  return trace;
}

void save_trace_csv(const RecordedTrace& trace, const std::string& path) {
  std::ofstream out(path);
  SALARM_REQUIRE(out.good(), "cannot open trace file for writing: " + path);
  write_trace_csv(trace, out);
  SALARM_REQUIRE(out.good(), "error writing trace file: " + path);
}

RecordedTrace load_trace_csv(const std::string& path) {
  std::ifstream in(path);
  SALARM_REQUIRE(in.good(), "cannot open trace file: " + path);
  return read_trace_csv(in);
}

}  // namespace salarm::mobility
