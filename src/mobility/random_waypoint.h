// Random-waypoint mobility model.
//
// The classic synthetic alternative to road-constrained motion: each
// vehicle picks a uniform waypoint in the region, travels to it in a
// straight line at a per-trip uniform speed, pauses, and repeats. Useful
// to separate which results depend on road-network structure (heading
// persistence along roads is what the paper's weighted perimeter exploits)
// from those that hold for any motion — see bench/abl_mobility_model.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "mobility/position_source.h"

namespace salarm::mobility {

struct RandomWaypointConfig {
  std::size_t vehicle_count = 1000;
  double tick_seconds = 1.0;
  std::uint64_t seed = 42;
  /// Per-trip speed drawn uniformly from this range (m/s).
  double speed_lo_mps = 5.0;
  double speed_hi_mps = 25.0;
  /// Pause at each waypoint drawn uniformly from [0, max] seconds.
  double max_pause_seconds = 30.0;
};

class RandomWaypointSource final : public PositionSource {
 public:
  /// Vehicles roam the given region (positive area required).
  RandomWaypointSource(const geo::Rect& region, RandomWaypointConfig config);

  void reset() override;
  void step() override;
  const std::vector<VehicleSample>& samples() const override {
    return samples_;
  }
  std::size_t vehicle_count() const override {
    return config_.vehicle_count;
  }
  double tick_seconds() const override { return config_.tick_seconds; }
  geo::Rect extent() const override { return region_; }

  /// Hard bound on any vehicle's speed (for the safe-period baseline).
  double max_speed_bound() const { return config_.speed_hi_mps; }

 private:
  struct Vehicle {
    geo::Point target;
    double speed_mps = 0.0;
    double pause_remaining_s = 0.0;
  };

  void pick_waypoint(std::size_t v);

  geo::Rect region_;
  RandomWaypointConfig config_;
  std::vector<Vehicle> vehicles_;
  std::vector<VehicleSample> samples_;
  std::vector<Rng> rngs_;
};

}  // namespace salarm::mobility
