// Trip-based vehicle trace generator.
//
// Each vehicle performs successive trips between uniformly drawn network
// nodes along time-optimal routes, moving at the road-class speed scaled by
// a per-vehicle factor, with small per-tick speed noise. The generator is
// fully deterministic in (network, config): reset() replays the identical
// trace, which is how the simulator runs every processing strategy against
// the same motion pattern, as the paper's methodology requires.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "mobility/position_source.h"
#include "mobility/trace.h"
#include "roadnet/road_network.h"
#include "roadnet/shortest_path.h"

namespace salarm::mobility {

struct TraceConfig {
  std::size_t vehicle_count = 1000;
  double tick_seconds = 1.0;
  std::uint64_t seed = 42;
  /// Per-vehicle speed factor drawn uniformly from this range.
  double speed_factor_lo = 0.8;
  double speed_factor_hi = 1.2;
  /// Per-tick multiplicative speed noise (standard deviation; 0 disables).
  /// Clamped to +-3 sigma so that max_speed_bound() below is hard.
  double speed_noise_sigma = 0.05;

  /// Hard upper bound on any vehicle's speed under this configuration —
  /// the worst-case velocity assumption of the safe-period baseline [3].
  double max_speed_bound(double network_max_speed_mps) const {
    return network_max_speed_mps * speed_factor_hi *
           (1.0 + 3.0 * speed_noise_sigma);
  }
  /// Dwell time at a trip destination before the next trip starts, drawn
  /// uniformly from [0, max].
  double max_dwell_seconds = 30.0;
};

/// Streams VehicleSamples tick by tick. Not thread-safe.
class TraceGenerator final : public PositionSource {
 public:
  /// The network must outlive the generator.
  TraceGenerator(const roadnet::RoadNetwork& network, TraceConfig config);

  /// Rewinds to tick 0; the subsequent sample stream is identical to the
  /// one produced after construction.
  void reset() override;

  /// Advances all vehicles by one tick.
  void step() override;

  /// Samples after the most recent step() (or the initial positions before
  /// any step). Indexed by VehicleId.
  const std::vector<VehicleSample>& samples() const override {
    return samples_;
  }

  std::size_t vehicle_count() const override {
    return config_.vehicle_count;
  }
  double tick_seconds() const override { return config_.tick_seconds; }
  geo::Rect extent() const override { return network_.bounding_box(); }

  double time_seconds() const { return time_s_; }
  std::size_t tick_index() const { return tick_; }
  const TraceConfig& config() const { return config_; }
  const roadnet::RoadNetwork& network() const { return network_; }

  /// Materializes `ticks` ticks (including the initial positions as tick 0)
  /// into a RecordedTrace, leaving this generator positioned at the end.
  RecordedTrace record(std::size_t ticks);

 private:
  struct Vehicle {
    roadnet::Route route;        ///< current trip
    std::size_t leg = 0;         ///< index into route.nodes of the leg start
    double offset_m = 0.0;       ///< distance traveled along the current leg
    double speed_factor = 1.0;
    double dwell_remaining_s = 0.0;
    roadnet::NodeId at_node = 0; ///< route destination when idle
  };

  void start_new_trip(Vehicle& v, Rng& rng);
  void advance_vehicle(VehicleId id, double dt);
  geo::Point leg_start(const Vehicle& v) const;
  geo::Point leg_end(const Vehicle& v) const;
  double leg_length(const Vehicle& v) const;
  double leg_speed(const Vehicle& v) const;

  const roadnet::RoadNetwork& network_;
  TraceConfig config_;
  roadnet::Router router_;
  std::vector<Vehicle> vehicles_;
  std::vector<VehicleSample> samples_;
  std::vector<Rng> vehicle_rngs_;
  double time_s_ = 0.0;
  std::size_t tick_ = 0;
};

}  // namespace salarm::mobility
