#include "mobility/random_waypoint.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace salarm::mobility {

RandomWaypointSource::RandomWaypointSource(const geo::Rect& region,
                                           RandomWaypointConfig config)
    : region_(region), config_(config) {
  SALARM_REQUIRE(region.area() > 0.0, "region must have positive area");
  SALARM_REQUIRE(config.vehicle_count > 0, "need at least one vehicle");
  SALARM_REQUIRE(config.tick_seconds > 0.0, "tick must be positive");
  SALARM_REQUIRE(config.speed_lo_mps > 0.0 &&
                     config.speed_hi_mps >= config.speed_lo_mps,
                 "bad speed range");
  SALARM_REQUIRE(config.max_pause_seconds >= 0.0, "negative pause");
  reset();
}

void RandomWaypointSource::pick_waypoint(std::size_t v) {
  Rng& rng = rngs_[v];
  vehicles_[v].target = {
      rng.uniform(region_.lo().x, region_.hi().x),
      rng.uniform(region_.lo().y, region_.hi().y)};
  vehicles_[v].speed_mps =
      rng.uniform(config_.speed_lo_mps, config_.speed_hi_mps);
}

void RandomWaypointSource::reset() {
  Rng master(config_.seed);
  rngs_.clear();
  rngs_.reserve(config_.vehicle_count);
  for (std::size_t v = 0; v < config_.vehicle_count; ++v) {
    rngs_.push_back(master.fork());
  }
  vehicles_.assign(config_.vehicle_count, Vehicle{});
  samples_.assign(config_.vehicle_count, VehicleSample{});
  for (std::size_t v = 0; v < config_.vehicle_count; ++v) {
    samples_[v].pos = {rngs_[v].uniform(region_.lo().x, region_.hi().x),
                       rngs_[v].uniform(region_.lo().y, region_.hi().y)};
    pick_waypoint(v);
    samples_[v].heading =
        geo::heading(vehicles_[v].target - samples_[v].pos);
  }
}

void RandomWaypointSource::step() {
  for (std::size_t v = 0; v < config_.vehicle_count; ++v) {
    Vehicle& vehicle = vehicles_[v];
    VehicleSample& sample = samples_[v];
    double dt = config_.tick_seconds;
    const geo::Point before = sample.pos;

    while (dt > 0.0) {
      if (vehicle.pause_remaining_s > 0.0) {
        const double wait = std::min(vehicle.pause_remaining_s, dt);
        vehicle.pause_remaining_s -= wait;
        dt -= wait;
        continue;
      }
      const double to_target = geo::distance(sample.pos, vehicle.target);
      const double reach = vehicle.speed_mps * dt;
      if (reach < to_target) {
        sample.pos = geo::lerp(sample.pos, vehicle.target,
                               reach / to_target);
        dt = 0.0;
        break;
      }
      // Arrive, pause, and pick the next trip.
      sample.pos = vehicle.target;
      dt -= to_target / vehicle.speed_mps;
      vehicle.pause_remaining_s =
          rngs_[v].uniform(0.0, config_.max_pause_seconds);
      pick_waypoint(v);
    }

    const geo::Point moved = sample.pos - before;
    if (moved.x != 0.0 || moved.y != 0.0) {
      sample.heading = geo::heading(moved);
    }
    sample.speed_mps = geo::norm(moved) / config_.tick_seconds;
  }
}

}  // namespace salarm::mobility
