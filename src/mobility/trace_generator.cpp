#include "mobility/trace_generator.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace salarm::mobility {

TraceGenerator::TraceGenerator(const roadnet::RoadNetwork& network,
                               TraceConfig config)
    : network_(network), config_(config), router_(network) {
  SALARM_REQUIRE(config_.vehicle_count > 0, "need at least one vehicle");
  SALARM_REQUIRE(config_.tick_seconds > 0.0, "tick must be positive");
  SALARM_REQUIRE(config_.speed_factor_lo > 0.0 &&
                     config_.speed_factor_hi >= config_.speed_factor_lo,
                 "bad speed factor range");
  SALARM_REQUIRE(config_.speed_noise_sigma >= 0.0, "negative speed noise");
  SALARM_REQUIRE(config_.max_dwell_seconds >= 0.0, "negative dwell");
  SALARM_REQUIRE(network.node_count() >= 2, "network too small for trips");
  reset();
}

void TraceGenerator::reset() {
  Rng master(config_.seed);
  vehicles_.assign(config_.vehicle_count, Vehicle{});
  samples_.assign(config_.vehicle_count, VehicleSample{});
  vehicle_rngs_.clear();
  vehicle_rngs_.reserve(config_.vehicle_count);
  for (std::size_t i = 0; i < config_.vehicle_count; ++i) {
    vehicle_rngs_.push_back(master.fork());
  }
  for (std::size_t i = 0; i < config_.vehicle_count; ++i) {
    Vehicle& v = vehicles_[i];
    Rng& rng = vehicle_rngs_[i];
    v.at_node =
        static_cast<roadnet::NodeId>(rng.index(network_.node_count()));
    v.speed_factor =
        rng.uniform(config_.speed_factor_lo, config_.speed_factor_hi);
    start_new_trip(v, rng);
    samples_[i].pos = network_.node(v.at_node).pos;
    samples_[i].heading =
        v.route.nodes.size() > 1
            ? geo::heading(leg_end(v) - leg_start(v))
            : 0.0;
    samples_[i].speed_mps = 0.0;
  }
  time_s_ = 0.0;
  tick_ = 0;
}

void TraceGenerator::start_new_trip(Vehicle& v, Rng& rng) {
  // Redraw until a reachable, distinct destination is found. On a connected
  // network the loop ends on the first non-identical draw; the retry bound
  // turns a disconnected-network bug into a loud failure.
  for (int attempt = 0; attempt < 64; ++attempt) {
    const auto dest =
        static_cast<roadnet::NodeId>(rng.index(network_.node_count()));
    if (dest == v.at_node) continue;
    roadnet::Route route = router_.route(v.at_node, dest);
    if (route.empty()) continue;
    v.route = std::move(route);
    v.leg = 0;
    v.offset_m = 0.0;
    return;
  }
  SALARM_ASSERT(false, "could not find a destination; network disconnected?");
}

geo::Point TraceGenerator::leg_start(const Vehicle& v) const {
  return network_.node(v.route.nodes[v.leg]).pos;
}

geo::Point TraceGenerator::leg_end(const Vehicle& v) const {
  return network_.node(v.route.nodes[v.leg + 1]).pos;
}

double TraceGenerator::leg_length(const Vehicle& v) const {
  return geo::distance(leg_start(v), leg_end(v));
}

double TraceGenerator::leg_speed(const Vehicle& v) const {
  const roadnet::NodeId a = v.route.nodes[v.leg];
  const roadnet::NodeId b = v.route.nodes[v.leg + 1];
  for (const roadnet::RoadNetwork::Adjacency& adj : network_.neighbors(a)) {
    if (adj.neighbor == b) return network_.edge(adj.edge).speed_mps;
  }
  SALARM_ASSERT(false, "route uses a non-existent edge");
}

void TraceGenerator::advance_vehicle(VehicleId id, double dt) {
  Vehicle& v = vehicles_[id];
  Rng& rng = vehicle_rngs_[id];
  VehicleSample& sample = samples_[id];

  if (v.dwell_remaining_s > 0.0) {
    const double wait = std::min(v.dwell_remaining_s, dt);
    v.dwell_remaining_s -= wait;
    dt -= wait;
    if (v.dwell_remaining_s > 0.0 || dt == 0.0) {
      sample.pos = network_.node(v.at_node).pos;
      sample.speed_mps = 0.0;
      return;
    }
    start_new_trip(v, rng);
  }

  const geo::Point before = sample.pos;
  // Noise is clamped to +-3 sigma so max_speed_bound() is a hard bound —
  // the safe-period baseline's correctness depends on it.
  const double noise =
      std::clamp(1.0 + rng.normal(0.0, config_.speed_noise_sigma), 0.1,
                 1.0 + 3.0 * config_.speed_noise_sigma);
  double budget = dt;
  while (budget > 0.0) {
    const double speed = leg_speed(v) * v.speed_factor * noise;
    const double remaining_on_leg = leg_length(v) - v.offset_m;
    const double step = speed * budget;
    if (step < remaining_on_leg) {
      v.offset_m += step;
      budget = 0.0;
      break;
    }
    budget -= remaining_on_leg / speed;
    ++v.leg;
    v.offset_m = 0.0;
    if (v.leg + 1 >= v.route.nodes.size()) {
      // Arrived; dwell, possibly into the next tick.
      v.at_node = v.route.nodes.back();
      v.dwell_remaining_s = rng.uniform(0.0, config_.max_dwell_seconds);
      break;
    }
  }

  if (v.leg + 1 >= v.route.nodes.size()) {
    sample.pos = network_.node(v.at_node).pos;
  } else {
    const double len = leg_length(v);
    sample.pos = geo::lerp(leg_start(v), leg_end(v), v.offset_m / len);
  }
  const geo::Point moved = sample.pos - before;
  if (moved.x != 0.0 || moved.y != 0.0) sample.heading = geo::heading(moved);
  sample.speed_mps = geo::norm(moved) / dt;
}

void TraceGenerator::step() {
  for (VehicleId id = 0; id < vehicles_.size(); ++id) {
    advance_vehicle(id, config_.tick_seconds);
  }
  time_s_ += config_.tick_seconds;
  ++tick_;
}

RecordedTrace TraceGenerator::record(std::size_t ticks) {
  SALARM_REQUIRE(ticks > 0, "cannot record an empty trace");
  RecordedTrace trace(config_.vehicle_count, config_.tick_seconds);
  trace.append_tick(samples_);
  for (std::size_t t = 1; t < ticks; ++t) {
    step();
    trace.append_tick(samples_);
  }
  return trace;
}

}  // namespace salarm::mobility
