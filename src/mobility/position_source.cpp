#include "mobility/position_source.h"

#include "common/error.h"

namespace salarm::mobility {

RecordedTraceSource::RecordedTraceSource(const RecordedTrace& trace)
    : trace_(trace) {
  SALARM_REQUIRE(trace.tick_count() > 0, "trace has no ticks");
  geo::Rect box(trace.sample(0, 0).pos, trace.sample(0, 0).pos);
  for (std::size_t t = 0; t < trace.tick_count(); ++t) {
    for (VehicleId v = 0; v < trace.vehicle_count(); ++v) {
      box = box.united(trace.sample(t, v).pos);
    }
  }
  extent_ = box;
  reset();
}

void RecordedTraceSource::reset() {
  tick_ = 0;
  current_ = trace_.tick(0);
}

void RecordedTraceSource::step() {
  SALARM_REQUIRE(tick_ + 1 < trace_.tick_count(),
                 "stepped past the end of the recorded trace");
  ++tick_;
  current_ = trace_.tick(tick_);
}

}  // namespace salarm::mobility
