// PositionSource — the simulation engine's view of mobility.
//
// Anything that can replay a deterministic per-tick stream of vehicle
// samples can drive the simulator: the road-network trace generator (the
// paper's workload), the random-waypoint model (the classic synthetic
// alternative), or a recorded/imported trace. Determinism contract:
// after reset(), the sequence of samples() produced by successive step()
// calls is identical on every replay — the simulator runs every strategy
// against the identical motion pattern.
#pragma once

#include <vector>

#include "geometry/rect.h"
#include "mobility/trace.h"

namespace salarm::mobility {

class PositionSource {
 public:
  virtual ~PositionSource() = default;

  /// Rewinds to tick 0 (the initial positions).
  virtual void reset() = 0;

  /// Advances all vehicles by one tick. Behaviour past the natural end of
  /// a finite source (a recorded trace) is a precondition violation.
  virtual void step() = 0;

  /// Samples after the most recent step() (or the initial positions),
  /// indexed by VehicleId.
  virtual const std::vector<VehicleSample>& samples() const = 0;

  virtual std::size_t vehicle_count() const = 0;
  virtual double tick_seconds() const = 0;

  /// A rectangle all positions stay within (defines the required grid
  /// universe).
  virtual geo::Rect extent() const = 0;
};

/// Replays a RecordedTrace (generated, or imported via trace_io) as a
/// PositionSource, making any real-world trace a first-class simulator
/// workload.
class RecordedTraceSource final : public PositionSource {
 public:
  /// The trace must outlive the source.
  explicit RecordedTraceSource(const RecordedTrace& trace);

  void reset() override;
  void step() override;
  const std::vector<VehicleSample>& samples() const override {
    return current_;
  }
  std::size_t vehicle_count() const override {
    return trace_.vehicle_count();
  }
  double tick_seconds() const override { return trace_.tick_seconds(); }
  geo::Rect extent() const override { return extent_; }

  std::size_t tick_index() const { return tick_; }
  std::size_t tick_count() const { return trace_.tick_count(); }

 private:
  const RecordedTrace& trace_;
  geo::Rect extent_;
  std::vector<VehicleSample> current_;
  std::size_t tick_ = 0;
};

}  // namespace salarm::mobility
