// Trace serialization: CSV import/export for RecordedTrace.
//
// The paper's evaluation runs on traces generated from USGS map data; this
// repository generates synthetic traces instead (DESIGN.md §5). Users with
// real traces — taxi datasets, fleet logs, or the original generator's
// output — can import them through this module and drive every strategy
// and bench with them.
//
// Format (one sample per line, header required):
//
//   tick,vehicle,x,y,heading,speed
//   0,0,1523.5,890.0,1.5708,13.9
//
// Ticks must be dense from 0, each tick must list every vehicle exactly
// once (any order within the tick), and the tick duration is carried in a
// leading comment line "# tick_seconds=1".
#pragma once

#include <iosfwd>
#include <string>

#include "mobility/trace.h"

namespace salarm::mobility {

/// Writes the trace in the CSV format above.
void write_trace_csv(const RecordedTrace& trace, std::ostream& out);

/// Parses a trace from the CSV format above. Throws PreconditionError on
/// malformed input (missing header, sparse ticks, duplicate or missing
/// vehicles, non-numeric fields).
RecordedTrace read_trace_csv(std::istream& in);

/// Convenience file wrappers; throw PreconditionError when the file cannot
/// be opened.
void save_trace_csv(const RecordedTrace& trace, const std::string& path);
RecordedTrace load_trace_csv(const std::string& path);

}  // namespace salarm::mobility
