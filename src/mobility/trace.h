// Mobility trace types.
//
// The paper's evaluation is driven by "a very high frequency trace of the
// motion pattern of the vehicles"; the sequence of alarms to be triggered
// (ground truth) is determined directly by this trace. A trace here is the
// per-tick sequence of samples for a fleet of vehicles.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.h"
#include "geometry/point.h"

namespace salarm::mobility {

using VehicleId = std::uint32_t;

/// Position and motion of a vehicle at one tick.
struct VehicleSample {
  geo::Point pos;
  /// Heading of current motion in radians (-pi, pi]; kept from the previous
  /// tick when the vehicle is momentarily stopped.
  double heading = 0.0;
  /// Current speed in m/s.
  double speed_mps = 0.0;
};

/// A fully materialized trace: ticks × vehicles. Convenient for tests and
/// small workloads; large workloads should replay a TraceGenerator instead
/// (same determinism, no O(ticks × vehicles) memory).
class RecordedTrace {
 public:
  RecordedTrace(std::size_t vehicle_count, double tick_seconds)
      : vehicle_count_(vehicle_count), tick_seconds_(tick_seconds) {
    SALARM_REQUIRE(vehicle_count > 0, "trace needs at least one vehicle");
    SALARM_REQUIRE(tick_seconds > 0.0, "tick must be positive");
  }

  void append_tick(std::vector<VehicleSample> samples) {
    SALARM_REQUIRE(samples.size() == vehicle_count_,
                   "tick has wrong vehicle count");
    ticks_.push_back(std::move(samples));
  }

  std::size_t tick_count() const { return ticks_.size(); }
  std::size_t vehicle_count() const { return vehicle_count_; }
  double tick_seconds() const { return tick_seconds_; }
  double duration_seconds() const {
    return tick_seconds_ * static_cast<double>(ticks_.size());
  }

  const std::vector<VehicleSample>& tick(std::size_t t) const {
    SALARM_REQUIRE(t < ticks_.size(), "tick out of range");
    return ticks_[t];
  }

  const VehicleSample& sample(std::size_t t, VehicleId v) const {
    const auto& row = tick(t);
    SALARM_REQUIRE(v < row.size(), "vehicle out of range");
    return row[v];
  }

 private:
  std::size_t vehicle_count_;
  double tick_seconds_;
  std::vector<std::vector<VehicleSample>> ticks_;
};

}  // namespace salarm::mobility
