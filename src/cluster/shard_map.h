// Spatial partitioning of the Universe of Discourse into shards.
//
// The cluster tier splits the universe into N contiguous stripes of whole
// grid-cell columns (or rows when the grid is taller than wide). Aligning
// shard boundaries to grid-cell boundaries is what makes sharding exact:
// every safe region is computed within a single grid cell (DESIGN.md), a
// cell belongs wholly to one shard, so no safe region ever spans shards
// and a shard that replicates all alarms intersecting its extent answers
// every cell-window query identically to the monolithic server.
#pragma once

#include <cstddef>
#include <vector>

#include "geometry/point.h"
#include "geometry/rect.h"
#include "grid/grid_overlay.h"

namespace salarm::cluster {

/// Maps points and grid cells to shard indices. Shards are numbered
/// left-to-right (columns) or bottom-to-top (rows); every cell of the grid
/// belongs to exactly one shard. The effective shard count is clamped to
/// the number of stripes available (a 5-column grid can host at most 5
/// column shards).
class ShardMap {
 public:
  /// Partitions the grid into (up to) `shard_count` stripes. Requires
  /// shard_count >= 1.
  ShardMap(const grid::GridOverlay& grid, std::size_t shard_count);

  std::size_t shard_count() const { return extents_.size(); }

  /// Shard owning the given grid cell.
  std::size_t shard_of_cell(grid::CellId cell) const;

  /// Shard owning the point (via the grid's half-open cell convention, so
  /// every point of the universe has exactly one owner).
  std::size_t shard_of(geo::Point p) const;

  /// Geometric extent of a shard: the union of its cells' rectangles.
  const geo::Rect& shard_extent(std::size_t shard) const;

  /// Minimum distance from p to any *internal* shard boundary of `shard`
  /// (sides shared with a neighboring shard; universe edges do not count).
  /// Infinity for a single-shard map. The cluster tier uses this to cap
  /// safe-period grants at the distance a subscriber could travel before
  /// leaving the shard's spatial authority.
  double escape_distance(std::size_t shard, geo::Point p) const;

 private:
  const grid::GridOverlay& grid_;
  bool by_columns_;
  /// stripe index (column or row) -> shard index.
  std::vector<std::size_t> stripe_shard_;
  /// shard -> geometric extent.
  std::vector<geo::Rect> extents_;
};

}  // namespace salarm::cluster
