#include "cluster/shard_map.h"

#include <algorithm>
#include <limits>

#include "common/error.h"

namespace salarm::cluster {

ShardMap::ShardMap(const grid::GridOverlay& grid, std::size_t shard_count)
    : grid_(grid), by_columns_(grid.cols() >= grid.rows()) {
  SALARM_REQUIRE(shard_count >= 1, "need at least one shard");
  const std::size_t stripes = by_columns_ ? grid.cols() : grid.rows();
  const std::size_t shards = std::min(shard_count, stripes);

  stripe_shard_.resize(stripes);
  extents_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    // Balanced contiguous runs: shard i owns stripes [i*S/n, (i+1)*S/n).
    const std::size_t begin = i * stripes / shards;
    const std::size_t end = (i + 1) * stripes / shards;
    SALARM_ASSERT(begin < end, "empty shard stripe run");
    for (std::size_t s = begin; s < end; ++s) stripe_shard_[s] = i;

    // Extent from exact cell_rect coordinates so shard boundaries coincide
    // bit-for-bit with the cell edges the grid itself reports.
    const auto first = static_cast<std::uint32_t>(begin);
    const auto last = static_cast<std::uint32_t>(end - 1);
    const geo::Rect lo_cell = by_columns_ ? grid.cell_rect({first, 0})
                                          : grid.cell_rect({0, first});
    const geo::Rect hi_cell =
        by_columns_ ? grid.cell_rect({last, grid.rows() - 1})
                    : grid.cell_rect({grid.cols() - 1, last});
    extents_.push_back(lo_cell.united(hi_cell));
  }
}

std::size_t ShardMap::shard_of_cell(grid::CellId cell) const {
  const std::size_t stripe = by_columns_ ? cell.col : cell.row;
  SALARM_REQUIRE(stripe < stripe_shard_.size(), "cell outside the grid");
  return stripe_shard_[stripe];
}

std::size_t ShardMap::shard_of(geo::Point p) const {
  return shard_of_cell(grid_.cell_of(p));
}

const geo::Rect& ShardMap::shard_extent(std::size_t shard) const {
  SALARM_REQUIRE(shard < extents_.size(), "no such shard");
  return extents_[shard];
}

double ShardMap::escape_distance(std::size_t shard, geo::Point p) const {
  SALARM_REQUIRE(shard < extents_.size(), "no such shard");
  const geo::Rect& extent = extents_[shard];
  const geo::Rect& universe = grid_.universe();
  double d = std::numeric_limits<double>::infinity();
  // Only sides shared with a neighboring shard count: a universe edge
  // cannot be escaped through, so clamping to it would over-restrict the
  // safe-period grant for edge shards.
  if (by_columns_) {
    if (extent.lo().x > universe.lo().x) d = std::min(d, p.x - extent.lo().x);
    if (extent.hi().x < universe.hi().x) d = std::min(d, extent.hi().x - p.x);
  } else {
    if (extent.lo().y > universe.lo().y) d = std::min(d, p.y - extent.lo().y);
    if (extent.hi().y < universe.hi().y) d = std::min(d, extent.hi().y - p.y);
  }
  return std::max(d, 0.0);
}

}  // namespace salarm::cluster
