// Spatially sharded alarm-processing cluster behind the ServerApi facade.
//
// N shards each own one stripe of the universe (cluster/shard_map.h) and
// run a full monolithic sim::Server over a slice of the global alarm set:
// every alarm whose region (closed) intersects the shard extent, under its
// original global id (alarms/alarm_store.h sparse ids). Because safe
// regions are computed within a single grid cell and cells never span
// shards, each shard answers its cell queries exactly as the monolithic
// server would — the strategies run unchanged and remain 100% accurate.
//
// Border-spanning alarms are replicated to every overlapping shard, so a
// trigger must be deduplicated across shards: each subscriber session
// carries the cumulative list of alarms fired for it, and on the first
// contact after crossing a shard boundary the session is handed off to the
// new owner — an explicit inter-shard message (wire::kShardHandoff),
// charged to the *receiving* shard's metrics (the source shard's metrics
// may be owned by another thread at that moment) — which marks those
// alarms spent in the destination store before the contact proceeds.
//
// Threading/determinism contract: the caller (sim::TickPipeline, the one
// tick loop every run mode shares — DESIGN.md §11) groups subscribers by
// owning shard each tick and processes each group on one thread after
// set_active_shard(); a shard's store, metrics and server are only ever
// touched by the thread holding its group, and per-subscriber sessions
// only by the thread processing that subscriber. Merged results use
// stable shard order, so metrics and trigger logs are bit-identical for
// any thread count. Single-node operation is shard_count = 1: one slice
// holding every alarm, no handoffs, an infinite escape distance — the
// per-shard sim::Server then behaves exactly like the paper's monolithic
// evaluation server.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "alarms/alarm_store.h"
#include "cluster/shard_map.h"
#include "failover/crash_plan.h"
#include "grid/grid_overlay.h"
#include "saferegion/wire_format.h"
#include "sim/metrics.h"
#include "sim/server.h"
#include "sim/server_api.h"

namespace salarm::cluster {

class ShardedServer final : public sim::ServerApi {
 public:
  /// Builds `shard_count` shards (clamped to the grid's stripe count) over
  /// slices of the given global alarm set. `subscriber_count` bounds the
  /// subscriber id space (sessions are pre-sized so no allocation happens
  /// on the parallel path). The grid must outlive the server.
  ShardedServer(const alarms::AlarmStore& global_alarms,
                const grid::GridOverlay& grid, std::size_t shard_count,
                std::size_t subscriber_count);

  // ---- ServerApi (all position-taking calls route to the owning shard,
  // which must be the active shard of the calling thread) ----
  std::vector<alarms::AlarmId> handle_position_update(
      alarms::SubscriberId s, geo::Point position,
      std::uint64_t tick) override;
  /// Temporal evaluation of an outage-buffered report (DESIGN.md §9).
  /// Serial phase only: claims the owning shard itself (the flush runs on
  /// the main thread between ticks), routes through the session handoff
  /// like any contact, and evaluates against the shard's alarm lifetimes.
  std::vector<alarms::AlarmId> handle_buffered_update(
      alarms::SubscriberId s, geo::Point position,
      std::uint64_t stamp_tick) override;
  saferegion::RectSafeRegion compute_rect_region(
      alarms::SubscriberId s, geo::Point position, double heading,
      const saferegion::MotionModel& model,
      const saferegion::MwpsrOptions& options) override;
  saferegion::RectSafeRegion compute_corner_baseline_region(
      alarms::SubscriberId s, geo::Point position, double heading,
      const saferegion::MotionModel& model) override;
  saferegion::PyramidBitmap compute_pyramid_region(
      alarms::SubscriberId s, geo::Point position,
      const saferegion::PyramidConfig& config) override;
  void enable_public_bitmap_cache(
      const saferegion::PyramidConfig& config) override;
  /// Safe period with the grant capped at the shard's escape distance: the
  /// shard knows nothing about alarms beyond its extent, so the granted
  /// travel distance must not outrun its spatial authority.
  double compute_safe_period(alarms::SubscriberId s, geo::Point position,
                             double max_speed_mps,
                             double tick_seconds) override;
  std::vector<const alarms::SpatialAlarm*> push_alarms(
      alarms::SubscriberId s, geo::Point position) override;
  /// Drains the subscriber's mailboxes across all shards in stable shard
  /// order. A subscriber's grant always lives in the shard it last
  /// contacted (grants never outgrow a shard's extent), but stale entries
  /// in previously-visited shards may add extra — harmless and
  /// deterministic — pushes. Safe on the parallel path: each subscriber is
  /// processed by exactly one thread per tick, mailboxes are pre-sized by
  /// enable_dynamics, and installs only run in the serial churn phase.
  std::vector<dynamics::InvalidationPush> take_invalidations(
      alarms::SubscriberId s) override;
  const grid::GridOverlay& grid() const override { return grid_; }
  /// Metrics of the calling thread's active shard: client-side work is
  /// charged to the shard hosting the subscriber this tick.
  sim::Metrics& metrics() override;

  // ---- Dynamics tier (DESIGN.md §8; all three are serial-phase only) ----
  /// Enables dynamics on every shard, pre-sizing all mailboxes so no
  /// allocation can race with the parallel tick path.
  void enable_dynamics(std::size_t subscriber_count);
  /// Installs the alarm into every shard whose extent (closed) intersects
  /// its region — the same replication rule as the initial slices — and
  /// lets each such shard invalidate its own outstanding grants. The tick
  /// is recorded per replica for temporal evaluation of buffered reports.
  /// Must be called between ticks (serial churn phase).
  void install_alarm(const alarms::SpatialAlarm& alarm, std::uint64_t tick);
  /// Removes the alarm from every shard holding a replica; each replica
  /// moves to its shard's removal graveyard with its lifetime. Serial-
  /// phase only. Returns true if any replica existed.
  bool remove_alarm(alarms::AlarmId id, std::uint64_t tick);

  // ---- Failover tier (DESIGN.md §10) ----
  /// Arms crash-recovery: every shard gets a durability log (checkpoint +
  /// journal or redo ledger per `config`) and a baseline tick-0 checkpoint
  /// is written immediately, so a crash before the first periodic
  /// checkpoint still recovers. The plan (which must outlive the server)
  /// is consulted only by assertions here — the simulation drives crashes
  /// and recoveries explicitly through begin_failover_tick so the
  /// orchestration order is visible in one place.
  void enable_failover(const failover::FailoverConfig& config,
                       const failover::CrashPlan& plan);
  bool failover_enabled() const { return failover_.has_value(); }
  /// Whether the shard is currently crashed (clients must not contact it).
  bool shard_down(std::size_t shard) const;

  /// Serial-phase tick prologue: recovers every shard whose downtime
  /// window ends at `tick`, then crashes every shard whose window begins
  /// at `tick`. Runs before the tick's churn so deferred-churn bookkeeping
  /// sees the final up/down state.
  void begin_failover_tick(std::uint64_t tick);
  /// Writes a checkpoint for every *up* shard when `tick` lands on the
  /// configured cadence (down shards checkpoint again after recovery at
  /// the next due tick). Serial phase, after churn.
  void take_due_checkpoints(std::uint64_t tick);
  /// End-of-run epilogue: recovers every still-down shard at tick `ticks`
  /// so buffered reports can flush through it. Returns the number of
  /// shards recovered.
  std::size_t finish_failover(std::uint64_t ticks);
  /// Compacts every shard's removal graveyard against the pending-stamp
  /// watermark (see sim::Server::compact_graveyard); returns total tombs
  /// dropped. Serial phase.
  std::size_t compact_graveyards(std::uint64_t watermark);

  // ---- Cluster control / inspection ----
  /// Declares which shard the calling thread is processing; every
  /// subsequent ServerApi call on this thread must target it. The sharded
  /// run mode calls this once per (thread, shard group).
  void set_active_shard(std::size_t shard);

  std::size_t shard_count() const { return shards_.size(); }
  const ShardMap& map() const { return map_; }
  const alarms::AlarmStore& shard_store(std::size_t shard) const;
  const sim::Metrics& shard_metrics(std::size_t shard) const;
  const sim::Server& shard_server(std::size_t shard) const;

  /// All shards' metrics merged in stable shard order.
  sim::Metrics merged_metrics() const;
  /// All shards' trigger logs concatenated and sorted into the global
  /// (tick, subscriber, alarm) order.
  std::vector<alarms::TriggerEvent> merged_trigger_log() const;

 private:
  static constexpr std::size_t kNoShard = static_cast<std::size_t>(-1);

  /// One shard's complete server state; never moved (the Server holds
  /// references into its siblings).
  struct Shard {
    Shard(std::vector<alarms::SpatialAlarm> slice,
          const grid::GridOverlay& grid, std::size_t rtree_node_capacity);
    alarms::AlarmStore store;
    sim::Metrics metrics;
    sim::Server server;
  };

  /// A subscriber's cluster-side session: its current owning shard and the
  /// cumulative set of alarms already fired for it (carried across shard
  /// boundaries by the handoff).
  struct Session {
    std::size_t shard = kNoShard;
    std::vector<alarms::AlarmId> fired;
  };

  /// One shard's durability state (failover tier). Touched from the
  /// parallel path only by the thread holding the shard (spent-record
  /// appends), like the shard's metrics; everything else is serial-phase.
  struct ShardLog {
    /// Last encoded checkpoint (tick-0 baseline until the first periodic
    /// one); recovery decodes exactly these bytes.
    std::vector<std::uint8_t> checkpoint;
    /// Append-only journal of encoded post-checkpoint mutations
    /// (journal mode); truncated at each checkpoint.
    std::vector<std::vector<std::uint8_t>> journal;
    /// Upstream churn redo ledger (journal-less mode): the churn source's
    /// own post-checkpoint install/remove record, kept decoded because it
    /// is not shard-written durable state (and therefore not charged as
    /// journal bytes); truncated at each checkpoint.
    std::vector<wire::JournalRecordMsg> redo;
    /// Churn that arrived while the shard was down, applied (at original
    /// ticks) right after recovery.
    std::vector<wire::JournalRecordMsg> deferred;
    std::uint64_t crash_tick = 0;
    bool down = false;
  };

  struct FailoverState {
    failover::FailoverConfig config;
    const failover::CrashPlan* plan = nullptr;
    std::vector<ShardLog> logs;
  };

  /// Routes a position-taking call: resolves the owning shard, performs
  /// the session handoff if the subscriber just crossed a boundary, and
  /// returns the shard to forward to.
  Shard& contact(alarms::SubscriberId s, geo::Point position);

  void crash_shard(std::size_t shard, std::uint64_t tick);
  void recover_shard(std::size_t shard, std::uint64_t tick);
  void take_checkpoint(std::size_t shard, std::uint64_t tick);
  /// Appends a churn record durably for the shard (journal bytes in
  /// journal mode, redo ledger otherwise). No-op without failover.
  void append_churn(std::size_t shard, const wire::JournalRecordMsg& rec);
  /// Journals one (alarm, subscriber) spent mark for the shard. No-op
  /// without failover or in journal-less mode (re-registration rebuilds
  /// spent state there). Parallel-path safe for the shard's owning thread.
  void append_spent(std::size_t shard, std::uint64_t tick,
                    alarms::AlarmId id, alarms::SubscriberId s);
  /// Replays one decoded record through the uncharged restore paths.
  void apply_restored(Shard& shard, const wire::JournalRecordMsg& rec);

  const grid::GridOverlay& grid_;
  ShardMap map_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<Session> sessions_;
  std::optional<FailoverState> failover_;
  /// Tick being processed, set by begin_failover_tick; gives tick-less
  /// paths (handoff spent marks) a deterministic journal timestamp.
  std::uint64_t fo_tick_ = 0;
};

}  // namespace salarm::cluster
