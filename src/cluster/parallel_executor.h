// Fixed thread pool for fanning per-shard tick work across cores.
//
// Determinism contract: run(tasks) executes every task exactly once and
// returns only after all have finished; tasks must not share mutable state
// (the cluster tier gives each task one shard, and a shard's state is only
// ever touched by the task that owns it for the batch). Which thread runs
// which task is unspecified — results must therefore be merged in a stable
// order by the caller, never in completion order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace salarm::cluster {

class ParallelTickExecutor {
 public:
  /// Pool with the given number of worker threads; 0 means
  /// std::thread::hardware_concurrency(). The calling thread participates
  /// in every batch, so `threads == 1` runs everything inline with no
  /// synchronization at all.
  explicit ParallelTickExecutor(std::size_t threads = 0);
  ~ParallelTickExecutor();

  ParallelTickExecutor(const ParallelTickExecutor&) = delete;
  ParallelTickExecutor& operator=(const ParallelTickExecutor&) = delete;

  std::size_t thread_count() const { return thread_count_; }

  /// Runs all tasks, blocking until every one has completed. The first
  /// exception thrown by any task is rethrown on the caller (remaining
  /// tasks still run to completion).
  void run(const std::vector<std::function<void()>>& tasks);

 private:
  void worker_loop();
  void work_batch();

  std::size_t thread_count_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::vector<std::function<void()>>* tasks_ = nullptr;
  std::size_t next_task_ = 0;    // guarded by mutex_
  std::size_t in_flight_ = 0;    // tasks claimed but not finished
  std::uint64_t generation_ = 0; // batch counter; workers wake on change
  std::exception_ptr first_error_;
  bool shutdown_ = false;
};

}  // namespace salarm::cluster
