#include "cluster/sharded_server.h"

#include <algorithm>
#include <iterator>

#include "common/error.h"
#include "saferegion/wire_format.h"

namespace salarm::cluster {

namespace {
// Shard the calling thread is currently processing. Thread-local rather
// than a member so worker threads of the parallel executor can each hold a
// different active shard on the same ShardedServer.
thread_local std::size_t active_shard = static_cast<std::size_t>(-1);
}  // namespace

ShardedServer::Shard::Shard(std::vector<alarms::SpatialAlarm> slice,
                            const grid::GridOverlay& grid)
    : server(store, grid, metrics) {
  store.install_bulk(std::move(slice));
}

ShardedServer::ShardedServer(const alarms::AlarmStore& global_alarms,
                             const grid::GridOverlay& grid,
                             std::size_t shard_count,
                             std::size_t subscriber_count)
    : grid_(grid), map_(grid, shard_count), sessions_(subscriber_count) {
  shards_.reserve(map_.shard_count());
  for (std::size_t i = 0; i < map_.shard_count(); ++i) {
    // Replicate every alarm whose region (closed) intersects the shard
    // extent: shard-local cell and point queries are closed too, so the
    // slice answers them exactly as the global store would.
    std::vector<alarms::SpatialAlarm> slice;
    for (const alarms::SpatialAlarm& a : global_alarms.all()) {
      if (a.region.intersects(map_.shard_extent(i))) slice.push_back(a);
    }
    shards_.push_back(std::make_unique<Shard>(std::move(slice), grid));
  }
}

void ShardedServer::set_active_shard(std::size_t shard) {
  SALARM_REQUIRE(shard < shards_.size(), "no such shard");
  active_shard = shard;
}

sim::Metrics& ShardedServer::metrics() {
  SALARM_ASSERT(active_shard < shards_.size(),
                "no active shard on this thread");
  return shards_[active_shard]->metrics;
}

ShardedServer::Shard& ShardedServer::contact(alarms::SubscriberId s,
                                             geo::Point position) {
  const std::size_t owner = map_.shard_of(position);
  SALARM_ASSERT(owner == active_shard,
                "position-taking call outside the active shard");
  SALARM_REQUIRE(s < sessions_.size(), "subscriber id out of range");
  Session& session = sessions_[s];
  Shard& shard = *shards_[owner];
  if (session.shard != owner) {
    if (session.shard != kNoShard) {
      // Boundary crossing: the old owner hands the session over. The
      // message is charged to the receiving shard — the only Metrics this
      // thread may touch right now.
      ++shard.metrics.handoff_messages;
      shard.metrics.handoff_bytes +=
          wire::handoff_message_size(session.fired.size());
      // Mark every carried fire spent unconditionally: the id may be
      // uninstalled here (or never replicated here), but the buffered-
      // report graveyard path (handle_buffered_update) still consults
      // spent state for removed alarms, so the trigger history must
      // survive the crossing. Spent state is a pure key set — marking an
      // absent id is cheap and safe.
      for (const alarms::AlarmId id : session.fired) {
        shard.store.mark_spent(id, s);
      }
    }
    session.shard = owner;
  }
  return shard;
}

std::vector<alarms::AlarmId> ShardedServer::handle_position_update(
    alarms::SubscriberId s, geo::Point position, std::uint64_t tick) {
  Shard& shard = contact(s, position);
  std::vector<alarms::AlarmId> fired =
      shard.server.handle_position_update(s, position, tick);
  Session& session = sessions_[s];
  session.fired.insert(session.fired.end(), fired.begin(), fired.end());
  return fired;
}

std::vector<alarms::AlarmId> ShardedServer::handle_buffered_update(
    alarms::SubscriberId s, geo::Point position, std::uint64_t stamp_tick) {
  // Serial phase only (reconnect flushes run between ticks on the main
  // thread): the call claims the owning shard itself, so buffered reports
  // replay shard handoffs deterministically along the client's path.
  set_active_shard(map_.shard_of(position));
  Shard& shard = contact(s, position);
  std::vector<alarms::AlarmId> fired =
      shard.server.handle_buffered_update(s, position, stamp_tick);
  Session& session = sessions_[s];
  session.fired.insert(session.fired.end(), fired.begin(), fired.end());
  return fired;
}

saferegion::RectSafeRegion ShardedServer::compute_rect_region(
    alarms::SubscriberId s, geo::Point position, double heading,
    const saferegion::MotionModel& model,
    const saferegion::MwpsrOptions& options) {
  return contact(s, position)
      .server.compute_rect_region(s, position, heading, model, options);
}

saferegion::RectSafeRegion ShardedServer::compute_corner_baseline_region(
    alarms::SubscriberId s, geo::Point position, double heading,
    const saferegion::MotionModel& model) {
  return contact(s, position)
      .server.compute_corner_baseline_region(s, position, heading, model);
}

saferegion::PyramidBitmap ShardedServer::compute_pyramid_region(
    alarms::SubscriberId s, geo::Point position,
    const saferegion::PyramidConfig& config) {
  return contact(s, position).server.compute_pyramid_region(s, position,
                                                            config);
}

void ShardedServer::enable_public_bitmap_cache(
    const saferegion::PyramidConfig& config) {
  for (auto& shard : shards_) shard->server.enable_public_bitmap_cache(config);
}

double ShardedServer::compute_safe_period(alarms::SubscriberId s,
                                          geo::Point position,
                                          double max_speed_mps,
                                          double tick_seconds) {
  Shard& shard = contact(s, position);
  return shard.server.compute_safe_period(
      s, position, max_speed_mps, tick_seconds,
      map_.escape_distance(sessions_[s].shard, position));
}

std::vector<const alarms::SpatialAlarm*> ShardedServer::push_alarms(
    alarms::SubscriberId s, geo::Point position) {
  return contact(s, position).server.push_alarms(s, position);
}

std::vector<dynamics::InvalidationPush> ShardedServer::take_invalidations(
    alarms::SubscriberId s) {
  std::vector<dynamics::InvalidationPush> out;
  for (auto& shard : shards_) {
    auto pushes = shard->server.take_invalidations(s);
    out.insert(out.end(), std::make_move_iterator(pushes.begin()),
               std::make_move_iterator(pushes.end()));
  }
  return out;
}

void ShardedServer::enable_dynamics(std::size_t subscriber_count) {
  for (auto& shard : shards_) shard->server.enable_dynamics(subscriber_count);
}

void ShardedServer::install_alarm(const alarms::SpatialAlarm& alarm,
                                  std::uint64_t tick) {
  // Same replication rule as the initial slices: every shard whose extent
  // (closed) intersects the region gets a replica. A grant never outgrows
  // its shard's extent, so the install reaches every shard that could hold
  // an affected grant; the per-shard invalidation queries run in stable
  // shard order, keeping sharded churn bit-identical at any thread count.
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (alarm.region.intersects(map_.shard_extent(i))) {
      shards_[i]->server.install_alarm(alarm, tick);
    }
  }
}

bool ShardedServer::remove_alarm(alarms::AlarmId id, std::uint64_t tick) {
  bool any = false;
  for (auto& shard : shards_) {
    if (shard->store.installed(id)) any |= shard->server.remove_alarm(id, tick);
  }
  return any;
}

const alarms::AlarmStore& ShardedServer::shard_store(std::size_t shard) const {
  SALARM_REQUIRE(shard < shards_.size(), "no such shard");
  return shards_[shard]->store;
}

const sim::Metrics& ShardedServer::shard_metrics(std::size_t shard) const {
  SALARM_REQUIRE(shard < shards_.size(), "no such shard");
  return shards_[shard]->metrics;
}

const sim::Server& ShardedServer::shard_server(std::size_t shard) const {
  SALARM_REQUIRE(shard < shards_.size(), "no such shard");
  return shards_[shard]->server;
}

sim::Metrics ShardedServer::merged_metrics() const {
  sim::Metrics merged;
  for (const auto& shard : shards_) merged.merge(shard->metrics);
  return merged;
}

std::vector<alarms::TriggerEvent> ShardedServer::merged_trigger_log() const {
  std::vector<alarms::TriggerEvent> log;
  for (const auto& shard : shards_) {
    const auto& shard_log = shard->server.trigger_log();
    log.insert(log.end(), shard_log.begin(), shard_log.end());
  }
  std::sort(log.begin(), log.end());
  return log;
}

}  // namespace salarm::cluster
