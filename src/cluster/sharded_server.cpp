#include "cluster/sharded_server.h"

#include <algorithm>
#include <iterator>

#include "common/error.h"
#include "saferegion/wire_format.h"

namespace salarm::cluster {

namespace {
// Shard the calling thread is currently processing. Thread-local rather
// than a member so worker threads of the parallel executor can each hold a
// different active shard on the same ShardedServer.
thread_local std::size_t active_shard = static_cast<std::size_t>(-1);
}  // namespace

ShardedServer::Shard::Shard(std::vector<alarms::SpatialAlarm> slice,
                            const grid::GridOverlay& grid,
                            std::size_t rtree_node_capacity)
    : store(rtree_node_capacity), server(store, grid, metrics) {
  store.install_bulk(std::move(slice));
}

ShardedServer::ShardedServer(const alarms::AlarmStore& global_alarms,
                             const grid::GridOverlay& grid,
                             std::size_t shard_count,
                             std::size_t subscriber_count)
    : grid_(grid), map_(grid, shard_count), sessions_(subscriber_count) {
  shards_.reserve(map_.shard_count());
  for (std::size_t i = 0; i < map_.shard_count(); ++i) {
    // Replicate every alarm whose region (closed) intersects the shard
    // extent: shard-local cell and point queries are closed too, so the
    // slice answers them exactly as the global store would. The slice
    // inherits the source store's index node capacity so node-access
    // accounting is comparable.
    std::vector<alarms::SpatialAlarm> slice;
    for (const alarms::SpatialAlarm& a : global_alarms.all()) {
      if (a.region.intersects(map_.shard_extent(i))) slice.push_back(a);
    }
    shards_.push_back(std::make_unique<Shard>(
        std::move(slice), grid, global_alarms.rtree_node_capacity()));
  }
}

void ShardedServer::set_active_shard(std::size_t shard) {
  SALARM_REQUIRE(shard < shards_.size(), "no such shard");
  active_shard = shard;
}

sim::Metrics& ShardedServer::metrics() {
  SALARM_ASSERT(active_shard < shards_.size(),
                "no active shard on this thread");
  return shards_[active_shard]->metrics;
}

ShardedServer::Shard& ShardedServer::contact(alarms::SubscriberId s,
                                             geo::Point position) {
  const std::size_t owner = map_.shard_of(position);
  SALARM_ASSERT(owner == active_shard,
                "position-taking call outside the active shard");
  SALARM_ASSERT(!shard_down(owner),
                "position-taking call reached a crashed shard (degraded-mode "
                "clients must buffer instead)");
  SALARM_REQUIRE(s < sessions_.size(), "subscriber id out of range");
  Session& session = sessions_[s];
  Shard& shard = *shards_[owner];
  if (session.shard != owner) {
    if (session.shard != kNoShard) {
      // Boundary crossing: the old owner hands the session over. The
      // message is charged to the receiving shard — the only Metrics this
      // thread may touch right now.
      ++shard.metrics.handoff_messages;
      shard.metrics.handoff_bytes +=
          wire::handoff_message_size(session.fired.size());
      // Mark every carried fire spent unconditionally: the id may be
      // uninstalled here (or never replicated here), but the buffered-
      // report graveyard path (handle_buffered_update) still consults
      // spent state for removed alarms, so the trigger history must
      // survive the crossing. Spent state is a pure key set — marking an
      // absent id is cheap and safe.
      for (const alarms::AlarmId id : session.fired) {
        shard.store.mark_spent(id, s);
        append_spent(owner, fo_tick_, id, s);
      }
    }
    session.shard = owner;
  }
  return shard;
}

std::vector<alarms::AlarmId> ShardedServer::handle_position_update(
    alarms::SubscriberId s, geo::Point position, std::uint64_t tick) {
  Shard& shard = contact(s, position);
  std::vector<alarms::AlarmId> fired =
      shard.server.handle_position_update(s, position, tick);
  for (const alarms::AlarmId id : fired) {
    append_spent(map_.shard_of(position), tick, id, s);
  }
  Session& session = sessions_[s];
  session.fired.insert(session.fired.end(), fired.begin(), fired.end());
  return fired;
}

std::vector<alarms::AlarmId> ShardedServer::handle_buffered_update(
    alarms::SubscriberId s, geo::Point position, std::uint64_t stamp_tick) {
  // Serial phase only (reconnect flushes run between ticks on the main
  // thread): the call claims the owning shard itself, so buffered reports
  // replay shard handoffs deterministically along the client's path.
  set_active_shard(map_.shard_of(position));
  Shard& shard = contact(s, position);
  std::vector<alarms::AlarmId> fired =
      shard.server.handle_buffered_update(s, position, stamp_tick);
  for (const alarms::AlarmId id : fired) {
    append_spent(map_.shard_of(position), stamp_tick, id, s);
  }
  Session& session = sessions_[s];
  session.fired.insert(session.fired.end(), fired.begin(), fired.end());
  return fired;
}

saferegion::RectSafeRegion ShardedServer::compute_rect_region(
    alarms::SubscriberId s, geo::Point position, double heading,
    const saferegion::MotionModel& model,
    const saferegion::MwpsrOptions& options) {
  return contact(s, position)
      .server.compute_rect_region(s, position, heading, model, options);
}

saferegion::RectSafeRegion ShardedServer::compute_corner_baseline_region(
    alarms::SubscriberId s, geo::Point position, double heading,
    const saferegion::MotionModel& model) {
  return contact(s, position)
      .server.compute_corner_baseline_region(s, position, heading, model);
}

saferegion::PyramidBitmap ShardedServer::compute_pyramid_region(
    alarms::SubscriberId s, geo::Point position,
    const saferegion::PyramidConfig& config) {
  return contact(s, position).server.compute_pyramid_region(s, position,
                                                            config);
}

void ShardedServer::enable_public_bitmap_cache(
    const saferegion::PyramidConfig& config) {
  for (auto& shard : shards_) shard->server.enable_public_bitmap_cache(config);
}

double ShardedServer::compute_safe_period(alarms::SubscriberId s,
                                          geo::Point position,
                                          double max_speed_mps,
                                          double tick_seconds) {
  Shard& shard = contact(s, position);
  return shard.server.compute_safe_period(
      s, position, max_speed_mps, tick_seconds,
      map_.escape_distance(sessions_[s].shard, position));
}

std::vector<const alarms::SpatialAlarm*> ShardedServer::push_alarms(
    alarms::SubscriberId s, geo::Point position) {
  return contact(s, position).server.push_alarms(s, position);
}

std::vector<dynamics::InvalidationPush> ShardedServer::take_invalidations(
    alarms::SubscriberId s) {
  std::vector<dynamics::InvalidationPush> out;
  for (auto& shard : shards_) {
    auto pushes = shard->server.take_invalidations(s);
    out.insert(out.end(), std::make_move_iterator(pushes.begin()),
               std::make_move_iterator(pushes.end()));
  }
  return out;
}

void ShardedServer::enable_dynamics(std::size_t subscriber_count) {
  for (auto& shard : shards_) shard->server.enable_dynamics(subscriber_count);
}

void ShardedServer::install_alarm(const alarms::SpatialAlarm& alarm,
                                  std::uint64_t tick) {
  // Same replication rule as the initial slices: every shard whose extent
  // (closed) intersects the region gets a replica. A grant never outgrows
  // its shard's extent, so the install reaches every shard that could hold
  // an affected grant; the per-shard invalidation queries run in stable
  // shard order, keeping sharded churn bit-identical at any thread count.
  wire::JournalRecordMsg rec;
  rec.kind = wire::JournalRecordMsg::Kind::kInstall;
  rec.tick = tick;
  rec.alarm = alarm;
  rec.alarm_id = alarm.id;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (!alarm.region.intersects(map_.shard_extent(i))) continue;
    if (shard_down(i)) {
      // The replica's owner is crashed: the install is deferred and
      // applied — at this original tick — right after recovery. No client
      // over the shard can observe the gap (they are all in degraded mode,
      // buffering reports that flush only once the shard is back).
      failover_->logs[i].deferred.push_back(rec);
      continue;
    }
    shards_[i]->server.install_alarm(alarm, tick);
    append_churn(i, rec);
  }
}

bool ShardedServer::remove_alarm(alarms::AlarmId id, std::uint64_t tick) {
  wire::JournalRecordMsg rec;
  rec.kind = wire::JournalRecordMsg::Kind::kRemove;
  rec.tick = tick;
  rec.alarm_id = id;
  bool any = false;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[i];
    if (shard_down(i)) {
      // A crashed shard's store is empty, so installed() cannot tell
      // whether it held a replica — defer unconditionally; the deferred
      // remove no-ops at recovery if the restored store lacks the id.
      failover_->logs[i].deferred.push_back(rec);
      any = true;
      continue;
    }
    if (shard.store.installed(id)) {
      any |= shard.server.remove_alarm(id, tick);
      append_churn(i, rec);
    }
  }
  return any;
}

void ShardedServer::enable_failover(const failover::FailoverConfig& config,
                                    const failover::CrashPlan& plan) {
  SALARM_REQUIRE(!failover_.has_value(), "failover already enabled");
  SALARM_REQUIRE(plan.shard_count() == shards_.size(),
                 "crash plan sized for a different shard count");
  failover_.emplace();
  failover_->config = config;
  failover_->plan = &plan;
  failover_->logs.resize(shards_.size());
  // Baseline durability: a crash before the first periodic checkpoint must
  // still recover, so every shard checkpoints its initial slice now.
  for (std::size_t i = 0; i < shards_.size(); ++i) take_checkpoint(i, 0);
}

bool ShardedServer::shard_down(std::size_t shard) const {
  return failover_.has_value() && failover_->logs[shard].down;
}

void ShardedServer::begin_failover_tick(std::uint64_t tick) {
  SALARM_REQUIRE(failover_.has_value(), "failover is not enabled");
  fo_tick_ = tick;
  const failover::CrashPlan& plan = *failover_->plan;
  // Recoveries strictly before crashes: windows are non-adjacent (a shard
  // never crashes on its recovery tick), so the order only matters for
  // keeping the sweep deterministic.
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (plan.recovers_at(i, tick)) recover_shard(i, tick);
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (plan.crashes_at(i, tick)) crash_shard(i, tick);
  }
}

void ShardedServer::take_due_checkpoints(std::uint64_t tick) {
  SALARM_REQUIRE(failover_.has_value(), "failover is not enabled");
  if (tick == 0 || tick % failover_->config.checkpoint_interval_ticks != 0) {
    return;
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (!failover_->logs[i].down) take_checkpoint(i, tick);
  }
}

std::size_t ShardedServer::finish_failover(std::uint64_t ticks) {
  SALARM_REQUIRE(failover_.has_value(), "failover is not enabled");
  std::size_t recovered = 0;
  fo_tick_ = ticks;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (!failover_->logs[i].down) continue;
    recover_shard(i, ticks);
    ++recovered;
  }
  return recovered;
}

std::size_t ShardedServer::compact_graveyards(std::uint64_t watermark) {
  std::size_t dropped = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    // A crashed shard's graveyard is already empty; its restored one is
    // compacted on the next serial sweep after recovery.
    if (shard_down(i)) continue;
    dropped += shards_[i]->server.compact_graveyard(watermark);
  }
  return dropped;
}

void ShardedServer::crash_shard(std::size_t shard, std::uint64_t tick) {
  ShardLog& log = failover_->logs[shard];
  SALARM_ASSERT(!log.down, "crashing a shard that is already down");
  log.down = true;
  log.crash_tick = tick;
  shards_[shard]->server.crash();
  ++shards_[shard]->metrics.fo_crashes;
}

void ShardedServer::recover_shard(std::size_t shard, std::uint64_t tick) {
  ShardLog& log = failover_->logs[shard];
  SALARM_ASSERT(log.down, "recovering a shard that is not down");
  Shard& sh = *shards_[shard];
  log.down = false;

  // 1. Restore the checkpoint: the exact bytes written before the crash.
  const wire::ShardCheckpointMsg cp =
      wire::decode_shard_checkpoint(log.checkpoint);
  for (const auto& rec : cp.alarms) {
    sh.server.restore_install(rec.alarm, rec.installed_at);
  }
  for (const auto& rec : cp.graveyard) {
    sh.server.restore_tomb(rec.alarm, rec.installed_at, rec.removed_at);
  }
  for (const auto& rec : cp.spent) {
    sh.server.restore_spent(rec.alarm, rec.subscriber);
  }
  for (const auto& rec : cp.grants) {
    sh.server.restore_grant(rec.subscriber,
                            static_cast<dynamics::GrantKind>(rec.kind),
                            rec.bounds);
  }

  if (failover_->config.journal) {
    // 2a. Journal mode: replay every post-checkpoint mutation in append
    // order from the shard's own durable log.
    for (const auto& bytes : log.journal) {
      apply_restored(sh, wire::decode_journal_record(bytes));
      ++sh.metrics.fo_journal_replays;
    }
  } else {
    // 2b. Journal-less mode: redo post-checkpoint churn from the upstream
    // ledger, then rebuild the trigger history from the clients — every
    // subscriber still owned by this shard re-registers, shipping its
    // carried fired list exactly like a session handoff would.
    for (const auto& rec : log.redo) {
      apply_restored(sh, rec);
      ++sh.metrics.fo_redo_events;
    }
    for (alarms::SubscriberId s = 0; s < sessions_.size(); ++s) {
      const Session& session = sessions_[s];
      if (session.shard != shard) continue;
      ++sh.metrics.fo_reregistrations;
      sh.metrics.fo_reregistration_bytes +=
          wire::handoff_message_size(session.fired.size());
      for (const alarms::AlarmId id : session.fired) {
        sh.store.mark_spent(id, s);
      }
    }
  }

  // 3. Apply churn that arrived during the downtime window, at its
  // original ticks (the temporal filter of buffered reports depends on
  // them). This is the deferred events' first application on this shard,
  // so it runs through the normally-charged paths and is re-journaled for
  // crash-again safety.
  for (const auto& rec : log.deferred) {
    if (rec.kind == wire::JournalRecordMsg::Kind::kInstall) {
      sh.server.install_alarm(rec.alarm, rec.tick);
    } else if (!sh.server.remove_alarm(rec.alarm_id, rec.tick)) {
      continue;  // replica never existed here; nothing to journal
    }
    append_churn(shard, rec);
    ++sh.metrics.fo_redo_events;
  }
  log.deferred.clear();

  ++sh.metrics.fo_recoveries;
  sh.metrics.fo_recovery_ticks += tick - log.crash_tick;
}

void ShardedServer::take_checkpoint(std::size_t shard, std::uint64_t tick) {
  Shard& sh = *shards_[shard];
  ShardLog& log = failover_->logs[shard];
  wire::ShardCheckpointMsg cp;
  cp.shard = static_cast<std::uint32_t>(shard);
  cp.tick = tick;
  for (const alarms::SpatialAlarm& a : sh.store.all()) {
    cp.alarms.push_back({a, sh.server.installed_at(a.id)});
  }
  for (const sim::Server::Tomb& t : sh.server.graveyard()) {
    cp.graveyard.push_back({t.alarm, t.installed_at, t.removed_at});
  }
  for (const auto& [alarm, subscriber] : sh.store.spent_pairs()) {
    cp.spent.push_back({alarm, subscriber});
  }
  for (const auto& [subscriber, grant] : sh.server.grant_snapshot()) {
    cp.grants.push_back(
        {subscriber, static_cast<std::uint8_t>(grant.kind), grant.bounds});
  }
  log.checkpoint = wire::encode(cp);
  // The checkpoint supersedes everything logged before it.
  log.journal.clear();
  log.redo.clear();
  ++sh.metrics.fo_checkpoints;
  sh.metrics.fo_checkpoint_bytes += log.checkpoint.size();
}

void ShardedServer::append_churn(std::size_t shard,
                                 const wire::JournalRecordMsg& rec) {
  if (!failover_.has_value()) return;
  ShardLog& log = failover_->logs[shard];
  if (failover_->config.journal) {
    std::vector<std::uint8_t> bytes = wire::encode(rec);
    ++shards_[shard]->metrics.fo_journal_records;
    shards_[shard]->metrics.fo_journal_bytes += bytes.size();
    log.journal.push_back(std::move(bytes));
  } else {
    // Upstream ledger: the churn source already holds this record, so the
    // shard writes (and pays for) nothing.
    log.redo.push_back(rec);
  }
}

void ShardedServer::append_spent(std::size_t shard, std::uint64_t tick,
                                 alarms::AlarmId id, alarms::SubscriberId s) {
  if (!failover_.has_value() || !failover_->config.journal) {
    // Journal-less recovery rebuilds spent state from client
    // re-registration; there is nothing durable to write here.
    return;
  }
  wire::JournalRecordMsg rec;
  rec.kind = wire::JournalRecordMsg::Kind::kSpent;
  rec.tick = tick;
  rec.alarm_id = id;
  rec.subscriber = s;
  std::vector<std::uint8_t> bytes = wire::encode(rec);
  ++shards_[shard]->metrics.fo_journal_records;
  shards_[shard]->metrics.fo_journal_bytes += bytes.size();
  failover_->logs[shard].journal.push_back(std::move(bytes));
}

void ShardedServer::apply_restored(Shard& shard,
                                   const wire::JournalRecordMsg& rec) {
  switch (rec.kind) {
    case wire::JournalRecordMsg::Kind::kInstall:
      shard.server.restore_install(rec.alarm, rec.tick);
      break;
    case wire::JournalRecordMsg::Kind::kRemove:
      shard.server.restore_remove(rec.alarm_id, rec.tick);
      break;
    case wire::JournalRecordMsg::Kind::kSpent:
      shard.server.restore_spent(rec.alarm_id, rec.subscriber);
      break;
  }
}

const alarms::AlarmStore& ShardedServer::shard_store(std::size_t shard) const {
  SALARM_REQUIRE(shard < shards_.size(), "no such shard");
  return shards_[shard]->store;
}

const sim::Metrics& ShardedServer::shard_metrics(std::size_t shard) const {
  SALARM_REQUIRE(shard < shards_.size(), "no such shard");
  return shards_[shard]->metrics;
}

const sim::Server& ShardedServer::shard_server(std::size_t shard) const {
  SALARM_REQUIRE(shard < shards_.size(), "no such shard");
  return shards_[shard]->server;
}

sim::Metrics ShardedServer::merged_metrics() const {
  sim::Metrics merged;
  for (const auto& shard : shards_) merged.merge(shard->metrics);
  return merged;
}

std::vector<alarms::TriggerEvent> ShardedServer::merged_trigger_log() const {
  std::vector<alarms::TriggerEvent> log;
  for (const auto& shard : shards_) {
    const auto& shard_log = shard->server.trigger_log();
    log.insert(log.end(), shard_log.begin(), shard_log.end());
  }
  std::sort(log.begin(), log.end());
  return log;
}

}  // namespace salarm::cluster
