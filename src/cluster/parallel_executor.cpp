#include "cluster/parallel_executor.h"

#include <algorithm>

namespace salarm::cluster {

ParallelTickExecutor::ParallelTickExecutor(std::size_t threads)
    : thread_count_(threads != 0
                        ? threads
                        : std::max<std::size_t>(
                              1, std::thread::hardware_concurrency())) {
  workers_.reserve(thread_count_ - 1);
  for (std::size_t i = 0; i + 1 < thread_count_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ParallelTickExecutor::~ParallelTickExecutor() {
  {
    std::lock_guard lock(mutex_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ParallelTickExecutor::run(
    const std::vector<std::function<void()>>& tasks) {
  if (tasks.empty()) return;
  if (workers_.empty() || tasks.size() == 1) {
    // Inline: same run-to-completion semantics, no synchronization.
    std::exception_ptr err;
    for (const auto& task : tasks) {
      try {
        task();
      } catch (...) {
        if (!err) err = std::current_exception();
      }
    }
    if (err) std::rethrow_exception(err);
    return;
  }

  {
    std::lock_guard lock(mutex_);
    tasks_ = &tasks;
    next_task_ = 0;
    in_flight_ = 0;
    first_error_ = nullptr;
    ++generation_;
  }
  start_cv_.notify_all();
  work_batch();  // the caller is one of the pool's threads

  std::exception_ptr err;
  {
    std::unique_lock lock(mutex_);
    done_cv_.wait(lock, [&] {
      return next_task_ >= tasks_->size() && in_flight_ == 0;
    });
    err = first_error_;
    tasks_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

void ParallelTickExecutor::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock lock(mutex_);
      start_cv_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
    }
    work_batch();
  }
}

void ParallelTickExecutor::work_batch() {
  std::unique_lock lock(mutex_);
  while (tasks_ != nullptr && next_task_ < tasks_->size()) {
    const std::vector<std::function<void()>>& tasks = *tasks_;
    const std::size_t idx = next_task_++;
    ++in_flight_;
    lock.unlock();
    std::exception_ptr err;
    try {
      tasks[idx]();
    } catch (...) {
      err = std::current_exception();
    }
    lock.lock();
    if (err && !first_error_) first_error_ = err;
    --in_flight_;
  }
  if (tasks_ != nullptr && next_task_ >= tasks_->size() && in_flight_ == 0) {
    done_cv_.notify_all();
  }
}

}  // namespace salarm::cluster
