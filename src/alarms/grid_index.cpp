#include "alarms/grid_index.h"

#include <algorithm>

#include "common/error.h"

namespace salarm::alarms {

GridAlarmIndex::GridAlarmIndex(const grid::GridOverlay& overlay)
    : overlay_(overlay), buckets_(overlay.cell_count()) {}

void GridAlarmIndex::insert(AlarmId id, const geo::Rect& region) {
  SALARM_REQUIRE(overlay_.universe().contains(region),
                 "region outside the index universe");
  for (const grid::CellId cell : overlay_.cells_intersecting(region)) {
    buckets_[overlay_.flat_index(cell)].push_back({id, region});
  }
  if (id >= seen_stamp_.size()) seen_stamp_.resize(id + 1, 0);
  ++size_;
}

bool GridAlarmIndex::erase(AlarmId id, const geo::Rect& region) {
  bool found = false;
  for (const grid::CellId cell : overlay_.cells_intersecting(region)) {
    auto& bucket = buckets_[overlay_.flat_index(cell)];
    const auto it = std::find_if(bucket.begin(), bucket.end(),
                                 [&](const Entry& e) {
                                   return e.id == id && e.region == region;
                                 });
    if (it != bucket.end()) {
      bucket.erase(it);
      found = true;
    }
  }
  if (found) --size_;
  return found;
}

void GridAlarmIndex::visit(
    const geo::Rect& window,
    const std::function<bool(AlarmId, const geo::Rect&)>& visitor) const {
  ++stamp_;
  for (const grid::CellId cell : overlay_.cells_intersecting(window)) {
    ++bucket_accesses_;
    for (const Entry& e : buckets_[overlay_.flat_index(cell)]) {
      if (!e.region.intersects(window)) continue;
      if (seen_stamp_[e.id] == stamp_) continue;  // already visited
      seen_stamp_[e.id] = stamp_;
      if (!visitor(e.id, e.region)) return;
    }
  }
}

std::vector<AlarmId> GridAlarmIndex::containing(geo::Point p) const {
  std::vector<AlarmId> out;
  visit(geo::Rect(p, p), [&](AlarmId id, const geo::Rect& region) {
    if (region.contains(p)) out.push_back(id);
    return true;
  });
  return out;
}

}  // namespace salarm::alarms
