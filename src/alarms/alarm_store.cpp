#include "alarms/alarm_store.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"

namespace salarm::alarms {

AlarmStore::AlarmStore(std::size_t rtree_node_capacity)
    : rtree_node_capacity_(rtree_node_capacity),
      tree_(rtree_node_capacity) {}

void AlarmStore::admit(SpatialAlarm& alarm) {
  SALARM_REQUIRE(!installed(alarm.id), "alarm id already installed");
  SALARM_REQUIRE(alarm.region.area() > 0.0,
                 "alarm region must have positive area");
  if (alarm.scope == AlarmScope::kPublic) {
    SALARM_REQUIRE(alarm.subscribers.empty(),
                   "public alarms must not carry a subscriber list");
  } else {
    SALARM_REQUIRE(!alarm.subscribers.empty(),
                   "non-public alarms need at least one subscriber");
  }
  std::sort(alarm.subscribers.begin(), alarm.subscribers.end());
  alarm.subscribers.erase(
      std::unique(alarm.subscribers.begin(), alarm.subscribers.end()),
      alarm.subscribers.end());
  if (alarm.id >= slot_of_.size()) slot_of_.resize(alarm.id + 1, kNoSlot);
  slot_of_[alarm.id] = alarms_.size();
}

void AlarmStore::install(SpatialAlarm alarm) {
  admit(alarm);
  tree_.insert({alarm.region, alarm.id});
  alarms_.push_back(std::move(alarm));
}

void AlarmStore::install_bulk(std::vector<SpatialAlarm> alarms) {
  SALARM_REQUIRE(alarms_.empty(), "bulk install requires an empty store");
  std::vector<index::Entry> entries;
  entries.reserve(alarms.size());
  alarms_.reserve(alarms.size());
  for (SpatialAlarm& alarm : alarms) {
    admit(alarm);
    entries.push_back({alarm.region, alarm.id});
    alarms_.push_back(std::move(alarm));
  }
  tree_ = index::RStarTree::bulk_load(std::move(entries),
                                      rtree_node_capacity_);
}

bool AlarmStore::uninstall(AlarmId id) {
  const std::size_t slot = slot_of(id);
  if (slot == kNoSlot) return false;
  const bool erased = tree_.erase({alarms_[slot].region, id});
  SALARM_ASSERT(erased, "installed alarm missing from index");
  // Swap-and-pop so all() never reports uninstalled alarms (the cluster
  // tier builds shard slices from all(), and install_bulk requires a truly
  // empty store).
  if (slot != alarms_.size() - 1) {
    alarms_[slot] = std::move(alarms_.back());
    slot_of_[alarms_[slot].id] = slot;
  }
  alarms_.pop_back();
  slot_of_[id] = kNoSlot;
  return true;
}

void AlarmStore::clear() {
  alarms_.clear();
  slot_of_.clear();
  spent_.clear();
  tree_ = index::RStarTree(rtree_node_capacity_);
}

void AlarmStore::move_alarm(AlarmId id, const geo::Rect& new_region) {
  const std::size_t slot = slot_of(id);
  SALARM_REQUIRE(slot != kNoSlot, "no such alarm");
  SALARM_REQUIRE(new_region.area() > 0.0,
                 "alarm region must have positive area");
  const bool erased = tree_.erase({alarms_[slot].region, id});
  SALARM_ASSERT(erased, "installed alarm missing from index");
  alarms_[slot].region = new_region;
  tree_.insert({new_region, id});
}

const SpatialAlarm& AlarmStore::alarm(AlarmId id) const {
  const std::size_t slot = slot_of(id);
  SALARM_REQUIRE(slot != kNoSlot, "no such alarm");
  return alarms_[slot];
}

bool AlarmStore::subscribed(const SpatialAlarm& alarm, SubscriberId s) {
  if (alarm.scope == AlarmScope::kPublic) return true;
  return std::binary_search(alarm.subscribers.begin(),
                            alarm.subscribers.end(), s);
}

bool AlarmStore::relevant(const SpatialAlarm& alarm, SubscriberId s) const {
  return subscribed(alarm, s) && !spent(alarm.id, s);
}

std::vector<const SpatialAlarm*> AlarmStore::relevant_in_window(
    const geo::Rect& window, SubscriberId s) const {
  std::vector<const SpatialAlarm*> out;
  tree_.visit(window, [&](const index::Entry& e) {
    const SpatialAlarm& a = alarms_[slot_of_[static_cast<AlarmId>(e.id)]];
    if (relevant(a, s)) out.push_back(&a);
    return true;
  });
  return out;
}

std::vector<const SpatialAlarm*> AlarmStore::relevant_nonpublic_in_window(
    const geo::Rect& window, SubscriberId s) const {
  std::vector<const SpatialAlarm*> out;
  tree_.visit(window, [&](const index::Entry& e) {
    const SpatialAlarm& a = alarms_[slot_of_[static_cast<AlarmId>(e.id)]];
    if (a.scope != AlarmScope::kPublic && relevant(a, s)) out.push_back(&a);
    return true;
  });
  return out;
}

std::vector<const SpatialAlarm*> AlarmStore::public_in_window(
    const geo::Rect& window) const {
  std::vector<const SpatialAlarm*> out;
  tree_.visit(window, [&](const index::Entry& e) {
    const SpatialAlarm& a = alarms_[slot_of_[static_cast<AlarmId>(e.id)]];
    if (a.scope == AlarmScope::kPublic) out.push_back(&a);
    return true;
  });
  return out;
}

std::vector<AlarmId> AlarmStore::process_position(
    SubscriberId s, geo::Point p, std::uint64_t tick,
    std::vector<TriggerEvent>* log,
    const std::function<bool(AlarmId)>& filter) {
  std::vector<AlarmId> fired;
  tree_.visit(geo::Rect(p, p), [&](const index::Entry& e) {
    const SpatialAlarm& a = alarms_[slot_of_[static_cast<AlarmId>(e.id)]];
    if (filter && !filter(a.id)) return true;
    // Open-interior trigger semantics: the alarm fires when the subscriber
    // enters the interior of the region; merely touching the boundary does
    // not (and safe regions may legally share that boundary).
    if (relevant(a, s) && a.region.interior_contains(p)) fired.push_back(a.id);
    return true;
  });
  for (const AlarmId id : fired) {
    spent_.insert(spend_key(id, s));
    if (log != nullptr) log->push_back({id, s, tick});
  }
  return fired;
}

void AlarmStore::mark_spent(AlarmId id, SubscriberId s) {
  // Deliberately no installed(id) requirement: spent state is pure trigger
  // history and outlives removal (uninstall keeps it), and the buffered-
  // report graveyard path records fires for already-uninstalled alarms.
  spent_.insert(spend_key(id, s));
}

bool AlarmStore::spent(AlarmId id, SubscriberId s) const {
  return spent_.contains(spend_key(id, s));
}

std::vector<std::pair<AlarmId, SubscriberId>> AlarmStore::spent_pairs() const {
  std::vector<std::pair<AlarmId, SubscriberId>> pairs;
  pairs.reserve(spent_.size());
  for (const std::uint64_t key : spent_) {
    pairs.emplace_back(static_cast<AlarmId>(key >> 32),
                       static_cast<SubscriberId>(key & 0xFFFFFFFFu));
  }
  // The set iterates in hash order; checkpoints must be byte-identical
  // across runs and thread counts, so sort.
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

void AlarmStore::reset_triggers() { spent_.clear(); }

double AlarmStore::nearest_relevant_distance(geo::Point p,
                                             SubscriberId s) const {
  return tree_.nearest_distance(p, [&](const index::Entry& e) {
    return relevant(alarms_[slot_of_[static_cast<AlarmId>(e.id)]], s);
  });
}

std::vector<SpatialAlarm> generate_alarm_workload(
    const AlarmWorkloadConfig& cfg, const geo::Rect& universe, Rng& rng) {
  SALARM_REQUIRE(cfg.alarm_count > 0, "empty workload");
  SALARM_REQUIRE(cfg.subscriber_count > 0, "need subscribers");
  SALARM_REQUIRE(cfg.public_fraction >= 0.0 && cfg.public_fraction <= 1.0,
                 "public fraction out of range");
  SALARM_REQUIRE(cfg.private_to_shared > 0.0, "bad private:shared ratio");
  SALARM_REQUIRE(cfg.region_side_lo > 0.0 &&
                     cfg.region_side_hi >= cfg.region_side_lo,
                 "bad region side range");
  SALARM_REQUIRE(cfg.shared_subscribers_lo >= 1 &&
                     cfg.shared_subscribers_hi >= cfg.shared_subscribers_lo,
                 "bad shared subscriber range");
  SALARM_REQUIRE(universe.area() > 0.0, "universe must have positive area");

  const double private_fraction_of_rest =
      cfg.private_to_shared / (cfg.private_to_shared + 1.0);

  std::vector<SpatialAlarm> out;
  out.reserve(cfg.alarm_count);
  for (std::size_t i = 0; i < cfg.alarm_count; ++i) {
    SpatialAlarm a;
    a.id = static_cast<AlarmId>(i);
    a.owner = static_cast<SubscriberId>(rng.index(cfg.subscriber_count));

    // Target uniform over the universe; region clipped to the universe so
    // the safe-region algorithms never see alarms sticking out of the grid.
    const geo::Point target{universe.lo().x + rng.uniform(0.0, universe.width()),
                            universe.lo().y +
                                rng.uniform(0.0, universe.height())};
    const double side = rng.uniform(cfg.region_side_lo, cfg.region_side_hi);
    const auto clipped =
        geo::Rect::centered_square(target, side).intersection(universe);
    SALARM_ASSERT(clipped.has_value(), "target fell outside the universe");
    a.region = *clipped;
    if (a.region.area() <= 0.0) {
      // Degenerate sliver on the very border; nudge inward instead.
      a.region = geo::Rect::centered_square(
          {std::clamp(target.x, universe.lo().x + side / 2,
                      universe.hi().x - side / 2),
           std::clamp(target.y, universe.lo().y + side / 2,
                      universe.hi().y - side / 2)},
          side);
    }

    // Alert content of realistic length (see SpatialAlarm::message).
    const auto message_len = static_cast<std::size_t>(rng.uniform_int(48, 160));
    a.message.assign(message_len, 'x');

    if (rng.chance(cfg.public_fraction)) {
      a.scope = AlarmScope::kPublic;
    } else if (rng.chance(private_fraction_of_rest)) {
      a.scope = AlarmScope::kPrivate;
      a.subscribers = {a.owner};
    } else {
      a.scope = AlarmScope::kShared;
      const std::size_t n = static_cast<std::size_t>(rng.uniform_int(
          static_cast<std::int64_t>(cfg.shared_subscribers_lo),
          static_cast<std::int64_t>(cfg.shared_subscribers_hi)));
      a.subscribers.push_back(a.owner);
      while (a.subscribers.size() < n) {
        a.subscribers.push_back(
            static_cast<SubscriberId>(rng.index(cfg.subscriber_count)));
      }
    }
    out.push_back(std::move(a));
  }
  return out;
}

}  // namespace salarm::alarms
