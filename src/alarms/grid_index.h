// Grid-bucket alarm index — the classic alternative to the R*-tree.
//
// The paper indexes alarms in an R*-tree [9]; many deployed systems use a
// uniform grid instead (each cell lists the alarms intersecting it). This
// index offers the same queries as the tree path of AlarmStore so the two
// can be compared head-to-head (bench/micro_alarm_index): O(1) cell lookup
// and cheap window queries at uniform densities, degraded behaviour under
// skew and for large windows, and cheap updates.
//
// Cost accounting mirrors RStarTree: every bucket visited counts as one
// "node access" so the server cost model can meter either index.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "alarms/spatial_alarm.h"
#include "geometry/point.h"
#include "geometry/rect.h"
#include "grid/grid_overlay.h"

namespace salarm::alarms {

class GridAlarmIndex {
 public:
  /// The overlay defines the bucket layout; regions must lie inside its
  /// universe.
  explicit GridAlarmIndex(const grid::GridOverlay& overlay);

  /// Adds an alarm region under the given id (duplicates allowed,
  /// multiset semantics like the R*-tree).
  void insert(AlarmId id, const geo::Rect& region);

  /// Removes one (id, region) pair; returns false if absent.
  bool erase(AlarmId id, const geo::Rect& region);

  std::size_t size() const { return size_; }

  /// Visits every distinct alarm whose region (closed) intersects the
  /// window; the visitor returns false to stop early. An alarm spanning
  /// multiple buckets is visited once.
  void visit(const geo::Rect& window,
             const std::function<bool(AlarmId, const geo::Rect&)>& visitor)
      const;

  /// Distinct alarm ids whose region (closed) contains the point.
  std::vector<AlarmId> containing(geo::Point p) const;

  /// Buckets examined since the last reset (the grid analogue of R*-tree
  /// node accesses).
  std::uint64_t bucket_accesses() const { return bucket_accesses_; }
  void reset_bucket_accesses() { bucket_accesses_ = 0; }

 private:
  struct Entry {
    AlarmId id;
    geo::Rect region;
  };

  const grid::GridOverlay& overlay_;
  std::vector<std::vector<Entry>> buckets_;  ///< flat-indexed by cell
  std::size_t size_ = 0;
  mutable std::uint64_t bucket_accesses_ = 0;
  /// Query stamp per alarm id for O(1) cross-bucket deduplication.
  mutable std::vector<std::uint32_t> seen_stamp_;
  mutable std::uint32_t stamp_ = 0;
};

}  // namespace salarm::alarms
