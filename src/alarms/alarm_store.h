// Server-side alarm storage: the installed-alarm set, the R*-tree index
// over alarm regions (paper §5.1), relevance filtering, and one-shot
// trigger bookkeeping.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "alarms/spatial_alarm.h"
#include "common/rng.h"
#include "geometry/point.h"
#include "geometry/rect.h"
#include "index/rstar_tree.h"

namespace salarm::alarms {

/// Parameters of the paper's default alarm workload (§5.1): alarms on
/// targets distributed uniformly over the map; a percentage are public,
/// the rest private and shared in ratio 2:1.
struct AlarmWorkloadConfig {
  std::size_t alarm_count = 10000;
  std::size_t subscriber_count = 10000;
  double public_fraction = 0.10;
  /// private : shared ratio among non-public alarms (paper: 2:1).
  double private_to_shared = 2.0;
  /// Alarm regions are squares with side drawn uniformly from this range
  /// (meters).
  double region_side_lo = 100.0;
  double region_side_hi = 500.0;
  /// Shared alarms authorize between these many subscribers (inclusive),
  /// owner included.
  std::size_t shared_subscribers_lo = 2;
  std::size_t shared_subscribers_hi = 5;
};

/// Holds all installed alarms and answers the server's spatial questions.
/// The R*-tree node-access counter doubles as the alarm-processing cost
/// meter for the server cost model.
///
/// Alarm ids need not be dense: a store may hold an arbitrary subset of a
/// global id space. The cluster tier (cluster/sharded_server.h) relies on
/// this to give every shard a slice of the global alarm set under the
/// original global ids, so trigger logs and spent state stay comparable
/// across shards.
class AlarmStore {
 public:
  explicit AlarmStore(std::size_t rtree_node_capacity = 16);

  /// Installs an alarm; its id must not already be installed. The region
  /// must have positive area. Subscriber lists are kept sorted.
  void install(SpatialAlarm alarm);

  /// Installs a whole workload at once (ids must be unique but may be any
  /// subset of the id space), bulk-loading the R*-tree with STR packing —
  /// the right way to stand up the paper's 10,000-alarm index at startup.
  /// Only valid on an empty store.
  void install_bulk(std::vector<SpatialAlarm> alarms);

  /// Uninstalls an alarm; returns false if absent. The remaining alarms
  /// keep their ids but may change slot order (swap-and-pop), so all()
  /// reflects exactly the installed set.
  bool uninstall(AlarmId id);

  /// Removes every alarm and all trigger state, leaving an empty store
  /// ready for install_bulk — the rewind path between churn runs.
  void clear();

  /// Moves an alarm's region (the paper's moving-target alarm classes:
  /// the target publishes a new position, the alarm region follows).
  /// Trigger state is preserved: subscribers for whom the alarm already
  /// fired stay spent. Requires the alarm to be installed and the new
  /// region to have positive area.
  void move_alarm(AlarmId id, const geo::Rect& new_region);

  std::size_t size() const { return alarms_.size(); }
  /// Node capacity of the R*-tree index; the cluster tier builds shard
  /// slices with the same capacity so per-query node-access counts match
  /// the source store's.
  std::size_t rtree_node_capacity() const { return rtree_node_capacity_; }
  const SpatialAlarm& alarm(AlarmId id) const;
  const std::vector<SpatialAlarm>& all() const { return alarms_; }

  /// True when an alarm with this id is currently installed.
  bool installed(AlarmId id) const { return slot_of(id) != kNoSlot; }

  /// True when the alarm applies to the subscriber (public, or subscriber
  /// on the list) and has not yet fired for them.
  bool relevant(const SpatialAlarm& alarm, SubscriberId s) const;

  /// True when the alarm applies to the subscriber regardless of spent
  /// state (used by workload statistics).
  static bool subscribed(const SpatialAlarm& alarm, SubscriberId s);

  /// All alarms relevant to s whose region (closed) intersects the window.
  /// Pointers remain valid until the next install/uninstall.
  std::vector<const SpatialAlarm*> relevant_in_window(const geo::Rect& window,
                                                      SubscriberId s) const;

  /// As relevant_in_window, but only the subscriber's private/shared
  /// alarms (public excluded). Used by the precomputed-public-bitmap path
  /// (paper §4.2).
  std::vector<const SpatialAlarm*> relevant_nonpublic_in_window(
      const geo::Rect& window, SubscriberId s) const;

  /// All public alarms intersecting the window, regardless of per-
  /// subscriber spent state (the subscriber-independent input to the
  /// precomputed public bitmap).
  std::vector<const SpatialAlarm*> public_in_window(
      const geo::Rect& window) const;

  /// Server-side alarm processing of one position update: fires every
  /// relevant alarm whose region contains p, marks the pairs spent, and
  /// returns the fired alarm ids (empty in the common case). A non-empty
  /// `filter` restricts evaluation to alarms it accepts — the buffered-
  /// report path (sim/server.h handle_buffered_update) uses it to evaluate
  /// a late report only against alarms already installed at its original
  /// tick.
  std::vector<AlarmId> process_position(
      SubscriberId s, geo::Point p, std::uint64_t tick,
      std::vector<TriggerEvent>* log,
      const std::function<bool(AlarmId)>& filter = {});

  /// Marks an (alarm, subscriber) pair spent without going through
  /// process_position; used by client-side evaluation strategies (OPT)
  /// when the client reports a trigger, and by the buffered-report
  /// graveyard path for alarms that have since been uninstalled — trigger
  /// history deliberately outlives removal (uninstall keeps spent state),
  /// so the id need not be installed.
  void mark_spent(AlarmId id, SubscriberId s);

  bool spent(AlarmId id, SubscriberId s) const;

  /// All (alarm, subscriber) pairs marked spent, sorted — the durable
  /// trigger history exported into shard checkpoints (failover tier,
  /// DESIGN.md §10).
  std::vector<std::pair<AlarmId, SubscriberId>> spent_pairs() const;

  /// Forgets all trigger state (the alarm set itself is kept); used to run
  /// several strategies against the identical workload.
  void reset_triggers();

  /// Distance from p to the nearest relevant alarm region for s
  /// (infinity when none); drives the safe-period baseline.
  double nearest_relevant_distance(geo::Point p, SubscriberId s) const;

  /// Cumulative R*-tree node accesses (alarm processing + NN); the server
  /// cost model reads and resets this.
  std::uint64_t index_node_accesses() const { return tree_.node_accesses(); }
  void reset_index_node_accesses() { tree_.reset_node_accesses(); }

 private:
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

  std::uint64_t spend_key(AlarmId a, SubscriberId s) const {
    return (static_cast<std::uint64_t>(a) << 32) | s;
  }

  std::size_t slot_of(AlarmId id) const {
    return id < slot_of_.size() ? slot_of_[id] : kNoSlot;
  }

  /// Validates the alarm, normalizes its subscriber list and records its
  /// slot; shared by install and install_bulk.
  void admit(SpatialAlarm& alarm);

  std::vector<SpatialAlarm> alarms_;     // slot order (install order)
  std::vector<std::size_t> slot_of_;     // AlarmId -> slot (kNoSlot = absent)
  std::size_t rtree_node_capacity_;
  index::RStarTree tree_;
  std::unordered_set<std::uint64_t> spent_;
};

/// Generates the paper's default workload. Targets are uniform over
/// `universe`; ids are dense [0, alarm_count).
std::vector<SpatialAlarm> generate_alarm_workload(
    const AlarmWorkloadConfig& config, const geo::Rect& universe, Rng& rng);

}  // namespace salarm::alarms
