// Spatial alarm model (paper §1).
//
// A spatial alarm is defined by three elements: an alarm target (a future
// location reference, here a rectangular spatial region), an owner (the
// publisher), and the list of subscribers. Alarms are categorized by
// publish-subscribe scope:
//
//  * private — installed and used exclusively by the publisher;
//  * shared  — installed by the publisher with a list of authorized
//              subscribers (the publisher typically among them);
//  * public  — subscribed to by all mobile users (the paper's
//              without-loss-of-generality assumption, adopted here).
//
// Alarms are one-shot per subscriber: a trigger fires when the subscriber
// enters the alarm's spatial region, after which the (alarm, subscriber)
// pair is spent and never constrains that subscriber's safe region again.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geometry/rect.h"

namespace salarm::alarms {

using AlarmId = std::uint32_t;
using SubscriberId = std::uint32_t;

enum class AlarmScope : std::uint8_t { kPrivate, kShared, kPublic };

struct SpatialAlarm {
  AlarmId id = 0;
  AlarmScope scope = AlarmScope::kPrivate;
  SubscriberId owner = 0;
  /// The alarm's spatial region: the alarm fires for a subscriber when the
  /// subscriber's position enters this region.
  geo::Rect region;
  /// Explicit subscribers (private: just the owner; shared: the authorized
  /// list). Empty for public alarms — public alarms apply to everyone.
  std::vector<SubscriberId> subscribers;
  /// The alert content delivered when the alarm fires ("alert me when ...",
  /// a topic digest, a hazard warning). Client-side evaluation (OPT) must
  /// receive it up front; server-side evaluation ships it only in trigger
  /// notices — the asymmetry behind Figure 6(b)'s bandwidth gap.
  std::string message;
};

/// A trigger event: subscriber s entered alarm a's region at tick t.
struct TriggerEvent {
  AlarmId alarm = 0;
  SubscriberId subscriber = 0;
  std::uint64_t tick = 0;

  friend bool operator==(const TriggerEvent& x, const TriggerEvent& y) {
    return x.alarm == y.alarm && x.subscriber == y.subscriber &&
           x.tick == y.tick;
  }
  friend bool operator<(const TriggerEvent& x, const TriggerEvent& y) {
    if (x.tick != y.tick) return x.tick < y.tick;
    if (x.subscriber != y.subscriber) return x.subscriber < y.subscriber;
    return x.alarm < y.alarm;
  }
};

}  // namespace salarm::alarms
