#include "strategies/bitmap_region_strategy.h"

#include "common/error.h"

namespace salarm::strategies {

BitmapRegionStrategy::BitmapRegionStrategy(sim::ServerApi& server,
                                           std::size_t subscriber_count,
                                           saferegion::PyramidConfig config,
                                           bool use_public_cache)
    : server_(server), config_(config), bitmaps_(subscriber_count) {
  if (use_public_cache) server_.enable_public_bitmap_cache(config);
}

void BitmapRegionStrategy::set_downstream_loss(double rate,
                                               std::uint64_t seed) {
  SALARM_REQUIRE(rate >= 0.0 && rate < 1.0, "loss rate must be in [0, 1)");
  downstream_loss_ = rate;
  loss_rng_.emplace(seed);
}

void BitmapRegionStrategy::refresh(alarms::SubscriberId s,
                                   geo::Point position) {
  auto bitmap = server_.compute_pyramid_region(s, position, config_);
  // Injected downstream loss: the client keeps its previous (still sound)
  // bitmap — or none — and will report again next tick.
  if (downstream_loss_ > 0.0 && loss_rng_->chance(downstream_loss_)) return;
  bitmaps_[s] = std::move(bitmap);
}

void BitmapRegionStrategy::initialize(alarms::SubscriberId s,
                                      const mobility::VehicleSample& sample) {
  (void)server_.handle_position_update(s, sample.pos, 0);
  refresh(s, sample.pos);
}

void BitmapRegionStrategy::on_tick(alarms::SubscriberId s,
                                   const mobility::VehicleSample& sample,
                                   std::uint64_t tick) {
  auto& bitmap = bitmaps_[s];
  auto& metrics = server_.metrics();

  // Invalidation pushes (dynamics tier): conservatively mark the new
  // alarm's region unsafe in the held bitmap before the descent below.
  for (const auto& push : server_.take_invalidations(s)) {
    ++metrics.client_check_ops;
    if (bitmap.has_value()) bitmap->mark_unsafe(push.region);
  }

  // Base-cell exit: report and fetch the new cell's bitmap. The cell
  // membership test is part of the client's per-tick containment work.
  ++metrics.client_checks;
  ++metrics.client_check_ops;
  if (!bitmap.has_value() || !bitmap->cell().contains(sample.pos)) {
    (void)server_.handle_position_update(s, sample.pos, tick);
    refresh(s, sample.pos);
    return;
  }

  // Pyramid descent; cost = levels visited.
  const auto containment = bitmap->locate(sample.pos);
  metrics.client_check_ops += static_cast<std::uint64_t>(containment.levels);
  if (containment.safe) return;

  // Outside the safe region but inside the base cell: report so the server
  // evaluates alarms. Only an actual trigger changes the safe region.
  const auto fired = server_.handle_position_update(s, sample.pos, tick);
  if (!fired.empty()) refresh(s, sample.pos);
}

}  // namespace salarm::strategies
