#include "strategies/bitmap_region_strategy.h"

#include "common/error.h"

namespace salarm::strategies {

BitmapRegionStrategy::BitmapRegionStrategy(net::ClientLink& link,
                                           std::size_t subscriber_count,
                                           saferegion::PyramidConfig config,
                                           bool use_public_cache)
    : link_(link), config_(config), bitmaps_(subscriber_count) {
  if (use_public_cache) link_.enable_public_bitmap_cache(config);
}

void BitmapRegionStrategy::refresh(alarms::SubscriberId s,
                                   geo::Point position) {
  auto bitmap = link_.request_pyramid_region(s, position, config_);
  // nullopt: the response was lost or the client is in an outage. The
  // previous (still sound) bitmap — or none — stays in place, and the
  // client reports again next tick.
  if (bitmap.has_value()) bitmaps_[s] = std::move(*bitmap);
}

void BitmapRegionStrategy::initialize(alarms::SubscriberId s,
                                      const mobility::VehicleSample& sample) {
  (void)link_.report(s, sample.pos, 0);
  refresh(s, sample.pos);
}

void BitmapRegionStrategy::on_tick(alarms::SubscriberId s,
                                   const mobility::VehicleSample& sample,
                                   std::uint64_t tick) {
  auto& bitmap = bitmaps_[s];
  auto& metrics = link_.metrics();

  // Invalidation pushes: an install shrink conservatively marks the new
  // alarm's region unsafe in the held bitmap before the descent below; a
  // revoke (carrier loss, net tier) voids the bitmap outright.
  for (const auto& push : link_.take_invalidations(s)) {
    ++metrics.client_check_ops;
    if (!bitmap.has_value()) continue;
    if (push.action == dynamics::InvalidationAction::kShrink) {
      bitmap->mark_unsafe(push.region);
    } else {
      bitmap.reset();
    }
  }

  // Base-cell exit: report and fetch the new cell's bitmap. The cell
  // membership test is part of the client's per-tick containment work.
  ++metrics.client_checks;
  ++metrics.client_check_ops;
  if (!bitmap.has_value() || !bitmap->cell().contains(sample.pos)) {
    (void)link_.report(s, sample.pos, tick);
    refresh(s, sample.pos);
    return;
  }

  // Pyramid descent; cost = levels visited.
  const auto containment = bitmap->locate(sample.pos);
  metrics.client_check_ops += static_cast<std::uint64_t>(containment.levels);
  if (containment.safe) return;

  // Outside the safe region but inside the base cell: report so the server
  // evaluates alarms. Only an actual trigger changes the safe region.
  const auto fired = link_.report(s, sample.pos, tick);
  if (!fired.empty()) refresh(s, sample.pos);
}

}  // namespace salarm::strategies
