// MWPSR — distributed rectangular safe-region processing (paper §3).
//
// The client monitors its position against a rectangular safe region with
// one containment test per tick (charged to the client energy model). When
// it exits the region it reports; the server evaluates the position against
// the alarm index (alarm processing) and ships a fresh maximum weighted
// perimeter rectangle (safe region computation + downstream bytes).
//
// The non-weighted variant of Figure 4 is the same strategy with
// MwpsrOptions::weighted = false.
//
// Fault tolerance comes from the link, not the strategy: a lost region
// response (request_rect_region -> nullopt) leaves the client with its
// previous — still sound — region, or none, in which case it reports every
// tick until a response gets through. bench/robustness_loss reproduces the
// old *_with_loss figure purely via net::ChannelConfig::downlink_loss.
#pragma once

#include <optional>
#include <vector>

#include "saferegion/motion_model.h"
#include "saferegion/mwpsr.h"
#include "strategies/strategy.h"

namespace salarm::strategies {

class RectRegionStrategy final : public ProcessingStrategy {
 public:
  /// `corner_baseline` selects the unsound Hu et al. [10]-style region
  /// computation instead of MWPSR — ablation only; it misses alarms by
  /// design (the paper's claim about [10]).
  RectRegionStrategy(net::ClientLink& link, std::size_t subscriber_count,
                     saferegion::MotionModel model,
                     saferegion::MwpsrOptions options = {},
                     bool corner_baseline = false);

  std::string_view name() const override {
    if (corner_baseline_) return "RECT[10]";
    return options_.weighted ? "MWPSR" : "RECT";
  }

  void initialize(alarms::SubscriberId s,
                  const mobility::VehicleSample& sample) override;
  void on_tick(alarms::SubscriberId s, const mobility::VehicleSample& sample,
               std::uint64_t tick) override;

 private:
  void report_and_refresh(alarms::SubscriberId s,
                          const mobility::VehicleSample& sample,
                          std::uint64_t tick);

  net::ClientLink& link_;
  saferegion::MotionModel model_;
  saferegion::MwpsrOptions options_;
  bool corner_baseline_;
  std::vector<std::optional<geo::Rect>> regions_;
};

}  // namespace salarm::strategies
