#include "strategies/safe_period.h"

#include <cmath>

#include "common/error.h"
#include <limits>

namespace salarm::strategies {

SafePeriodStrategy::SafePeriodStrategy(net::ClientLink& link,
                                       std::size_t subscriber_count,
                                       double max_speed_mps,
                                       double tick_seconds,
                                       double speed_assumption_factor)
    : link_(link),
      assumed_speed_mps_(max_speed_mps * speed_assumption_factor),
      tick_seconds_(tick_seconds),
      next_report_s_(subscriber_count, 0.0) {
  SALARM_REQUIRE(speed_assumption_factor > 0.0,
                 "speed assumption factor must be positive");
}

void SafePeriodStrategy::report(alarms::SubscriberId s, geo::Point position,
                                std::uint64_t tick) {
  (void)link_.report(s, position, tick);
  const auto period = link_.request_safe_period(s, position,
                                                assumed_speed_mps_,
                                                tick_seconds_);
  const double now = static_cast<double>(tick) * tick_seconds_;
  if (!period.has_value()) {
    // Grant lost in flight or client disconnected: no safe period held, so
    // report again next tick.
    next_report_s_[s] = now;
    return;
  }
  next_report_s_[s] = std::isinf(*period)
                          ? std::numeric_limits<double>::infinity()
                          : now + *period;
}

void SafePeriodStrategy::initialize(alarms::SubscriberId s,
                                    const mobility::VehicleSample& sample) {
  report(s, sample.pos, 0);
}

void SafePeriodStrategy::on_tick(alarms::SubscriberId s,
                                 const mobility::VehicleSample& sample,
                                 std::uint64_t tick) {
  const double now = static_cast<double>(tick) * tick_seconds_;
  // Invalidation pushes (dynamics tier) and carrier-loss revokes (net
  // tier): a revoke ends the safe period immediately, forcing a report
  // this very tick.
  for (const auto& push : link_.take_invalidations(s)) {
    (void)push;  // safe-period grants only ever receive revokes
    ++link_.metrics().client_check_ops;
    next_report_s_[s] = now;
  }
  if (now < next_report_s_[s]) return;  // still inside the safe period
  report(s, sample.pos, tick);
}

}  // namespace salarm::strategies
