#include "strategies/optimal.h"

#include <algorithm>

namespace salarm::strategies {

OptimalStrategy::OptimalStrategy(sim::ServerApi& server,
                                 std::size_t subscriber_count)
    : server_(server), clients_(subscriber_count) {}

void OptimalStrategy::fetch_cell(alarms::SubscriberId s,
                                 geo::Point position) {
  ClientState state;
  state.cell = server_.grid().cell_rect(server_.grid().cell_of(position));
  for (const alarms::SpatialAlarm* a : server_.push_alarms(s, position)) {
    state.alarms.emplace_back(a->id, a->region);
  }
  clients_[s] = std::move(state);
}

void OptimalStrategy::initialize(alarms::SubscriberId s,
                                 const mobility::VehicleSample& sample) {
  (void)server_.handle_position_update(s, sample.pos, 0);
  fetch_cell(s, sample.pos);
}

void OptimalStrategy::on_tick(alarms::SubscriberId s,
                              const mobility::VehicleSample& sample,
                              std::uint64_t tick) {
  auto& state = clients_[s];
  auto& metrics = server_.metrics();

  // Cell membership is part of the per-tick client work.
  ++metrics.client_checks;
  ++metrics.client_check_ops;
  if (!state.has_value() || !state->cell.contains(sample.pos)) {
    (void)server_.handle_position_update(s, sample.pos, tick);
    fetch_cell(s, sample.pos);
    return;
  }

  // Full client-side evaluation: one test per pushed alarm.
  metrics.client_check_ops += state->alarms.size();
  const bool hit = std::any_of(
      state->alarms.begin(), state->alarms.end(),
      [&](const auto& entry) {
        return entry.second.interior_contains(sample.pos);
      });
  if (!hit) return;

  // Spatial constraints met: report; the server fires and spends the
  // alarms, and the client prunes its local copies.
  const auto fired = server_.handle_position_update(s, sample.pos, tick);
  for (const alarms::AlarmId id : fired) {
    std::erase_if(state->alarms,
                  [id](const auto& entry) { return entry.first == id; });
  }
}

}  // namespace salarm::strategies
