#include "strategies/optimal.h"

#include <algorithm>

namespace salarm::strategies {

OptimalStrategy::OptimalStrategy(net::ClientLink& link,
                                 std::size_t subscriber_count)
    : link_(link), clients_(subscriber_count) {}

void OptimalStrategy::fetch_cell(alarms::SubscriberId s,
                                 geo::Point position) {
  auto pushed = link_.request_alarms(s, position);
  // nullopt: the alarm push was lost or the client is in an outage. Holding
  // no list means report-every-tick until a fetch succeeds, during which
  // the server evaluates reports itself — no trigger can be missed.
  if (!pushed.has_value()) {
    clients_[s].reset();
    return;
  }
  ClientState state;
  state.cell = link_.grid().cell_rect(link_.grid().cell_of(position));
  for (const alarms::SpatialAlarm* a : *pushed) {
    state.alarms.emplace_back(a->id, a->region);
  }
  clients_[s] = std::move(state);
}

void OptimalStrategy::initialize(alarms::SubscriberId s,
                                 const mobility::VehicleSample& sample) {
  (void)link_.report(s, sample.pos, 0);
  fetch_cell(s, sample.pos);
}

void OptimalStrategy::on_tick(alarms::SubscriberId s,
                              const mobility::VehicleSample& sample,
                              std::uint64_t tick) {
  auto& state = clients_[s];
  auto& metrics = link_.metrics();

  // Invalidation pushes. An install (dynamics tier) appends the new alarm
  // to the local list before the evaluation below, so an alarm installed
  // on top of the client fires this very tick; a revoke (carrier loss, net
  // tier) carries no alarm and voids the whole list instead.
  for (const auto& push : link_.take_invalidations(s)) {
    ++metrics.client_check_ops;
    if (!state.has_value()) continue;
    if (push.action == dynamics::InvalidationAction::kAlarmAdd) {
      state->alarms.emplace_back(push.alarm, push.region);
    } else {
      state.reset();
    }
  }

  // Cell membership is part of the per-tick client work.
  ++metrics.client_checks;
  ++metrics.client_check_ops;
  if (!state.has_value() || !state->cell.contains(sample.pos)) {
    (void)link_.report(s, sample.pos, tick);
    fetch_cell(s, sample.pos);
    return;
  }

  // Full client-side evaluation: one test per pushed alarm.
  metrics.client_check_ops += state->alarms.size();
  std::vector<alarms::AlarmId> hits;
  for (const auto& [id, region] : state->alarms) {
    if (region.interior_contains(sample.pos)) hits.push_back(id);
  }
  if (hits.empty()) return;

  // Spatial constraints met: report; the server fires and spends the
  // alarms. Every hit is pruned locally, fired or not — a hit the server
  // did not fire means the alarm was removed (or already spent) server-
  // side, and keeping the stale copy would re-report every tick. On static
  // runs hits and fired coincide exactly.
  (void)link_.report(s, sample.pos, tick);
  std::erase_if(state->alarms, [&](const auto& entry) {
    return std::find(hits.begin(), hits.end(), entry.first) != hits.end();
  });
}

}  // namespace salarm::strategies
