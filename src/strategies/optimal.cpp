#include "strategies/optimal.h"

#include <algorithm>

namespace salarm::strategies {

OptimalStrategy::OptimalStrategy(sim::ServerApi& server,
                                 std::size_t subscriber_count)
    : server_(server), clients_(subscriber_count) {}

void OptimalStrategy::fetch_cell(alarms::SubscriberId s,
                                 geo::Point position) {
  ClientState state;
  state.cell = server_.grid().cell_rect(server_.grid().cell_of(position));
  for (const alarms::SpatialAlarm* a : server_.push_alarms(s, position)) {
    state.alarms.emplace_back(a->id, a->region);
  }
  clients_[s] = std::move(state);
}

void OptimalStrategy::initialize(alarms::SubscriberId s,
                                 const mobility::VehicleSample& sample) {
  (void)server_.handle_position_update(s, sample.pos, 0);
  fetch_cell(s, sample.pos);
}

void OptimalStrategy::on_tick(alarms::SubscriberId s,
                              const mobility::VehicleSample& sample,
                              std::uint64_t tick) {
  auto& state = clients_[s];
  auto& metrics = server_.metrics();

  // Invalidation pushes (dynamics tier): append the new alarm to the local
  // list before the evaluation below, so an alarm installed on top of the
  // client fires this very tick.
  for (const auto& push : server_.take_invalidations(s)) {
    ++metrics.client_check_ops;
    if (state.has_value()) state->alarms.emplace_back(push.alarm, push.region);
  }

  // Cell membership is part of the per-tick client work.
  ++metrics.client_checks;
  ++metrics.client_check_ops;
  if (!state.has_value() || !state->cell.contains(sample.pos)) {
    (void)server_.handle_position_update(s, sample.pos, tick);
    fetch_cell(s, sample.pos);
    return;
  }

  // Full client-side evaluation: one test per pushed alarm.
  metrics.client_check_ops += state->alarms.size();
  std::vector<alarms::AlarmId> hits;
  for (const auto& [id, region] : state->alarms) {
    if (region.interior_contains(sample.pos)) hits.push_back(id);
  }
  if (hits.empty()) return;

  // Spatial constraints met: report; the server fires and spends the
  // alarms. Every hit is pruned locally, fired or not — a hit the server
  // did not fire means the alarm was removed (or already spent) server-
  // side, and keeping the stale copy would re-report every tick. On static
  // runs hits and fired coincide exactly.
  (void)server_.handle_position_update(s, sample.pos, tick);
  std::erase_if(state->alarms, [&](const auto& entry) {
    return std::find(hits.begin(), hits.end(), entry.first) != hits.end();
  });
}

}  // namespace salarm::strategies
