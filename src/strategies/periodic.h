// PRD — periodic evaluation baseline (paper §1, §5).
//
// The client transmits every position sample; the server evaluates each
// against the alarm index. Trivially accurate and trivially unscalable:
// with the paper's trace this is the full 60M-message firehose, which is
// why Figure 6(a) leaves it off the chart. PRD holds no grant, so it never
// polls invalidations; under channel outages its reports are buffered by
// the link and flushed at reconnect, which preserves exactness unchanged.
#pragma once

#include "sim/metrics.h"
#include "strategies/strategy.h"

namespace salarm::strategies {

class PeriodicStrategy final : public ProcessingStrategy {
 public:
  explicit PeriodicStrategy(net::ClientLink& link) : link_(link) {}

  std::string_view name() const override { return "PRD"; }

  void initialize(alarms::SubscriberId s,
                  const mobility::VehicleSample& sample) override {
    (void)link_.report(s, sample.pos, 0);
  }

  void on_tick(alarms::SubscriberId s, const mobility::VehicleSample& sample,
               std::uint64_t tick) override {
    (void)link_.report(s, sample.pos, tick);
  }

 private:
  net::ClientLink& link_;
};

}  // namespace salarm::strategies
