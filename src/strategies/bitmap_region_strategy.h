// GBSR / PBSR — distributed bitmap safe-region processing (paper §4).
//
// The client holds the pyramid bitmap of its current base grid cell and
// performs one pyramid descent per tick (cost = levels visited). Protocol,
// per paper §4.2:
//
//  * Leaving the base cell — report; the server builds and ships the new
//    cell's bitmap (the only *scheduled* recomputation point).
//  * Inside the base cell but on an unsafe (0) cell — report the position
//    so the server can evaluate alarms; no recomputation and no downstream
//    traffic unless an alarm actually fires.
//  * An alarm fires while the subscriber stays in the base cell — the
//    alarm is now spent for this subscriber, so the server refreshes the
//    bitmap "by considering the triggered alarm to be a part of the safe
//    region" and ships the (now more permissive) bitmap.
//
// GBSR is this strategy with PyramidConfig::height = 1. Fault tolerance
// (DESIGN.md §9): a lost bitmap response leaves the previous — still sound
// — bitmap in place, or none, in which case the client reports every tick;
// a revoke push (carrier loss) drops the bitmap outright.
#pragma once

#include <optional>
#include <vector>

#include "saferegion/pyramid.h"
#include "strategies/strategy.h"

namespace salarm::strategies {

class BitmapRegionStrategy final : public ProcessingStrategy {
 public:
  /// `use_public_cache` enables the server's precomputed public-alarm
  /// bitmap path (paper §4.2).
  BitmapRegionStrategy(net::ClientLink& link, std::size_t subscriber_count,
                       saferegion::PyramidConfig config,
                       bool use_public_cache = false);

  std::string_view name() const override {
    return config_.height == 1 ? "GBSR" : "PBSR";
  }

  void initialize(alarms::SubscriberId s,
                  const mobility::VehicleSample& sample) override;
  void on_tick(alarms::SubscriberId s, const mobility::VehicleSample& sample,
               std::uint64_t tick) override;

 private:
  void refresh(alarms::SubscriberId s, geo::Point position);

  net::ClientLink& link_;
  saferegion::PyramidConfig config_;
  std::vector<std::optional<saferegion::PyramidBitmap>> bitmaps_;
};

}  // namespace salarm::strategies
