// GBSR / PBSR — distributed bitmap safe-region processing (paper §4).
//
// The client holds the pyramid bitmap of its current base grid cell and
// performs one pyramid descent per tick (cost = levels visited). Protocol,
// per paper §4.2:
//
//  * Leaving the base cell — report; the server builds and ships the new
//    cell's bitmap (the only *scheduled* recomputation point).
//  * Inside the base cell but on an unsafe (0) cell — report the position
//    so the server can evaluate alarms; no recomputation and no downstream
//    traffic unless an alarm actually fires.
//  * An alarm fires while the subscriber stays in the base cell — the
//    alarm is now spent for this subscriber, so the server refreshes the
//    bitmap "by considering the triggered alarm to be a part of the safe
//    region" and ships the (now more permissive) bitmap.
//
// GBSR is this strategy with PyramidConfig::height = 1.
#pragma once

#include <optional>
#include <vector>

#include "common/rng.h"
#include "saferegion/pyramid.h"
#include "strategies/strategy.h"

namespace salarm::strategies {

class BitmapRegionStrategy final : public ProcessingStrategy {
 public:
  /// `use_public_cache` enables the server's precomputed public-alarm
  /// bitmap path (paper §4.2).
  BitmapRegionStrategy(sim::ServerApi& server, std::size_t subscriber_count,
                       saferegion::PyramidConfig config,
                       bool use_public_cache = false);

  std::string_view name() const override {
    return config_.height == 1 ? "GBSR" : "PBSR";
  }

  void initialize(alarms::SubscriberId s,
                  const mobility::VehicleSample& sample) override;
  void on_tick(alarms::SubscriberId s, const mobility::VehicleSample& sample,
               std::uint64_t tick) override;

  /// Failure injection: drop this fraction of downstream bitmap messages
  /// (see RectRegionStrategy::set_downstream_loss).
  void set_downstream_loss(double rate, std::uint64_t seed);

 private:
  void refresh(alarms::SubscriberId s, geo::Point position);

  sim::ServerApi& server_;
  saferegion::PyramidConfig config_;
  std::vector<std::optional<saferegion::PyramidBitmap>> bitmaps_;
  double downstream_loss_ = 0.0;
  std::optional<Rng> loss_rng_;
};

}  // namespace salarm::strategies
