// OPT — the resource-oblivious upper bound (paper §4 intro, §5).
//
// The server pushes every relevant alarm intersecting the subscriber's
// current grid cell to the client, which evaluates all of them locally on
// every tick and contacts the server only when an alarm actually fires or
// when it crosses into a new cell (to fetch that cell's alarms). Fewest
// upstream messages of any approach, at maximal downstream bandwidth and
// client energy — the paper uses it to bound what distribution can achieve
// when client resources are unconstrained.
#pragma once

#include <optional>
#include <vector>

#include "strategies/strategy.h"

namespace salarm::strategies {

class OptimalStrategy final : public ProcessingStrategy {
 public:
  OptimalStrategy(net::ClientLink& link, std::size_t subscriber_count);

  std::string_view name() const override { return "OPT"; }

  void initialize(alarms::SubscriberId s,
                  const mobility::VehicleSample& sample) override;
  void on_tick(alarms::SubscriberId s, const mobility::VehicleSample& sample,
               std::uint64_t tick) override;

 private:
  struct ClientState {
    geo::Rect cell{geo::Point{}, geo::Point{}};
    /// Local copies of the pushed alarms (id + region), pruned as they
    /// fire.
    std::vector<std::pair<alarms::AlarmId, geo::Rect>> alarms;
  };

  void fetch_cell(alarms::SubscriberId s, geo::Point position);

  net::ClientLink& link_;
  /// nullopt = no alarm list held (initial state, lost push, or revoked by
  /// carrier loss): the client reports every tick and retries the fetch —
  /// server-side evaluation covers it meanwhile, so accuracy holds.
  std::vector<std::optional<ClientState>> clients_;
};

}  // namespace salarm::strategies
