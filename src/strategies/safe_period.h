// SP — safe-period baseline ([3], paper §1, §5).
//
// After each report the server grants the client a safe period
// t = dist(position, nearest relevant alarm region) / v_max: under the
// pessimistic worst-case assumption (straight-line travel at the system's
// maximum speed) the client cannot reach any alarm region before the
// period expires, so it stays silent until then. Because reports and the
// ground-truth oracle both operate at trace-tick granularity, the first
// tick at which a subscriber can possibly be inside an alarm region is the
// report tick itself — SP is tick-exact, at the cost of 2-3x the messages
// of the safe-region approaches (Figure 6(a)).
#pragma once

#include <vector>

#include "strategies/strategy.h"

namespace salarm::strategies {

class SafePeriodStrategy final : public ProcessingStrategy {
 public:
  /// `max_speed_mps` must be a hard bound on any subscriber's speed
  /// (see TraceConfig::max_speed_bound) for the approach to be accurate.
  /// `speed_assumption_factor` scales the speed the server *assumes* when
  /// granting periods: 1.0 is the sound pessimistic bound; values < 1.0
  /// model the optimistic motion estimation the paper warns about ("safe
  /// period computation heavily relies on future motion estimation") —
  /// longer periods, fewer messages, and alarm misses once a subscriber
  /// out-runs the estimate. Ablation only.
  SafePeriodStrategy(net::ClientLink& link, std::size_t subscriber_count,
                     double max_speed_mps, double tick_seconds,
                     double speed_assumption_factor = 1.0);

  std::string_view name() const override { return "SP"; }

  void initialize(alarms::SubscriberId s,
                  const mobility::VehicleSample& sample) override;
  void on_tick(alarms::SubscriberId s, const mobility::VehicleSample& sample,
               std::uint64_t tick) override;

 private:
  void report(alarms::SubscriberId s, geo::Point position,
              std::uint64_t tick);

  net::ClientLink& link_;
  double assumed_speed_mps_;
  double tick_seconds_;
  /// Next time (seconds) each subscriber must report; +inf when no
  /// relevant alarm remains. A lost period grant (net tier) leaves it at
  /// `now`, so the grantless client reports every tick — always sound.
  std::vector<double> next_report_s_;
};

}  // namespace salarm::strategies
