// Processing-strategy interface.
//
// A strategy models the client side of the distributed protocol for one
// run: the monitoring logic executed on every trace tick (whose work is
// charged to the client energy counters) and the decision of when to
// contact the server (whose work the Server charges to the server
// counters). All server contact goes through a net::ClientLink — the
// reliable endpoint over the (possibly faulty) channel — so every
// strategy transparently survives loss, reordering, duplication and
// outages (DESIGN.md §9): a request_* returning nullopt just means "no
// grant", and a grantless client reports every tick, which is always
// sound. The simulation engine instantiates one strategy per run and
// calls on_tick for every subscriber on every tick.
#pragma once

#include <cstdint>
#include <string_view>

#include "alarms/spatial_alarm.h"
#include "mobility/trace.h"
#include "net/link.h"

namespace salarm::strategies {

class ProcessingStrategy {
 public:
  virtual ~ProcessingStrategy() = default;

  virtual std::string_view name() const = 0;

  /// Called once per subscriber before the first tick, with the initial
  /// position sample (tick 0). Strategies typically perform their initial
  /// server contact here.
  virtual void initialize(alarms::SubscriberId s,
                          const mobility::VehicleSample& sample) = 0;

  /// Called for every subscriber on every tick >= 1 with the fresh sample.
  virtual void on_tick(alarms::SubscriberId s,
                       const mobility::VehicleSample& sample,
                       std::uint64_t tick) = 0;
};

}  // namespace salarm::strategies
