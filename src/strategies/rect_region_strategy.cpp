#include "strategies/rect_region_strategy.h"

#include "common/error.h"

namespace salarm::strategies {

RectRegionStrategy::RectRegionStrategy(net::ClientLink& link,
                                       std::size_t subscriber_count,
                                       saferegion::MotionModel model,
                                       saferegion::MwpsrOptions options,
                                       bool corner_baseline)
    : link_(link), model_(model), options_(options),
      corner_baseline_(corner_baseline), regions_(subscriber_count) {}

void RectRegionStrategy::report_and_refresh(
    alarms::SubscriberId s, const mobility::VehicleSample& sample,
    std::uint64_t tick) {
  (void)link_.report(s, sample.pos, tick);
  const auto region =
      corner_baseline_
          ? link_.request_corner_baseline_region(s, sample.pos,
                                                 sample.heading, model_)
          : link_.request_rect_region(s, sample.pos, sample.heading, model_,
                                      options_);
  // nullopt: the response was lost or the client is in an outage. The
  // previous region (if any) is still sound; without one the client
  // reports again next tick.
  if (region.has_value()) regions_[s] = region->rect;
}

void RectRegionStrategy::initialize(alarms::SubscriberId s,
                                    const mobility::VehicleSample& sample) {
  report_and_refresh(s, sample, 0);
}

void RectRegionStrategy::on_tick(alarms::SubscriberId s,
                                 const mobility::VehicleSample& sample,
                                 std::uint64_t tick) {
  auto& region = regions_[s];
  // Invalidation pushes (dynamics tier) and carrier-loss revokes (net
  // tier): rect grants only ever receive revokes — drop the region before
  // the containment decision below, forcing a report this very tick.
  for (const auto& push : link_.take_invalidations(s)) {
    (void)push;
    ++link_.metrics().client_check_ops;
    region.reset();
  }
  // One rectangle containment test per tick. Closed containment: the
  // region may legally share boundary with alarm regions (triggers are
  // open-interior) and with the grid cell, so a subscriber riding a cell
  // or alarm edge is still safe.
  auto& metrics = link_.metrics();
  ++metrics.client_checks;
  ++metrics.client_check_ops;
  if (region.has_value() && region->contains(sample.pos)) return;
  report_and_refresh(s, sample, tick);
}

}  // namespace salarm::strategies
