#include "strategies/rect_region_strategy.h"

#include "common/error.h"

namespace salarm::strategies {

RectRegionStrategy::RectRegionStrategy(sim::ServerApi& server,
                                       std::size_t subscriber_count,
                                       saferegion::MotionModel model,
                                       saferegion::MwpsrOptions options,
                                       bool corner_baseline)
    : server_(server), model_(model), options_(options),
      corner_baseline_(corner_baseline), regions_(subscriber_count) {}

void RectRegionStrategy::set_downstream_loss(double rate,
                                             std::uint64_t seed) {
  SALARM_REQUIRE(rate >= 0.0 && rate < 1.0, "loss rate must be in [0, 1)");
  downstream_loss_ = rate;
  loss_rng_.emplace(seed);
}

void RectRegionStrategy::report_and_refresh(
    alarms::SubscriberId s, const mobility::VehicleSample& sample,
    std::uint64_t tick) {
  (void)server_.handle_position_update(s, sample.pos, tick);
  const auto region =
      corner_baseline_
          ? server_.compute_corner_baseline_region(s, sample.pos,
                                                   sample.heading, model_)
          : server_.compute_rect_region(s, sample.pos, sample.heading,
                                        model_, options_);
  // Injected downstream loss: the response never reaches the client, which
  // keeps its previous (still sound) region and will simply report again.
  if (downstream_loss_ > 0.0 && loss_rng_->chance(downstream_loss_)) return;
  regions_[s] = region.rect;
}

void RectRegionStrategy::initialize(alarms::SubscriberId s,
                                    const mobility::VehicleSample& sample) {
  report_and_refresh(s, sample, 0);
}

void RectRegionStrategy::on_tick(alarms::SubscriberId s,
                                 const mobility::VehicleSample& sample,
                                 std::uint64_t tick) {
  auto& region = regions_[s];
  // Invalidation pushes (dynamics tier): a revoke drops the region before
  // the containment decision below, forcing a report this very tick.
  for (const auto& push : server_.take_invalidations(s)) {
    (void)push;  // rect grants only ever receive revokes
    ++server_.metrics().client_check_ops;
    region.reset();
  }
  // One rectangle containment test per tick. Closed containment: the
  // region may legally share boundary with alarm regions (triggers are
  // open-interior) and with the grid cell, so a subscriber riding a cell
  // or alarm edge is still safe.
  auto& metrics = server_.metrics();
  ++metrics.client_checks;
  ++metrics.client_check_ops;
  if (region.has_value() && region->contains(sample.pos)) return;
  report_and_refresh(s, sample, tick);
}

}  // namespace salarm::strategies
