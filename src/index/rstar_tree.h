// R*-tree spatial index (Beckmann, Kriegel, Schneider, Seeger, SIGMOD 1990).
//
// The paper indexes installed spatial alarms in an R*-tree [9] and evaluates
// every client position update against it; the safe-period baseline
// additionally needs nearest-neighbour distances. This is a from-scratch
// implementation with the full R* heuristics:
//
//  * ChooseSubtree — minimum overlap enlargement at the leaf level,
//    minimum area enlargement above (ties broken by area).
//  * Forced reinsertion — on first overflow per level per insertion, the
//    30% of entries farthest from the node centre are reinserted.
//  * R* split — axis chosen by minimum margin sum, distribution by minimum
//    overlap (ties by minimum area).
//
// Every node visit increments an accesses counter; the simulator's server
// cost model is built on these counts, so they are part of the public API.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "geometry/point.h"
#include "geometry/rect.h"

namespace salarm::index {

/// An indexed item: a rectangle plus an opaque identifier.
struct Entry {
  geo::Rect rect;
  std::uint64_t id = 0;
};

/// Result of a nearest-neighbour query.
struct Neighbor {
  Entry entry;
  double distance = 0.0;  ///< Euclidean distance from query point to rect.
};

/// R*-tree over rectangle entries.
class RStarTree {
 public:
  /// Constructs a tree with the given node capacity (max entries per node,
  /// >= 4). Minimum fill is 40% of capacity per the R* paper.
  explicit RStarTree(std::size_t node_capacity = 16);
  ~RStarTree();

  RStarTree(RStarTree&&) noexcept;
  RStarTree& operator=(RStarTree&&) noexcept;
  RStarTree(const RStarTree&) = delete;
  RStarTree& operator=(const RStarTree&) = delete;

  /// Inserts an entry. Duplicate ids are allowed (the tree is a multiset);
  /// erase removes one matching (id, rect) pair.
  void insert(const Entry& entry);

  /// Builds a tree from a batch of entries with Sort-Tile-Recursive
  /// packing (Leutenegger et al.): sort by x-center into vertical slabs,
  /// sort each slab by y-center, cut into nodes, recurse on the node MBRs.
  /// Entry counts per node are balanced so every node meets the minimum
  /// fill; the result satisfies check_invariants() and supports all
  /// subsequent inserts/erases. Much faster than repeated insert() at
  /// comparable query quality (see bench/micro_rtree).
  static RStarTree bulk_load(std::vector<Entry> entries,
                             std::size_t node_capacity = 16);

  /// Removes one entry matching both id and rect exactly. Returns false if
  /// no such entry exists.
  bool erase(const Entry& entry);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t height() const;

  /// All entries whose rect (closed) intersects the query window.
  std::vector<Entry> search(const geo::Rect& window) const;

  /// All entries whose rect (closed) contains the point.
  std::vector<Entry> search(geo::Point p) const;

  /// Visits entries intersecting the window; the visitor returns false to
  /// stop early. Avoids allocation on the hot server path.
  void visit(const geo::Rect& window,
             const std::function<bool(const Entry&)>& visitor) const;

  /// The k nearest entries to p by rectangle distance, closest first
  /// (best-first search over the tree). Fewer than k when the tree is
  /// smaller. Optionally filtered: entries rejected by `accept` are skipped
  /// but still counted as node accesses, mirroring a server that must
  /// examine an entry to test relevance.
  std::vector<Neighbor> nearest(
      geo::Point p, std::size_t k,
      const std::function<bool(const Entry&)>& accept = nullptr) const;

  /// Distance from p to the nearest (accepted) entry; infinity if none.
  double nearest_distance(
      geo::Point p,
      const std::function<bool(const Entry&)>& accept = nullptr) const;

  /// Number of nodes read since the last reset (search + insert + erase
  /// paths). Mutable statistics, not part of logical state.
  std::uint64_t node_accesses() const { return node_accesses_; }
  void reset_node_accesses() { node_accesses_ = 0; }

  /// Verifies structural invariants (MBR correctness, fill factors, uniform
  /// leaf depth). Throws InvariantError on violation. Test hook.
  void check_invariants() const;

 private:
  struct Node;

  void insert_entry(const Entry& entry, std::size_t target_level,
                    std::vector<bool>& reinserted);
  Node* choose_subtree(const Entry& entry, std::size_t target_level);
  void overflow_treatment(Node* node, std::vector<bool>& reinserted);
  void reinsert(Node* node, std::vector<bool>& reinserted);
  void split(Node* node);
  void adjust_upward(Node* node);
  void recompute_upward(Node* node);
  Node* find_leaf(Node* node, const Entry& entry) const;
  void condense(Node* leaf);

  std::unique_ptr<Node> root_;
  std::size_t capacity_;
  std::size_t min_fill_;
  std::size_t size_ = 0;
  mutable std::uint64_t node_accesses_ = 0;
};

}  // namespace salarm::index
