#include "index/rstar_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "common/error.h"

namespace salarm::index {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Fraction of a node reinserted on first overflow (R* paper: p = 30%).
constexpr double kReinsertFraction = 0.3;

double enlargement(const geo::Rect& mbr, const geo::Rect& add) {
  return mbr.united(add).area() - mbr.area();
}

}  // namespace

struct RStarTree::Node {
  explicit Node(std::size_t lvl) : level(lvl) {}

  bool leaf() const { return level == 0; }
  std::size_t count() const {
    return leaf() ? entries.size() : children.size();
  }

  geo::Rect compute_mbr() const {
    SALARM_ASSERT(count() > 0, "mbr of empty node");
    geo::Rect box = leaf() ? entries.front().rect : children.front()->mbr;
    if (leaf()) {
      for (const Entry& e : entries) box = box.united(e.rect);
    } else {
      for (const auto& c : children) box = box.united(c->mbr);
    }
    return box;
  }

  std::size_t level;  ///< 0 for leaves, parent level = child level + 1.
  geo::Rect mbr;
  Node* parent = nullptr;
  std::vector<Entry> entries;                   ///< leaf payload
  std::vector<std::unique_ptr<Node>> children;  ///< internal payload
};

RStarTree::RStarTree(std::size_t node_capacity)
    : root_(std::make_unique<Node>(0)), capacity_(node_capacity),
      min_fill_(std::max<std::size_t>(2, node_capacity * 2 / 5)) {
  SALARM_REQUIRE(node_capacity >= 4, "node capacity must be at least 4");
}

RStarTree::~RStarTree() = default;
RStarTree::RStarTree(RStarTree&&) noexcept = default;
RStarTree& RStarTree::operator=(RStarTree&&) noexcept = default;

std::size_t RStarTree::height() const { return root_->level + 1; }

// ---------------------------------------------------------------------------
// Insertion
// ---------------------------------------------------------------------------

void RStarTree::insert(const Entry& entry) {
  std::vector<bool> reinserted(root_->level + 2, false);
  insert_entry(entry, 0, reinserted);
  ++size_;
}

void RStarTree::insert_entry(const Entry& entry, std::size_t target_level,
                             std::vector<bool>& reinserted) {
  Node* node = choose_subtree(entry, target_level);
  SALARM_ASSERT(node->leaf(), "entry insertion must land in a leaf");
  node->entries.push_back(entry);
  node->mbr = node->count() == 1 ? entry.rect : node->mbr.united(entry.rect);
  adjust_upward(node);
  if (node->count() > capacity_) overflow_treatment(node, reinserted);
}

RStarTree::Node* RStarTree::choose_subtree(const Entry& entry,
                                           std::size_t target_level) {
  Node* node = root_.get();
  ++node_accesses_;
  while (node->level > target_level) {
    const bool children_are_leaves = node->level == 1;
    Node* best = nullptr;
    double best_primary = kInf;   // overlap (leaf level) / area enlargement
    double best_secondary = kInf; // area enlargement / area
    double best_area = kInf;
    for (const auto& child : node->children) {
      const double area_enl = enlargement(child->mbr, entry.rect);
      const double area = child->mbr.area();
      double primary;
      double secondary;
      if (children_are_leaves) {
        // Minimum overlap enlargement among siblings.
        const geo::Rect grown = child->mbr.united(entry.rect);
        double overlap_before = 0.0;
        double overlap_after = 0.0;
        for (const auto& other : node->children) {
          if (other.get() == child.get()) continue;
          overlap_before += geo::overlap_area(child->mbr, other->mbr);
          overlap_after += geo::overlap_area(grown, other->mbr);
        }
        primary = overlap_after - overlap_before;
        secondary = area_enl;
      } else {
        primary = area_enl;
        secondary = area;
      }
      if (primary < best_primary ||
          (primary == best_primary && secondary < best_secondary) ||
          (primary == best_primary && secondary == best_secondary &&
           area < best_area)) {
        best = child.get();
        best_primary = primary;
        best_secondary = secondary;
        best_area = area;
      }
    }
    SALARM_ASSERT(best != nullptr, "internal node without children");
    node = best;
    ++node_accesses_;
  }
  return node;
}

void RStarTree::adjust_upward(Node* node) {
  for (Node* p = node->parent; p != nullptr; p = p->parent) {
    p->mbr = p->mbr.united(node->mbr);
    node = p;
  }
}

void RStarTree::recompute_upward(Node* node) {
  for (Node* p = node->parent; p != nullptr; p = p->parent) {
    p->mbr = p->compute_mbr();
  }
}

void RStarTree::overflow_treatment(Node* node,
                                   std::vector<bool>& reinserted) {
  if (node->level >= reinserted.size()) reinserted.resize(node->level + 1);
  if (node != root_.get() && !reinserted[node->level]) {
    reinserted[node->level] = true;
    reinsert(node, reinserted);
  } else {
    split(node);
  }
}

void RStarTree::reinsert(Node* node, std::vector<bool>& reinserted) {
  const geo::Point center = node->mbr.center();
  const std::size_t keep = node->count() -
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   std::floor(kReinsertFraction *
                                              static_cast<double>(capacity_))));
  if (node->leaf()) {
    std::stable_sort(node->entries.begin(), node->entries.end(),
                     [&](const Entry& a, const Entry& b) {
                       return geo::squared_distance(a.rect.center(), center) <
                              geo::squared_distance(b.rect.center(), center);
                     });
    std::vector<Entry> orphans(node->entries.begin() +
                                   static_cast<std::ptrdiff_t>(keep),
                               node->entries.end());
    node->entries.resize(keep);
    node->mbr = node->compute_mbr();
    recompute_upward(node);
    for (const Entry& e : orphans) insert_entry(e, 0, reinserted);
  } else {
    std::stable_sort(node->children.begin(), node->children.end(),
                     [&](const auto& a, const auto& b) {
                       return geo::squared_distance(a->mbr.center(), center) <
                              geo::squared_distance(b->mbr.center(), center);
                     });
    std::vector<std::unique_ptr<Node>> orphans;
    for (std::size_t i = keep; i < node->children.size(); ++i) {
      orphans.push_back(std::move(node->children[i]));
    }
    node->children.resize(keep);
    node->mbr = node->compute_mbr();
    recompute_upward(node);
    for (auto& orphan : orphans) {
      // Re-attach the whole subtree at its original level, descending by
      // minimum area enlargement.
      Node* host = root_.get();
      while (host->level > orphan->level + 1) {
        Node* best = nullptr;
        double best_enl = kInf;
        double best_area = kInf;
        for (const auto& child : host->children) {
          const double enl = enlargement(child->mbr, orphan->mbr);
          const double area = child->mbr.area();
          if (enl < best_enl || (enl == best_enl && area < best_area)) {
            best = child.get();
            best_enl = enl;
            best_area = area;
          }
        }
        host = best;
        ++node_accesses_;
      }
      orphan->parent = host;
      host->children.push_back(std::move(orphan));
      host->mbr = host->compute_mbr();
      adjust_upward(host);
      if (host->count() > capacity_) overflow_treatment(host, reinserted);
    }
  }
}

namespace {

/// One candidate split distribution over a sorted sequence of rectangles.
struct SplitChoice {
  std::size_t axis = 0;       // 0 = x, 1 = y
  bool by_upper = false;      // sort key: lower or upper edge
  std::size_t split_at = 0;   // first group size
};

template <typename GetRect, typename Item>
geo::Rect mbr_of(const std::vector<Item>& items, std::size_t from,
                 std::size_t to, const GetRect& rect_of) {
  geo::Rect box = rect_of(items[from]);
  for (std::size_t i = from + 1; i < to; ++i) {
    box = box.united(rect_of(items[i]));
  }
  return box;
}

/// Implements the R* ChooseSplitAxis / ChooseSplitIndex pair over any item
/// type with an extractable rectangle. Sorts `items` in place according to
/// the winning axis/key and returns the winning first-group size.
template <typename Item, typename GetRect>
std::size_t rstar_split_position(std::vector<Item>& items, std::size_t min_fill,
                                 const GetRect& rect_of) {
  const std::size_t n = items.size();
  const std::size_t distributions = n - 2 * min_fill + 1;
  SALARM_ASSERT(n >= 2 * min_fill, "split on underfull node");

  double best_margin = kInf;
  SplitChoice best_axis_choice;

  for (std::size_t axis = 0; axis < 2; ++axis) {
    for (const bool by_upper : {false, true}) {
      std::stable_sort(items.begin(), items.end(),
                       [&](const Item& a, const Item& b) {
                         const geo::Rect& ra = rect_of(a);
                         const geo::Rect& rb = rect_of(b);
                         const double ka = axis == 0
                                               ? (by_upper ? ra.hi().x : ra.lo().x)
                                               : (by_upper ? ra.hi().y : ra.lo().y);
                         const double kb = axis == 0
                                               ? (by_upper ? rb.hi().x : rb.lo().x)
                                               : (by_upper ? rb.hi().y : rb.lo().y);
                         return ka < kb;
                       });
      double margin_sum = 0.0;
      for (std::size_t d = 0; d < distributions; ++d) {
        const std::size_t first = min_fill + d;
        margin_sum += mbr_of(items, 0, first, rect_of).margin() +
                      mbr_of(items, first, n, rect_of).margin();
      }
      if (margin_sum < best_margin) {
        best_margin = margin_sum;
        best_axis_choice = {axis, by_upper, 0};
      }
    }
  }

  // Re-sort by the winning axis/key, then pick the distribution with
  // minimum overlap (ties: minimum total area).
  const std::size_t axis = best_axis_choice.axis;
  const bool by_upper = best_axis_choice.by_upper;
  std::stable_sort(items.begin(), items.end(),
                   [&](const Item& a, const Item& b) {
                     const geo::Rect& ra = rect_of(a);
                     const geo::Rect& rb = rect_of(b);
                     const double ka = axis == 0
                                           ? (by_upper ? ra.hi().x : ra.lo().x)
                                           : (by_upper ? ra.hi().y : ra.lo().y);
                     const double kb = axis == 0
                                           ? (by_upper ? rb.hi().x : rb.lo().x)
                                           : (by_upper ? rb.hi().y : rb.lo().y);
                     return ka < kb;
                   });
  double best_overlap = kInf;
  double best_area = kInf;
  std::size_t best_split = min_fill;
  for (std::size_t d = 0; d < distributions; ++d) {
    const std::size_t first = min_fill + d;
    const geo::Rect g1 = mbr_of(items, 0, first, rect_of);
    const geo::Rect g2 = mbr_of(items, first, n, rect_of);
    const double overlap = geo::overlap_area(g1, g2);
    const double area = g1.area() + g2.area();
    if (overlap < best_overlap ||
        (overlap == best_overlap && area < best_area)) {
      best_overlap = overlap;
      best_area = area;
      best_split = first;
    }
  }
  return best_split;
}

}  // namespace

void RStarTree::split(Node* node) {
  auto sibling = std::make_unique<Node>(node->level);
  if (node->leaf()) {
    const std::size_t at = rstar_split_position(
        node->entries, min_fill_, [](const Entry& e) -> const geo::Rect& {
          return e.rect;
        });
    sibling->entries.assign(node->entries.begin() +
                                static_cast<std::ptrdiff_t>(at),
                            node->entries.end());
    node->entries.resize(at);
  } else {
    const std::size_t at = rstar_split_position(
        node->children, min_fill_,
        [](const std::unique_ptr<Node>& c) -> const geo::Rect& {
          return c->mbr;
        });
    for (std::size_t i = at; i < node->children.size(); ++i) {
      sibling->children.push_back(std::move(node->children[i]));
    }
    node->children.resize(at);
    for (auto& c : sibling->children) c->parent = sibling.get();
  }
  node->mbr = node->compute_mbr();
  sibling->mbr = sibling->compute_mbr();

  if (node == root_.get()) {
    auto new_root = std::make_unique<Node>(node->level + 1);
    auto old_root = std::move(root_);
    old_root->parent = new_root.get();
    sibling->parent = new_root.get();
    new_root->children.push_back(std::move(old_root));
    new_root->children.push_back(std::move(sibling));
    new_root->mbr = new_root->compute_mbr();
    root_ = std::move(new_root);
    return;
  }

  Node* parent = node->parent;
  sibling->parent = parent;
  parent->children.push_back(std::move(sibling));
  parent->mbr = parent->compute_mbr();
  adjust_upward(parent);
  if (parent->count() > capacity_) {
    std::vector<bool> reinserted(root_->level + 2, true);  // split-only path
    overflow_treatment(parent, reinserted);
  }
}

// ---------------------------------------------------------------------------
// Bulk loading (Sort-Tile-Recursive)
// ---------------------------------------------------------------------------

namespace {

/// Balanced partition sizes: k groups whose sizes differ by at most one.
/// With k = ceil(n / capacity) every group holds at least floor(n/k) >=
/// capacity/2 entries (for k >= 2), satisfying the 40% minimum fill.
std::vector<std::size_t> balanced_groups(std::size_t n,
                                         std::size_t capacity) {
  const std::size_t k = (n + capacity - 1) / capacity;
  std::vector<std::size_t> sizes(k, n / k);
  for (std::size_t i = 0; i < n % k; ++i) ++sizes[i];
  return sizes;
}

}  // namespace

RStarTree RStarTree::bulk_load(std::vector<Entry> entries,
                               std::size_t node_capacity) {
  RStarTree tree(node_capacity);
  if (entries.empty()) return tree;
  tree.size_ = entries.size();

  // Level 0: tile the entries into leaves.
  std::vector<std::unique_ptr<Node>> level;
  {
    std::stable_sort(entries.begin(), entries.end(),
                     [](const Entry& a, const Entry& b) {
                       return a.rect.center().x < b.rect.center().x;
                     });
    const auto leaf_sizes = balanced_groups(entries.size(), node_capacity);
    const auto slabs = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(leaf_sizes.size()))));
    const auto slab_groups =
        balanced_groups(entries.size(),
                        (entries.size() + slabs - 1) / slabs);
    std::size_t cursor = 0;
    for (const std::size_t slab_size : slab_groups) {
      std::stable_sort(entries.begin() + static_cast<std::ptrdiff_t>(cursor),
                       entries.begin() +
                           static_cast<std::ptrdiff_t>(cursor + slab_size),
                       [](const Entry& a, const Entry& b) {
                         return a.rect.center().y < b.rect.center().y;
                       });
      std::size_t offset = cursor;
      const std::size_t slab_end = cursor + slab_size;
      while (offset < slab_end) {
        const std::size_t take =
            std::min(node_capacity, slab_end - offset);
        // Balance the tail: if what would remain is underfull, split the
        // remainder of the slab evenly instead.
        const std::size_t remaining = slab_end - offset;
        std::size_t count = take;
        if (remaining > node_capacity &&
            remaining - take < tree.min_fill_) {
          count = remaining / 2;
        }
        auto leaf = std::make_unique<Node>(0);
        leaf->entries.assign(
            entries.begin() + static_cast<std::ptrdiff_t>(offset),
            entries.begin() + static_cast<std::ptrdiff_t>(offset + count));
        leaf->mbr = leaf->compute_mbr();
        level.push_back(std::move(leaf));
        offset += count;
      }
      cursor = slab_end;
    }
  }

  // Upper levels: tile the nodes of the previous level the same way.
  while (level.size() > 1) {
    std::stable_sort(level.begin(), level.end(),
                     [](const auto& a, const auto& b) {
                       return a->mbr.center().x < b->mbr.center().x;
                     });
    const auto slabs = static_cast<std::size_t>(std::ceil(std::sqrt(
        static_cast<double>((level.size() + node_capacity - 1) /
                            node_capacity))));
    const auto slab_groups = balanced_groups(
        level.size(), (level.size() + slabs - 1) / slabs);
    std::vector<std::unique_ptr<Node>> parents;
    std::size_t cursor = 0;
    for (const std::size_t slab_size : slab_groups) {
      std::stable_sort(level.begin() + static_cast<std::ptrdiff_t>(cursor),
                       level.begin() +
                           static_cast<std::ptrdiff_t>(cursor + slab_size),
                       [](const auto& a, const auto& b) {
                         return a->mbr.center().y < b->mbr.center().y;
                       });
      std::size_t offset = cursor;
      const std::size_t slab_end = cursor + slab_size;
      while (offset < slab_end) {
        const std::size_t remaining = slab_end - offset;
        std::size_t count = std::min(node_capacity, remaining);
        if (remaining > node_capacity &&
            remaining - count < tree.min_fill_) {
          count = remaining / 2;
        }
        auto parent = std::make_unique<Node>(level[offset]->level + 1);
        for (std::size_t i = 0; i < count; ++i) {
          level[offset + i]->parent = parent.get();
          parent->children.push_back(std::move(level[offset + i]));
        }
        parent->mbr = parent->compute_mbr();
        parents.push_back(std::move(parent));
        offset += count;
      }
      cursor = slab_end;
    }
    level = std::move(parents);
  }

  tree.root_ = std::move(level.front());
  tree.root_->parent = nullptr;
  return tree;
}

// ---------------------------------------------------------------------------
// Deletion
// ---------------------------------------------------------------------------

bool RStarTree::erase(const Entry& entry) {
  Node* leaf = find_leaf(root_.get(), entry);
  if (leaf == nullptr) return false;
  auto it = std::find_if(leaf->entries.begin(), leaf->entries.end(),
                         [&](const Entry& e) {
                           return e.id == entry.id && e.rect == entry.rect;
                         });
  SALARM_ASSERT(it != leaf->entries.end(), "find_leaf returned wrong leaf");
  leaf->entries.erase(it);
  --size_;
  condense(leaf);
  return true;
}

RStarTree::Node* RStarTree::find_leaf(Node* node, const Entry& entry) const {
  ++node_accesses_;
  if (node->leaf()) {
    for (const Entry& e : node->entries) {
      if (e.id == entry.id && e.rect == entry.rect) return node;
    }
    return nullptr;
  }
  for (const auto& child : node->children) {
    if (child->mbr.contains(entry.rect)) {
      if (Node* found = find_leaf(child.get(), entry)) return found;
    }
  }
  return nullptr;
}

void RStarTree::condense(Node* leaf) {
  std::vector<Entry> orphan_entries;
  std::vector<std::unique_ptr<Node>> orphan_nodes;

  if (leaf->count() > 0) leaf->mbr = leaf->compute_mbr();

  Node* node = leaf;
  while (node != root_.get()) {
    Node* parent = node->parent;
    if (node->count() < min_fill_) {
      // Detach the underfull node and queue its contents for reinsertion.
      auto it = std::find_if(parent->children.begin(), parent->children.end(),
                             [&](const auto& c) { return c.get() == node; });
      SALARM_ASSERT(it != parent->children.end(), "orphan without parent slot");
      std::unique_ptr<Node> detached = std::move(*it);
      parent->children.erase(it);
      if (detached->leaf()) {
        orphan_entries.insert(orphan_entries.end(), detached->entries.begin(),
                              detached->entries.end());
      } else {
        for (auto& c : detached->children) orphan_nodes.push_back(std::move(c));
      }
    }
    if (parent->count() > 0) parent->mbr = parent->compute_mbr();
    node = parent;
  }
  if (root_->count() > 0) root_->mbr = root_->compute_mbr();

  // Shrink the root while it is an internal node with a single child.
  while (!root_->leaf() && root_->children.size() == 1) {
    std::unique_ptr<Node> only = std::move(root_->children.front());
    only->parent = nullptr;
    root_ = std::move(only);
  }
  if (!root_->leaf() && root_->children.empty()) {
    root_ = std::make_unique<Node>(0);
  }

  // Reinsert orphaned subtrees (level by level, deepest first keeps the
  // leaf-depth invariant) and then leaf entries.
  std::stable_sort(orphan_nodes.begin(), orphan_nodes.end(),
                   [](const auto& a, const auto& b) {
                     return a->level > b->level;
                   });
  for (auto& orphan : orphan_nodes) {
    if (orphan->level + 1 > root_->level) {
      // The tree shrank below the orphan's level; dissolve the orphan.
      std::vector<Node*> stack{orphan.get()};
      while (!stack.empty()) {
        Node* n = stack.back();
        stack.pop_back();
        if (n->leaf()) {
          orphan_entries.insert(orphan_entries.end(), n->entries.begin(),
                                n->entries.end());
        } else {
          for (auto& c : n->children) stack.push_back(c.get());
        }
      }
      continue;
    }
    Node* host = root_.get();
    while (host->level > orphan->level + 1) {
      Node* best = nullptr;
      double best_enl = kInf;
      for (const auto& child : host->children) {
        const double enl = enlargement(child->mbr, orphan->mbr);
        if (enl < best_enl) {
          best_enl = enl;
          best = child.get();
        }
      }
      host = best;
      ++node_accesses_;
    }
    orphan->parent = host;
    host->children.push_back(std::move(orphan));
    host->mbr = host->compute_mbr();
    adjust_upward(host);
    if (host->count() > capacity_) {
      std::vector<bool> reinserted(root_->level + 2, true);
      overflow_treatment(host, reinserted);
    }
  }
  for (const Entry& e : orphan_entries) {
    std::vector<bool> reinserted(root_->level + 2, false);
    insert_entry(e, 0, reinserted);
  }
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

void RStarTree::visit(const geo::Rect& window,
                      const std::function<bool(const Entry&)>& visitor) const {
  if (size_ == 0) return;
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    ++node_accesses_;
    if (node->leaf()) {
      for (const Entry& e : node->entries) {
        if (e.rect.intersects(window) && !visitor(e)) return;
      }
    } else {
      for (const auto& child : node->children) {
        if (child->mbr.intersects(window)) stack.push_back(child.get());
      }
    }
  }
}

std::vector<Entry> RStarTree::search(const geo::Rect& window) const {
  std::vector<Entry> out;
  visit(window, [&](const Entry& e) {
    out.push_back(e);
    return true;
  });
  return out;
}

std::vector<Entry> RStarTree::search(geo::Point p) const {
  return search(geo::Rect(p, p));
}

std::vector<Neighbor> RStarTree::nearest(
    geo::Point p, std::size_t k,
    const std::function<bool(const Entry&)>& accept) const {
  std::vector<Neighbor> out;
  if (size_ == 0 || k == 0) return out;

  struct QueueItem {
    double dist;
    const Node* node;   // nullptr when this is an entry
    const Entry* entry; // valid when node == nullptr
    bool operator>(const QueueItem& other) const { return dist > other.dist; }
  };
  std::priority_queue<QueueItem, std::vector<QueueItem>,
                      std::greater<QueueItem>>
      queue;
  queue.push({root_->mbr.distance(p), root_.get(), nullptr});
  while (!queue.empty() && out.size() < k) {
    const QueueItem item = queue.top();
    queue.pop();
    if (item.node == nullptr) {
      out.push_back({*item.entry, item.dist});
      continue;
    }
    ++node_accesses_;
    if (item.node->leaf()) {
      for (const Entry& e : item.node->entries) {
        if (accept && !accept(e)) continue;
        queue.push({e.rect.distance(p), nullptr, &e});
      }
    } else {
      for (const auto& child : item.node->children) {
        queue.push({child->mbr.distance(p), child.get(), nullptr});
      }
    }
  }
  return out;
}

double RStarTree::nearest_distance(
    geo::Point p, const std::function<bool(const Entry&)>& accept) const {
  const auto nn = nearest(p, 1, accept);
  return nn.empty() ? kInf : nn.front().distance;
}

// ---------------------------------------------------------------------------
// Invariant checking (test hook)
// ---------------------------------------------------------------------------

void RStarTree::check_invariants() const {
  std::size_t leaf_entries = 0;
  std::size_t leaf_depth = root_->level;

  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (node != root_.get()) {
      SALARM_ASSERT(node->count() >= min_fill_, "underfull node");
      SALARM_ASSERT(node->parent != nullptr, "non-root without parent");
    }
    SALARM_ASSERT(node->count() <= capacity_, "overfull node");
    if (node->count() > 0) {
      SALARM_ASSERT(node->mbr == node->compute_mbr(), "stale MBR");
    }
    if (node->leaf()) {
      SALARM_ASSERT(node->level == 0, "leaf at non-zero level");
      SALARM_ASSERT(root_->level - node->level == leaf_depth,
                    "leaves at different depths");
      leaf_entries += node->entries.size();
    } else {
      SALARM_ASSERT(!node->children.empty() || node == root_.get(),
                    "empty internal node");
      for (const auto& child : node->children) {
        SALARM_ASSERT(child->parent == node, "broken parent pointer");
        SALARM_ASSERT(child->level + 1 == node->level, "level mismatch");
        stack.push_back(child.get());
      }
    }
  }
  SALARM_ASSERT(leaf_entries == size_, "size counter out of sync");
}

}  // namespace salarm::index
