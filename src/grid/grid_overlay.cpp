#include "grid/grid_overlay.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace salarm::grid {

GridOverlay GridOverlay::with_cell_area(const geo::Rect& universe,
                                        double cell_area_sqm) {
  SALARM_REQUIRE(cell_area_sqm > 0.0, "cell area must be positive");
  SALARM_REQUIRE(universe.area() > 0.0, "universe must have positive area");
  SALARM_REQUIRE(cell_area_sqm <= universe.area(),
                 "cell area exceeds universe");
  // Choose cols/rows so each cell is as square as possible with area close
  // to the target.
  const double side = std::sqrt(cell_area_sqm);
  const auto cols = static_cast<std::uint32_t>(
      std::max(1.0, std::round(universe.width() / side)));
  const auto rows = static_cast<std::uint32_t>(
      std::max(1.0, std::round(universe.height() / side)));
  return GridOverlay(universe, cols, rows);
}

GridOverlay::GridOverlay(const geo::Rect& universe, std::uint32_t cols,
                         std::uint32_t rows)
    : universe_(universe), cols_(cols), rows_(rows),
      cell_w_(universe.width() / cols), cell_h_(universe.height() / rows) {
  SALARM_REQUIRE(cols >= 1 && rows >= 1, "grid needs at least one cell");
  SALARM_REQUIRE(universe.area() > 0.0, "universe must have positive area");
}

CellId GridOverlay::cell_of(geo::Point p) const {
  SALARM_REQUIRE(universe_.contains(p), "point outside the universe");
  auto clamp_axis = [](double offset, double width, std::uint32_t n) {
    auto i = static_cast<std::int64_t>(std::floor(offset / width));
    i = std::clamp<std::int64_t>(i, 0, static_cast<std::int64_t>(n) - 1);
    return static_cast<std::uint32_t>(i);
  };
  return {clamp_axis(p.x - universe_.lo().x, cell_w_, cols_),
          clamp_axis(p.y - universe_.lo().y, cell_h_, rows_)};
}

geo::Rect GridOverlay::cell_rect(CellId id) const {
  SALARM_REQUIRE(id.col < cols_ && id.row < rows_, "cell id out of range");
  const geo::Point lo{universe_.lo().x + cell_w_ * id.col,
                      universe_.lo().y + cell_h_ * id.row};
  return geo::Rect(lo, {lo.x + cell_w_, lo.y + cell_h_});
}

std::vector<CellId> GridOverlay::cells_intersecting(const geo::Rect& r) const {
  std::vector<CellId> out;
  const auto clipped = universe_.intersection(r);
  if (!clipped) return out;
  const CellId lo = cell_of(clipped->lo());
  const CellId hi = cell_of(clipped->hi());
  out.reserve(static_cast<std::size_t>(hi.col - lo.col + 1) *
              (hi.row - lo.row + 1));
  for (std::uint32_t row = lo.row; row <= hi.row; ++row) {
    for (std::uint32_t col = lo.col; col <= hi.col; ++col) {
      out.push_back({col, row});
    }
  }
  return out;
}

}  // namespace salarm::grid
