// Grid overlay on the Universe of Discourse (paper §2.2).
//
// The server overlays a uniform grid on the universe; a subscriber's safe
// region is always computed inside their current grid cell, which bounds
// the number of alarms any single safe-region computation must consider.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "geometry/point.h"
#include "geometry/rect.h"

namespace salarm::grid {

/// Identifier of a grid cell: (column, row) plus a flat index.
struct CellId {
  std::uint32_t col = 0;
  std::uint32_t row = 0;

  friend bool operator==(CellId a, CellId b) {
    return a.col == b.col && a.row == b.row;
  }
};

/// A uniform grid covering a rectangular universe. Points on shared cell
/// edges belong to the cell with the larger index (half-open cells), except
/// on the universe's top/right boundary, which belongs to the last cell, so
/// every point of the universe maps to exactly one cell.
class GridOverlay {
 public:
  /// Grid with cells of (approximately) the given target cell area in m².
  /// The universe is divided into an integral number of equal cells whose
  /// area is as close as possible to the target, matching the paper's
  /// "grid cell size in km²" parameter. Throws if the target is not
  /// positive or exceeds the universe.
  static GridOverlay with_cell_area(const geo::Rect& universe,
                                    double cell_area_sqm);

  /// Grid with an explicit number of columns and rows (both >= 1).
  GridOverlay(const geo::Rect& universe, std::uint32_t cols,
              std::uint32_t rows);

  const geo::Rect& universe() const { return universe_; }
  std::uint32_t cols() const { return cols_; }
  std::uint32_t rows() const { return rows_; }
  std::size_t cell_count() const {
    return static_cast<std::size_t>(cols_) * rows_;
  }
  double cell_width() const { return cell_w_; }
  double cell_height() const { return cell_h_; }
  double cell_area() const { return cell_w_ * cell_h_; }

  /// Cell containing p. Requires p inside the (closed) universe.
  CellId cell_of(geo::Point p) const;

  /// Geometric extent of a cell. Requires a valid cell id.
  geo::Rect cell_rect(CellId id) const;

  std::size_t flat_index(CellId id) const {
    return static_cast<std::size_t>(id.row) * cols_ + id.col;
  }

  /// All cells intersecting r (clipped to the universe) under the same
  /// half-open convention as cell_of: a window that merely touches a cell's
  /// upper/right edge does not include the cell above/right of that edge's
  /// owner.
  std::vector<CellId> cells_intersecting(const geo::Rect& r) const;

 private:
  geo::Rect universe_;
  std::uint32_t cols_;
  std::uint32_t rows_;
  double cell_w_;
  double cell_h_;
};

}  // namespace salarm::grid
