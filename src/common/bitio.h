// Bit-level serialization helpers for the bitmap-encoded safe regions.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/error.h"

namespace salarm {

/// Append-only MSB-first bit writer.
class BitWriter {
 public:
  void push(bool bit) {
    const std::size_t byte = count_ / 8;
    if (byte == bytes_.size()) bytes_.push_back(0);
    if (bit) bytes_[byte] |= static_cast<std::uint8_t>(0x80u >> (count_ % 8));
    ++count_;
  }

  std::size_t bit_count() const { return count_; }
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() && { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
  std::size_t count_ = 0;
};

/// MSB-first bit reader over a byte span.
class BitReader {
 public:
  BitReader(std::span<const std::uint8_t> bytes, std::size_t bit_count)
      : bytes_(bytes), bit_count_(bit_count) {
    SALARM_REQUIRE(bit_count <= bytes.size() * 8,
                   "bit count exceeds the buffer");
  }

  bool next() {
    SALARM_REQUIRE(pos_ < bit_count_, "bit stream exhausted");
    const bool bit =
        (bytes_[pos_ / 8] >> (7 - pos_ % 8)) & 1u;
    ++pos_;
    return bit;
  }

  std::size_t remaining() const { return bit_count_ - pos_; }
  bool exhausted() const { return pos_ == bit_count_; }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t bit_count_;
  std::size_t pos_ = 0;
};

}  // namespace salarm
