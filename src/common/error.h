// Error-handling helpers shared across salarm.
//
// The library follows the C++ Core Guidelines: preconditions are stated and
// checked at API boundaries (I.5/I.6), and violations surface as exceptions
// (I.10) so callers cannot silently ignore them.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace salarm {

/// Thrown when a caller violates a documented precondition.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant is found broken (a library bug).
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] inline void throw_precondition(const char* expr, const char* file,
                                            int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw PreconditionError(os.str());
}

[[noreturn]] inline void throw_invariant(const char* expr, const char* file,
                                         int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantError(os.str());
}

}  // namespace detail

/// Check a caller-facing precondition; throws PreconditionError on failure.
#define SALARM_REQUIRE(expr, msg)                                         \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::salarm::detail::throw_precondition(#expr, __FILE__, __LINE__,     \
                                           (msg));                        \
    }                                                                     \
  } while (false)

/// Check an internal invariant; throws InvariantError on failure.
#define SALARM_ASSERT(expr, msg)                                          \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::salarm::detail::throw_invariant(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                     \
  } while (false)

}  // namespace salarm
