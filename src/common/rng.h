// Deterministic random number generation.
//
// Every stochastic component of the simulator draws from an explicitly
// seeded Rng so that traces, alarm placements and therefore all experiment
// outputs are reproducible bit-for-bit across runs (a requirement for the
// regression tests in tests/ and the benches in bench/).
#pragma once

#include <cstdint>
#include <random>

#include "common/error.h"

namespace salarm {

/// A seedable, copyable random source. Thin wrapper over std::mt19937_64
/// with the distribution plumbing hidden behind intention-revealing draws.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi) {
    SALARM_REQUIRE(lo <= hi, "uniform bounds out of order");
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    SALARM_REQUIRE(lo <= hi, "uniform_int bounds out of order");
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n) {
    SALARM_REQUIRE(n > 0, "index over empty range");
    return static_cast<std::size_t>(
        std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_));
  }

  /// Bernoulli trial with success probability p in [0, 1].
  bool chance(double p) {
    SALARM_REQUIRE(p >= 0.0 && p <= 1.0, "probability out of range");
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Normal draw with the given mean and standard deviation (sigma >= 0).
  double normal(double mean, double sigma) {
    SALARM_REQUIRE(sigma >= 0.0, "negative sigma");
    if (sigma == 0.0) return mean;
    return std::normal_distribution<double>(mean, sigma)(engine_);
  }

  /// Derives an independent child generator; used to give each subsystem
  /// (trace, alarms, trips) its own stream so adding draws to one does not
  /// perturb the others.
  Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace salarm
