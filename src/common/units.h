// Unit conventions and conversion constants.
//
// All geometry in salarm is expressed in METERS on a planar Universe of
// Discourse, all times in SECONDS, speeds in METERS PER SECOND. The paper
// quotes grid cell sizes in square kilometers and speeds in km/h; these
// helpers keep the conversions explicit at API boundaries (P.1: express
// ideas directly in code).
#pragma once

namespace salarm {

inline constexpr double kMetersPerKm = 1000.0;
inline constexpr double kSecondsPerMinute = 60.0;
inline constexpr double kSecondsPerHour = 3600.0;

/// Converts km/h to m/s.
constexpr double kmh_to_mps(double kmh) { return kmh * kMetersPerKm / kSecondsPerHour; }

/// Converts m/s to km/h.
constexpr double mps_to_kmh(double mps) { return mps * kSecondsPerHour / kMetersPerKm; }

/// Converts an area in square kilometers to square meters.
constexpr double sqkm_to_sqm(double sqkm) { return sqkm * kMetersPerKm * kMetersPerKm; }

/// Converts an area in square meters to square kilometers.
constexpr double sqm_to_sqkm(double sqm) { return sqm / (kMetersPerKm * kMetersPerKm); }

}  // namespace salarm
