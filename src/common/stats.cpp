#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.h"

namespace salarm {

void RunningStat::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void RunningStat::merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * n2 / (n1 + n2);
  m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  SALARM_REQUIRE(hi > lo, "histogram range empty");
  SALARM_REQUIRE(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) {
  const double clamped = std::clamp(x, lo_, std::nextafter(hi_, lo_));
  auto bin = static_cast<std::size_t>((clamped - lo_) / width_);
  bin = std::min(bin, counts_.size() - 1);
  ++counts_[bin];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t bin) const {
  SALARM_REQUIRE(bin < counts_.size(), "bin out of range");
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  SALARM_REQUIRE(bin < counts_.size(), "bin out of range");
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin) + width_; }

double Histogram::quantile(double q) const {
  SALARM_REQUIRE(q >= 0.0 && q <= 1.0, "quantile out of [0,1]");
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target) {
      const double inside =
          counts_[i] == 0 ? 0.0
                          : (target - cum) / static_cast<double>(counts_[i]);
      return bin_lo(i) + inside * width_;
    }
    cum = next;
  }
  return hi_;
}

std::string Histogram::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    os << '[' << bin_lo(i) << ',' << bin_hi(i) << "): " << counts_[i] << '\n';
  }
  return os.str();
}

}  // namespace salarm
