// Streaming statistics used by the metrics subsystem and the benches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace salarm {

/// Single-pass accumulator for count / mean / variance / min / max
/// (Welford's algorithm, numerically stable).
class RunningStat {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Unbiased sample variance; 0 for fewer than two observations.
  double variance() const;
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  /// Merges another accumulator into this one (parallel Welford merge).
  void merge(const RunningStat& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width histogram over [lo, hi) with out-of-range clamping; used by
/// the benches to report distributions (e.g. safe-region dwell times).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t bin) const;
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;

  /// Value below which the given fraction q in [0,1] of samples fall
  /// (linear interpolation within the bin).
  double quantile(double q) const;

  std::string to_string() const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace salarm
