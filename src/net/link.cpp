#include "net/link.h"

#include <utility>

#include "common/error.h"
#include "saferegion/wire_format.h"
#include "sim/server.h"

namespace salarm::net {
namespace {

/// Retransmission attempts per exchange before delivery is forced. With
/// per-attempt loss < 1 the chance of exhausting the cap is astronomically
/// small (0.5^64); the cap only bounds the simulated draw loop — the
/// protocol itself never gives up on a connected link.
constexpr std::uint64_t kMaxExchangeRounds = 64;

}  // namespace

ClientLink::ClientLink(sim::ServerApi& server, const ChannelConfig& config,
                       std::uint64_t seed, std::size_t subscriber_count)
    : server_(server),
      config_(config),
      channel_(config, seed, subscriber_count),
      states_(subscriber_count) {}

ClientLink::SubscriberState& ClientLink::state(alarms::SubscriberId s) {
  SALARM_REQUIRE(static_cast<std::size_t>(s) < states_.size(),
                 "subscriber outside link range");
  return states_[static_cast<std::size_t>(s)];
}

const ClientLink::SubscriberState& ClientLink::state(
    alarms::SubscriberId s) const {
  SALARM_REQUIRE(static_cast<std::size_t>(s) < states_.size(),
                 "subscriber outside link range");
  return states_[static_cast<std::size_t>(s)];
}

bool ClientLink::in_outage(alarms::SubscriberId s) const {
  return config_.faulty() && state(s).outage_remaining > 0;
}

std::uint32_t ClientLink::uplink_seq(alarms::SubscriberId s) const {
  return state(s).uplink_seq;
}

void ClientLink::attach_failover(const cluster::ShardMap& map,
                                 const failover::CrashPlan& plan) {
  SALARM_REQUIRE(fo_plan_ == nullptr, "failover already attached");
  fo_map_ = &map;
  fo_plan_ = &plan;
}

bool ClientLink::degraded(const SubscriberState& st, geo::Point position,
                          std::uint64_t tick) const {
  if (fo_plan_ == nullptr) return false;
  return !st.buffer.empty() ||
         fo_plan_->down(fo_map_->shard_of(position), tick);
}

bool ClientLink::buffer_flushable(const SubscriberState& st,
                                  std::uint64_t tick) const {
  if (fo_plan_ == nullptr || !fo_plan_->any_down(tick)) return true;
  for (const BufferedReport& r : st.buffer) {
    if (fo_plan_->down(fo_map_->shard_of(r.position), tick)) return false;
  }
  return true;
}

std::uint64_t ClientLink::min_pending_stamp(std::uint64_t tick) const {
  std::uint64_t min = tick;
  for (const SubscriberState& st : states_) {
    // Buffers are appended in tick order, so the front is the oldest.
    if (!st.buffer.empty() && st.buffer.front().tick < min) {
      min = st.buffer.front().tick;
    }
  }
  return min;
}

std::uint64_t ClientLink::reliable_exchange(alarms::SubscriberId s, bool uplink,
                                            std::size_t payload_bytes,
                                            sim::Metrics& m) {
  std::uint64_t rounds = 0;
  std::uint64_t received_copies = 0;
  bool acked = false;
  while (!acked && rounds < kMaxExchangeRounds) {
    ++rounds;
    const bool payload_lost =
        uplink ? channel_.lose_uplink(s) : channel_.lose_downlink(s);
    if (payload_lost) continue;
    ++received_copies;
    if (channel_.duplicate(s)) ++received_copies;
    const bool ack_lost =
        uplink ? channel_.lose_downlink(s) : channel_.lose_uplink(s);
    if (!ack_lost) acked = true;
  }
  if (received_copies == 0) received_copies = 1;  // forced delivery at cap

  // Accounting (ISSUE: retransmissions must inflate energy and bandwidth,
  // not vanish). Every attempt beyond the first retransmits the full
  // payload; every received copy is ACKed; every copy beyond the first is
  // suppressed by the receiver's sequence-number window.
  const std::uint64_t retransmissions = rounds - 1;
  const std::uint64_t duplicates = received_copies - 1;
  m.net_retransmissions += retransmissions;
  m.net_duplicates_dropped += duplicates;
  m.net_ack_messages += received_copies;
  m.net_ack_bytes += received_copies * wire::ack_message_size();
  if (uplink) {
    // Position reports: the server charged the first copy when it processed
    // the update; retransmitted copies are pure overhead on the same
    // counters so the paper's message figures stay honest under faults.
    m.uplink_messages += retransmissions;
    m.uplink_bytes += retransmissions * payload_bytes;
    m.server_alarm_ops += duplicates * sim::kOpsPerDuplicateDrop;
  } else {
    // Invalidation pushes: the push itself was charged when queued;
    // retransmitted copies re-ship the payload. The client suppresses
    // duplicates with one sequence comparison each.
    m.invalidation_bytes += retransmissions * payload_bytes;
    m.client_check_ops += duplicates;
  }
  // Delivery latency seen by the receiver: exponential-backoff waits for
  // every failed round plus one one-way flight of the copy that made it.
  // The per-round waits are recorded for introspection: the timeout starts
  // at the base RTO on every fresh exchange (an ACK resets it) and doubles
  // per retransmission.
  auto& backoffs = state(s).last_backoffs;
  backoffs.clear();
  double backoff_ms = 0.0;
  double rto_ms = channel_.base_rto_ms();
  for (std::uint64_t i = 1; i < rounds; ++i) {
    backoffs.push_back(rto_ms);
    backoff_ms += rto_ms;
    rto_ms *= 2.0;
  }
  m.net_delivery_latency_ms.add(backoff_ms + channel_.latency_ms(s));
  return rounds;
}

std::vector<alarms::AlarmId> ClientLink::report(alarms::SubscriberId s,
                                                geo::Point position,
                                                std::uint64_t tick) {
  if (!config_.faulty() && fo_plan_ == nullptr) {
    return server_.handle_position_update(s, position, tick);
  }
  auto& st = state(s);
  if (config_.faulty() && st.outage_remaining > 0) {
    // Lease fallback: the carrier is down, so the client logs the sample
    // for server-side checking at reconnect (DESIGN.md §9).
    st.buffer.push_back(BufferedReport{position, tick});
    ++server_.metrics().net_buffered_reports;
    return {};
  }
  if (degraded(st, position, tick)) {
    // The owning shard is crashed (or older reports are still queued
    // behind a crashed shard): buffer for the post-recovery flush.
    st.buffer.push_back(BufferedReport{position, tick});
    ++server_.metrics().fo_buffered_reports;
    return {};
  }
  if (!config_.faulty()) return server_.handle_position_update(s, position, tick);
  ++st.uplink_seq;
  auto fired = server_.handle_position_update(s, position, tick);
  reliable_exchange(s, /*uplink=*/true,
                    wire::encoded_size(wire::PositionUpdate{}),
                    server_.metrics());
  return fired;
}

std::optional<saferegion::RectSafeRegion> ClientLink::request_rect_region(
    alarms::SubscriberId s, geo::Point position, double heading,
    const saferegion::MotionModel& model,
    const saferegion::MwpsrOptions& options) {
  if (degraded(state(s), position, current_tick_)) return std::nullopt;
  if (!config_.faulty()) {
    return server_.compute_rect_region(s, position, heading, model, options);
  }
  if (state(s).outage_remaining > 0) return std::nullopt;
  // The request piggybacks on the report the client just delivered
  // reliably; only the best-effort response can be lost in flight.
  auto region = server_.compute_rect_region(s, position, heading, model,
                                            options);
  if (channel_.lose_downlink(s)) return std::nullopt;
  return region;
}

std::optional<saferegion::RectSafeRegion>
ClientLink::request_corner_baseline_region(alarms::SubscriberId s,
                                           geo::Point position, double heading,
                                           const saferegion::MotionModel& model) {
  if (degraded(state(s), position, current_tick_)) return std::nullopt;
  if (!config_.faulty()) {
    return server_.compute_corner_baseline_region(s, position, heading, model);
  }
  if (state(s).outage_remaining > 0) return std::nullopt;
  auto region = server_.compute_corner_baseline_region(s, position, heading,
                                                       model);
  if (channel_.lose_downlink(s)) return std::nullopt;
  return region;
}

std::optional<saferegion::PyramidBitmap> ClientLink::request_pyramid_region(
    alarms::SubscriberId s, geo::Point position,
    const saferegion::PyramidConfig& config) {
  if (degraded(state(s), position, current_tick_)) return std::nullopt;
  if (!config_.faulty()) {
    return server_.compute_pyramid_region(s, position, config);
  }
  if (state(s).outage_remaining > 0) return std::nullopt;
  auto bitmap = server_.compute_pyramid_region(s, position, config);
  if (channel_.lose_downlink(s)) return std::nullopt;
  return bitmap;
}

std::optional<double> ClientLink::request_safe_period(alarms::SubscriberId s,
                                                      geo::Point position,
                                                      double max_speed_mps,
                                                      double tick_seconds) {
  if (degraded(state(s), position, current_tick_)) return std::nullopt;
  if (!config_.faulty()) {
    return server_.compute_safe_period(s, position, max_speed_mps,
                                       tick_seconds);
  }
  if (state(s).outage_remaining > 0) return std::nullopt;
  const double period =
      server_.compute_safe_period(s, position, max_speed_mps, tick_seconds);
  if (channel_.lose_downlink(s)) return std::nullopt;
  return period;
}

std::optional<std::vector<const alarms::SpatialAlarm*>>
ClientLink::request_alarms(alarms::SubscriberId s, geo::Point position) {
  if (degraded(state(s), position, current_tick_)) return std::nullopt;
  if (!config_.faulty()) return server_.push_alarms(s, position);
  if (state(s).outage_remaining > 0) return std::nullopt;
  auto alarms = server_.push_alarms(s, position);
  if (channel_.lose_downlink(s)) return std::nullopt;
  return alarms;
}

std::vector<dynamics::InvalidationPush> ClientLink::take_invalidations(
    alarms::SubscriberId s) {
  if (!config_.faulty() && fo_plan_ == nullptr) {
    return server_.take_invalidations(s);
  }
  auto& st = state(s);
  if (config_.faulty() && st.outage_remaining > 0) {
    // Server pushes cannot reach a disconnected client; only the client's
    // own carrier-loss revoke is delivered (no wire traffic involved).
    return std::exchange(st.pending_synthetic, {});
  }
  // A crashed shard's mailboxes are empty (cleared at the crash, installs
  // deferred), so draining is safe and returns only up-shard pushes even
  // while the subscriber's own shard is down.
  auto pushes = server_.take_invalidations(s);
  if (config_.faulty()) {
    sim::Metrics& m = server_.metrics();
    for (const auto& push : pushes) {
      // Leased downlink: each push is retransmitted until the client's ACK
      // arrives, so a connected client receives every push within its tick.
      reliable_exchange(s, /*uplink=*/false,
                        wire::invalidation_message_size(push.message.size()),
                        m);
      ++st.downlink_seq;
    }
  }
  if (!st.pending_synthetic.empty()) {
    // Leftover carrier-loss revoke from an outage the strategy never
    // polled during (e.g. the periodic baseline): deliver it first.
    auto merged = std::exchange(st.pending_synthetic, {});
    merged.insert(merged.end(), std::make_move_iterator(pushes.begin()),
                  std::make_move_iterator(pushes.end()));
    return merged;
  }
  return pushes;
}

void ClientLink::enable_public_bitmap_cache(
    const saferegion::PyramidConfig& config) {
  server_.enable_public_bitmap_cache(config);
}

void ClientLink::begin_tick(std::uint64_t tick,
                            std::span<const mobility::VehicleSample> samples) {
  current_tick_ = tick;
  const bool fo = fo_plan_ != nullptr;
  if (!config_.faulty() && !fo) return;
  SALARM_REQUIRE(!fo || samples.size() == states_.size(),
                 "failover begin_tick needs one sample per subscriber");
  for (std::size_t i = 0; i < states_.size(); ++i) {
    const auto s = static_cast<alarms::SubscriberId>(i);
    auto& st = states_[i];
    // Channel outage machine (identical draws/counters to a failover-less
    // run: the channel never learns about crashes).
    if (config_.faulty()) {
      if (st.outage_remaining > 0) {
        --st.outage_remaining;
        if (st.outage_remaining > 0) {
          ++link_metrics_.net_lease_fallback_ticks;
        }
      } else if (channel_.outage_starts(s)) {
        st.outage_remaining = channel_.outage_duration_ticks(s);
        // Carrier loss voids the lease client-side: the client cannot ACK
        // pushes any more, so it conservatively drops whatever grant it
        // holds (synthetic revoke, drained at its next on_tick).
        st.pending_synthetic.push_back(dynamics::InvalidationPush{});
        ++link_metrics_.net_outages;
        ++link_metrics_.net_lease_fallback_ticks;
      }
    }
    // Degraded-mode machine: a crash of the subscriber's owning shard
    // voids its grant the same way a carrier loss does — the server side
    // of the lease just evaporated.
    if (fo) {
      const std::size_t shard = fo_map_->shard_of(samples[i].pos);
      if (fo_plan_->crashes_at(shard, tick)) {
        st.pending_synthetic.push_back(dynamics::InvalidationPush{});
        ++link_metrics_.fo_grant_voids;
      }
      if (fo_plan_->down(shard, tick)) ++link_metrics_.fo_degraded_ticks;
    }
    // Reconnect: once the carrier is up and every buffered position's
    // shard is back, flush the backlog through server-side checking
    // before the strategy runs. (Without failover this fires exactly on
    // the outage's last tick, as before.)
    if (st.outage_remaining == 0 && !st.buffer.empty() &&
        buffer_flushable(st, tick)) {
      flush_buffer(s);
    }
  }
}

void ClientLink::flush_buffer(alarms::SubscriberId s) {
  auto& st = state(s);
  for (const auto& r : st.buffer) {
    server_.handle_buffered_update(s, r.position, r.tick);
    if (config_.faulty()) {
      // The flushed report still crosses the (now restored) faulty link.
      ++st.uplink_seq;
      reliable_exchange(s, /*uplink=*/true,
                        wire::encoded_size(wire::PositionUpdate{}),
                        link_metrics_);
    }
  }
  st.buffer.clear();
}

void ClientLink::finish() {
  if (!config_.faulty() && fo_plan_ == nullptr) return;
  for (std::size_t i = 0; i < states_.size(); ++i) {
    // An outage spanning the end of the run still flushes: a real client
    // delivers its backlog on eventual reconnect, and the oracle's ground
    // truth covers those ticks. (With failover, the simulation recovers
    // every still-down shard before calling finish.)
    flush_buffer(static_cast<alarms::SubscriberId>(i));
  }
}

}  // namespace salarm::net
