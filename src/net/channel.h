// Deterministic fault-injecting channel (DESIGN.md §9).
//
// Every client<->server message of the simulator — position reports,
// safe-region responses, invalidation pushes, ACKs — conceptually crosses
// an unreliable radio link. FaultyChannel models that link: independent
// per-transmission loss on each direction, payload duplication, a latency
// distribution (base + jitter, which is what reorders messages in flight),
// and burst outages during which a client is entirely disconnected.
//
// Determinism: the channel is seeded once and forks one salarm::Rng stream
// per subscriber, so every fault decision for subscriber s is a pure
// function of (seed, s, draw index) — independent of thread count and of
// the draws made for other subscribers. Two channels built from the same
// seed replay bit-identically (tests/net_test.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "alarms/spatial_alarm.h"
#include "common/rng.h"

namespace salarm::net {

/// Fault parameters of the client<->server link. All-zero (the default)
/// means a perfect channel; ClientLink then bypasses the reliability
/// protocol entirely (it is a provable no-op on a perfect link).
struct ChannelConfig {
  /// Probability that one uplink transmission (report or ACK of a push)
  /// is lost in flight.
  double uplink_loss = 0.0;
  /// Probability that one downlink transmission (grant response, push, or
  /// ACK of a report) is lost in flight.
  double downlink_loss = 0.0;
  /// Probability that a delivered copy is duplicated by the network; the
  /// duplicate is suppressed by the receiver's sequence-number window.
  double duplicate_rate = 0.0;
  /// One-way propagation latency and uniform jitter in [0, jitter). Jitter
  /// is what reorders messages in flight; sequence numbers restore order.
  double latency_base_ms = 0.0;
  double latency_jitter_ms = 0.0;
  /// Probability that a connected client starts a burst outage on a given
  /// tick, and the mean outage length in ticks (exponential-ish, >= 1).
  double outage_start_per_tick = 0.0;
  double outage_mean_ticks = 0.0;

  /// True when any fault is configured; false selects the perfect-channel
  /// fast path (zero Rng draws, zero protocol overhead).
  bool faulty() const {
    return uplink_loss > 0.0 || downlink_loss > 0.0 || duplicate_rate > 0.0 ||
           latency_base_ms > 0.0 || latency_jitter_ms > 0.0 ||
           outage_start_per_tick > 0.0;
  }
};

/// Per-subscriber deterministic fault source. Pure draw machinery — the
/// protocol reacting to the faults lives in net::ClientLink.
class FaultyChannel {
 public:
  FaultyChannel(const ChannelConfig& config, std::uint64_t seed,
                std::size_t subscriber_count);

  const ChannelConfig& config() const { return config_; }
  std::size_t subscriber_count() const { return streams_.size(); }

  /// One Bernoulli trial per physical transmission attempt.
  bool lose_uplink(alarms::SubscriberId s);
  bool lose_downlink(alarms::SubscriberId s);
  /// Whether the network duplicates a copy it just delivered.
  bool duplicate(alarms::SubscriberId s);

  /// One-way latency draw for a successful transmission (ms).
  double latency_ms(alarms::SubscriberId s);

  /// Retransmission timeout before the first backoff doubling (ms):
  /// conservatively two one-way worst-case latencies.
  double base_rto_ms() const {
    return 2.0 * (config_.latency_base_ms + config_.latency_jitter_ms) + 1.0;
  }

  /// Whether a connected subscriber's carrier drops this tick.
  bool outage_starts(alarms::SubscriberId s);
  /// Length of a starting outage in ticks (>= 1, mean outage_mean_ticks).
  std::uint64_t outage_duration_ticks(alarms::SubscriberId s);

 private:
  Rng& stream(alarms::SubscriberId s);

  ChannelConfig config_;
  std::vector<Rng> streams_;
};

}  // namespace salarm::net
