#include "net/channel.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace salarm::net {

FaultyChannel::FaultyChannel(const ChannelConfig& config, std::uint64_t seed,
                             std::size_t subscriber_count)
    : config_(config) {
  SALARM_REQUIRE(config.uplink_loss >= 0.0 && config.uplink_loss < 1.0,
                 "uplink loss must be in [0, 1)");
  SALARM_REQUIRE(config.downlink_loss >= 0.0 && config.downlink_loss < 1.0,
                 "downlink loss must be in [0, 1)");
  SALARM_REQUIRE(config.duplicate_rate >= 0.0 && config.duplicate_rate <= 1.0,
                 "duplicate rate must be in [0, 1]");
  SALARM_REQUIRE(
      config.outage_start_per_tick >= 0.0 && config.outage_start_per_tick < 1.0,
      "outage start probability must be in [0, 1)");
  SALARM_REQUIRE(config.outage_start_per_tick == 0.0 ||
                     config.outage_mean_ticks >= 1.0,
                 "outages need a mean duration of at least one tick");
  Rng parent(seed);
  streams_.reserve(subscriber_count);
  for (std::size_t i = 0; i < subscriber_count; ++i) {
    streams_.push_back(parent.fork());
  }
}

Rng& FaultyChannel::stream(alarms::SubscriberId s) {
  SALARM_REQUIRE(static_cast<std::size_t>(s) < streams_.size(),
                 "subscriber outside channel range");
  return streams_[static_cast<std::size_t>(s)];
}

bool FaultyChannel::lose_uplink(alarms::SubscriberId s) {
  return config_.uplink_loss > 0.0 && stream(s).chance(config_.uplink_loss);
}

bool FaultyChannel::lose_downlink(alarms::SubscriberId s) {
  return config_.downlink_loss > 0.0 && stream(s).chance(config_.downlink_loss);
}

bool FaultyChannel::duplicate(alarms::SubscriberId s) {
  return config_.duplicate_rate > 0.0 &&
         stream(s).chance(config_.duplicate_rate);
}

double FaultyChannel::latency_ms(alarms::SubscriberId s) {
  double latency = config_.latency_base_ms;
  if (config_.latency_jitter_ms > 0.0) {
    latency += stream(s).uniform(0.0, config_.latency_jitter_ms);
  }
  return latency;
}

bool FaultyChannel::outage_starts(alarms::SubscriberId s) {
  return config_.outage_start_per_tick > 0.0 &&
         stream(s).chance(config_.outage_start_per_tick);
}

std::uint64_t FaultyChannel::outage_duration_ticks(alarms::SubscriberId s) {
  // Exponential with the configured mean, shifted so every outage lasts at
  // least one tick; a single draw keeps the stream advance fixed.
  const double u = stream(s).uniform(0.0, 1.0);
  const double extra =
      std::max(0.0, -(config_.outage_mean_ticks - 1.0) * std::log1p(-u));
  return 1 + static_cast<std::uint64_t>(std::llround(extra));
}

}  // namespace salarm::net
