// Reliable client<->server link: the protocol endpoint the strategies
// program against (DESIGN.md §9).
//
// ClientLink interposes between the client half of a processing strategy
// and a sim::ServerApi (monolithic Server or cluster::ShardedServer) and
// runs the reliability protocol over a net::FaultyChannel:
//
//  * Uplink position reports carry per-session sequence numbers and are
//    ACKed; a lost report or lost ACK triggers timeout + exponential-
//    backoff retransmission until the server's ACK arrives. The server
//    suppresses duplicate deliveries by sequence number (charged at
//    sim::Server::kOpsPerDuplicateDrop each). Round trips are orders of
//    magnitude shorter than the 1 s tick, so a connected client's exchange
//    always completes within its tick.
//  * Downlink grant responses (rect / pyramid / period / alarm list) are
//    best-effort: a lost response simply leaves the client without a grant
//    (request_* returns nullopt), and the client re-reports next tick —
//    grants are self-healing, so retransmitting them buys nothing.
//  * Invalidation pushes are leased: the server needs the client to ACK
//    within the push's deadline. For a connected client the push is
//    retransmitted until ACKed (reliable within the tick). When the client
//    is in a burst outage the lease cannot be re-established: the client
//    conservatively voids its grant the moment the carrier drops (modelled
//    as a synthetic revoke) and buffers a position report every tick; on
//    reconnect the buffered reports are flushed through server-side
//    checking (ServerApi::handle_buffered_update) against the alarm set
//    that was live at each report's original tick. Every uncovered tick is
//    counted as net_lease_fallback_ticks.
//
// Degraded mode (failover tier, DESIGN.md §10): on sharded runs with
// crash-recovery armed (attach_failover), a client whose owning shard
// crashes voids its grant the moment the crash happens (the lease cannot
// be renewed — same synthetic-revoke mechanism as a carrier loss) and
// falls back to buffering its reports while the shard is down. The buffer
// flushes through handle_buffered_update once every buffered position's
// shard is back up, so mid-crash triggers fire at their true tick; while
// any report is still buffered, newer reports keep buffering too —
// flushing out of order could fire a border alarm at the wrong tick.
//
// With the all-zero ChannelConfig (the default) the protocol is a provable
// no-op, so the link is a pure pass-through: zero Rng draws, zero extra
// metrics, bit-identical accounting to calling the server directly.
// Attaching failover to a perfect channel keeps that property: no channel
// draws ever happen; only the crash plan (itself precomputed) is read.
//
// Threading (sharded runs): per-subscriber protocol state is only ever
// touched by the shard task processing that subscriber's tick, and all
// outage/flush bookkeeping runs in the serial begin_tick phase, so the
// link needs no locks and results are bit-identical at any thread count.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "cluster/shard_map.h"
#include "failover/crash_plan.h"
#include "mobility/trace.h"
#include "net/channel.h"
#include "sim/server_api.h"

namespace salarm::net {

/// Client-side endpoint of the reliable link; one instance per run, shared
/// by all subscribers (state is per-subscriber internally).
class ClientLink {
 public:
  ClientLink(sim::ServerApi& server, const ChannelConfig& config,
             std::uint64_t seed, std::size_t subscriber_count);

  /// Arms degraded-mode handling for a sharded crash-recovery run: the map
  /// resolves each subscriber's owning shard, the plan answers whether it
  /// is down. Both must outlive the link. Requires the two-argument
  /// begin_tick overload from then on (crash detection needs positions).
  void attach_failover(const cluster::ShardMap& map,
                       const failover::CrashPlan& plan);
  bool failover_attached() const { return fo_plan_ != nullptr; }

  /// Serial per-tick bookkeeping: advances outage state machines, injects
  /// synthetic revokes when a carrier drops or the subscriber's shard
  /// crashes (failover), and flushes buffered reports through the server
  /// once the client is connected and every buffered position's shard is
  /// up. Must run after crash/recovery and alarm churn are applied and
  /// before any strategy processes the tick. `samples` carries each
  /// subscriber's current position (indexed by subscriber id); required
  /// when failover is attached, ignored otherwise.
  void begin_tick(std::uint64_t tick,
                  std::span<const mobility::VehicleSample> samples);
  void begin_tick(std::uint64_t tick) { begin_tick(tick, {}); }

  /// Serial end-of-run bookkeeping: flushes reports still buffered by
  /// clients whose outage spans the end of the run, so no trigger is lost.
  void finish();

  /// Reliable position report. Connected: runs the sequence/ACK/
  /// retransmission exchange and returns the alarms fired. In outage:
  /// buffers (position, tick) for the reconnect flush and returns none.
  std::vector<alarms::AlarmId> report(alarms::SubscriberId s,
                                      geo::Point position, std::uint64_t tick);

  /// Best-effort grant requests: nullopt when the client is disconnected
  /// or the response is lost in flight. A client holding no grant reports
  /// every tick, which is always sound.
  std::optional<saferegion::RectSafeRegion> request_rect_region(
      alarms::SubscriberId s, geo::Point position, double heading,
      const saferegion::MotionModel& model,
      const saferegion::MwpsrOptions& options);
  std::optional<saferegion::RectSafeRegion> request_corner_baseline_region(
      alarms::SubscriberId s, geo::Point position, double heading,
      const saferegion::MotionModel& model);
  std::optional<saferegion::PyramidBitmap> request_pyramid_region(
      alarms::SubscriberId s, geo::Point position,
      const saferegion::PyramidConfig& config);
  std::optional<double> request_safe_period(alarms::SubscriberId s,
                                            geo::Point position,
                                            double max_speed_mps,
                                            double tick_seconds);
  std::optional<std::vector<const alarms::SpatialAlarm*>> request_alarms(
      alarms::SubscriberId s, geo::Point position);

  /// Invalidation delivery. Connected: drains the server mailbox and runs
  /// the reliable push/ACK exchange per push. In outage: the server's
  /// pushes stay queued (they cannot reach the client) and only the
  /// synthetic carrier-loss revoke is delivered.
  std::vector<dynamics::InvalidationPush> take_invalidations(
      alarms::SubscriberId s);

  void enable_public_bitmap_cache(const saferegion::PyramidConfig& config);
  const grid::GridOverlay& grid() const { return server_.grid(); }
  /// Metrics object for client-side work of the subscriber currently being
  /// processed (forwards to the server, i.e. per-shard on sharded runs).
  sim::Metrics& metrics() { return server_.metrics(); }

  /// Protocol overhead charged in the serial phases (outage bookkeeping,
  /// reconnect flushes); merged into the run result by sim::Simulation.
  const sim::Metrics& link_metrics() const { return link_metrics_; }

  bool faulty() const { return config_.faulty(); }
  /// Test introspection: whether the subscriber is currently disconnected.
  bool in_outage(alarms::SubscriberId s) const;
  /// Test introspection: next uplink sequence number of the subscriber.
  std::uint32_t uplink_seq(alarms::SubscriberId s) const;
  /// Test introspection: the backoff waits (ms) of the subscriber's most
  /// recent reliable exchange, one entry per retransmitted round. Lives in
  /// per-subscriber state so parallel shard tasks never share it.
  const std::vector<double>& last_exchange_backoffs(
      alarms::SubscriberId s) const {
    return state(s).last_backoffs;
  }

  /// Smallest original tick still buffered by any subscriber, or `tick`
  /// when nothing is buffered — the watermark below which removal-
  /// graveyard tombs can no longer be observed (Server::compact_graveyard).
  std::uint64_t min_pending_stamp(std::uint64_t tick) const;

 private:
  struct BufferedReport {
    geo::Point position;
    std::uint64_t tick = 0;
  };
  struct SubscriberState {
    std::uint32_t uplink_seq = 0;      ///< next report sequence number
    std::uint32_t downlink_seq = 0;    ///< next expected push sequence
    std::uint64_t outage_remaining = 0;  ///< ticks of outage left (0 = up)
    std::vector<BufferedReport> buffer;  ///< reports pending reconnect flush
    std::vector<dynamics::InvalidationPush> pending_synthetic;
    std::vector<double> last_backoffs;   ///< waits of the latest exchange
  };

  SubscriberState& state(alarms::SubscriberId s);
  const SubscriberState& state(alarms::SubscriberId s) const;

  /// Runs one reliable exchange (message + ACK with retransmission) and
  /// charges its overhead to `m`: retransmitted payload bytes, ACK
  /// traffic, duplicate suppressions and the delivery-latency sample.
  /// Returns the number of transmission attempts (1 on a clean exchange).
  std::uint64_t reliable_exchange(alarms::SubscriberId s, bool uplink,
                                  std::size_t payload_bytes, sim::Metrics& m);

  /// Flushes a subscriber's buffered reports through server-side checking
  /// at reconnect (or end of run). Serial phase only.
  void flush_buffer(alarms::SubscriberId s);

  /// Whether the subscriber's buffer may flush at `tick`: every buffered
  /// position's owning shard must be up (always true without failover).
  bool buffer_flushable(const SubscriberState& st, std::uint64_t tick) const;

  /// Degraded mode: true when failover is attached and either the shard
  /// owning `position` is down at `tick` or older reports are still
  /// buffered (report ordering discipline).
  bool degraded(const SubscriberState& st, geo::Point position,
                std::uint64_t tick) const;

  sim::ServerApi& server_;
  ChannelConfig config_;
  FaultyChannel channel_;
  std::vector<SubscriberState> states_;
  sim::Metrics link_metrics_;

  // Failover tier (null unless attach_failover was called).
  const cluster::ShardMap* fo_map_ = nullptr;
  const failover::CrashPlan* fo_plan_ = nullptr;
  /// Tick being processed (set by begin_tick): request_* calls carry no
  /// tick, but the degraded-mode check needs one.
  std::uint64_t current_tick_ = 0;
};

}  // namespace salarm::net
