// Reliable client<->server link: the protocol endpoint the strategies
// program against (DESIGN.md §9).
//
// ClientLink interposes between the client half of a processing strategy
// and a sim::ServerApi (monolithic Server or cluster::ShardedServer) and
// runs the reliability protocol over a net::FaultyChannel:
//
//  * Uplink position reports carry per-session sequence numbers and are
//    ACKed; a lost report or lost ACK triggers timeout + exponential-
//    backoff retransmission until the server's ACK arrives. The server
//    suppresses duplicate deliveries by sequence number (charged at
//    sim::Server::kOpsPerDuplicateDrop each). Round trips are orders of
//    magnitude shorter than the 1 s tick, so a connected client's exchange
//    always completes within its tick.
//  * Downlink grant responses (rect / pyramid / period / alarm list) are
//    best-effort: a lost response simply leaves the client without a grant
//    (request_* returns nullopt), and the client re-reports next tick —
//    grants are self-healing, so retransmitting them buys nothing.
//  * Invalidation pushes are leased: the server needs the client to ACK
//    within the push's deadline. For a connected client the push is
//    retransmitted until ACKed (reliable within the tick). When the client
//    is in a burst outage the lease cannot be re-established: the client
//    conservatively voids its grant the moment the carrier drops (modelled
//    as a synthetic revoke) and buffers a position report every tick; on
//    reconnect the buffered reports are flushed through server-side
//    checking (ServerApi::handle_buffered_update) against the alarm set
//    that was live at each report's original tick. Every uncovered tick is
//    counted as net_lease_fallback_ticks.
//
// With the all-zero ChannelConfig (the default) the protocol is a provable
// no-op, so the link is a pure pass-through: zero Rng draws, zero extra
// metrics, bit-identical accounting to calling the server directly.
//
// Threading (sharded runs): per-subscriber protocol state is only ever
// touched by the shard task processing that subscriber's tick, and all
// outage/flush bookkeeping runs in the serial begin_tick phase, so the
// link needs no locks and results are bit-identical at any thread count.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/channel.h"
#include "sim/server_api.h"

namespace salarm::net {

/// Client-side endpoint of the reliable link; one instance per run, shared
/// by all subscribers (state is per-subscriber internally).
class ClientLink {
 public:
  ClientLink(sim::ServerApi& server, const ChannelConfig& config,
             std::uint64_t seed, std::size_t subscriber_count);

  /// Serial per-tick bookkeeping: advances outage state machines, injects
  /// synthetic revokes when a carrier drops, and flushes buffered reports
  /// through the server when an outage ends. Must run after alarm churn is
  /// applied and before any strategy processes the tick.
  void begin_tick(std::uint64_t tick);

  /// Serial end-of-run bookkeeping: flushes reports still buffered by
  /// clients whose outage spans the end of the run, so no trigger is lost.
  void finish();

  /// Reliable position report. Connected: runs the sequence/ACK/
  /// retransmission exchange and returns the alarms fired. In outage:
  /// buffers (position, tick) for the reconnect flush and returns none.
  std::vector<alarms::AlarmId> report(alarms::SubscriberId s,
                                      geo::Point position, std::uint64_t tick);

  /// Best-effort grant requests: nullopt when the client is disconnected
  /// or the response is lost in flight. A client holding no grant reports
  /// every tick, which is always sound.
  std::optional<saferegion::RectSafeRegion> request_rect_region(
      alarms::SubscriberId s, geo::Point position, double heading,
      const saferegion::MotionModel& model,
      const saferegion::MwpsrOptions& options);
  std::optional<saferegion::RectSafeRegion> request_corner_baseline_region(
      alarms::SubscriberId s, geo::Point position, double heading,
      const saferegion::MotionModel& model);
  std::optional<saferegion::PyramidBitmap> request_pyramid_region(
      alarms::SubscriberId s, geo::Point position,
      const saferegion::PyramidConfig& config);
  std::optional<double> request_safe_period(alarms::SubscriberId s,
                                            geo::Point position,
                                            double max_speed_mps,
                                            double tick_seconds);
  std::optional<std::vector<const alarms::SpatialAlarm*>> request_alarms(
      alarms::SubscriberId s, geo::Point position);

  /// Invalidation delivery. Connected: drains the server mailbox and runs
  /// the reliable push/ACK exchange per push. In outage: the server's
  /// pushes stay queued (they cannot reach the client) and only the
  /// synthetic carrier-loss revoke is delivered.
  std::vector<dynamics::InvalidationPush> take_invalidations(
      alarms::SubscriberId s);

  void enable_public_bitmap_cache(const saferegion::PyramidConfig& config);
  const grid::GridOverlay& grid() const { return server_.grid(); }
  /// Metrics object for client-side work of the subscriber currently being
  /// processed (forwards to the server, i.e. per-shard on sharded runs).
  sim::Metrics& metrics() { return server_.metrics(); }

  /// Protocol overhead charged in the serial phases (outage bookkeeping,
  /// reconnect flushes); merged into the run result by sim::Simulation.
  const sim::Metrics& link_metrics() const { return link_metrics_; }

  bool faulty() const { return config_.faulty(); }
  /// Test introspection: whether the subscriber is currently disconnected.
  bool in_outage(alarms::SubscriberId s) const;
  /// Test introspection: next uplink sequence number of the subscriber.
  std::uint32_t uplink_seq(alarms::SubscriberId s) const;

 private:
  struct BufferedReport {
    geo::Point position;
    std::uint64_t tick = 0;
  };
  struct SubscriberState {
    std::uint32_t uplink_seq = 0;      ///< next report sequence number
    std::uint32_t downlink_seq = 0;    ///< next expected push sequence
    std::uint64_t outage_remaining = 0;  ///< ticks of outage left (0 = up)
    std::vector<BufferedReport> buffer;  ///< reports pending reconnect flush
    std::vector<dynamics::InvalidationPush> pending_synthetic;
  };

  SubscriberState& state(alarms::SubscriberId s);
  const SubscriberState& state(alarms::SubscriberId s) const;

  /// Runs one reliable exchange (message + ACK with retransmission) and
  /// charges its overhead to `m`: retransmitted payload bytes, ACK
  /// traffic, duplicate suppressions and the delivery-latency sample.
  /// Returns the number of transmission attempts (1 on a clean exchange).
  std::uint64_t reliable_exchange(alarms::SubscriberId s, bool uplink,
                                  std::size_t payload_bytes, sim::Metrics& m);

  /// Flushes a subscriber's buffered reports through server-side checking
  /// at reconnect (or end of run). Serial phase only.
  void flush_buffer(alarms::SubscriberId s);

  sim::ServerApi& server_;
  ChannelConfig config_;
  FaultyChannel channel_;
  std::vector<SubscriberState> states_;
  sim::Metrics link_metrics_;
};

}  // namespace salarm::net
