#include "sim/metrics.h"

#include <sstream>

namespace salarm::sim {

void Metrics::merge(const Metrics& other) {
  uplink_messages += other.uplink_messages;
  uplink_bytes += other.uplink_bytes;
  downstream_region_bytes += other.downstream_region_bytes;
  downstream_notice_bytes += other.downstream_notice_bytes;
  client_checks += other.client_checks;
  client_check_ops += other.client_check_ops;
  server_alarm_ops += other.server_alarm_ops;
  server_region_ops += other.server_region_ops;
  handoff_messages += other.handoff_messages;
  handoff_bytes += other.handoff_bytes;
  alarms_installed += other.alarms_installed;
  alarms_removed += other.alarms_removed;
  invalidation_pushes += other.invalidation_pushes;
  invalidation_bytes += other.invalidation_bytes;
  net_retransmissions += other.net_retransmissions;
  net_duplicates_dropped += other.net_duplicates_dropped;
  net_ack_messages += other.net_ack_messages;
  net_ack_bytes += other.net_ack_bytes;
  net_lease_fallback_ticks += other.net_lease_fallback_ticks;
  net_buffered_reports += other.net_buffered_reports;
  net_outages += other.net_outages;
  net_delivery_latency_ms.merge(other.net_delivery_latency_ms);
  safe_region_recomputes += other.safe_region_recomputes;
  triggers += other.triggers;
  region_payload_bytes.merge(other.region_payload_bytes);
}

std::string Metrics::to_string() const {
  std::ostringstream os;
  os << "uplink_messages=" << uplink_messages
     << " downstream_region_bytes=" << downstream_region_bytes
     << " client_checks=" << client_checks
     << " client_check_ops=" << client_check_ops
     << " server_alarm_ops=" << server_alarm_ops
     << " server_region_ops=" << server_region_ops
     << " handoff_messages=" << handoff_messages
     << " handoff_bytes=" << handoff_bytes
     << " alarms_installed=" << alarms_installed
     << " alarms_removed=" << alarms_removed
     << " invalidation_pushes=" << invalidation_pushes
     << " invalidation_bytes=" << invalidation_bytes
     << " net_retransmissions=" << net_retransmissions
     << " net_duplicates_dropped=" << net_duplicates_dropped
     << " net_ack_messages=" << net_ack_messages
     << " net_ack_bytes=" << net_ack_bytes
     << " net_lease_fallback_ticks=" << net_lease_fallback_ticks
     << " net_buffered_reports=" << net_buffered_reports
     << " net_outages=" << net_outages
     << " recomputes=" << safe_region_recomputes
     << " triggers=" << triggers;
  return os.str();
}

}  // namespace salarm::sim
