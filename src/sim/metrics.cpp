#include "sim/metrics.h"

#include <sstream>

namespace salarm::sim {

void Metrics::merge(const Metrics& other) {
  uplink_messages += other.uplink_messages;
  uplink_bytes += other.uplink_bytes;
  downstream_region_bytes += other.downstream_region_bytes;
  downstream_notice_bytes += other.downstream_notice_bytes;
  client_checks += other.client_checks;
  client_check_ops += other.client_check_ops;
  server_alarm_ops += other.server_alarm_ops;
  server_region_ops += other.server_region_ops;
  handoff_messages += other.handoff_messages;
  handoff_bytes += other.handoff_bytes;
  alarms_installed += other.alarms_installed;
  alarms_removed += other.alarms_removed;
  invalidation_pushes += other.invalidation_pushes;
  invalidation_bytes += other.invalidation_bytes;
  net_retransmissions += other.net_retransmissions;
  net_duplicates_dropped += other.net_duplicates_dropped;
  net_ack_messages += other.net_ack_messages;
  net_ack_bytes += other.net_ack_bytes;
  net_lease_fallback_ticks += other.net_lease_fallback_ticks;
  net_buffered_reports += other.net_buffered_reports;
  net_outages += other.net_outages;
  net_delivery_latency_ms.merge(other.net_delivery_latency_ms);
  fo_crashes += other.fo_crashes;
  fo_recoveries += other.fo_recoveries;
  fo_recovery_ticks += other.fo_recovery_ticks;
  fo_checkpoints += other.fo_checkpoints;
  fo_checkpoint_bytes += other.fo_checkpoint_bytes;
  fo_journal_records += other.fo_journal_records;
  fo_journal_bytes += other.fo_journal_bytes;
  fo_journal_replays += other.fo_journal_replays;
  fo_redo_events += other.fo_redo_events;
  fo_reregistrations += other.fo_reregistrations;
  fo_reregistration_bytes += other.fo_reregistration_bytes;
  fo_grant_voids += other.fo_grant_voids;
  fo_degraded_ticks += other.fo_degraded_ticks;
  fo_buffered_reports += other.fo_buffered_reports;
  safe_region_recomputes += other.safe_region_recomputes;
  triggers += other.triggers;
  region_payload_bytes.merge(other.region_payload_bytes);
}

std::string Metrics::to_string() const {
  std::ostringstream os;
  os << "uplink_messages=" << uplink_messages
     << " downstream_region_bytes=" << downstream_region_bytes
     << " client_checks=" << client_checks
     << " client_check_ops=" << client_check_ops
     << " server_alarm_ops=" << server_alarm_ops
     << " server_region_ops=" << server_region_ops
     << " handoff_messages=" << handoff_messages
     << " handoff_bytes=" << handoff_bytes
     << " alarms_installed=" << alarms_installed
     << " alarms_removed=" << alarms_removed
     << " invalidation_pushes=" << invalidation_pushes
     << " invalidation_bytes=" << invalidation_bytes
     << " net_retransmissions=" << net_retransmissions
     << " net_duplicates_dropped=" << net_duplicates_dropped
     << " net_ack_messages=" << net_ack_messages
     << " net_ack_bytes=" << net_ack_bytes
     << " net_lease_fallback_ticks=" << net_lease_fallback_ticks
     << " net_buffered_reports=" << net_buffered_reports
     << " net_outages=" << net_outages
     << " fo_crashes=" << fo_crashes << " fo_recoveries=" << fo_recoveries
     << " fo_recovery_ticks=" << fo_recovery_ticks
     << " fo_checkpoints=" << fo_checkpoints
     << " fo_checkpoint_bytes=" << fo_checkpoint_bytes
     << " fo_journal_records=" << fo_journal_records
     << " fo_journal_bytes=" << fo_journal_bytes
     << " fo_journal_replays=" << fo_journal_replays
     << " fo_redo_events=" << fo_redo_events
     << " fo_reregistrations=" << fo_reregistrations
     << " fo_reregistration_bytes=" << fo_reregistration_bytes
     << " fo_grant_voids=" << fo_grant_voids
     << " fo_degraded_ticks=" << fo_degraded_ticks
     << " fo_buffered_reports=" << fo_buffered_reports
     << " recomputes=" << safe_region_recomputes
     << " triggers=" << triggers;
  return os.str();
}

}  // namespace salarm::sim
