// Trace-driven simulation engine.
//
// A Simulation owns one (network, alarms, trace, grid) workload and runs
// any number of processing strategies against the *identical* motion
// pattern — the paper's methodology for comparing PRD, SP, MWPSR, GBSR/
// PBSR and OPT. Each run gets a fresh Server and Metrics; the ground-truth
// oracle is computed once and every run is scored against it.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "alarms/alarm_store.h"
#include "dynamics/churn.h"
#include "failover/crash_plan.h"
#include "grid/grid_overlay.h"
#include "mobility/position_source.h"
#include "net/channel.h"
#include "net/link.h"
#include "sim/metrics.h"
#include "sim/oracle.h"
#include "sim/server.h"
#include "sim/tick_pipeline.h"
#include "strategies/strategy.h"

namespace salarm::sim {

struct RunResult {
  std::string strategy;
  Metrics metrics;
  AccuracyReport accuracy;
  std::size_t ticks = 0;
  std::size_t subscribers = 0;
  double duration_s = 0.0;
  /// Real wall-clock seconds the run took (informational; the cost models
  /// use counted events, not wall time).
  double wall_seconds = 0.0;
  /// The run's trigger events in (tick, subscriber, alarm) order; the
  /// determinism tests compare these byte-for-byte across thread counts.
  std::vector<alarms::TriggerEvent> trigger_log;
};

/// Configuration of the sharded (cluster) run mode.
struct ShardedRunOptions {
  /// Number of spatial shards (clamped to the grid's stripe count).
  std::size_t shards = 4;
  /// Worker threads for the tick executor; 0 = hardware concurrency.
  /// Results are bit-identical for any value.
  std::size_t threads = 1;
};

class Simulation {
 public:
  /// The source, store and grid must outlive the simulation. `ticks`
  /// counts the initial positions as tick 0 and must be >= 2. Any
  /// PositionSource works: the road-network trace generator, the
  /// random-waypoint model, or a recorded/imported trace.
  Simulation(mobility::PositionSource& source, alarms::AlarmStore& store,
             const grid::GridOverlay& grid, std::size_t ticks);

  /// Builds a strategy against the given client link; called once per run.
  /// The same factory drives both run modes — strategies are written
  /// against net::ClientLink, which wraps either server implementation
  /// behind the reliability protocol, so they cannot tell a monolithic
  /// server from a cluster, nor a perfect channel from a faulty one.
  using StrategyFactory = std::function<
      std::unique_ptr<strategies::ProcessingStrategy>(net::ClientLink&)>;

  /// Replays the trace from the start under a fresh strategy instance and
  /// returns its metrics and accuracy against the oracle. Shorthand for
  /// run_sharded with {shards = 1, threads = 1}: single-node operation is
  /// the one-shard degenerate case of the same TickPipeline (DESIGN.md
  /// §11), bit-identical to the historical monolithic loop (the golden
  /// test in tests/pipeline_test.cpp pins this).
  RunResult run(const StrategyFactory& factory);

  /// Processes the trace on a cluster::ShardedServer through the unified
  /// TickPipeline: subscribers are grouped by owning shard each tick and
  /// the groups fan out over a fixed thread pool. Metrics are the
  /// stable-order merge of the per-shard metrics; results are
  /// bit-identical for any thread count. Accuracy against the oracle is
  /// still enforced by the caller's tests — sharding is exact (see
  /// cluster/sharded_server.h).
  RunResult run_sharded(const StrategyFactory& factory,
                        const ShardedRunOptions& options);

  /// Ground-truth trigger events (computed on first use, then cached).
  const std::vector<alarms::TriggerEvent>& oracle();

  /// Enables alarm churn (DESIGN.md §8): snapshots the store's current
  /// alarm set as the initial state, precomputes a deterministic
  /// install/remove/expiry timeline for ticks [1, ticks), and invalidates
  /// the cached oracle. Every subsequent run — monolithic or sharded — and
  /// the oracle replay the identical timeline; the store is rewound to the
  /// snapshot at the start of each replay, so runs stay independent.
  void set_churn(const dynamics::ChurnConfig& config, std::uint64_t seed);

  /// Routes every subsequent run through a fault-injecting channel
  /// (DESIGN.md §9): loss, delay, duplication and burst outages per
  /// ChannelConfig, seeded deterministically. Faults never change the
  /// ground truth — the oracle stays valid — only the protocol work
  /// needed to preserve it. The all-zero config restores the perfect
  /// pass-through link.
  void set_channel(const net::ChannelConfig& config, std::uint64_t seed);

  const net::ChannelConfig& channel_config() const { return channel_config_; }

  /// Arms shard crash-recovery for every subsequent run (DESIGN.md §10):
  /// a fresh CrashPlan is drawn per run from (seed, shard count, ticks),
  /// shards checkpoint/journal per `config`, and clients degrade while
  /// their shard is down. Crashes never change the ground truth — the
  /// oracle stays valid — only the recovery work needed to preserve it.
  /// Because run() is a one-shard cluster, single-server crash-recovery
  /// works too: a crash of shard 0 takes the whole service down and every
  /// client buffers until recovery.
  void set_failover(const failover::FailoverConfig& config,
                    std::uint64_t seed);
  bool failover_enabled() const { return failover_config_.has_value(); }

  bool churn_enabled() const { return scheduler_.has_value(); }
  /// The precomputed churn timeline; only valid after set_churn.
  const dynamics::AlarmScheduler& churn_scheduler() const;

  std::size_t ticks() const { return ticks_; }
  double tick_seconds() const { return source_.tick_seconds(); }
  double duration_s() const {
    return static_cast<double>(ticks_) * tick_seconds();
  }

  /// Test hook: observes every serial phase the pipeline enters, on every
  /// subsequent run (see sim/tick_pipeline.h). Pass {} to detach.
  void set_phase_observer(TickPipeline::PhaseObserver observer) {
    phase_observer_ = std::move(observer);
  }

 private:
  /// Rewinds the store to the churn snapshot (no-op without churn).
  void rewind_store();
  /// The one run path: builds a `shards`-shard cluster over the store,
  /// wires the link and strategy, and replays the trace through the
  /// TickPipeline.
  RunResult run_impl(const StrategyFactory& factory, std::size_t shards,
                     std::size_t threads);

  mobility::PositionSource& source_;
  alarms::AlarmStore& store_;
  const grid::GridOverlay& grid_;
  std::size_t ticks_;
  std::optional<std::vector<alarms::TriggerEvent>> oracle_;
  std::optional<dynamics::AlarmScheduler> scheduler_;
  std::vector<alarms::SpatialAlarm> initial_alarms_;
  net::ChannelConfig channel_config_{};
  std::uint64_t channel_seed_ = 0;
  std::optional<failover::FailoverConfig> failover_config_;
  std::uint64_t failover_seed_ = 0;
  TickPipeline::PhaseObserver phase_observer_;
};

}  // namespace salarm::sim
