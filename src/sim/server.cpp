#include "sim/server.h"

#include "saferegion/corner_baseline.h"

#include <algorithm>
#include <limits>

#include "common/error.h"

namespace salarm::sim {

namespace {

/// Rectangles of the relevant alarms, for the geometric safe-region
/// algorithms.
std::vector<geo::Rect> regions_of(
    const std::vector<const alarms::SpatialAlarm*>& list) {
  std::vector<geo::Rect> out;
  out.reserve(list.size());
  for (const alarms::SpatialAlarm* a : list) out.push_back(a->region);
  return out;
}

}  // namespace

Server::Server(alarms::AlarmStore& store, const grid::GridOverlay& grid,
               Metrics& metrics)
    : store_(store), grid_(grid), metrics_(metrics) {}

std::vector<alarms::AlarmId> Server::handle_position_update(
    alarms::SubscriberId s, geo::Point position, std::uint64_t tick) {
  ++metrics_.uplink_messages;
  metrics_.uplink_bytes += wire::encoded_size(wire::PositionUpdate{});
  metrics_.server_alarm_ops += kOpsPerUpdateOverhead;
  const auto fired = charged(&Metrics::server_alarm_ops, [&] {
    return store_.process_position(s, position, tick, &trigger_log_);
  });
  metrics_.triggers += fired.size();
  for (const alarms::AlarmId id : fired) {
    metrics_.downstream_notice_bytes +=
        wire::trigger_notice_size(store_.alarm(id).message.size());
  }
  return fired;
}

saferegion::RectSafeRegion Server::compute_rect_region(
    alarms::SubscriberId s, geo::Point position, double heading,
    const saferegion::MotionModel& model,
    const saferegion::MwpsrOptions& options) {
  const geo::Rect cell = grid_.cell_rect(grid_.cell_of(position));
  const auto relevant = charged(&Metrics::server_region_ops, [&] {
    return store_.relevant_in_window(cell, s);
  });
  const auto region = saferegion::compute_mwpsr(
      position, heading, cell, regions_of(relevant), model, options);
  metrics_.server_region_ops += region.ops;
  ++metrics_.safe_region_recomputes;
  const std::size_t bytes = wire::rect_message_size();
  metrics_.downstream_region_bytes += bytes;
  metrics_.region_payload_bytes.add(static_cast<double>(bytes));
  return region;
}

saferegion::RectSafeRegion Server::compute_corner_baseline_region(
    alarms::SubscriberId s, geo::Point position, double heading,
    const saferegion::MotionModel& model) {
  const geo::Rect cell = grid_.cell_rect(grid_.cell_of(position));
  const auto relevant = charged(&Metrics::server_region_ops, [&] {
    return store_.relevant_in_window(cell, s);
  });
  const auto region = saferegion::compute_corner_baseline(
      position, heading, cell, regions_of(relevant), model);
  metrics_.server_region_ops += region.ops;
  ++metrics_.safe_region_recomputes;
  const std::size_t bytes = wire::rect_message_size();
  metrics_.downstream_region_bytes += bytes;
  metrics_.region_payload_bytes.add(static_cast<double>(bytes));
  return region;
}

void Server::enable_public_bitmap_cache(
    const saferegion::PyramidConfig& config) {
  cache_config_ = config;
  public_cache_.assign(grid_.cell_count(), std::nullopt);
}

saferegion::PyramidBitmap Server::compute_pyramid_region(
    alarms::SubscriberId s, geo::Point position,
    const saferegion::PyramidConfig& config) {
  const grid::CellId cell_id = grid_.cell_of(position);
  const geo::Rect cell = grid_.cell_rect(cell_id);

  auto finish = [&](saferegion::PyramidBitmap bitmap) {
    ++metrics_.safe_region_recomputes;
    const std::size_t bytes = wire::pyramid_message_size(bitmap.bit_size());
    metrics_.downstream_region_bytes += bytes;
    metrics_.region_payload_bytes.add(static_cast<double>(bytes));
    return bitmap;
  };

  const bool cacheable =
      cache_config_.has_value() &&
      cache_config_->fanout_u == config.fanout_u &&
      cache_config_->fanout_v == config.fanout_v &&
      cache_config_->height == config.height &&
      cache_config_->max_bits == config.max_bits;
  if (cacheable) {
    auto& slot = public_cache_[grid_.flat_index(cell_id)];
    if (!slot.has_value()) {
      // One-time, subscriber-independent work for this cell.
      const auto public_alarms = charged(&Metrics::server_region_ops, [&] {
        return store_.public_in_window(cell);
      });
      std::uint64_t build_ops = 0;
      PublicCacheEntry entry{
          saferegion::PyramidBitmap::build(cell, regions_of(public_alarms),
                                           config, &build_ops),
          {}};
      for (const alarms::SpatialAlarm* a : public_alarms) {
        entry.public_ids.push_back(a->id);
      }
      metrics_.server_region_ops += build_ops;
      slot = std::move(entry);
    }
    // The cached bitmap treats every public alarm as live; if this
    // subscriber has already spent one here, it would be needlessly
    // conservative (the subscriber would ping from inside the spent
    // region), so fall back to the exact per-subscriber build.
    metrics_.server_region_ops += slot->public_ids.size();
    const bool any_spent =
        std::any_of(slot->public_ids.begin(), slot->public_ids.end(),
                    [&](alarms::AlarmId id) { return store_.spent(id, s); });
    if (!any_spent) {
      const auto private_alarms = charged(&Metrics::server_region_ops, [&] {
        return store_.relevant_nonpublic_in_window(cell, s);
      });
      if (private_alarms.empty()) {
        ++metrics_.server_region_ops;  // cache hand-out
        return finish(slot->bitmap);
      }
      std::uint64_t ops = 0;
      auto private_bitmap = saferegion::PyramidBitmap::build(
          cell, regions_of(private_alarms), config, &ops);
      auto merged = slot->bitmap.intersect(private_bitmap, &ops);
      metrics_.server_region_ops += ops;
      return finish(std::move(merged));
    }
  }

  const auto relevant = charged(&Metrics::server_region_ops, [&] {
    return store_.relevant_in_window(cell, s);
  });
  std::uint64_t build_ops = 0;
  auto bitmap = saferegion::PyramidBitmap::build(cell, regions_of(relevant),
                                                 config, &build_ops);
  metrics_.server_region_ops += build_ops;
  return finish(std::move(bitmap));
}

double Server::compute_safe_period(alarms::SubscriberId s,
                                   geo::Point position, double max_speed_mps,
                                   double tick_seconds) {
  return compute_safe_period(s, position, max_speed_mps, tick_seconds,
                             std::numeric_limits<double>::infinity());
}

double Server::compute_safe_period(alarms::SubscriberId s,
                                   geo::Point position, double max_speed_mps,
                                   double tick_seconds,
                                   double distance_bound) {
  SALARM_REQUIRE(max_speed_mps > 0.0, "speed bound must be positive");
  SALARM_REQUIRE(tick_seconds > 0.0, "tick must be positive");
  SALARM_REQUIRE(distance_bound >= 0.0, "distance bound must be nonnegative");
  const double nearest = charged(&Metrics::server_region_ops, [&] {
    return store_.nearest_relevant_distance(position, s);
  });
  ++metrics_.safe_region_recomputes;
  const double distance = std::min(nearest, distance_bound);
  if (std::isinf(distance)) return distance;  // no relevant alarms in reach
  const std::size_t bytes = wire::encoded_size(wire::SafePeriodMsg{});
  metrics_.downstream_region_bytes += bytes;
  metrics_.region_payload_bytes.add(static_cast<double>(bytes));
  return std::max(distance / max_speed_mps, tick_seconds);
}

std::vector<const alarms::SpatialAlarm*> Server::push_alarms(
    alarms::SubscriberId s, geo::Point position) {
  const geo::Rect cell = grid_.cell_rect(grid_.cell_of(position));
  auto relevant = charged(&Metrics::server_region_ops, [&] {
    return store_.relevant_in_window(cell, s);
  });
  ++metrics_.safe_region_recomputes;
  std::size_t message_bytes = 0;
  for (const alarms::SpatialAlarm* a : relevant) {
    message_bytes += a->message.size();
  }
  const std::size_t bytes =
      wire::alarm_push_size(relevant.size(), message_bytes);
  metrics_.downstream_region_bytes += bytes;
  metrics_.region_payload_bytes.add(static_cast<double>(bytes));
  return relevant;
}

}  // namespace salarm::sim
