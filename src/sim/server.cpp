#include "sim/server.h"

#include "saferegion/corner_baseline.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/error.h"

namespace salarm::sim {

namespace {

/// Rectangles of the relevant alarms, for the geometric safe-region
/// algorithms.
std::vector<geo::Rect> regions_of(
    const std::vector<const alarms::SpatialAlarm*>& list) {
  std::vector<geo::Rect> out;
  out.reserve(list.size());
  for (const alarms::SpatialAlarm* a : list) out.push_back(a->region);
  return out;
}

}  // namespace

Server::Server(alarms::AlarmStore& store, const grid::GridOverlay& grid,
               Metrics& metrics)
    : store_(store), grid_(grid), metrics_(metrics) {}

std::vector<alarms::AlarmId> Server::handle_position_update(
    alarms::SubscriberId s, geo::Point position, std::uint64_t tick) {
  ++metrics_.uplink_messages;
  metrics_.uplink_bytes += wire::encoded_size(wire::PositionUpdate{});
  metrics_.server_alarm_ops += kOpsPerUpdateOverhead;
  const auto fired = charged(&Metrics::server_alarm_ops, [&] {
    return store_.process_position(s, position, tick, &trigger_log_);
  });
  metrics_.triggers += fired.size();
  for (const alarms::AlarmId id : fired) {
    metrics_.downstream_notice_bytes +=
        wire::trigger_notice_size(store_.alarm(id).message.size());
  }
  return fired;
}

std::vector<alarms::AlarmId> Server::handle_buffered_update(
    alarms::SubscriberId s, geo::Point position, std::uint64_t stamp_tick) {
  ++metrics_.uplink_messages;
  metrics_.uplink_bytes += wire::encoded_size(wire::PositionUpdate{});
  metrics_.server_alarm_ops += kOpsPerUpdateOverhead;
  // Live index, restricted to alarms already installed at the stamp.
  // Without churn the filter accepts everything and this is exactly
  // handle_position_update.
  auto fired = charged(&Metrics::server_alarm_ops, [&] {
    return store_.process_position(
        s, position, stamp_tick, &trigger_log_, [&](alarms::AlarmId id) {
          const auto it = installed_at_.find(id);
          return it == installed_at_.end() || it->second <= stamp_tick;
        });
  });
  // Removal graveyard: alarms live at the stamp but uninstalled since.
  // Spent state is shared with the live store, so an alarm that fired
  // before its removal does not fire again here (and vice versa).
  metrics_.server_alarm_ops += graveyard_.size();
  for (const Tomb& tomb : graveyard_) {
    if (stamp_tick < tomb.installed_at || stamp_tick >= tomb.removed_at) {
      continue;
    }
    if (!tomb.alarm.region.interior_contains(position)) continue;
    if (!alarms::AlarmStore::subscribed(tomb.alarm, s)) continue;
    if (store_.spent(tomb.alarm.id, s)) continue;
    store_.mark_spent(tomb.alarm.id, s);
    trigger_log_.push_back({tomb.alarm.id, s, stamp_tick});
    fired.push_back(tomb.alarm.id);
    metrics_.downstream_notice_bytes +=
        wire::trigger_notice_size(tomb.alarm.message.size());
  }
  metrics_.triggers += fired.size();
  for (const alarms::AlarmId id : fired) {
    if (store_.installed(id)) {
      metrics_.downstream_notice_bytes +=
          wire::trigger_notice_size(store_.alarm(id).message.size());
    }
  }
  return fired;
}

saferegion::RectSafeRegion Server::compute_rect_region(
    alarms::SubscriberId s, geo::Point position, double heading,
    const saferegion::MotionModel& model,
    const saferegion::MwpsrOptions& options) {
  const geo::Rect cell = grid_.cell_rect(grid_.cell_of(position));
  const auto relevant = charged(&Metrics::server_region_ops, [&] {
    return store_.relevant_in_window(cell, s);
  });
  const auto region = saferegion::compute_mwpsr(
      position, heading, cell, regions_of(relevant), model, options);
  metrics_.server_region_ops += region.ops;
  ++metrics_.safe_region_recomputes;
  const std::size_t bytes = wire::rect_message_size();
  metrics_.downstream_region_bytes += bytes;
  metrics_.region_payload_bytes.add(static_cast<double>(bytes));
  record_grant(s, dynamics::GrantKind::kRect, region.rect);
  return region;
}

saferegion::RectSafeRegion Server::compute_corner_baseline_region(
    alarms::SubscriberId s, geo::Point position, double heading,
    const saferegion::MotionModel& model) {
  const geo::Rect cell = grid_.cell_rect(grid_.cell_of(position));
  const auto relevant = charged(&Metrics::server_region_ops, [&] {
    return store_.relevant_in_window(cell, s);
  });
  const auto region = saferegion::compute_corner_baseline(
      position, heading, cell, regions_of(relevant), model);
  metrics_.server_region_ops += region.ops;
  ++metrics_.safe_region_recomputes;
  const std::size_t bytes = wire::rect_message_size();
  metrics_.downstream_region_bytes += bytes;
  metrics_.region_payload_bytes.add(static_cast<double>(bytes));
  record_grant(s, dynamics::GrantKind::kRect, region.rect);
  return region;
}

void Server::enable_public_bitmap_cache(
    const saferegion::PyramidConfig& config) {
  cache_config_ = config;
  public_cache_.assign(grid_.cell_count(), std::nullopt);
}

saferegion::PyramidBitmap Server::compute_pyramid_region(
    alarms::SubscriberId s, geo::Point position,
    const saferegion::PyramidConfig& config) {
  const grid::CellId cell_id = grid_.cell_of(position);
  const geo::Rect cell = grid_.cell_rect(cell_id);

  auto finish = [&](saferegion::PyramidBitmap bitmap) {
    ++metrics_.safe_region_recomputes;
    const std::size_t bytes = wire::pyramid_message_size(bitmap.bit_size());
    metrics_.downstream_region_bytes += bytes;
    metrics_.region_payload_bytes.add(static_cast<double>(bytes));
    // The client holds a bitmap of the whole base cell, so the cell is the
    // grant footprint: any install inside it must shrink the bitmap.
    record_grant(s, dynamics::GrantKind::kPyramid, cell);
    return bitmap;
  };

  const bool cacheable =
      cache_config_.has_value() &&
      cache_config_->fanout_u == config.fanout_u &&
      cache_config_->fanout_v == config.fanout_v &&
      cache_config_->height == config.height &&
      cache_config_->max_bits == config.max_bits;
  if (cacheable) {
    auto& slot = public_cache_[grid_.flat_index(cell_id)];
    if (!slot.has_value()) {
      // One-time, subscriber-independent work for this cell.
      const auto public_alarms = charged(&Metrics::server_region_ops, [&] {
        return store_.public_in_window(cell);
      });
      std::uint64_t build_ops = 0;
      PublicCacheEntry entry{
          saferegion::PyramidBitmap::build(cell, regions_of(public_alarms),
                                           config, &build_ops),
          {}};
      for (const alarms::SpatialAlarm* a : public_alarms) {
        entry.public_ids.push_back(a->id);
      }
      metrics_.server_region_ops += build_ops;
      slot = std::move(entry);
    }
    // The cached bitmap treats every public alarm as live; if this
    // subscriber has already spent one here, it would be needlessly
    // conservative (the subscriber would ping from inside the spent
    // region), so fall back to the exact per-subscriber build.
    metrics_.server_region_ops += slot->public_ids.size();
    const bool any_spent =
        std::any_of(slot->public_ids.begin(), slot->public_ids.end(),
                    [&](alarms::AlarmId id) { return store_.spent(id, s); });
    if (!any_spent) {
      const auto private_alarms = charged(&Metrics::server_region_ops, [&] {
        return store_.relevant_nonpublic_in_window(cell, s);
      });
      if (private_alarms.empty()) {
        ++metrics_.server_region_ops;  // cache hand-out
        return finish(slot->bitmap);
      }
      std::uint64_t ops = 0;
      auto private_bitmap = saferegion::PyramidBitmap::build(
          cell, regions_of(private_alarms), config, &ops);
      auto merged = slot->bitmap.intersect(private_bitmap, &ops);
      metrics_.server_region_ops += ops;
      return finish(std::move(merged));
    }
  }

  const auto relevant = charged(&Metrics::server_region_ops, [&] {
    return store_.relevant_in_window(cell, s);
  });
  std::uint64_t build_ops = 0;
  auto bitmap = saferegion::PyramidBitmap::build(cell, regions_of(relevant),
                                                 config, &build_ops);
  metrics_.server_region_ops += build_ops;
  return finish(std::move(bitmap));
}

double Server::compute_safe_period(alarms::SubscriberId s,
                                   geo::Point position, double max_speed_mps,
                                   double tick_seconds) {
  return compute_safe_period(s, position, max_speed_mps, tick_seconds,
                             std::numeric_limits<double>::infinity());
}

double Server::compute_safe_period(alarms::SubscriberId s,
                                   geo::Point position, double max_speed_mps,
                                   double tick_seconds,
                                   double distance_bound) {
  SALARM_REQUIRE(max_speed_mps > 0.0, "speed bound must be positive");
  SALARM_REQUIRE(tick_seconds > 0.0, "tick must be positive");
  SALARM_REQUIRE(distance_bound >= 0.0, "distance bound must be nonnegative");
  const double nearest = charged(&Metrics::server_region_ops, [&] {
    return store_.nearest_relevant_distance(position, s);
  });
  ++metrics_.safe_region_recomputes;
  const double distance = std::min(nearest, distance_bound);
  if (std::isinf(distance)) {
    // No relevant alarm in reach: the client goes silent forever, so a
    // later install *anywhere* relevant to it must revoke the grant.
    record_grant(s, dynamics::GrantKind::kSafePeriod, grid_.universe());
    return distance;
  }
  const std::size_t bytes = wire::encoded_size(wire::SafePeriodMsg{});
  metrics_.downstream_region_bytes += bytes;
  metrics_.region_payload_bytes.add(static_cast<double>(bytes));
  // Everywhere the client can reach before the period expires (worst-case
  // straight-line travel at the speed bound) is the grant footprint.
  record_grant(s, dynamics::GrantKind::kSafePeriod,
               geo::Rect::centered_square(position, 2.0 * distance)
                   .intersection(grid_.universe())
                   .value_or(geo::Rect(position, position)));
  return std::max(distance / max_speed_mps, tick_seconds);
}

std::vector<const alarms::SpatialAlarm*> Server::push_alarms(
    alarms::SubscriberId s, geo::Point position) {
  const geo::Rect cell = grid_.cell_rect(grid_.cell_of(position));
  auto relevant = charged(&Metrics::server_region_ops, [&] {
    return store_.relevant_in_window(cell, s);
  });
  ++metrics_.safe_region_recomputes;
  std::size_t message_bytes = 0;
  for (const alarms::SpatialAlarm* a : relevant) {
    message_bytes += a->message.size();
  }
  const std::size_t bytes =
      wire::alarm_push_size(relevant.size(), message_bytes);
  metrics_.downstream_region_bytes += bytes;
  metrics_.region_payload_bytes.add(static_cast<double>(bytes));
  // The client evaluates this cell's alarm list locally until it leaves
  // the cell: installs inside the cell must be push-appended to the list.
  record_grant(s, dynamics::GrantKind::kAlarmList, cell);
  return relevant;
}

void Server::enable_dynamics(std::size_t subscriber_count) {
  dynamics_enabled_ = true;
  mailboxes_.assign(subscriber_count, {});
}

void Server::record_grant(alarms::SubscriberId s, dynamics::GrantKind kind,
                          const geo::Rect& bounds) {
  if (!dynamics_enabled_) return;
  const std::uint64_t before = sessions_.node_accesses();
  sessions_.record(s, kind, bounds);
  metrics_.server_region_ops +=
      (sessions_.node_accesses() - before) * kOpsPerNodeAccess;
}

void Server::push_invalidation(alarms::SubscriberId s,
                               dynamics::GrantKind kind,
                               const alarms::SpatialAlarm& alarm) {
  dynamics::InvalidationPush push;
  push.alarm = alarm.id;
  push.region = alarm.region;
  switch (kind) {
    case dynamics::GrantKind::kPyramid:
      push.action = dynamics::InvalidationAction::kShrink;
      break;
    case dynamics::GrantKind::kAlarmList:
      push.action = dynamics::InvalidationAction::kAlarmAdd;
      push.message = alarm.message;
      break;
    default:
      push.action = dynamics::InvalidationAction::kRevoke;
      break;
  }
  ++metrics_.invalidation_pushes;
  metrics_.invalidation_bytes +=
      wire::invalidation_message_size(push.message.size());
  // A revoked grant is gone: the client re-contacts the server this tick
  // and a fresh grant will be recorded then. Shrink / alarm-add grants
  // keep their footprint (the cell) — later installs still need pushes.
  if (push.action == dynamics::InvalidationAction::kRevoke) {
    sessions_.clear(s);
  }
  if (s >= mailboxes_.size()) mailboxes_.resize(s + 1);
  mailboxes_[s].push_back(std::move(push));
}

void Server::install_alarm(const alarms::SpatialAlarm& alarm,
                           std::uint64_t tick) {
  SALARM_REQUIRE(dynamics_enabled_, "dynamics tier not enabled");
  charged(&Metrics::server_alarm_ops, [&] {
    store_.install(alarm);
    return 0;
  });
  installed_at_[alarm.id] = tick;
  metrics_.server_alarm_ops += kOpsPerUpdateOverhead;
  ++metrics_.alarms_installed;
  // Use the admitted copy from here on: install normalizes (sorts) the
  // subscriber list, which the subscribed() check below requires.
  const alarms::SpatialAlarm& installed = store_.alarm(alarm.id);

  // A cached public bitmap that predates a public install would mask the
  // new alarm for every future hand-out: drop the affected cells.
  if (installed.scope == alarms::AlarmScope::kPublic &&
      cache_config_.has_value()) {
    for (const grid::CellId cell :
         grid_.cells_intersecting(installed.region)) {
      public_cache_[grid_.flat_index(cell)].reset();
    }
  }

  // Range-query the outstanding grants and push to every affected
  // subscriber the alarm applies to.
  const std::uint64_t before = sessions_.node_accesses();
  std::vector<std::pair<alarms::SubscriberId, dynamics::GrantKind>> affected;
  sessions_.visit_intersecting(
      installed.region,
      [&](alarms::SubscriberId s, const dynamics::SessionIndex::Grant& g) {
        affected.emplace_back(s, g.kind);
        return true;
      });
  metrics_.server_region_ops +=
      (sessions_.node_accesses() - before) * kOpsPerNodeAccess;
  for (const auto& [s, kind] : affected) {
    if (!alarms::AlarmStore::subscribed(installed, s)) continue;
    push_invalidation(s, kind, installed);
  }
}

bool Server::remove_alarm(alarms::AlarmId id, std::uint64_t tick) {
  SALARM_REQUIRE(dynamics_enabled_, "dynamics tier not enabled");
  std::optional<Tomb> tomb;
  if (store_.installed(id)) {
    const auto it = installed_at_.find(id);
    const std::uint64_t born = it == installed_at_.end() ? 0 : it->second;
    tomb = Tomb{store_.alarm(id), born, tick};
  }
  const bool removed = charged(&Metrics::server_alarm_ops, [&] {
    return store_.uninstall(id);
  });
  if (removed) {
    graveyard_.push_back(std::move(*tomb));
    installed_at_.erase(id);
    metrics_.server_alarm_ops += kOpsPerUpdateOverhead;
    ++metrics_.alarms_removed;
  }
  return removed;
}

std::vector<dynamics::InvalidationPush> Server::take_invalidations(
    alarms::SubscriberId s) {
  if (s >= mailboxes_.size() || mailboxes_[s].empty()) return {};
  return std::exchange(mailboxes_[s], {});
}

void Server::crash() {
  store_.clear();
  installed_at_.clear();
  graveyard_.clear();
  sessions_ = dynamics::SessionIndex{};
  // Mailboxes were drained by every strategy at its last on_tick and
  // installs only run in the serial phase, so they are empty between
  // ticks; clear each slot (never the vector itself — the pre-sized shape
  // is what keeps the parallel path allocation-free).
  for (auto& box : mailboxes_) box.clear();
  if (cache_config_.has_value()) {
    public_cache_.assign(grid_.cell_count(), std::nullopt);
  }
}

void Server::restore_install(const alarms::SpatialAlarm& alarm,
                             std::uint64_t installed_at) {
  store_.install(alarm);
  // Tick 0 means "loaded at run start": absent from the map, exactly as
  // before the crash (the buffered-report filter treats both identically).
  if (installed_at > 0) installed_at_[alarm.id] = installed_at;
}

void Server::restore_remove(alarms::AlarmId id, std::uint64_t removed_at) {
  if (!store_.installed(id)) return;
  const auto it = installed_at_.find(id);
  const std::uint64_t born = it == installed_at_.end() ? 0 : it->second;
  graveyard_.push_back(Tomb{store_.alarm(id), born, removed_at});
  store_.uninstall(id);
  installed_at_.erase(id);
}

void Server::restore_tomb(const alarms::SpatialAlarm& alarm,
                          std::uint64_t installed_at,
                          std::uint64_t removed_at) {
  graveyard_.push_back(Tomb{alarm, installed_at, removed_at});
}

void Server::restore_spent(alarms::AlarmId id, alarms::SubscriberId s) {
  store_.mark_spent(id, s);
}

void Server::restore_grant(alarms::SubscriberId s, dynamics::GrantKind kind,
                           const geo::Rect& bounds) {
  if (!dynamics_enabled_) return;
  sessions_.record(s, kind, bounds);
}

std::uint64_t Server::installed_at(alarms::AlarmId id) const {
  const auto it = installed_at_.find(id);
  return it == installed_at_.end() ? 0 : it->second;
}

std::size_t Server::compact_graveyard(std::uint64_t watermark) {
  const std::size_t before = graveyard_.size();
  std::erase_if(graveyard_, [&](const Tomb& tomb) {
    return tomb.removed_at <= watermark;
  });
  return before - graveyard_.size();
}

}  // namespace salarm::sim
