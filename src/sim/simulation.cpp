#include "sim/simulation.h"

#include <chrono>

#include "common/error.h"

namespace salarm::sim {

Simulation::Simulation(mobility::PositionSource& source,
                       alarms::AlarmStore& store,
                       const grid::GridOverlay& grid, std::size_t ticks)
    : source_(source), store_(store), grid_(grid), ticks_(ticks) {
  SALARM_REQUIRE(ticks >= 2, "simulation needs at least two ticks");
  SALARM_REQUIRE(grid.universe().contains(source.extent()),
                 "grid universe must cover the position source's extent");
}

const std::vector<alarms::TriggerEvent>& Simulation::oracle() {
  if (!oracle_.has_value()) {
    oracle_ = ground_truth_triggers(source_, store_, ticks_);
    store_.reset_index_node_accesses();
  }
  return *oracle_;
}

RunResult Simulation::run(const StrategyFactory& factory) {
  const auto& expected = oracle();  // ensure cached before timing the run

  store_.reset_triggers();
  store_.reset_index_node_accesses();
  source_.reset();

  RunResult result;
  result.ticks = ticks_;
  result.subscribers = source_.vehicle_count();
  result.duration_s = duration_s();

  Server server(store_, grid_, result.metrics);
  const auto strategy = factory(server);
  result.strategy = std::string(strategy->name());

  const auto start = std::chrono::steady_clock::now();
  for (mobility::VehicleId v = 0; v < source_.samples().size(); ++v) {
    strategy->initialize(v, source_.samples()[v]);
  }
  for (std::size_t t = 1; t < ticks_; ++t) {
    source_.step();
    const auto& samples = source_.samples();
    for (mobility::VehicleId v = 0; v < samples.size(); ++v) {
      strategy->on_tick(v, samples[v], t);
    }
  }
  const auto end = std::chrono::steady_clock::now();
  result.wall_seconds =
      std::chrono::duration<double>(end - start).count();

  result.accuracy = compare_triggers(expected, server.trigger_log());
  store_.reset_triggers();
  return result;
}

}  // namespace salarm::sim
