#include "sim/simulation.h"

#include <chrono>

#include "cluster/sharded_server.h"
#include "common/error.h"

namespace salarm::sim {

Simulation::Simulation(mobility::PositionSource& source,
                       alarms::AlarmStore& store,
                       const grid::GridOverlay& grid, std::size_t ticks)
    : source_(source), store_(store), grid_(grid), ticks_(ticks) {
  SALARM_REQUIRE(ticks >= 2, "simulation needs at least two ticks");
  SALARM_REQUIRE(grid.universe().contains(source.extent()),
                 "grid universe must cover the position source's extent");
}

const std::vector<alarms::TriggerEvent>& Simulation::oracle() {
  if (!oracle_.has_value()) {
    if (scheduler_.has_value()) {
      // Churn-aware ground truth: replay the identical timeline straight
      // against the store (no server, no metrics), then rewind so the next
      // run starts from the initial alarm set again.
      rewind_store();
      scheduler_->reset();
      oracle_ = ground_truth_triggers(
          source_, store_, ticks_,
          [&](std::size_t t, alarms::AlarmStore& store) {
            scheduler_->for_each_due(
                static_cast<std::uint64_t>(t),
                [&](const dynamics::ChurnEvent& e) {
                  if (e.kind == dynamics::ChurnEvent::Kind::kInstall) {
                    store.install(e.alarm);
                  } else {
                    (void)store.uninstall(e.id);
                  }
                });
          });
      rewind_store();
    } else {
      oracle_ = ground_truth_triggers(source_, store_, ticks_);
    }
    store_.reset_index_node_accesses();
  }
  return *oracle_;
}

void Simulation::set_churn(const dynamics::ChurnConfig& config,
                           std::uint64_t seed) {
  // A previous churn run leaves the store in end-of-trace state; rewind to
  // the prior snapshot first so re-arming churn (e.g. a rate sweep) always
  // starts from the original alarm set.
  rewind_store();
  initial_alarms_ = store_.all();
  scheduler_.emplace(config, grid_.universe(), initial_alarms_, ticks_, seed);
  oracle_.reset();  // ground truth depends on the timeline
}

const dynamics::AlarmScheduler& Simulation::churn_scheduler() const {
  SALARM_REQUIRE(scheduler_.has_value(), "churn is not enabled");
  return *scheduler_;
}

void Simulation::set_channel(const net::ChannelConfig& config,
                             std::uint64_t seed) {
  // Validate eagerly (FaultyChannel's preconditions) so a bad sweep config
  // fails at setup, not mid-run.
  net::FaultyChannel probe(config, seed, 1);
  (void)probe;
  channel_config_ = config;
  channel_seed_ = seed;
  // The oracle is channel-independent: faults change the protocol work, not
  // the ground truth, so the cached oracle stays valid on purpose.
}

void Simulation::set_failover(const failover::FailoverConfig& config,
                              std::uint64_t seed) {
  SALARM_REQUIRE(config.crash_per_tick >= 0.0 && config.crash_per_tick < 1.0,
                 "crash_per_tick must be in [0, 1)");
  SALARM_REQUIRE(config.crash_mean_down_ticks >= 1.0,
                 "crash_mean_down_ticks must be >= 1");
  SALARM_REQUIRE(config.checkpoint_interval_ticks >= 1,
                 "checkpoint_interval_ticks must be >= 1");
  failover_config_ = config;
  failover_seed_ = seed;
  // Crashes are like channel faults: they change the recovery work, not
  // the ground truth, so the cached oracle stays valid on purpose.
}

void Simulation::rewind_store() {
  if (!scheduler_.has_value()) return;
  store_.clear();
  store_.install_bulk(initial_alarms_);
}

RunResult Simulation::run(const StrategyFactory& factory) {
  return run_impl(factory, 1, 1);
}

RunResult Simulation::run_sharded(const StrategyFactory& factory,
                                  const ShardedRunOptions& options) {
  return run_impl(factory, options.shards, options.threads);
}

RunResult Simulation::run_impl(const StrategyFactory& factory,
                               std::size_t shards, std::size_t threads) {
  const auto& expected = oracle();  // ensure cached before timing the run

  rewind_store();  // before slicing: shards replicate the initial set
  store_.reset_triggers();
  store_.reset_index_node_accesses();
  source_.reset();

  RunResult result;
  result.ticks = ticks_;
  result.subscribers = source_.vehicle_count();
  result.duration_s = duration_s();

  cluster::ShardedServer server(store_, grid_, shards,
                                source_.vehicle_count());
  if (scheduler_.has_value()) {
    server.enable_dynamics(source_.vehicle_count());
    scheduler_->reset();
  }
  // Crash-recovery: the plan is drawn fresh per run from the armed seed —
  // a pure function of (seed, shard count, ticks) — so every strategy
  // faces the identical crash schedule and replays are bit-identical.
  std::optional<failover::CrashPlan> crash_plan;
  if (failover_config_.has_value()) {
    crash_plan.emplace(*failover_config_, server.shard_count(), ticks_,
                       failover_seed_);
    server.enable_failover(*failover_config_, *crash_plan);
  }
  net::ClientLink link(server, channel_config_, channel_seed_,
                       source_.vehicle_count());
  if (crash_plan.has_value()) link.attach_failover(server.map(), *crash_plan);
  const auto strategy = factory(link);
  result.strategy = std::string(strategy->name());

  TickPipeline pipeline(source_, server, link, *strategy, ticks_, threads,
                        scheduler_.has_value() ? &*scheduler_ : nullptr,
                        crash_plan.has_value() ? &*crash_plan : nullptr,
                        phase_observer_);
  const auto start = std::chrono::steady_clock::now();
  pipeline.run();
  const auto end = std::chrono::steady_clock::now();
  result.wall_seconds = std::chrono::duration<double>(end - start).count();

  result.metrics = server.merged_metrics();
  result.metrics.merge(link.link_metrics());
  // Canonical (tick, subscriber, alarm) order, produced in exactly one
  // place for every run mode (cluster::ShardedServer::merged_trigger_log).
  result.trigger_log = server.merged_trigger_log();
  result.accuracy = compare_triggers(expected, result.trigger_log);
  store_.reset_triggers();
  return result;
}

}  // namespace salarm::sim
