#include "sim/simulation.h"

#include <algorithm>
#include <chrono>

#include "cluster/parallel_executor.h"
#include "cluster/sharded_server.h"
#include "common/error.h"

namespace salarm::sim {

Simulation::Simulation(mobility::PositionSource& source,
                       alarms::AlarmStore& store,
                       const grid::GridOverlay& grid, std::size_t ticks)
    : source_(source), store_(store), grid_(grid), ticks_(ticks) {
  SALARM_REQUIRE(ticks >= 2, "simulation needs at least two ticks");
  SALARM_REQUIRE(grid.universe().contains(source.extent()),
                 "grid universe must cover the position source's extent");
}

const std::vector<alarms::TriggerEvent>& Simulation::oracle() {
  if (!oracle_.has_value()) {
    if (scheduler_.has_value()) {
      // Churn-aware ground truth: replay the identical timeline straight
      // against the store (no server, no metrics), then rewind so the next
      // run starts from the initial alarm set again.
      rewind_store();
      scheduler_->reset();
      oracle_ = ground_truth_triggers(
          source_, store_, ticks_,
          [&](std::size_t t, alarms::AlarmStore& store) {
            apply_churn(
                t, [&](const alarms::SpatialAlarm& a) { store.install(a); },
                [&](alarms::AlarmId id) { (void)store.uninstall(id); });
          });
      rewind_store();
    } else {
      oracle_ = ground_truth_triggers(source_, store_, ticks_);
    }
    store_.reset_index_node_accesses();
  }
  return *oracle_;
}

void Simulation::set_churn(const dynamics::ChurnConfig& config,
                           std::uint64_t seed) {
  // A previous churn run leaves the store in end-of-trace state; rewind to
  // the prior snapshot first so re-arming churn (e.g. a rate sweep) always
  // starts from the original alarm set.
  rewind_store();
  initial_alarms_ = store_.all();
  scheduler_.emplace(config, grid_.universe(), initial_alarms_, ticks_, seed);
  oracle_.reset();  // ground truth depends on the timeline
}

const dynamics::AlarmScheduler& Simulation::churn_scheduler() const {
  SALARM_REQUIRE(scheduler_.has_value(), "churn is not enabled");
  return *scheduler_;
}

void Simulation::set_channel(const net::ChannelConfig& config,
                             std::uint64_t seed) {
  // Validate eagerly (FaultyChannel's preconditions) so a bad sweep config
  // fails at setup, not mid-run.
  net::FaultyChannel probe(config, seed, 1);
  (void)probe;
  channel_config_ = config;
  channel_seed_ = seed;
  // The oracle is channel-independent: faults change the protocol work, not
  // the ground truth, so the cached oracle stays valid on purpose.
}

void Simulation::set_failover(const failover::FailoverConfig& config,
                              std::uint64_t seed) {
  SALARM_REQUIRE(config.crash_per_tick >= 0.0 && config.crash_per_tick < 1.0,
                 "crash_per_tick must be in [0, 1)");
  SALARM_REQUIRE(config.crash_mean_down_ticks >= 1.0,
                 "crash_mean_down_ticks must be >= 1");
  SALARM_REQUIRE(config.checkpoint_interval_ticks >= 1,
                 "checkpoint_interval_ticks must be >= 1");
  failover_config_ = config;
  failover_seed_ = seed;
  // Crashes are like channel faults: they change the recovery work, not
  // the ground truth, so the cached oracle stays valid on purpose.
}

void Simulation::rewind_store() {
  if (!scheduler_.has_value()) return;
  store_.clear();
  store_.install_bulk(initial_alarms_);
}

void Simulation::apply_churn(
    std::size_t t,
    const std::function<void(const alarms::SpatialAlarm&)>& install,
    const std::function<void(alarms::AlarmId)>& remove) {
  if (!scheduler_.has_value()) return;
  scheduler_->for_each_due(
      static_cast<std::uint64_t>(t), [&](const dynamics::ChurnEvent& e) {
        if (e.kind == dynamics::ChurnEvent::Kind::kInstall) {
          install(e.alarm);
        } else {
          remove(e.id);
        }
      });
}

RunResult Simulation::run(const StrategyFactory& factory) {
  SALARM_REQUIRE(!failover_config_.has_value(),
                 "failover requires the sharded run mode");
  const auto& expected = oracle();  // ensure cached before timing the run

  rewind_store();
  store_.reset_triggers();
  store_.reset_index_node_accesses();
  source_.reset();

  RunResult result;
  result.ticks = ticks_;
  result.subscribers = source_.vehicle_count();
  result.duration_s = duration_s();

  Server server(store_, grid_, result.metrics);
  if (scheduler_.has_value()) {
    server.enable_dynamics(source_.vehicle_count());
    scheduler_->reset();
  }
  net::ClientLink link(server, channel_config_, channel_seed_,
                       source_.vehicle_count());
  const auto strategy = factory(link);
  result.strategy = std::string(strategy->name());

  const auto start = std::chrono::steady_clock::now();
  for (mobility::VehicleId v = 0; v < source_.samples().size(); ++v) {
    strategy->initialize(v, source_.samples()[v]);
  }
  for (std::size_t t = 1; t < ticks_; ++t) {
    source_.step();
    // Serial churn phase: the server installs/removes alarms and queues
    // invalidation pushes before any subscriber of tick t is processed.
    apply_churn(
        t, [&](const alarms::SpatialAlarm& a) { server.install_alarm(a, t); },
        [&](alarms::AlarmId id) { (void)server.remove_alarm(id, t); });
    // Graveyard maintenance: tombs no pending buffered report can observe
    // are dropped. The watermark is read before the flush below, which is
    // merely conservative (the flushed stamps are themselves >= it).
    if (scheduler_.has_value()) {
      (void)server.compact_graveyard(link.min_pending_stamp(t));
    }
    // Serial channel phase: outage bookkeeping and reconnect flushes see
    // the post-churn alarm state of tick t (no-op on a perfect channel).
    link.begin_tick(t);
    const auto& samples = source_.samples();
    for (mobility::VehicleId v = 0; v < samples.size(); ++v) {
      strategy->on_tick(v, samples[v], t);
    }
  }
  // Clients still in outage at the end of the trace flush their buffered
  // reports before the run is scored.
  link.finish();
  const auto end = std::chrono::steady_clock::now();
  result.wall_seconds =
      std::chrono::duration<double>(end - start).count();

  result.metrics.merge(link.link_metrics());
  result.trigger_log = server.trigger_log();
  std::sort(result.trigger_log.begin(), result.trigger_log.end());
  result.accuracy = compare_triggers(expected, result.trigger_log);
  store_.reset_triggers();
  return result;
}

RunResult Simulation::run_sharded(const StrategyFactory& factory,
                                  const ShardedRunOptions& options) {
  const auto& expected = oracle();  // ensure cached before timing the run

  rewind_store();  // before slicing: shards replicate the initial set
  store_.reset_triggers();
  store_.reset_index_node_accesses();
  source_.reset();

  RunResult result;
  result.ticks = ticks_;
  result.subscribers = source_.vehicle_count();
  result.duration_s = duration_s();

  cluster::ShardedServer server(store_, grid_, options.shards,
                                source_.vehicle_count());
  if (scheduler_.has_value()) {
    server.enable_dynamics(source_.vehicle_count());
    scheduler_->reset();
  }
  // Crash-recovery: the plan is drawn fresh per run from the armed seed —
  // a pure function of (seed, shard count, ticks) — so every strategy
  // faces the identical crash schedule and replays are bit-identical.
  std::optional<failover::CrashPlan> crash_plan;
  if (failover_config_.has_value()) {
    crash_plan.emplace(*failover_config_, server.shard_count(), ticks_,
                       failover_seed_);
    server.enable_failover(*failover_config_, *crash_plan);
  }
  net::ClientLink link(server, channel_config_, channel_seed_,
                       source_.vehicle_count());
  if (crash_plan.has_value()) link.attach_failover(server.map(), *crash_plan);
  const auto strategy = factory(link);
  result.strategy = std::string(strategy->name());

  cluster::ParallelTickExecutor executor(options.threads);
  std::vector<std::vector<mobility::VehicleId>> groups(server.shard_count());
  std::vector<std::function<void()>> tasks;
  tasks.reserve(server.shard_count());

  // Regroups subscribers by owning shard (stable subscriber order within a
  // group) and fans one task per shard over the pool. Each task declares
  // its shard active and then touches only that shard's state plus the
  // sessions of its own subscribers — the determinism contract of
  // cluster/sharded_server.h.
  const auto fan_out = [&](auto&& per_subscriber) {
    const auto& samples = source_.samples();
    for (auto& group : groups) group.clear();
    for (mobility::VehicleId v = 0; v < samples.size(); ++v) {
      groups[server.map().shard_of(samples[v].pos)].push_back(v);
    }
    tasks.clear();
    for (std::size_t i = 0; i < groups.size(); ++i) {
      tasks.push_back([&, i] {
        server.set_active_shard(i);
        for (const mobility::VehicleId v : groups[i]) {
          per_subscriber(v, samples[v]);
        }
      });
    }
    executor.run(tasks);
  };

  const auto start = std::chrono::steady_clock::now();
  fan_out([&](mobility::VehicleId v, const mobility::VehicleSample& sample) {
    strategy->initialize(v, sample);
  });
  for (std::size_t t = 1; t < ticks_; ++t) {
    source_.step();
    // Serial failover phase: shards scheduled to recover at t restore
    // checkpoint + journal (or redo + re-registration) first, then shards
    // scheduled to crash at t lose their volatile state — so the tick's
    // churn below sees the final up/down picture and defers accordingly.
    if (crash_plan.has_value()) server.begin_failover_tick(t);
    // Serial churn phase between parallel ticks: installs replicate to
    // every extent-intersecting shard and queue invalidation pushes before
    // any worker thread starts on tick t; replicas owned by a crashed
    // shard are deferred until its recovery.
    apply_churn(
        t, [&](const alarms::SpatialAlarm& a) { server.install_alarm(a, t); },
        [&](alarms::AlarmId id) { (void)server.remove_alarm(id, t); });
    // Periodic durability: up shards checkpoint on the configured cadence,
    // truncating their journals.
    if (crash_plan.has_value()) server.take_due_checkpoints(t);
    // Graveyard maintenance (see the monolithic loop).
    if (scheduler_.has_value()) {
      (void)server.compact_graveyards(link.min_pending_stamp(t));
    }
    // Serial channel phase between parallel ticks: outage state machines
    // advance, shard crashes void their clients' grants, and reconnect
    // flushes run before any worker thread starts. Per-subscriber fault
    // streams make the in-tick draws independent of the thread count, so
    // results stay bit-identical.
    link.begin_tick(t, source_.samples());
    fan_out(
        [&](mobility::VehicleId v, const mobility::VehicleSample& sample) {
          strategy->on_tick(v, sample, t);
        });
  }
  // Shards still down when the trace ends recover now, so the end-of-run
  // flush below can deliver every buffered report.
  if (crash_plan.has_value()) {
    (void)server.finish_failover(static_cast<std::uint64_t>(ticks_));
  }
  link.finish();
  const auto end = std::chrono::steady_clock::now();
  result.wall_seconds = std::chrono::duration<double>(end - start).count();

  result.metrics = server.merged_metrics();
  result.metrics.merge(link.link_metrics());
  result.trigger_log = server.merged_trigger_log();
  result.accuracy = compare_triggers(expected, result.trigger_log);
  store_.reset_triggers();
  return result;
}

}  // namespace salarm::sim
