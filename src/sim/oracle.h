// Ground-truth trigger oracle.
//
// The paper determines "the sequence of alarms to be triggered ... by a
// very high frequency trace of the motion pattern of the vehicles". The
// oracle replays the identical trace and evaluates every subscriber
// position of every tick against the full relevant alarm set, producing
// the reference trigger sequence each strategy must reproduce exactly
// (100% accuracy requirement).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "alarms/alarm_store.h"
#include "mobility/position_source.h"

namespace salarm::sim {

/// Computes the ground-truth trigger events for `ticks` ticks (tick 0 =
/// initial positions). The source is reset before and left at the end
/// position afterwards; the store's trigger state is reset before and
/// after (callers reset the node-access counter).
std::vector<alarms::TriggerEvent> ground_truth_triggers(
    mobility::PositionSource& source, alarms::AlarmStore& store,
    std::size_t ticks);

/// As above, but over a time-varying alarm set: `apply_churn(t, store)` is
/// invoked once per tick t >= 1, after the motion step and before the
/// positions of tick t are evaluated — the same ordering the live server
/// uses (churn is applied in the serial phase ahead of subscriber
/// processing), so an alarm installed on top of a subscriber fires that
/// very tick and a removed alarm can no longer fire. The store is left in
/// its end-of-trace state; callers that need the initial set back must
/// rewind it themselves.
std::vector<alarms::TriggerEvent> ground_truth_triggers(
    mobility::PositionSource& source, alarms::AlarmStore& store,
    std::size_t ticks,
    const std::function<void(std::size_t, alarms::AlarmStore&)>& apply_churn);

/// Compares a strategy's trigger log with the oracle's: both are sorted
/// and must match exactly (same (alarm, subscriber, tick) events).
struct AccuracyReport {
  std::size_t expected = 0;
  std::size_t observed = 0;
  std::size_t missed = 0;    ///< in oracle, not in strategy
  std::size_t spurious = 0;  ///< in strategy, not in oracle
  std::size_t late = 0;      ///< right pair, later tick

  bool perfect() const { return missed == 0 && spurious == 0 && late == 0; }
};

AccuracyReport compare_triggers(std::vector<alarms::TriggerEvent> expected,
                                std::vector<alarms::TriggerEvent> observed);

}  // namespace salarm::sim
