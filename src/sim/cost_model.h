// Deterministic cost models converting counted events into the units the
// paper reports.
//
// The paper measures wall-clock server minutes, milliwatt-hours of client
// energy and Mbps of downstream bandwidth on the authors' testbed. Absolute
// values are not reproducible, but every comparative claim is driven by the
// event counts themselves; these models apply fixed, documented constants
// so the benches are deterministic and machine-independent (DESIGN.md §5).
//
// Constant rationale:
//  * Client energy — the paper's metric is the energy "used to determine
//    client position within the safe region" (§5.2, Figure 5(b)), i.e. the
//    containment-determination work only; we charge 5 uWh per elementary
//    containment operation (a periodically woken CPU/GPS duty cycle, not a
//    single ALU op). Radio energy is modeled separately (uplink 0.1 mWh
//    per message, ~sub-joule 3G transmission; receive 1 uWh/KB).
//  * Server time — a commodity 2009-era server core sustains on the order
//    of 10 million indexed-node/geometry operations per second; we charge
//    each counted operation 0.1 us.
#pragma once

#include <algorithm>

#include "sim/metrics.h"

namespace salarm::sim {

struct CostModel {
  /// mWh per client->server transmission.
  double tx_mwh_per_message = 0.1;
  /// mWh per elementary client containment operation.
  double check_mwh_per_op = 5e-3;
  /// mWh per received downstream byte.
  double rx_mwh_per_byte = 1e-6;
  /// Server seconds per counted elementary operation.
  double server_seconds_per_op = 1e-7;
  /// Server seconds per durable byte written (checkpoint + journal):
  /// ~100 MB/s sequential append/fsync budget on 2009-era disks.
  double server_seconds_per_durable_byte = 1e-8;
  /// Server seconds per record applied at recovery (journal replay, redo
  /// ledger, deferred churn): decode plus one index update, heavier than
  /// an elementary op.
  double server_seconds_per_replayed_record = 1e-6;

  /// Client energy spent determining the position against the safe region,
  /// in mWh — the paper's client-energy metric (Figures 5(b), 6(c)).
  double client_energy_mwh(const Metrics& m) const {
    return check_mwh_per_op * static_cast<double>(m.client_check_ops);
  }

  /// Client radio energy (transmissions + received safe-region payloads +
  /// invalidation pushes + reliability-protocol ACKs), reported alongside
  /// but not part of the paper's figures. Retransmissions are already
  /// folded into uplink_messages / invalidation_bytes by net::ClientLink,
  /// so a lossy channel inflates this figure as it should; ACKs the client
  /// receives are priced per byte (ACKs it *sends* piggyback on the radio
  /// session of the message they acknowledge, so they carry no extra
  /// per-message transmit surcharge).
  double client_radio_mwh(const Metrics& m) const {
    return tx_mwh_per_message * static_cast<double>(m.uplink_messages) +
           rx_mwh_per_byte * static_cast<double>(m.downstream_region_bytes +
                                                 m.downstream_notice_bytes +
                                                 m.invalidation_bytes +
                                                 m.net_ack_bytes);
  }

  /// Radio energy attributable to the fault-tolerance machinery alone, in
  /// mWh: payload retransmissions plus ACK reception. Zero on a perfect
  /// channel — the protocol is free when nothing is lost.
  double net_overhead_mwh(const Metrics& m) const {
    return tx_mwh_per_message * static_cast<double>(m.net_retransmissions) +
           rx_mwh_per_byte * static_cast<double>(m.net_ack_bytes);
  }

  /// Downstream bandwidth of the invalidation protocol alone, in Mbps —
  /// the dynamics tier's push overhead (bench/dyn_churn).
  double invalidation_mbps(const Metrics& m, double duration_s) const {
    return static_cast<double>(m.invalidation_bytes) * 8.0 /
           (duration_s * 1e6);
  }

  /// Downstream safe-region bandwidth in Mbps over the simulated duration
  /// (Figure 6(b)).
  double downstream_mbps(const Metrics& m, double duration_s) const {
    return static_cast<double>(m.downstream_region_bytes) * 8.0 /
           (duration_s * 1e6);
  }

  /// Modeled server time spent on alarm processing, in minutes.
  double server_alarm_minutes(const Metrics& m) const {
    return static_cast<double>(m.server_alarm_ops) * server_seconds_per_op /
           60.0;
  }

  /// Modeled server time spent on safe region / safe period computation,
  /// in minutes.
  double server_region_minutes(const Metrics& m) const {
    return static_cast<double>(m.server_region_ops) * server_seconds_per_op /
           60.0;
  }

  double server_total_minutes(const Metrics& m) const {
    return server_alarm_minutes(m) + server_region_minutes(m);
  }

  // ---- Failover tier (DESIGN.md §10; all zero on immortal runs) ----

  /// Modeled server time spent writing durable state (periodic checkpoints
  /// plus journal appends), in minutes — the steady-state price of being
  /// recoverable, paid even when nothing ever crashes.
  double durability_server_minutes(const Metrics& m) const {
    return static_cast<double>(m.fo_checkpoint_bytes + m.fo_journal_bytes) *
           server_seconds_per_durable_byte / 60.0;
  }

  /// Modeled server time spent recovering crashed shards (checkpoint
  /// reload at the durable-byte rate, plus journal/redo/deferred records
  /// re-applied), in minutes.
  double recovery_server_minutes(const Metrics& m) const {
    const double records =
        static_cast<double>(m.fo_journal_replays + m.fo_redo_events);
    return (static_cast<double>(m.fo_checkpoint_bytes) / std::max(
                static_cast<double>(m.fo_checkpoints), 1.0) *
                static_cast<double>(m.fo_recoveries) *
                server_seconds_per_durable_byte +
            records * server_seconds_per_replayed_record) /
           60.0;
  }

  /// Client radio energy attributable to crash-recovery alone, in mWh:
  /// journal-less re-registration uplinks (priced like any transmission,
  /// with their session payload received back as bytes) plus the buffered
  /// reports flushed after recovery (each one a deferred transmission).
  double failover_overhead_mwh(const Metrics& m) const {
    return tx_mwh_per_message * static_cast<double>(m.fo_reregistrations +
                                                    m.fo_buffered_reports) +
           rx_mwh_per_byte * static_cast<double>(m.fo_reregistration_bytes);
  }
};

}  // namespace salarm::sim
