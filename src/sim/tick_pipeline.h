// The one tick loop (DESIGN.md §11).
//
// TickPipeline owns the ordered serial phases that run between parallel
// ticks and the per-shard subscriber fan-out. Every execution mode runs
// through it: Simulation::run is the {shards = 1, threads = 1} degenerate
// case (a one-shard cluster over the same per-shard sim::Server engine)
// and Simulation::run_sharded is the general one — there is no separate
// monolithic loop, so every tier added here (and every future one) works
// in both modes by construction.
//
// Serial phase order per tick, after the trace steps (each phase only runs
// when its tier is armed):
//
//   1. failover begin   crash/recovery windows scheduled for this tick
//   2. churn            due alarm installs / removes / TTL expiries
//   3. due checkpoints  periodic durable shard checkpoints
//   4. graveyard        tomb compaction vs the pending-stamp watermark
//   5. channel          link outage bookkeeping + reconnect flushes
//   6. subscribers      parallel per-shard fan-out of the strategy
//
// The order is load-bearing: churn must see the tick's final shard up/down
// picture (1 before 2), checkpoints must capture the tick's churn (2
// before 3), reconnect flushes must evaluate against post-churn alarm
// state (2 before 5), and no worker thread may start until every serial
// phase is done (6 last). A PhaseObserver can watch the sequence; the
// phase-ordering test pins it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "cluster/parallel_executor.h"
#include "cluster/sharded_server.h"
#include "dynamics/churn.h"
#include "failover/crash_plan.h"
#include "mobility/position_source.h"
#include "net/link.h"
#include "strategies/strategy.h"

namespace salarm::sim {

/// Serial phases of one tick, in the order they run.
enum class TickPhase {
  kFailoverBegin,  ///< crashes/recoveries applied (failover armed only)
  kChurn,          ///< due alarm installs/removes (churn enabled only)
  kCheckpoints,    ///< periodic durability sweep (failover armed only)
  kGraveyard,      ///< tomb compaction (churn enabled only)
  kChannel,        ///< outage bookkeeping + reconnect flushes (always)
  kSubscribers,    ///< parallel per-shard subscriber fan-out (always)
};

class TickPipeline {
 public:
  /// Observes every phase the pipeline enters (test hook; keep it cheap —
  /// it runs inside the serial section of every tick).
  using PhaseObserver = std::function<void(TickPhase, std::uint64_t tick)>;

  /// All references must outlive the pipeline. `scheduler` (nullable)
  /// enables the churn phases; `crash_plan` (nullable) enables the
  /// failover phases and must be the plan the server was armed with.
  /// `threads` sizes the worker pool (0 = hardware concurrency); results
  /// are bit-identical for any value.
  TickPipeline(mobility::PositionSource& source,
               cluster::ShardedServer& server, net::ClientLink& link,
               strategies::ProcessingStrategy& strategy, std::size_t ticks,
               std::size_t threads, dynamics::AlarmScheduler* scheduler,
               const failover::CrashPlan* crash_plan,
               PhaseObserver observer = {});

  /// Replays the whole trace: the tick-0 initialization fan-out, ticks
  /// [1, ticks) through the serial phases above, then the end-of-run
  /// epilogue (recover still-down shards, flush still-buffered reports).
  void run();

 private:
  void enter(TickPhase phase, std::uint64_t tick) {
    if (observer_) observer_(phase, tick);
  }

  /// Groups subscribers by owning shard (stable subscriber order within a
  /// group) and fans the prebuilt shard tasks over the pool. `tick` 0 is
  /// the initialization pass.
  void fan_out(std::uint64_t tick);

  mobility::PositionSource& source_;
  cluster::ShardedServer& server_;
  net::ClientLink& link_;
  strategies::ProcessingStrategy& strategy_;
  std::size_t ticks_;
  dynamics::AlarmScheduler* scheduler_;
  const failover::CrashPlan* crash_plan_;
  PhaseObserver observer_;

  cluster::ParallelTickExecutor executor_;
  /// Per-shard subscriber groups and tasks, built once and reused every
  /// tick: groups keep their capacity across clears and the task closures
  /// are never reallocated, so the steady-state fan-out allocates nothing.
  std::vector<std::vector<mobility::VehicleId>> groups_;
  std::vector<std::function<void()>> tasks_;
  std::uint64_t current_tick_ = 0;
};

}  // namespace salarm::sim
