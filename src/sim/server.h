// The alarm-processing server.
//
// One Server instance plays the paper's server role for a whole run: it
// receives position reports, evaluates them against the R*-tree alarm
// index, and computes whatever the active strategy ships back (rectangular
// safe regions, pyramid bitmaps, safe periods, or OPT alarm pushes). All
// events are attributed to the Metrics object: R*-tree node accesses from
// alarm processing land in server_alarm_ops, everything spent on safe
// region / safe period computation in server_region_ops, and downstream
// payload sizes (from the real wire formats) in downstream_region_bytes.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "alarms/alarm_store.h"
#include "dynamics/session_index.h"
#include "grid/grid_overlay.h"
#include "saferegion/motion_model.h"
#include "saferegion/mwpsr.h"
#include "saferegion/pyramid.h"
#include "saferegion/wire_format.h"
#include "sim/metrics.h"
#include "sim/server_api.h"

namespace salarm::sim {

/// Cost-accounting weights (elementary operations). One elementary op is a
/// rectangle comparison; an R*-tree node access scans up to a node's
/// capacity of entries and is charged accordingly; every received position
/// update carries fixed handling overhead (parse, session lookup, dispatch)
/// regardless of what it hits in the index. A duplicate report suppressed
/// by the reliability protocol (net tier, DESIGN.md §9) is cheaper than a
/// processed one — parse, session lookup and one sequence-window
/// comparison, no index work — but it is real server load and must not
/// vanish from the cost model: retransmitted copies are charged at
/// kOpsPerDuplicateDrop each by net::ClientLink.
inline constexpr std::uint64_t kOpsPerNodeAccess = 16;
inline constexpr std::uint64_t kOpsPerUpdateOverhead = 25;
inline constexpr std::uint64_t kOpsPerDuplicateDrop = 5;

class Server final : public ServerApi {
 public:
  /// The store, grid and metrics must outlive the server.
  Server(alarms::AlarmStore& store, const grid::GridOverlay& grid,
         Metrics& metrics);

  /// Handles one client position report: counts the uplink message and
  /// evaluates the position against the alarm index. Returns the alarms
  /// fired for this subscriber (now spent); trigger notices are charged to
  /// the downstream notice counter and events appended to the trigger log.
  std::vector<alarms::AlarmId> handle_position_update(
      alarms::SubscriberId s, geo::Point position,
      std::uint64_t tick) override;

  /// Temporal evaluation of an outage-buffered report (DESIGN.md §9): the
  /// live index is consulted under an installed-at-stamp filter, and the
  /// removal graveyard is scanned for alarms that were live at the stamp
  /// but have since been uninstalled. On a static run both mechanisms
  /// degenerate to plain alarm processing.
  std::vector<alarms::AlarmId> handle_buffered_update(
      alarms::SubscriberId s, geo::Point position,
      std::uint64_t stamp_tick) override;

  /// Computes a rectangular (MWPSR) safe region for the subscriber at the
  /// given position/heading and charges its wire size downstream.
  saferegion::RectSafeRegion compute_rect_region(
      alarms::SubscriberId s, geo::Point position, double heading,
      const saferegion::MotionModel& model,
      const saferegion::MwpsrOptions& options) override;

  /// Computes the unsound Hu et al. [10]-style corner-candidate baseline
  /// region (see saferegion/corner_baseline.h); used only by the ablation
  /// reproducing the paper's alarm-miss claim.
  saferegion::RectSafeRegion compute_corner_baseline_region(
      alarms::SubscriberId s, geo::Point position, double heading,
      const saferegion::MotionModel& model) override;

  /// Computes a pyramid bitmap over the subscriber's current base cell and
  /// charges its wire size downstream. With the public-bitmap cache
  /// enabled (paper §4.2), the subscriber-independent public-alarm bitmap
  /// is computed once per cell and intersected with the subscriber's
  /// private-alarm bitmap; the full rebuild runs only when the subscriber
  /// has already spent a public alarm in the cell (the cached bitmap would
  /// be needlessly conservative there).
  saferegion::PyramidBitmap compute_pyramid_region(
      alarms::SubscriberId s, geo::Point position,
      const saferegion::PyramidConfig& config) override;

  /// Enables the precomputed public-alarm bitmap cache for the given
  /// pyramid configuration (one configuration per run).
  void enable_public_bitmap_cache(
      const saferegion::PyramidConfig& config) override;

  /// Computes the safe-period grant: distance to the nearest relevant
  /// alarm region over the worst-case speed bound, clamped below by one
  /// tick. Returns infinity when no relevant alarm remains.
  double compute_safe_period(alarms::SubscriberId s, geo::Point position,
                             double max_speed_mps,
                             double tick_seconds) override;

  /// As above, but the granted distance is additionally capped at
  /// `distance_bound` (meters). The cluster tier uses the bound to keep a
  /// shard from granting a period that outruns its own spatial authority:
  /// a shard knows nothing about alarms beyond its extent, so the grant
  /// must not exceed the distance to its internal boundary.
  double compute_safe_period(alarms::SubscriberId s, geo::Point position,
                             double max_speed_mps, double tick_seconds,
                             double distance_bound);

  /// OPT: all relevant alarms intersecting the subscriber's current cell,
  /// charged downstream at the alarm-push wire size.
  std::vector<const alarms::SpatialAlarm*> push_alarms(
      alarms::SubscriberId s, geo::Point position) override;

  /// Switches on the dynamics tier (DESIGN.md §8): every grant handed out
  /// from here on is recorded in a SessionIndex, and online installs push
  /// invalidations into per-subscriber mailboxes. Off by default so static
  /// runs stay bit-identical to the pre-dynamics simulator.
  void enable_dynamics(std::size_t subscriber_count);
  bool dynamics_enabled() const { return dynamics_enabled_; }

  /// Installs an alarm online at the given tick and invalidates every
  /// outstanding grant the alarm's region (closed) intersects, for
  /// subscribers the alarm applies to. The install tick is recorded so
  /// outage-buffered reports stamped earlier are not evaluated against it.
  /// Requires enable_dynamics.
  void install_alarm(const alarms::SpatialAlarm& alarm, std::uint64_t tick);

  /// Removes an alarm online at the given tick; outstanding grants stay
  /// sound (they are merely smaller than necessary) and re-widen at the
  /// client's next natural refresh, so no pushes are sent. The alarm moves
  /// to the removal graveyard with its [installed, removed) lifetime so
  /// outage-buffered reports stamped inside the lifetime can still fire
  /// it. Returns false if absent.
  bool remove_alarm(alarms::AlarmId id, std::uint64_t tick);

  std::vector<dynamics::InvalidationPush> take_invalidations(
      alarms::SubscriberId s) override;

  // ---- Failover tier (DESIGN.md §10; every call is serial-phase only) ----

  /// A removed alarm's copy with its [installed, removed) lifetime, kept
  /// for temporal evaluation of outage-buffered reports.
  struct Tomb {
    alarms::SpatialAlarm alarm;
    std::uint64_t installed_at = 0;
    std::uint64_t removed_at = 0;
  };

  /// Simulates a process crash: everything a real shard process keeps in
  /// memory is dropped — the alarm index (spent state included), the
  /// install-tick map, the removal graveyard, the outstanding-grant table,
  /// the invalidation mailboxes and the public-bitmap cache (reset cold;
  /// its configuration survives in the restarted binary). Metrics and the
  /// trigger log survive on purpose: they are the run's *measurements*
  /// (delivered notices live with the clients), not server state.
  void crash();

  /// Recovery restore paths. They rebuild durable state without
  /// re-counting it as fresh work: the original install/remove/fire was
  /// charged before the crash (metrics survive the crash), so restores
  /// only touch the store — recovery effort is priced separately from the
  /// fo_* counters by the cost model.
  void restore_install(const alarms::SpatialAlarm& alarm,
                       std::uint64_t installed_at);
  void restore_remove(alarms::AlarmId id, std::uint64_t removed_at);
  void restore_tomb(const alarms::SpatialAlarm& alarm,
                    std::uint64_t installed_at, std::uint64_t removed_at);
  void restore_spent(alarms::AlarmId id, alarms::SubscriberId s);
  void restore_grant(alarms::SubscriberId s, dynamics::GrantKind kind,
                     const geo::Rect& bounds);

  /// Checkpoint export accessors.
  std::uint64_t installed_at(alarms::AlarmId id) const;
  const std::vector<Tomb>& graveyard() const { return graveyard_; }
  std::vector<std::pair<alarms::SubscriberId, dynamics::SessionIndex::Grant>>
  grant_snapshot() const {
    return sessions_.snapshot();
  }

  /// Drops graveyard tombs no pending buffered report can still observe: a
  /// tomb is only consulted for reports stamped strictly before its
  /// removal tick, so once every pending buffered stamp is >= `watermark`,
  /// tombs with removed_at <= watermark are dead. Uncharged maintenance
  /// bookkeeping (it shrinks, never adds, buffered-path work). Returns the
  /// number of tombs dropped.
  std::size_t compact_graveyard(std::uint64_t watermark);

  const grid::GridOverlay& grid() const override { return grid_; }
  alarms::AlarmStore& store() { return store_; }
  Metrics& metrics() override { return metrics_; }
  const std::vector<alarms::TriggerEvent>& trigger_log() const {
    return trigger_log_;
  }

 private:
  /// Runs fn and attributes the R*-tree node accesses it incurs to the
  /// given counter, weighted by kOpsPerNodeAccess.
  template <typename Fn>
  auto charged(std::uint64_t Metrics::* counter, Fn&& fn) {
    const std::uint64_t before = store_.index_node_accesses();
    auto result = fn();
    metrics_.*counter +=
        (store_.index_node_accesses() - before) * kOpsPerNodeAccess;
    return result;
  }

  /// Records the grant just issued to s (no-op unless dynamics is on);
  /// SessionIndex node accesses are charged like any other region work.
  void record_grant(alarms::SubscriberId s, dynamics::GrantKind kind,
                    const geo::Rect& bounds);

  /// Queues one invalidation push for s (action chosen from the grant
  /// kind) and charges its wire size. Revoked grants are forgotten.
  void push_invalidation(alarms::SubscriberId s, dynamics::GrantKind kind,
                         const alarms::SpatialAlarm& alarm);

  alarms::AlarmStore& store_;
  const grid::GridOverlay& grid_;
  Metrics& metrics_;
  std::vector<alarms::TriggerEvent> trigger_log_;

  bool dynamics_enabled_ = false;
  dynamics::SessionIndex sessions_;
  std::vector<std::vector<dynamics::InvalidationPush>> mailboxes_;

  /// Temporal alarm-lifetime bookkeeping for outage-buffered reports
  /// (DESIGN.md §9). Alarms absent from installed_at_ were loaded at run
  /// start (tick 0). The graveyard keeps a copy of every online-removed
  /// alarm with its lifetime (Tomb, declared public for the failover
  /// tier's checkpoints); it is scanned linearly (one elementary op per
  /// tomb) only on the rare buffered-report path, and compacted against
  /// the pending-stamp watermark (compact_graveyard).
  std::unordered_map<alarms::AlarmId, std::uint64_t> installed_at_;
  std::vector<Tomb> graveyard_;

  struct PublicCacheEntry {
    saferegion::PyramidBitmap bitmap;
    std::vector<alarms::AlarmId> public_ids;
  };
  std::optional<saferegion::PyramidConfig> cache_config_;
  std::vector<std::optional<PublicCacheEntry>> public_cache_;
};

}  // namespace salarm::sim
