#include "sim/tick_pipeline.h"

namespace salarm::sim {

TickPipeline::TickPipeline(mobility::PositionSource& source,
                           cluster::ShardedServer& server,
                           net::ClientLink& link,
                           strategies::ProcessingStrategy& strategy,
                           std::size_t ticks, std::size_t threads,
                           dynamics::AlarmScheduler* scheduler,
                           const failover::CrashPlan* crash_plan,
                           PhaseObserver observer)
    : source_(source), server_(server), link_(link), strategy_(strategy),
      ticks_(ticks), scheduler_(scheduler), crash_plan_(crash_plan),
      observer_(std::move(observer)), executor_(threads),
      groups_(server.shard_count()) {
  // One task per shard, built once for the whole run. Each task declares
  // its shard active and then touches only that shard's state plus the
  // sessions of its own subscribers — the determinism contract of
  // cluster/sharded_server.h.
  tasks_.reserve(server_.shard_count());
  for (std::size_t i = 0; i < server_.shard_count(); ++i) {
    tasks_.push_back([this, i] {
      server_.set_active_shard(i);
      const auto& samples = source_.samples();
      if (current_tick_ == 0) {
        for (const mobility::VehicleId v : groups_[i]) {
          strategy_.initialize(v, samples[v]);
        }
      } else {
        for (const mobility::VehicleId v : groups_[i]) {
          strategy_.on_tick(v, samples[v], current_tick_);
        }
      }
    });
  }
}

void TickPipeline::fan_out(std::uint64_t tick) {
  current_tick_ = tick;
  const auto& samples = source_.samples();
  for (auto& group : groups_) group.clear();
  for (mobility::VehicleId v = 0; v < samples.size(); ++v) {
    groups_[server_.map().shard_of(samples[v].pos)].push_back(v);
  }
  executor_.run(tasks_);
}

void TickPipeline::run() {
  fan_out(0);
  for (std::size_t t = 1; t < ticks_; ++t) {
    const auto tick = static_cast<std::uint64_t>(t);
    source_.step();
    // 1. Failover: shards scheduled to recover at this tick restore
    // checkpoint + journal (or redo + re-registration) first, then shards
    // scheduled to crash lose their volatile state — so the churn below
    // sees the tick's final up/down picture and defers accordingly.
    if (crash_plan_ != nullptr) {
      enter(TickPhase::kFailoverBegin, tick);
      server_.begin_failover_tick(tick);
    }
    // 2. Churn: installs replicate to every extent-intersecting shard and
    // queue invalidation pushes before any subscriber of this tick is
    // processed; replicas owned by a crashed shard are deferred until its
    // recovery.
    if (scheduler_ != nullptr) {
      enter(TickPhase::kChurn, tick);
      scheduler_->for_each_due(tick, [&](const dynamics::ChurnEvent& e) {
        if (e.kind == dynamics::ChurnEvent::Kind::kInstall) {
          server_.install_alarm(e.alarm, tick);
        } else {
          (void)server_.remove_alarm(e.id, tick);
        }
      });
    }
    // 3. Periodic durability: up shards checkpoint on the configured
    // cadence (capturing this tick's churn), truncating their journals.
    if (crash_plan_ != nullptr) {
      enter(TickPhase::kCheckpoints, tick);
      server_.take_due_checkpoints(tick);
    }
    // 4. Graveyard maintenance: tombs no pending buffered report can
    // observe are dropped. The watermark is read before the channel flush
    // below, which is merely conservative (flushed stamps are >= it).
    if (scheduler_ != nullptr) {
      enter(TickPhase::kGraveyard, tick);
      (void)server_.compact_graveyards(link_.min_pending_stamp(tick));
    }
    // 5. Channel: outage state machines advance, shard crashes void their
    // clients' grants, and reconnect flushes see the post-churn alarm
    // state of this tick (no-op on a perfect channel). Per-subscriber
    // fault streams keep the in-tick draws independent of thread count.
    enter(TickPhase::kChannel, tick);
    link_.begin_tick(tick, source_.samples());
    // 6. The parallel part of the tick.
    enter(TickPhase::kSubscribers, tick);
    fan_out(tick);
  }
  // End-of-run epilogue: shards still down when the trace ends recover
  // now, so the flush below can deliver every buffered report before the
  // run is scored.
  if (crash_plan_ != nullptr) {
    (void)server_.finish_failover(static_cast<std::uint64_t>(ticks_));
  }
  link_.finish();
}

}  // namespace salarm::sim
