// Abstract server interface the processing strategies program against.
//
// A strategy models the client half of the distributed protocol; everything
// it asks of the server side goes through this interface. Two
// implementations exist: the monolithic sim::Server (one alarm store, one
// metrics object — the paper's evaluation setup) and cluster::ShardedServer
// (N spatially partitioned shards behind the same facade). Strategies are
// written once against ServerApi and run unchanged on either.
#pragma once

#include <cstdint>
#include <vector>

#include "alarms/spatial_alarm.h"
#include "dynamics/invalidation.h"
#include "geometry/point.h"
#include "grid/grid_overlay.h"
#include "saferegion/motion_model.h"
#include "saferegion/mwpsr.h"
#include "saferegion/pyramid.h"
#include "sim/metrics.h"

namespace salarm::sim {

class ServerApi {
 public:
  virtual ~ServerApi() = default;

  /// Handles one client position report: counts the uplink message,
  /// evaluates the position against the alarm index and returns the alarms
  /// fired for this subscriber (now spent).
  virtual std::vector<alarms::AlarmId> handle_position_update(
      alarms::SubscriberId s, geo::Point position, std::uint64_t tick) = 0;

  /// Handles a position report that was buffered client-side during a
  /// channel outage and delivered late (net tier, DESIGN.md §9). The
  /// report is stamped with its original tick and must be evaluated
  /// against the alarm set that was live *then*: alarms installed after
  /// the stamp are skipped, alarms removed since the stamp but live at it
  /// still fire (served from the removal graveyard). Trigger events carry
  /// the stamp tick, so the oracle comparison stays exact. Serial phase
  /// only on sharded servers (resolves its own shard from the position).
  virtual std::vector<alarms::AlarmId> handle_buffered_update(
      alarms::SubscriberId s, geo::Point position,
      std::uint64_t stamp_tick) = 0;

  /// Computes a rectangular (MWPSR) safe region for the subscriber at the
  /// given position/heading and charges its wire size downstream.
  virtual saferegion::RectSafeRegion compute_rect_region(
      alarms::SubscriberId s, geo::Point position, double heading,
      const saferegion::MotionModel& model,
      const saferegion::MwpsrOptions& options) = 0;

  /// The unsound Hu et al. [10]-style corner-candidate baseline region
  /// (ablation only; misses alarms by design).
  virtual saferegion::RectSafeRegion compute_corner_baseline_region(
      alarms::SubscriberId s, geo::Point position, double heading,
      const saferegion::MotionModel& model) = 0;

  /// Computes a pyramid bitmap over the subscriber's current base cell and
  /// charges its wire size downstream.
  virtual saferegion::PyramidBitmap compute_pyramid_region(
      alarms::SubscriberId s, geo::Point position,
      const saferegion::PyramidConfig& config) = 0;

  /// Enables the precomputed public-alarm bitmap cache (paper §4.2); one
  /// configuration per run.
  virtual void enable_public_bitmap_cache(
      const saferegion::PyramidConfig& config) = 0;

  /// Computes the safe-period grant (infinity when no relevant alarm
  /// remains in reach).
  virtual double compute_safe_period(alarms::SubscriberId s,
                                     geo::Point position, double max_speed_mps,
                                     double tick_seconds) = 0;

  /// OPT: all relevant alarms intersecting the subscriber's current cell,
  /// charged downstream at the alarm-push wire size. Pointers are valid
  /// until the next store mutation.
  virtual std::vector<const alarms::SpatialAlarm*> push_alarms(
      alarms::SubscriberId s, geo::Point position) = 0;

  /// Drains the subscriber's invalidation mailbox (dynamics tier,
  /// DESIGN.md §8): pushes queued by alarm installs since the subscriber's
  /// previous tick. Always empty on static runs. Every strategy polls this
  /// at the top of on_tick, *before* deciding whether to stay silent, so a
  /// freshly installed alarm can never be masked for even one tick.
  virtual std::vector<dynamics::InvalidationPush> take_invalidations(
      alarms::SubscriberId s) = 0;

  virtual const grid::GridOverlay& grid() const = 0;

  /// Metrics object the client-side (per-tick containment) work of the
  /// subscriber currently being processed is charged to.
  virtual Metrics& metrics() = 0;
};

}  // namespace salarm::sim
