#include "sim/oracle.h"

#include <algorithm>
#include <map>

namespace salarm::sim {

std::vector<alarms::TriggerEvent> ground_truth_triggers(
    mobility::PositionSource& source, alarms::AlarmStore& store,
    std::size_t ticks) {
  return ground_truth_triggers(source, store, ticks, {});
}

std::vector<alarms::TriggerEvent> ground_truth_triggers(
    mobility::PositionSource& source, alarms::AlarmStore& store,
    std::size_t ticks,
    const std::function<void(std::size_t, alarms::AlarmStore&)>&
        apply_churn) {
  store.reset_triggers();
  source.reset();
  std::vector<alarms::TriggerEvent> events;
  for (std::size_t t = 0; t < ticks; ++t) {
    if (t > 0) {
      source.step();
      if (apply_churn) apply_churn(t, store);
    }
    const auto& samples = source.samples();
    for (mobility::VehicleId v = 0; v < samples.size(); ++v) {
      (void)store.process_position(v, samples[v].pos, t, &events);
    }
  }
  store.reset_triggers();
  return events;
}

AccuracyReport compare_triggers(std::vector<alarms::TriggerEvent> expected,
                                std::vector<alarms::TriggerEvent> observed) {
  AccuracyReport report;
  report.expected = expected.size();
  report.observed = observed.size();

  using Pair = std::pair<alarms::AlarmId, alarms::SubscriberId>;
  std::map<Pair, std::uint64_t> expected_ticks;
  for (const auto& e : expected) {
    expected_ticks.emplace(Pair{e.alarm, e.subscriber}, e.tick);
  }
  std::map<Pair, std::uint64_t> observed_ticks;
  for (const auto& e : observed) {
    observed_ticks.emplace(Pair{e.alarm, e.subscriber}, e.tick);
  }

  for (const auto& [pair, tick] : expected_ticks) {
    const auto it = observed_ticks.find(pair);
    if (it == observed_ticks.end()) {
      ++report.missed;
    } else if (it->second > tick) {
      ++report.late;
    }
  }
  for (const auto& [pair, tick] : observed_ticks) {
    if (!expected_ticks.contains(pair)) ++report.spurious;
  }
  return report;
}

}  // namespace salarm::sim
