// Metrics collected by a simulation run.
//
// Every quantity the paper's evaluation reports (Figures 4-6) is derived
// from these counted events; the CostModel (cost_model.h) performs the
// unit conversions. Counters are raw and strategy-agnostic so runs of
// different strategies are directly comparable.
#pragma once

#include <cstdint>
#include <string>

#include "common/stats.h"

namespace salarm::sim {

struct Metrics {
  // ---- Communication ----
  /// Client-to-server position reports (the paper's "number of client-to-
  /// server messages", Figures 4(a), 5(a), 6(a)).
  std::uint64_t uplink_messages = 0;
  std::uint64_t uplink_bytes = 0;
  /// Server-to-client safe region / alarm push / safe period payload bytes
  /// (Figure 6(b)'s downstream bandwidth).
  std::uint64_t downstream_region_bytes = 0;
  /// Trigger notification bytes, tracked separately: identical across
  /// strategies for identical trigger sets, and excluded from the paper's
  /// bandwidth comparison.
  std::uint64_t downstream_notice_bytes = 0;

  // ---- Client-side work (energy model inputs, Figures 5(b), 6(c)) ----
  /// Number of client containment checks performed.
  std::uint64_t client_checks = 0;
  /// Elementary operations across those checks (rect test = 1, pyramid
  /// descent = levels visited, OPT scan = alarms examined).
  std::uint64_t client_check_ops = 0;

  // ---- Server-side work (Figures 4(b), 6(d)) ----
  /// R*-tree node accesses attributable to alarm processing of position
  /// reports.
  std::uint64_t server_alarm_ops = 0;
  /// Elementary operations of safe region / safe period computation
  /// (candidate processing, cell-alarm intersection tests, NN node
  /// accesses).
  std::uint64_t server_region_ops = 0;

  // ---- Cluster tier (inter-shard traffic; zero on monolithic runs) ----
  /// Subscriber session handoffs between spatial shards: emitted when a
  /// subscriber's first contact after crossing a shard boundary transfers
  /// its session (including globally spent alarms) to the new owner.
  /// Charged to the receiving shard (see cluster/sharded_server.h).
  std::uint64_t handoff_messages = 0;
  std::uint64_t handoff_bytes = 0;

  // ---- Dynamics tier (alarm churn; zero on static runs) ----
  /// Online alarm installs / removals (random removals + TTL expiries)
  /// applied during the run.
  std::uint64_t alarms_installed = 0;
  std::uint64_t alarms_removed = 0;
  /// Server-push grant invalidations (DESIGN.md §8): revoke, shrink and
  /// alarm-add pushes sent when an install intersects outstanding grants,
  /// and their wire bytes (priced like downstream region traffic).
  std::uint64_t invalidation_pushes = 0;
  std::uint64_t invalidation_bytes = 0;

  // ---- Net tier (unreliable channel; zero on perfect-channel runs) ----
  /// Payload retransmissions of the reliability protocol (reports and
  /// invalidation pushes re-sent after a lost copy or lost ACK). The
  /// retransmitted payload bytes are *also* added to the uplink /
  /// invalidation byte counters so bandwidth and energy stay honest.
  std::uint64_t net_retransmissions = 0;
  /// Received copies suppressed by the sequence-number window (network
  /// duplicates and retransmitted copies whose original also arrived).
  std::uint64_t net_duplicates_dropped = 0;
  /// Reliability-protocol ACK traffic, counted apart from uplink_messages
  /// so the paper's message figures stay comparable across strategies.
  std::uint64_t net_ack_messages = 0;
  std::uint64_t net_ack_bytes = 0;
  /// Ticks a subscriber spent with its lease down (burst outage): grants
  /// voided, reports buffered for server-side checking at reconnect.
  std::uint64_t net_lease_fallback_ticks = 0;
  /// Position samples buffered during outages and flushed at reconnect.
  std::uint64_t net_buffered_reports = 0;
  /// Burst outages started.
  std::uint64_t net_outages = 0;
  /// Per-exchange delivery latency (ms): backoff waits plus one-way flight.
  RunningStat net_delivery_latency_ms;

  // ---- Failover tier (shard crash-recovery; zero on immortal runs) ----
  /// Shard crashes injected and recoveries completed.
  std::uint64_t fo_crashes = 0;
  std::uint64_t fo_recoveries = 0;
  /// Shard-ticks of downtime across all crashes (crash tick to recovery).
  std::uint64_t fo_recovery_ticks = 0;
  /// Periodic durable checkpoints written and their encoded bytes.
  std::uint64_t fo_checkpoints = 0;
  std::uint64_t fo_checkpoint_bytes = 0;
  /// Append-only journal records written and their encoded bytes.
  std::uint64_t fo_journal_records = 0;
  std::uint64_t fo_journal_bytes = 0;
  /// Journal records replayed at recoveries (journal mode).
  std::uint64_t fo_journal_replays = 0;
  /// Upstream churn-ledger events redone at recoveries (journal-less
  /// mode), plus downtime churn applied after recovery in either mode.
  std::uint64_t fo_redo_events = 0;
  /// Client re-registrations rebuilding session state after a journal-less
  /// recovery, and their message bytes.
  std::uint64_t fo_reregistrations = 0;
  std::uint64_t fo_reregistration_bytes = 0;
  /// Client-side degraded mode: grants voided when the owning shard
  /// crashed, subscriber-ticks spent over a down shard, and position
  /// reports buffered for post-recovery server-side checking.
  std::uint64_t fo_grant_voids = 0;
  std::uint64_t fo_degraded_ticks = 0;
  std::uint64_t fo_buffered_reports = 0;

  // ---- Outcomes ----
  std::uint64_t safe_region_recomputes = 0;
  std::uint64_t triggers = 0;

  /// Distribution of safe-region payload sizes (bytes) across recomputes.
  RunningStat region_payload_bytes;

  void merge(const Metrics& other);
  std::string to_string() const;
};

}  // namespace salarm::sim
