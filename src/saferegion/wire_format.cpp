#include "saferegion/wire_format.h"

#include <cstring>

#include "common/error.h"

namespace salarm::wire {

namespace {

/// Little-endian byte writer.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u16(std::uint16_t v) {
    for (int i = 0; i < 2; ++i) bytes_.push_back((v >> (8 * i)) & 0xFF);
  }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) bytes_.push_back((v >> (8 * i)) & 0xFF);
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) bytes_.push_back((v >> (8 * i)) & 0xFF);
  }
  void f64(double v) {
    std::uint64_t raw;
    std::memcpy(&raw, &v, sizeof(raw));
    for (int i = 0; i < 8; ++i) bytes_.push_back((raw >> (8 * i)) & 0xFF);
  }
  void raw(std::span<const std::uint8_t> data) {
    bytes_.insert(bytes_.end(), data.begin(), data.end());
  }
  std::vector<std::uint8_t> take() && { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Little-endian byte reader with bounds checking.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t u8() {
    SALARM_REQUIRE(pos_ + 1 <= bytes_.size(), "message truncated");
    return bytes_[pos_++];
  }
  std::uint16_t u16() {
    SALARM_REQUIRE(pos_ + 2 <= bytes_.size(), "message truncated");
    const auto v = static_cast<std::uint16_t>(
        bytes_[pos_] | (static_cast<std::uint16_t>(bytes_[pos_ + 1]) << 8));
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    SALARM_REQUIRE(pos_ + 4 <= bytes_.size(), "message truncated");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(bytes_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    SALARM_REQUIRE(pos_ + 8 <= bytes_.size(), "message truncated");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(bytes_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return v;
  }
  std::size_t remaining() const { return bytes_.size() - pos_; }
  double f64() {
    SALARM_REQUIRE(pos_ + 8 <= bytes_.size(), "message truncated");
    std::uint64_t raw = 0;
    for (int i = 0; i < 8; ++i) {
      raw |= static_cast<std::uint64_t>(bytes_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    double v;
    std::memcpy(&v, &raw, sizeof(v));
    return v;
  }
  std::vector<std::uint8_t> raw(std::size_t n) {
    SALARM_REQUIRE(pos_ + n <= bytes_.size(), "message truncated");
    std::vector<std::uint8_t> out(bytes_.begin() + static_cast<long>(pos_),
                                  bytes_.begin() + static_cast<long>(pos_ + n));
    pos_ += n;
    return out;
  }
  void expect_done() const {
    SALARM_REQUIRE(pos_ == bytes_.size(), "trailing bytes in message");
  }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

void write_string(ByteWriter& w, const std::string& s) {
  SALARM_REQUIRE(s.size() <= 0xFFFF, "message string too long");
  w.u16(static_cast<std::uint16_t>(s.size()));
  w.raw({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
}

std::string read_string(ByteReader& r) {
  const std::uint16_t n = r.u16();
  const auto bytes = r.raw(n);
  return std::string(bytes.begin(), bytes.end());
}

void write_rect(ByteWriter& w, const geo::Rect& r) {
  w.f64(r.lo().x);
  w.f64(r.lo().y);
  w.f64(r.hi().x);
  w.f64(r.hi().y);
}

geo::Rect read_rect(ByteReader& r) {
  const double lx = r.f64();
  const double ly = r.f64();
  const double hx = r.f64();
  const double hy = r.f64();
  return geo::Rect(lx, ly, hx, hy);
}

void check_type(ByteReader& r, MessageType expected) {
  SALARM_REQUIRE(r.u8() == static_cast<std::uint8_t>(expected),
                 "unexpected message type");
}

constexpr std::size_t kRectBytes = 4 * 8;

// Full alarm descriptor inside checkpoint / journal records:
// id(4) scope(1) owner(4) rect(32) sub-count(2) subscribers(4 each)
// msg-len(2) message. At least 45 bytes.
constexpr std::size_t kMinAlarmBytes = 4 + 1 + 4 + kRectBytes + 2 + 2;

void write_alarm(ByteWriter& w, const alarms::SpatialAlarm& a) {
  w.u32(a.id);
  w.u8(static_cast<std::uint8_t>(a.scope));
  w.u32(a.owner);
  write_rect(w, a.region);
  SALARM_REQUIRE(a.subscribers.size() <= 0xFFFF,
                 "alarm subscriber list too long");
  w.u16(static_cast<std::uint16_t>(a.subscribers.size()));
  for (const alarms::SubscriberId s : a.subscribers) w.u32(s);
  write_string(w, a.message);
}

alarms::SpatialAlarm read_alarm(ByteReader& r) {
  alarms::SpatialAlarm a;
  a.id = r.u32();
  const std::uint8_t scope = r.u8();
  SALARM_REQUIRE(scope <= 2, "unknown alarm scope");
  a.scope = static_cast<alarms::AlarmScope>(scope);
  a.owner = r.u32();
  a.region = read_rect(r);
  const std::uint16_t count = r.u16();
  SALARM_REQUIRE(static_cast<std::size_t>(count) * 4 <= r.remaining(),
                 "alarm subscriber list exceeds payload");
  a.subscribers.reserve(count);
  for (std::uint16_t i = 0; i < count; ++i) a.subscribers.push_back(r.u32());
  a.message = read_string(r);
  return a;
}

std::size_t alarm_size(const alarms::SpatialAlarm& a) {
  return kMinAlarmBytes + 4 * a.subscribers.size() + a.message.size();
}

}  // namespace

// --------------------------------------------------------------------------
// PositionUpdate: type(1) subscriber(4) seq(4) x(8) y(8) time(8) = 33 bytes
// --------------------------------------------------------------------------

std::vector<std::uint8_t> encode(const PositionUpdate& m) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(MessageType::kPositionUpdate));
  w.u32(m.subscriber);
  w.u32(m.seq);
  w.f64(m.position.x);
  w.f64(m.position.y);
  w.f64(m.time_s);
  return std::move(w).take();
}

PositionUpdate decode_position_update(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  check_type(r, MessageType::kPositionUpdate);
  PositionUpdate m;
  m.subscriber = r.u32();
  m.seq = r.u32();
  m.position.x = r.f64();
  m.position.y = r.f64();
  m.time_s = r.f64();
  r.expect_done();
  return m;
}

std::size_t encoded_size(const PositionUpdate&) { return 1 + 4 + 4 + 3 * 8; }

// --------------------------------------------------------------------------
// RectSafeRegionMsg: type(1) rect(32) = 33 bytes
// --------------------------------------------------------------------------

std::vector<std::uint8_t> encode(const RectSafeRegionMsg& m) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(MessageType::kRectSafeRegion));
  write_rect(w, m.rect);
  return std::move(w).take();
}

RectSafeRegionMsg decode_rect_safe_region(
    std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  check_type(r, MessageType::kRectSafeRegion);
  RectSafeRegionMsg m;
  m.rect = read_rect(r);
  r.expect_done();
  return m;
}

std::size_t encoded_size(const RectSafeRegionMsg&) { return 1 + kRectBytes; }

std::size_t rect_message_size() {
  return encoded_size(RectSafeRegionMsg{});
}

// --------------------------------------------------------------------------
// PyramidSafeRegionMsg:
//   type(1) cell(32) u(1) v(1) h(1) bit_count(4) payload(ceil(bits/8))
// --------------------------------------------------------------------------

std::vector<std::uint8_t> encode(const PyramidSafeRegionMsg& m) {
  SALARM_REQUIRE(m.bits.size() == (m.bit_count + 7) / 8,
                 "payload size does not match bit count");
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(MessageType::kPyramidSafeRegion));
  write_rect(w, m.cell);
  w.u8(static_cast<std::uint8_t>(m.config.fanout_u));
  w.u8(static_cast<std::uint8_t>(m.config.fanout_v));
  w.u8(static_cast<std::uint8_t>(m.config.height));
  w.u32(m.bit_count);
  w.raw(m.bits);
  return std::move(w).take();
}

PyramidSafeRegionMsg decode_pyramid_safe_region(
    std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  check_type(r, MessageType::kPyramidSafeRegion);
  PyramidSafeRegionMsg m;
  m.cell = read_rect(r);
  m.config.fanout_u = r.u8();
  m.config.fanout_v = r.u8();
  m.config.height = r.u8();
  m.bit_count = r.u32();
  m.bits = r.raw((m.bit_count + 7) / 8);
  r.expect_done();
  return m;
}

std::size_t encoded_size(const PyramidSafeRegionMsg& m) {
  return pyramid_message_size(m.bit_count);
}

std::size_t pyramid_message_size(std::size_t bit_count) {
  return 1 + kRectBytes + 3 + 4 + (bit_count + 7) / 8;
}

saferegion::PyramidBitmap PyramidSafeRegionMsg::decode() const {
  return saferegion::PyramidBitmap::deserialize(cell, config, bits,
                                                bit_count);
}

PyramidSafeRegionMsg PyramidSafeRegionMsg::from(
    const saferegion::PyramidBitmap& bitmap) {
  PyramidSafeRegionMsg m;
  m.cell = bitmap.cell();
  m.config = bitmap.config();
  m.bit_count = static_cast<std::uint32_t>(bitmap.bit_size());
  m.bits = bitmap.serialize();
  return m;
}

// --------------------------------------------------------------------------
// AlarmPushMsg: type(1) cell(32) count(4) then per alarm
//   id(4) rect(32) len(2) message
// --------------------------------------------------------------------------

std::vector<std::uint8_t> encode(const AlarmPushMsg& m) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(MessageType::kAlarmPush));
  write_rect(w, m.cell);
  w.u32(static_cast<std::uint32_t>(m.alarms.size()));
  for (const AlarmPushMsg::Item& item : m.alarms) {
    w.u32(item.id);
    write_rect(w, item.region);
    write_string(w, item.message);
  }
  return std::move(w).take();
}

AlarmPushMsg decode_alarm_push(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  check_type(r, MessageType::kAlarmPush);
  AlarmPushMsg m;
  m.cell = read_rect(r);
  const std::uint32_t count = r.u32();
  // Each item is at least 4 + 32 + 2 bytes; a count the remaining payload
  // cannot possibly hold is corruption, and must be rejected *before* the
  // reserve so a hostile count cannot drive a huge allocation.
  SALARM_REQUIRE(count <= (bytes.size() - 1 - kRectBytes - 4) / 38,
                 "alarm push count exceeds payload");
  m.alarms.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    AlarmPushMsg::Item item;
    item.id = r.u32();
    item.region = read_rect(r);
    item.message = read_string(r);
    m.alarms.push_back(std::move(item));
  }
  r.expect_done();
  return m;
}

std::size_t encoded_size(const AlarmPushMsg& m) {
  std::size_t message_bytes = 0;
  for (const AlarmPushMsg::Item& item : m.alarms) {
    message_bytes += item.message.size();
  }
  return alarm_push_size(m.alarms.size(), message_bytes);
}

std::size_t alarm_push_size(std::size_t alarm_count,
                            std::size_t total_message_bytes) {
  return 1 + kRectBytes + 4 + alarm_count * (4 + kRectBytes + 2) +
         total_message_bytes;
}

// --------------------------------------------------------------------------
// SafePeriodMsg: type(1) period(8) = 9 bytes
// --------------------------------------------------------------------------

std::vector<std::uint8_t> encode(const SafePeriodMsg& m) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(MessageType::kSafePeriod));
  w.f64(m.period_s);
  return std::move(w).take();
}

SafePeriodMsg decode_safe_period(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  check_type(r, MessageType::kSafePeriod);
  SafePeriodMsg m;
  m.period_s = r.f64();
  r.expect_done();
  return m;
}

std::size_t encoded_size(const SafePeriodMsg&) { return 1 + 8; }

// --------------------------------------------------------------------------
// TriggerNoticeMsg: type(1) alarm(4) len(2) message = 7+len bytes
// --------------------------------------------------------------------------

std::vector<std::uint8_t> encode(const TriggerNoticeMsg& m) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(MessageType::kTriggerNotice));
  w.u32(m.alarm);
  write_string(w, m.message);
  return std::move(w).take();
}

TriggerNoticeMsg decode_trigger_notice(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  check_type(r, MessageType::kTriggerNotice);
  TriggerNoticeMsg m;
  m.alarm = r.u32();
  m.message = read_string(r);
  r.expect_done();
  return m;
}

std::size_t encoded_size(const TriggerNoticeMsg& m) {
  return trigger_notice_size(m.message.size());
}

std::size_t trigger_notice_size(std::size_t message_bytes) {
  return 1 + 4 + 2 + message_bytes;
}

// --------------------------------------------------------------------------
// InvalidationMsg: type(1) action(1) seq(4) alarm(4) rect(32) len(2)
//                  message = 44+len bytes
// --------------------------------------------------------------------------

std::vector<std::uint8_t> encode(const InvalidationMsg& m) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(MessageType::kInvalidation));
  w.u8(m.action);
  w.u32(m.seq);
  w.u32(m.alarm);
  write_rect(w, m.region);
  write_string(w, m.message);
  return std::move(w).take();
}

InvalidationMsg decode_invalidation(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  check_type(r, MessageType::kInvalidation);
  InvalidationMsg m;
  m.action = r.u8();
  SALARM_REQUIRE(m.action <= 2, "unknown invalidation action");
  m.seq = r.u32();
  m.alarm = r.u32();
  m.region = read_rect(r);
  m.message = read_string(r);
  r.expect_done();
  return m;
}

std::size_t encoded_size(const InvalidationMsg& m) {
  return invalidation_message_size(m.message.size());
}

std::size_t invalidation_message_size(std::size_t message_bytes) {
  return 1 + 1 + 4 + 4 + kRectBytes + 2 + message_bytes;
}

// --------------------------------------------------------------------------
// AckMsg: type(1) subscriber(4) seq(4) = 9 bytes
// --------------------------------------------------------------------------

std::vector<std::uint8_t> encode(const AckMsg& m) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(MessageType::kAck));
  w.u32(m.subscriber);
  w.u32(m.seq);
  return std::move(w).take();
}

AckMsg decode_ack(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  check_type(r, MessageType::kAck);
  AckMsg m;
  m.subscriber = r.u32();
  m.seq = r.u32();
  r.expect_done();
  return m;
}

std::size_t ack_message_size() { return 1 + 4 + 4; }

// --------------------------------------------------------------------------
// ShardHandoff: type(1) subscriber(4) position(16) time(8) uplink seq(4)
//               downlink seq(4) lease flag(1) count(4) spent ids(4 each)
// --------------------------------------------------------------------------

std::size_t handoff_message_size(std::size_t spent_alarms) {
  return 1 + 4 + 16 + 8 + 4 + 4 + 1 + 4 + spent_alarms * 4;
}

// --------------------------------------------------------------------------
// ShardCheckpointMsg: type(1) shard(4) tick(8)
//   alarm-count(4)  [alarm, installed_at(8)] ...
//   tomb-count(4)   [alarm, installed_at(8), removed_at(8)] ...
//   spent-count(4)  [alarm(4), subscriber(4)] ...
//   grant-count(4)  [subscriber(4), kind(1), rect(32)] ...
// Every count is validated against the remaining payload *before* the
// reserve, so a corrupted (or hostile) count cannot drive an allocation.
// --------------------------------------------------------------------------

std::vector<std::uint8_t> encode(const ShardCheckpointMsg& m) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(MessageType::kShardCheckpoint));
  w.u32(m.shard);
  w.u64(m.tick);
  w.u32(static_cast<std::uint32_t>(m.alarms.size()));
  for (const ShardCheckpointMsg::AlarmRec& rec : m.alarms) {
    write_alarm(w, rec.alarm);
    w.u64(rec.installed_at);
  }
  w.u32(static_cast<std::uint32_t>(m.graveyard.size()));
  for (const ShardCheckpointMsg::TombRec& rec : m.graveyard) {
    write_alarm(w, rec.alarm);
    w.u64(rec.installed_at);
    w.u64(rec.removed_at);
  }
  w.u32(static_cast<std::uint32_t>(m.spent.size()));
  for (const ShardCheckpointMsg::SpentRec& rec : m.spent) {
    w.u32(rec.alarm);
    w.u32(rec.subscriber);
  }
  w.u32(static_cast<std::uint32_t>(m.grants.size()));
  for (const ShardCheckpointMsg::GrantRec& rec : m.grants) {
    w.u32(rec.subscriber);
    w.u8(rec.kind);
    write_rect(w, rec.bounds);
  }
  return std::move(w).take();
}

ShardCheckpointMsg decode_shard_checkpoint(
    std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  check_type(r, MessageType::kShardCheckpoint);
  ShardCheckpointMsg m;
  m.shard = r.u32();
  m.tick = r.u64();

  const std::uint32_t alarm_count = r.u32();
  SALARM_REQUIRE(alarm_count <= r.remaining() / (kMinAlarmBytes + 8),
                 "checkpoint alarm count exceeds payload");
  m.alarms.reserve(alarm_count);
  for (std::uint32_t i = 0; i < alarm_count; ++i) {
    ShardCheckpointMsg::AlarmRec rec;
    rec.alarm = read_alarm(r);
    rec.installed_at = r.u64();
    m.alarms.push_back(std::move(rec));
  }

  const std::uint32_t tomb_count = r.u32();
  SALARM_REQUIRE(tomb_count <= r.remaining() / (kMinAlarmBytes + 16),
                 "checkpoint tomb count exceeds payload");
  m.graveyard.reserve(tomb_count);
  for (std::uint32_t i = 0; i < tomb_count; ++i) {
    ShardCheckpointMsg::TombRec rec;
    rec.alarm = read_alarm(r);
    rec.installed_at = r.u64();
    rec.removed_at = r.u64();
    SALARM_REQUIRE(rec.removed_at > rec.installed_at,
                   "checkpoint tomb lifetime is empty");
    m.graveyard.push_back(std::move(rec));
  }

  const std::uint32_t spent_count = r.u32();
  SALARM_REQUIRE(spent_count <= r.remaining() / 8,
                 "checkpoint spent count exceeds payload");
  m.spent.reserve(spent_count);
  for (std::uint32_t i = 0; i < spent_count; ++i) {
    ShardCheckpointMsg::SpentRec rec;
    rec.alarm = r.u32();
    rec.subscriber = r.u32();
    m.spent.push_back(rec);
  }

  const std::uint32_t grant_count = r.u32();
  SALARM_REQUIRE(grant_count <= r.remaining() / (4 + 1 + kRectBytes),
                 "checkpoint grant count exceeds payload");
  m.grants.reserve(grant_count);
  for (std::uint32_t i = 0; i < grant_count; ++i) {
    ShardCheckpointMsg::GrantRec rec;
    rec.subscriber = r.u32();
    rec.kind = r.u8();
    SALARM_REQUIRE(rec.kind <= 3, "unknown grant kind");
    rec.bounds = read_rect(r);
    m.grants.push_back(rec);
  }
  r.expect_done();
  return m;
}

std::size_t encoded_size(const ShardCheckpointMsg& m) {
  std::size_t size = 1 + 4 + 8 + 4 + 4 + 4 + 4;
  for (const ShardCheckpointMsg::AlarmRec& rec : m.alarms) {
    size += alarm_size(rec.alarm) + 8;
  }
  for (const ShardCheckpointMsg::TombRec& rec : m.graveyard) {
    size += alarm_size(rec.alarm) + 16;
  }
  size += m.spent.size() * 8;
  size += m.grants.size() * (4 + 1 + kRectBytes);
  return size;
}

// --------------------------------------------------------------------------
// JournalRecordMsg: type(1) kind(1) tick(8) then
//   kInstall: alarm | kRemove: id(4) | kSpent: id(4) subscriber(4)
// --------------------------------------------------------------------------

std::vector<std::uint8_t> encode(const JournalRecordMsg& m) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(MessageType::kJournalRecord));
  w.u8(static_cast<std::uint8_t>(m.kind));
  w.u64(m.tick);
  switch (m.kind) {
    case JournalRecordMsg::Kind::kInstall:
      write_alarm(w, m.alarm);
      break;
    case JournalRecordMsg::Kind::kRemove:
      w.u32(m.alarm_id);
      break;
    case JournalRecordMsg::Kind::kSpent:
      w.u32(m.alarm_id);
      w.u32(m.subscriber);
      break;
  }
  return std::move(w).take();
}

JournalRecordMsg decode_journal_record(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  check_type(r, MessageType::kJournalRecord);
  JournalRecordMsg m;
  const std::uint8_t kind = r.u8();
  SALARM_REQUIRE(kind <= 2, "unknown journal record kind");
  m.kind = static_cast<JournalRecordMsg::Kind>(kind);
  m.tick = r.u64();
  switch (m.kind) {
    case JournalRecordMsg::Kind::kInstall:
      m.alarm = read_alarm(r);
      m.alarm_id = m.alarm.id;
      break;
    case JournalRecordMsg::Kind::kRemove:
      m.alarm_id = r.u32();
      break;
    case JournalRecordMsg::Kind::kSpent:
      m.alarm_id = r.u32();
      m.subscriber = r.u32();
      break;
  }
  r.expect_done();
  return m;
}

std::size_t encoded_size(const JournalRecordMsg& m) {
  const std::size_t header = 1 + 1 + 8;
  switch (m.kind) {
    case JournalRecordMsg::Kind::kInstall:
      return header + alarm_size(m.alarm);
    case JournalRecordMsg::Kind::kRemove:
      return header + 4;
    case JournalRecordMsg::Kind::kSpent:
      return header + 4 + 4;
  }
  return header;
}

}  // namespace salarm::wire
