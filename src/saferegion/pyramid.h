// Bitmap-encoded safe regions: GBSR and PBSR (paper §4, Figure 3).
//
// A subscriber's base grid cell is described by a pyramid of U×V
// subdivisions of height h. A cell whose interior intersects no relevant
// alarm region is *safe* (bit 1). An unsafe cell (bit 0) is either
//
//   * refined into U×V children at the next level (a *partially* covered
//     cell, where refinement can still reveal safe area), or
//   * left as a solid unsafe block (fully covered by an alarm region, or
//     at the maximum height h).
//
// GBSR is exactly the height-1 special case (paper §5.2: "we vary the
// height of the pyramid from h = 1 (for GBSR) to h = 7").
//
// Wire encoding. The paper's raster-scan, level-by-level bit string is kept,
// with one deviation documented in DESIGN.md: each unsafe cell above the
// maximum height carries one extra bit — 1 when its children follow at the
// next level, 0 when it is a solid unsafe block. The paper's scheme refines
// every unsafe cell, which explodes combinatorially (a cell fully inside an
// alarm region would drag a full (U·V)^h all-zero subtree into the bitmap);
// the technical report [6] with the exact estimation algorithm is not
// available, so the subdivided-flag is the minimal decodable realization of
// "split only where refinement helps". Under it the Figure 3 example costs
// 71 bits (PBSR, h=2) vs the paper's 64, and 83 (GBSR 9×9) vs 82 — same
// ordering, same asymptotics on partially covered cells.
//
// The client-side containment check descends the pyramid from the root;
// the number of levels visited is the energy-model cost of the check
// (paper §5.2's "safe region containment detections").
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geometry/point.h"
#include "geometry/rect.h"

namespace salarm::saferegion {

struct PyramidConfig {
  /// Subdivision fan-out per axis (paper Figure 3 uses 3×3).
  int fanout_u = 3;
  int fanout_v = 3;
  /// Maximum subdivision depth h >= 1; h = 1 is GBSR.
  int height = 5;
  /// Bit budget for the encoding — the paper's coverage-vs-bitmap-size
  /// trade-off ("we want to achieve high coverage with as small bitmap
  /// size as possible", §4.2). The build refines breadth-first
  /// (coarse-to-fine), and stops refining when the next level would
  /// overflow the budget; unrefined cells stay solid-unsafe. 0 = unlimited.
  std::size_t max_bits = 4096;
};

/// Result of a client-side containment check.
struct PyramidContainment {
  bool safe = false;
  /// Pyramid levels visited (1 = answered at the root); the elementary
  /// operation count of the check for the client energy model.
  int levels = 0;
};

/// A pyramid bitmap over one base grid cell. Immutable except for
/// mark_unsafe, the client-side shrink applied on an invalidation push.
class PyramidBitmap {
 public:
  /// Classifies the cell against the given alarm regions. `ops`, when
  /// non-null, is incremented by the number of elementary cell/alarm
  /// intersection tests performed (server cost model).
  static PyramidBitmap build(const geo::Rect& cell,
                             std::span<const geo::Rect> alarm_regions,
                             const PyramidConfig& config,
                             std::uint64_t* ops = nullptr);

  /// Containment check for a position inside the base cell (precondition).
  PyramidContainment locate(geo::Point p) const;

  /// Conservative in-place shrink (dynamics tier, DESIGN.md §8): every safe
  /// node whose interior intersects `region` becomes solid-unsafe, so the
  /// bitmap stays sound after an alarm is installed inside the cell. The
  /// structure is never refined — at worst a whole safe node covering the
  /// region goes unsafe, costing extra client reports but never accuracy.
  void mark_unsafe(const geo::Rect& region);

  /// Fraction of the base cell's area marked safe — the paper's coverage
  /// measure η(Ψs).
  double coverage() const;

  /// Exact size of the wire encoding in bits / whole bytes.
  std::size_t bit_size() const;
  std::size_t byte_size() const { return (bit_size() + 7) / 8; }

  /// Bit size under the paper's original accounting (1 bit per cell, every
  /// unsafe cell above height h refined). Matches the Figure 3 worked
  /// examples; reported by the benches for comparison.
  std::size_t paper_bit_size() const;

  const geo::Rect& cell() const { return cell_; }
  const PyramidConfig& config() const { return config_; }
  std::size_t node_count() const { return nodes_.size(); }

  /// Intersection of safe sets: the returned pyramid marks a point safe
  /// iff both inputs do. Both pyramids must describe the same cell with
  /// the same fan-out and height. This implements the paper's §4.2
  /// optimization — the bitmap over the (shared, subscriber-independent)
  /// public alarms is precomputed once per cell and intersected with the
  /// subscriber's private-alarm bitmap. `ops`, when non-null, counts the
  /// node-pair visits (server cost model).
  PyramidBitmap intersect(const PyramidBitmap& other,
                          std::uint64_t* ops = nullptr) const;

  /// Level-order bit encoding as described above.
  std::vector<std::uint8_t> serialize() const;

  /// Rebuilds a pyramid from its wire encoding. Throws PreconditionError on
  /// a truncated or over-long stream.
  static PyramidBitmap deserialize(const geo::Rect& cell,
                                   const PyramidConfig& config,
                                   std::span<const std::uint8_t> bytes,
                                   std::size_t bit_count);

  friend bool operator==(const PyramidBitmap& a, const PyramidBitmap& b);

 private:
  enum class State : std::uint8_t { kSafe, kSolidUnsafe, kSubdivided };

  struct Node {
    State state = State::kSolidUnsafe;
    std::uint32_t first_child = 0;  ///< meaningful when kSubdivided
    std::uint8_t level = 0;         ///< 0 = root (the base cell itself)
  };

  PyramidBitmap(const geo::Rect& cell, const PyramidConfig& config)
      : cell_(cell), config_(config) {}

  static void validate(const geo::Rect& cell, const PyramidConfig& config);

  geo::Rect cell_;
  PyramidConfig config_;
  /// Level-order (BFS) node array; children of a subdivided node are
  /// contiguous in row-major order.
  std::vector<Node> nodes_;
};

}  // namespace salarm::saferegion
