#include "saferegion/corner_baseline.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <vector>

#include "common/error.h"

namespace salarm::saferegion {

namespace {

struct LocalPoint {
  double x;
  double y;
};

/// Extents per direction: [0]=+x, [1]=+y, [2]=-x, [3]=-y.
using Extents = std::array<double, 4>;

double x_extent(const Extents& e, std::size_t q) {
  return (q == 0 || q == 3) ? e[0] : e[2];
}
double y_extent(const Extents& e, std::size_t q) {
  return (q == 0 || q == 1) ? e[1] : e[3];
}

double weighted_perimeter_of(const Extents& e, const QuadrantWeights& w) {
  double sum = 0.0;
  for (std::size_t q = 0; q < 4; ++q) {
    sum += w[q] * (x_extent(e, q) + y_extent(e, q));
  }
  return 4.0 * sum;
}

/// Staircase of maximal feasible corners for one quadrant's candidates.
std::vector<LocalPoint> staircase(std::vector<LocalPoint> cand, double ex,
                                  double ey) {
  std::vector<LocalPoint> stairs;
  std::sort(cand.begin(), cand.end(), [](LocalPoint a, LocalPoint b) {
    return a.x != b.x ? a.x < b.x : a.y < b.y;
  });
  std::vector<LocalPoint> kept;
  double min_y = std::numeric_limits<double>::infinity();
  for (const LocalPoint c : cand) {
    if (c.y < min_y) {
      kept.push_back(c);
      min_y = c.y;
    }
  }
  if (kept.empty()) {
    stairs.push_back({ex, ey});
    return stairs;
  }
  stairs.push_back({kept.front().x, ey});
  for (std::size_t i = 1; i < kept.size(); ++i) {
    stairs.push_back({kept[i].x, kept[i - 1].y});
  }
  stairs.push_back({ex, kept.back().y});
  return stairs;
}

}  // namespace

RectSafeRegion compute_corner_baseline(
    geo::Point position, double heading, const geo::Rect& cell,
    std::span<const geo::Rect> alarm_regions, const MotionModel& model) {
  SALARM_REQUIRE(cell.contains(position), "position outside its grid cell");
  RectSafeRegion result;

  const Extents cell_extents{cell.hi().x - position.x,
                             cell.hi().y - position.y,
                             position.x - cell.lo().x,
                             position.y - cell.lo().y};

  // The baseline's defining (flawed) step: every alarm contributes ONE
  // candidate — its geometrically nearest corner, assigned to the quadrant
  // that corner happens to lie in. Alarm regions straddling an axis or
  // containing the position constrain other quadrants too, which this
  // construction ignores.
  std::array<std::vector<LocalPoint>, 4> candidates;
  for (const geo::Rect& a : alarm_regions) {
    ++result.ops;
    const double cx = std::abs(a.lo().x - position.x) <=
                              std::abs(a.hi().x - position.x)
                          ? a.lo().x
                          : a.hi().x;
    const double cy = std::abs(a.lo().y - position.y) <=
                              std::abs(a.hi().y - position.y)
                          ? a.lo().y
                          : a.hi().y;
    const std::size_t q = cx >= position.x ? (cy >= position.y ? 0 : 3)
                                           : (cy >= position.y ? 1 : 2);
    const LocalPoint cand{std::abs(cx - position.x),
                          std::abs(cy - position.y)};
    if (cand.x >= x_extent(cell_extents, q) ||
        cand.y >= y_extent(cell_extents, q)) {
      continue;
    }
    candidates[q].push_back(cand);
  }

  std::array<std::vector<LocalPoint>, 4> tension;
  for (std::size_t q = 0; q < 4; ++q) {
    tension[q] = staircase(std::move(candidates[q]),
                           x_extent(cell_extents, q),
                           y_extent(cell_extents, q));
    result.ops += tension[q].size();
  }

  // Exhaustive maximum weighted perimeter over the (small) tension sets.
  const QuadrantWeights weights = model.quadrant_weights(heading);
  Extents best = cell_extents;
  double best_wp = -1.0;
  for (const LocalPoint t0 : tension[0]) {
    for (const LocalPoint t1 : tension[1]) {
      for (const LocalPoint t2 : tension[2]) {
        for (const LocalPoint t3 : tension[3]) {
          ++result.ops;
          const Extents e{std::min({cell_extents[0], t0.x, t3.x}),
                          std::min({cell_extents[1], t0.y, t1.y}),
                          std::min({cell_extents[2], t1.x, t2.x}),
                          std::min({cell_extents[3], t2.y, t3.y})};
          const double wp = weighted_perimeter_of(e, weights);
          if (wp > best_wp) {
            best_wp = wp;
            best = e;
          }
        }
      }
    }
  }

  result.rect = geo::Rect({position.x - best[2], position.y - best[3]},
                          {position.x + best[0], position.y + best[1]});
  return result;
}

}  // namespace salarm::saferegion
