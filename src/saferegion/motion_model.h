// Steady-motion probability model (paper §3, Figure 1).
//
// The probability density p(φ) of the client's next direction of motion is
// expressed relative to its current heading: φ = 0 means "keeps going
// straight". Two parameters of steadiness y, z (y/z < 1) control the model:
// y/z weights how strongly the current direction is preferred, and z sets
// the angular granularity — the density is constant for 0 <= |φ| <= π/z and
// steps down beyond.
//
// The paper's formula is typographically corrupted in the available text;
// this is the reconstruction documented in DESIGN.md §2:
//
//     p(φ) = [ 1 + (y/z) · (π/2 − Q_z(|φ|)) · (2/π) ] / 2π
//
// where Q_z(a) quantizes a ∈ [0, π] to the midpoint of its step of width
// π/z. Properties (all unit-tested):
//   * p is a valid pdf: p >= 0 (since y/z < 1) and ∫_{-π}^{π} p dφ = 1 for
//     even z (the steps pair off symmetrically around π/2);
//   * constant on [0, π/z]; non-increasing in |φ|;
//   * peak value (1 + y/z)/2π and floor (1 − y/z)/2π, matching Fig. 1(b);
//   * uniform 1/2π as y/z → 0 (the "random direction" limit).
#pragma once

#include <array>

#include "common/error.h"

namespace salarm::saferegion {

/// Weights of the four axis-aligned quadrant directions under the motion
/// pdf; used by the weighted-perimeter objective. Sum to 1.
struct QuadrantWeights {
  /// Indexed by quadrant: 0 = I (+x,+y), 1 = II (-x,+y), 2 = III (-x,-y),
  /// 3 = IV (+x,-y).
  std::array<double, 4> w{};

  double operator[](std::size_t q) const { return w[q]; }
};

/// The steady-motion pdf.
class MotionModel {
 public:
  /// Requires z a positive even integer and 0 <= y < z (so y/z < 1 and the
  /// density stays non-negative and normalized).
  MotionModel(double y, int z);

  /// Density at relative angle phi (any real; wrapped into (-π, π]).
  double pdf(double phi) const;

  /// Probability mass of the angular interval [a, b] (relative angles,
  /// b >= a, b - a <= 2π), computed by exact summation over the quantized
  /// steps.
  double mass(double a, double b) const;

  /// Probability mass of each axis-aligned quadrant for a client currently
  /// heading in absolute direction `heading` (radians).
  QuadrantWeights quadrant_weights(double heading) const;

  double y() const { return y_; }
  int z() const { return z_; }

  /// The non-weighted model used by the paper's baseline rectangular
  /// approach: uniform direction, every quadrant weighing 1/4.
  static MotionModel uniform() { return MotionModel(0.0, 2); }

 private:
  double y_;
  int z_;
};

}  // namespace salarm::saferegion
