#include "saferegion/motion_model.h"

#include <algorithm>
#include <cmath>

#include "geometry/point.h"

namespace salarm::saferegion {

MotionModel::MotionModel(double y, int z) : y_(y), z_(z) {
  SALARM_REQUIRE(z >= 1, "z must be a positive integer");
  SALARM_REQUIRE(y >= 0.0, "y must be non-negative");
  SALARM_REQUIRE(y < static_cast<double>(z), "steadiness requires y/z < 1");
}

double MotionModel::pdf(double phi) const {
  const double a = std::abs(geo::normalize_angle(phi));
  const double w = M_PI / z_;
  auto k = static_cast<int>(std::floor(a / w));
  k = std::clamp(k, 0, z_ - 1);
  const double q = (k + 0.5) * w;  // midpoint-quantized |phi|
  const double ratio = y_ / static_cast<double>(z_);
  return (1.0 + ratio * (M_PI / 2.0 - q) * (2.0 / M_PI)) / (2.0 * M_PI);
}

double MotionModel::mass(double a, double b) const {
  SALARM_REQUIRE(b >= a, "mass interval out of order");
  SALARM_REQUIRE(b - a <= 2.0 * M_PI + 1e-9, "mass interval exceeds 2*pi");
  // The pdf (as a function of the unwrapped relative angle) is piecewise
  // constant between consecutive multiples of w = pi/z, so summing
  // pdf(midpoint) * length over those segments is exact.
  const double w = M_PI / z_;
  double total = 0.0;
  double x = a;
  while (x < b) {
    double next_break = (std::floor(x / w) + 1.0) * w;
    // Guard against x sitting exactly on (or a rounding hair past) a
    // breakpoint, which would stall the sweep.
    if (next_break <= x) next_break = (std::floor(x / w) + 2.0) * w;
    const double seg_end = std::min(next_break, b);
    SALARM_ASSERT(seg_end > x, "mass integration made no progress");
    total += pdf((x + seg_end) / 2.0) * (seg_end - x);
    x = seg_end;
  }
  return total;
}

QuadrantWeights MotionModel::quadrant_weights(double heading) const {
  QuadrantWeights out;
  // Quadrant Q spans absolute angles [Q*pi/2, (Q+1)*pi/2) for
  // Q = I, II, III, IV = 0..3; convert to angles relative to the heading.
  for (std::size_t q = 0; q < 4; ++q) {
    const double abs_lo = static_cast<double>(q) * M_PI / 2.0;
    out.w[q] = mass(abs_lo - heading, abs_lo + M_PI / 2.0 - heading);
  }
  return out;
}

}  // namespace salarm::saferegion
