#include "saferegion/mwpsr.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <vector>

#include "common/error.h"

namespace salarm::saferegion {

namespace {

/// Quadrant sign conventions: I(+x,+y), II(-x,+y), III(-x,-y), IV(+x,-y).
constexpr std::array<double, 4> kSignX{+1.0, -1.0, -1.0, +1.0};
constexpr std::array<double, 4> kSignY{+1.0, +1.0, -1.0, -1.0};

/// A point in quadrant-local magnitude coordinates (both >= 0).
struct LocalPoint {
  double x;
  double y;
};

/// Per-direction extents of a rectangle around the position:
/// [0]=+x, [1]=+y, [2]=-x, [3]=-y (all magnitudes).
using Extents = std::array<double, 4>;

double quadrant_x_extent(const Extents& e, std::size_t q) {
  return (q == 0 || q == 3) ? e[0] : e[2];
}
double quadrant_y_extent(const Extents& e, std::size_t q) {
  return (q == 0 || q == 1) ? e[1] : e[3];
}

double area_of_extents(const Extents& e) {
  return (e[0] + e[2]) * (e[1] + e[3]);
}

double weighted_perimeter_of_extents(const Extents& e,
                                     const QuadrantWeights& w) {
  double sum = 0.0;
  for (std::size_t q = 0; q < 4; ++q) {
    sum += w[q] * (quadrant_x_extent(e, q) + quadrant_y_extent(e, q));
  }
  return 4.0 * sum;
}

/// Applies a tension-point choice for quadrant q to the running extents.
Extents apply_choice(Extents e, std::size_t q, LocalPoint t) {
  const std::size_t xd = (q == 0 || q == 3) ? 0 : 2;
  const std::size_t yd = (q == 0 || q == 1) ? 1 : 3;
  e[xd] = std::min(e[xd], t.x);
  e[yd] = std::min(e[yd], t.y);
  return e;
}

}  // namespace

double weighted_perimeter(const geo::Rect& rect, geo::Point position,
                          const QuadrantWeights& weights) {
  SALARM_REQUIRE(rect.contains(position),
                 "weighted perimeter needs the position inside the rect");
  const Extents e{rect.hi().x - position.x, rect.hi().y - position.y,
                  position.x - rect.lo().x, position.y - rect.lo().y};
  return weighted_perimeter_of_extents(e, weights);
}

RectSafeRegion compute_mwpsr(geo::Point position, double heading,
                             const geo::Rect& cell,
                             std::span<const geo::Rect> alarm_regions,
                             const MotionModel& model,
                             const MwpsrOptions& options) {
  SALARM_REQUIRE(cell.contains(position), "position outside its grid cell");
  RectSafeRegion result;

  // Definition (ii): position strictly inside one or more alarm regions —
  // the safe region is the intersection of the containing regions (within
  // the cell). Under one-shot semantics such alarms have already fired.
  geo::Rect containing = cell;
  bool inside_any = false;
  for (const geo::Rect& a : alarm_regions) {
    ++result.ops;
    if (a.interior_contains(position)) {
      inside_any = true;
      const auto inter = containing.intersection(a);
      SALARM_ASSERT(inter.has_value(),
                    "containing alarm regions must intersect at the position");
      containing = *inter;
    }
  }
  if (inside_any) {
    result.rect = containing;
    result.inside_alarm = true;
    return result;
  }

  // Cell extents per direction (+x, +y, -x, -y).
  const Extents cell_extents{cell.hi().x - position.x,
                             cell.hi().y - position.y,
                             position.x - cell.lo().x,
                             position.y - cell.lo().y};

  // Step 1: candidate points per quadrant, clamped to the quadrant axes.
  std::array<std::vector<LocalPoint>, 4> candidates;
  for (const geo::Rect& a : alarm_regions) {
    for (std::size_t q = 0; q < 4; ++q) {
      ++result.ops;
      // Alarm interval in quadrant-local coordinates.
      const double lo_x = kSignX[q] > 0 ? a.lo().x - position.x
                                        : position.x - a.hi().x;
      const double hi_x = kSignX[q] > 0 ? a.hi().x - position.x
                                        : position.x - a.lo().x;
      const double lo_y = kSignY[q] > 0 ? a.lo().y - position.y
                                        : position.y - a.hi().y;
      const double hi_y = kSignY[q] > 0 ? a.hi().y - position.y
                                        : position.y - a.lo().y;
      if (hi_x <= 0.0 || hi_y <= 0.0) continue;  // no interior in quadrant
      const LocalPoint cand{std::max(lo_x, 0.0), std::max(lo_y, 0.0)};
      // Candidates at/beyond the cell border cannot bind inside the cell.
      const double ex = quadrant_x_extent(cell_extents, q);
      const double ey = quadrant_y_extent(cell_extents, q);
      if (cand.x >= ex || cand.y >= ey) continue;
      // cand == (0,0) is legal here: the position sits exactly on the
      // alarm's corner/boundary (which does not trigger under the open-
      // interior semantics); the staircase collapses that quadrant.
      candidates[q].push_back(cand);
    }
  }

  // Steps 1 (pruning) + 2: tension-point staircases per quadrant.
  std::array<std::vector<LocalPoint>, 4> tension;
  for (std::size_t q = 0; q < 4; ++q) {
    auto& cand = candidates[q];
    const double ex = quadrant_x_extent(cell_extents, q);
    const double ey = quadrant_y_extent(cell_extents, q);
    std::sort(cand.begin(), cand.end(), [](LocalPoint a, LocalPoint b) {
      return a.x != b.x ? a.x < b.x : a.y < b.y;
    });
    result.ops += cand.size();  // sort pass (counted linearly per element)

    std::vector<LocalPoint> kept;
    if (options.prune_dominated) {
      // Weakly dominated candidates are implied by a stronger constraint:
      // keep only the staircase of strictly decreasing y.
      double min_y = std::numeric_limits<double>::infinity();
      for (const LocalPoint c : cand) {
        ++result.ops;
        if (c.y < min_y) {
          kept.push_back(c);
          min_y = c.y;
        }
      }
    } else {
      result.ops += cand.size();
      kept = cand;
    }

    auto& stairs = tension[q];
    if (kept.empty()) {
      stairs.push_back({ex, ey});
      ++result.ops;
      continue;
    }
    // With pruning, kept is x-increasing / y-decreasing and the staircase
    // below is exact. Without pruning (ablation) the same construction on
    // the running y-minimum stays sound, merely redundant.
    stairs.push_back({kept.front().x, ey});
    double min_y = kept.front().y;
    for (std::size_t i = 1; i < kept.size(); ++i) {
      ++result.ops;
      if (kept[i].x > kept[i - 1].x) {
        stairs.push_back({kept[i].x, min_y});
      }
      min_y = std::min(min_y, kept[i].y);
    }
    stairs.push_back({ex, min_y});
    result.ops += stairs.size();
  }

  const QuadrantWeights weights = options.weighted
                                      ? model.quadrant_weights(heading)
                                      : QuadrantWeights{{0.25, 0.25, 0.25,
                                                         0.25}};

  bool exhaustive = options.assembly == MwpsrAssembly::kExhaustive;
  if (options.assembly == MwpsrAssembly::kAuto) {
    const std::size_t combinations = tension[0].size() * tension[1].size() *
                                     tension[2].size() * tension[3].size();
    exhaustive = combinations <= options.exhaustive_limit;
  }

  // Choice rule shared by both assemblies: maximize the weighted
  // perimeter; among candidates within (1 - eps) of the running maximum,
  // prefer the larger area (see MwpsrOptions::area_tiebreak_epsilon).
  const double eps = options.area_tiebreak_epsilon;
  SALARM_REQUIRE(eps >= 0.0 && eps < 1.0, "tie-break epsilon out of range");
  struct Choice {
    double wp = -1.0;
    double area = -1.0;
    Extents extents{};
    bool valid = false;

    void consider(double new_wp, const Extents& e, double epsilon) {
      const double new_area = area_of_extents(e);
      if (!valid) {
        *this = {new_wp, new_area, e, true};
        return;
      }
      if (new_wp > wp) {
        // A strictly better perimeter wins unless it is within the epsilon
        // band of the incumbent and smaller in area.
        if (new_wp * (1.0 - epsilon) <= wp && new_area < area) {
          wp = new_wp;  // remember the better perimeter for future bands
          return;
        }
        *this = {new_wp, new_area, e, true};
        return;
      }
      if (new_wp >= wp * (1.0 - epsilon) && new_area > area) {
        extents = e;
        area = new_area;
      }
    }
  };

  Extents best_extents = cell_extents;
  if (exhaustive) {
    // Steps 3+4, exhaustive variant: every combination of one component
    // rectangle (tension point) per quadrant.
    Choice best;
    for (const LocalPoint t0 : tension[0]) {
      for (const LocalPoint t1 : tension[1]) {
        for (const LocalPoint t2 : tension[2]) {
          for (const LocalPoint t3 : tension[3]) {
            ++result.ops;
            Extents e = cell_extents;
            e = apply_choice(e, 0, t0);
            e = apply_choice(e, 1, t1);
            e = apply_choice(e, 2, t2);
            e = apply_choice(e, 3, t3);
            best.consider(weighted_perimeter_of_extents(e, weights), e, eps);
          }
        }
      }
    }
    best_extents = best.extents;
  } else {
    // Steps 3+4, greedy variant: quadrants in decreasing pdf mass, each
    // choosing the tension point maximizing the running weighted perimeter.
    std::array<std::size_t, 4> order{0, 1, 2, 3};
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return weights[a] != weights[b] ? weights[a] > weights[b] : a < b;
    });
    Extents current = cell_extents;
    for (const std::size_t q : order) {
      Choice best;
      for (const LocalPoint t : tension[q]) {
        ++result.ops;
        const Extents e = apply_choice(current, q, t);
        best.consider(weighted_perimeter_of_extents(e, weights), e, eps);
      }
      if (best.valid) current = best.extents;
    }
    best_extents = current;
  }

  // Nudge alarm-bound edges one ulp toward the position so floating-point
  // round-trips can never leave the rectangle overlapping an alarm
  // interior. Cell-bound edges stay exact, so a subscriber riding the
  // universe border remains inside its region.
  auto snap = [](double edge, double cell_edge, double toward) {
    return edge == cell_edge ? edge : std::nextafter(edge, toward);
  };
  const double hi_x = snap(position.x + best_extents[0], cell.hi().x,
                           position.x);
  const double hi_y = snap(position.y + best_extents[1], cell.hi().y,
                           position.y);
  const double lo_x = snap(position.x - best_extents[2], cell.lo().x,
                           position.x);
  const double lo_y = snap(position.y - best_extents[3], cell.lo().y,
                           position.y);
  result.rect = geo::Rect({std::min(lo_x, position.x),
                           std::min(lo_y, position.y)},
                          {std::max(hi_x, position.x),
                           std::max(hi_y, position.y)});
  return result;
}

}  // namespace salarm::saferegion
