// Client/server wire formats.
//
// The paper's downstream-bandwidth metric (Figure 6(b)) depends on the
// exact size of what the server ships to each client: a rectangle for
// MWPSR, a pyramid bitmap for GBSR/PBSR, the full relevant-alarm list for
// OPT, a scalar for the safe-period baseline. These encodings define those
// sizes and are byte-exact round-trippable (the client examples decode
// them), so the bandwidth numbers are grounded in real payloads rather
// than estimates.
//
// Encoding conventions: little-endian fixed-width integers, IEEE-754
// doubles, one leading message-type byte.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "alarms/spatial_alarm.h"
#include "geometry/point.h"
#include "geometry/rect.h"
#include "saferegion/pyramid.h"

namespace salarm::wire {

enum class MessageType : std::uint8_t {
  kPositionUpdate = 1,   ///< client -> server
  kRectSafeRegion = 2,   ///< server -> client (MWPSR)
  kPyramidSafeRegion = 3,///< server -> client (GBSR/PBSR)
  kAlarmPush = 4,        ///< server -> client (OPT)
  kSafePeriod = 5,       ///< server -> client (SP baseline)
  kTriggerNotice = 6,    ///< server -> client (all strategies)
  kShardHandoff = 7,     ///< shard -> shard (cluster session transfer)
  kInvalidation = 8,     ///< server -> client (grant invalidation push)
  kAck = 9,              ///< either direction (reliability protocol)
  kShardCheckpoint = 10, ///< shard -> durable store (failover tier)
  kJournalRecord = 11,   ///< shard -> durable log (failover tier)
};

/// Client position report. `seq` is the per-session uplink sequence number
/// (DESIGN.md §9): the server ACKs it and suppresses duplicate deliveries,
/// and reordered reports are re-sequenced by it.
struct PositionUpdate {
  alarms::SubscriberId subscriber = 0;
  geo::Point position;
  double time_s = 0.0;
  std::uint32_t seq = 0;
};

/// Rectangular safe region (MWPSR).
struct RectSafeRegionMsg {
  geo::Rect rect{geo::Point{}, geo::Point{}};
};

/// Pyramid bitmap safe region (GBSR/PBSR): base-cell geometry, pyramid
/// parameters and the bit stream.
struct PyramidSafeRegionMsg {
  geo::Rect cell{geo::Point{}, geo::Point{}};
  saferegion::PyramidConfig config;
  std::uint32_t bit_count = 0;
  std::vector<std::uint8_t> bits;

  saferegion::PyramidBitmap decode() const;
  static PyramidSafeRegionMsg from(const saferegion::PyramidBitmap& bitmap);
};

/// Complete relevant-alarm push (OPT): full alarm descriptors. The client
/// evaluates alarms locally, so it must receive the alert content up front
/// — the safe-region approaches keep that content server-side and ship it
/// only inside trigger notices.
struct AlarmPushMsg {
  struct Item {
    alarms::AlarmId id = 0;
    geo::Rect region{geo::Point{}, geo::Point{}};
    std::string message;
  };
  geo::Rect cell{geo::Point{}, geo::Point{}};
  std::vector<Item> alarms;
};

/// Safe-period grant (SP baseline).
struct SafePeriodMsg {
  double period_s = 0.0;
};

/// Alarm trigger notification, carrying the alert content.
struct TriggerNoticeMsg {
  alarms::AlarmId alarm = 0;
  std::string message;
};

/// Grant-invalidation push (dynamics tier, DESIGN.md §8): tells a client
/// that an alarm installed after its grant was issued may violate the
/// grant. `action` selects revoke (rect / safe-period grants), shrink
/// (pyramid grants; `region` is the unsafe mask) or alarm-add (client-side
/// evaluation; `region` + `message` describe the new alarm).
struct InvalidationMsg {
  std::uint8_t action = 0;  ///< dynamics::InvalidationAction
  /// Per-session downlink sequence number (DESIGN.md §9): pushes are
  /// leased — retransmitted until ACKed — so the client needs it to
  /// suppress duplicates and restore the order of reordered copies.
  std::uint32_t seq = 0;
  alarms::AlarmId alarm = 0;
  geo::Rect region{geo::Point{}, geo::Point{}};
  std::string message;  ///< alarm content; alarm-add pushes only
};

/// Reliability-protocol acknowledgement (either direction): confirms
/// receipt of the message carrying `seq` for the given session.
struct AckMsg {
  alarms::SubscriberId subscriber = 0;
  std::uint32_t seq = 0;
};

/// Periodic shard checkpoint (failover tier, DESIGN.md §10): one shard's
/// durable state as of `tick` — the installed alarm replicas with their
/// install ticks, the removal graveyard with alarm lifetimes, the spent
/// (alarm, subscriber) trigger history, and the outstanding-grant table of
/// the invalidation protocol. Recovery decodes exactly these bytes, so the
/// format is load-bearing, not an estimate.
struct ShardCheckpointMsg {
  struct AlarmRec {
    alarms::SpatialAlarm alarm;
    std::uint64_t installed_at = 0;  ///< 0 = loaded at run start
  };
  struct TombRec {
    alarms::SpatialAlarm alarm;
    std::uint64_t installed_at = 0;
    std::uint64_t removed_at = 0;
  };
  struct SpentRec {
    alarms::AlarmId alarm = 0;
    alarms::SubscriberId subscriber = 0;
  };
  struct GrantRec {
    alarms::SubscriberId subscriber = 0;
    std::uint8_t kind = 0;  ///< dynamics::GrantKind
    geo::Rect bounds{geo::Point{}, geo::Point{}};
  };
  std::uint32_t shard = 0;
  std::uint64_t tick = 0;
  std::vector<AlarmRec> alarms;     ///< store slot order
  std::vector<TombRec> graveyard;   ///< removal order
  std::vector<SpentRec> spent;      ///< sorted (alarm, subscriber)
  std::vector<GrantRec> grants;     ///< sorted by subscriber
};

/// One append-only journal record (failover tier, DESIGN.md §10): a
/// post-checkpoint durable mutation of one shard. Install records carry
/// the full alarm (the store must be reconstructible from checkpoint +
/// journal alone); remove and spent records carry only ids.
struct JournalRecordMsg {
  enum class Kind : std::uint8_t {
    kInstall = 0,  ///< online alarm install (churn)
    kRemove = 1,   ///< online alarm removal (churn / TTL expiry)
    kSpent = 2,    ///< (alarm, subscriber) fired or handed off here
  };
  Kind kind = Kind::kInstall;
  std::uint64_t tick = 0;
  alarms::SpatialAlarm alarm;           ///< kInstall only
  alarms::AlarmId alarm_id = 0;         ///< kRemove / kSpent
  alarms::SubscriberId subscriber = 0;  ///< kSpent only
};

// Encoders return the full message bytes (type byte included); decoders
// check the type byte and throw PreconditionError on malformed input.
std::vector<std::uint8_t> encode(const PositionUpdate& m);
std::vector<std::uint8_t> encode(const RectSafeRegionMsg& m);
std::vector<std::uint8_t> encode(const PyramidSafeRegionMsg& m);
std::vector<std::uint8_t> encode(const AlarmPushMsg& m);
std::vector<std::uint8_t> encode(const SafePeriodMsg& m);
std::vector<std::uint8_t> encode(const TriggerNoticeMsg& m);
std::vector<std::uint8_t> encode(const InvalidationMsg& m);
std::vector<std::uint8_t> encode(const AckMsg& m);
std::vector<std::uint8_t> encode(const ShardCheckpointMsg& m);
std::vector<std::uint8_t> encode(const JournalRecordMsg& m);

PositionUpdate decode_position_update(std::span<const std::uint8_t> bytes);
RectSafeRegionMsg decode_rect_safe_region(std::span<const std::uint8_t> bytes);
PyramidSafeRegionMsg decode_pyramid_safe_region(
    std::span<const std::uint8_t> bytes);
AlarmPushMsg decode_alarm_push(std::span<const std::uint8_t> bytes);
SafePeriodMsg decode_safe_period(std::span<const std::uint8_t> bytes);
TriggerNoticeMsg decode_trigger_notice(std::span<const std::uint8_t> bytes);
InvalidationMsg decode_invalidation(std::span<const std::uint8_t> bytes);
AckMsg decode_ack(std::span<const std::uint8_t> bytes);
ShardCheckpointMsg decode_shard_checkpoint(std::span<const std::uint8_t> bytes);
JournalRecordMsg decode_journal_record(std::span<const std::uint8_t> bytes);

/// Exact encoded sizes, for the accounting paths that do not materialize
/// bytes (hot simulation loops).
std::size_t encoded_size(const PositionUpdate& m);
std::size_t encoded_size(const RectSafeRegionMsg& m);
std::size_t encoded_size(const PyramidSafeRegionMsg& m);
std::size_t encoded_size(const AlarmPushMsg& m);
std::size_t encoded_size(const SafePeriodMsg& m);
std::size_t encoded_size(const TriggerNoticeMsg& m);
std::size_t encoded_size(const InvalidationMsg& m);
std::size_t encoded_size(const ShardCheckpointMsg& m);
std::size_t encoded_size(const JournalRecordMsg& m);

/// Size of a pyramid safe-region message for a bitmap of the given bit
/// count, without building the message.
std::size_t pyramid_message_size(std::size_t bit_count);

/// Size of an OPT alarm push carrying n alarms whose alert messages total
/// the given byte count.
std::size_t alarm_push_size(std::size_t alarm_count,
                            std::size_t total_message_bytes);

/// Size of a trigger notice for an alert message of the given length.
std::size_t trigger_notice_size(std::size_t message_bytes);

/// Size of a rectangular safe-region message (constant).
std::size_t rect_message_size();

/// Size of an invalidation push for an alarm message of the given length
/// (zero for revoke/shrink pushes, which carry no alert content).
std::size_t invalidation_message_size(std::size_t message_bytes);

/// Size of a reliability-protocol ACK (constant).
std::size_t ack_message_size();

/// Size of an inter-shard session handoff carrying the subscriber id, its
/// last position/time, the ids of `spent_alarms` already-fired alarms and
/// the reliability-protocol session state — uplink/downlink sequence
/// numbers and the lease flag — that must move with the session so faults
/// replay identically across a shard crossing (cluster tier; counted,
/// never materialized on the simulation hot path).
std::size_t handoff_message_size(std::size_t spent_alarms);

}  // namespace salarm::wire
