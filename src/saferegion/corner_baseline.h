// Corner-candidate rectangular safe region — the Hu et al. [10]-style
// baseline the paper improves upon.
//
// The paper (§3, §6) claims its clamped candidate construction beats "the
// approach presented in [10]", which "leads to alarm misses and erroneous
// safe regions" when alarm regions overlap each other or intersect the
// coordinate axes through the subscriber position. This module implements
// that baseline faithfully enough to reproduce the failure: each alarm
// contributes only its geometric nearest corner, assigned to the quadrant
// that corner lies in — with no clamping to the quadrant axes.
//
// Consequence: an alarm region that straddles an axis (its nearest corner
// lies on the far side, or the constraint it imposes on the straddled
// quadrant pair is invisible from the corner's own quadrant) is not
// constrained correctly, and the resulting "safe" rectangle can overlap
// the alarm's interior — a subscriber inside it would miss the trigger.
// The ablation bench (abl_corner_baseline) and the property tests
// demonstrate both failure modes on random workloads.
//
// This baseline exists for comparison only; production code uses
// compute_mwpsr (mwpsr.h).
#pragma once

#include <span>

#include "geometry/point.h"
#include "geometry/rect.h"
#include "saferegion/motion_model.h"
#include "saferegion/mwpsr.h"

namespace salarm::saferegion {

/// Computes the corner-candidate baseline safe region. Same contract shape
/// as compute_mwpsr, but the result is NOT guaranteed sound: the returned
/// rectangle may overlap alarm interiors when alarm regions overlap or
/// straddle the axes through `position`.
RectSafeRegion compute_corner_baseline(geo::Point position, double heading,
                                       const geo::Rect& cell,
                                       std::span<const geo::Rect> alarm_regions,
                                       const MotionModel& model);

}  // namespace salarm::saferegion
