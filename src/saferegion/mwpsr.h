// Maximum Weighted Perimeter rectangular Safe Region (paper §3, Figure 2).
//
// Given a subscriber position inside its grid cell and the relevant alarm
// regions intersecting that cell, computes an axis-aligned rectangular safe
// region: a rectangle containing the position, contained in the cell, whose
// interior intersects no alarm region. Among all such rectangles the
// algorithm (greedily) maximizes the *weighted perimeter* — each quadrant's
// quarter-perimeter is weighted by the probability mass the motion model
// assigns to that quadrant, so the region stretches in the direction the
// subscriber is likely to travel.
//
// Algorithm structure (paper steps 1-4):
//  1. Candidate points — per quadrant around the position, the nearest
//     corner of each alarm region clamped to the quadrant axes. The
//     clamping uniformly handles alarm regions that overlap each other or
//     straddle the axes (the paper's fix over Hu et al. [10]). Candidates
//     that cannot bind inside the cell are dropped; dominated candidates
//     (those implied by a stronger constraint) are pruned.
//  2. Tension points — the staircase of maximal feasible rectangle corners
//     per quadrant, built from the sorted candidate set with cell-border
//     sentinels.
//  3. Component rectangles — each tension point T spans the component
//     rectangle position↔T; the safe region is the intersection of one
//     component rectangle per quadrant.
//  4. Assembly — quadrants are processed greedily in decreasing motion-pdf
//     mass, each choosing the tension point that maximizes the weighted
//     perimeter of the running intersection. An exhaustive O(n^4) optimizer
//     is available behind the same interface (options.exhaustive) for
//     ablation and verification.
//
// Special case (safe-region definition (ii) of §2.1): when the position
// lies inside one or more of the supplied alarm regions, the intersection
// of those regions (clipped to the cell) is returned and inside_alarm is
// set. Under the simulator's one-shot trigger semantics relevant alarms
// never contain the position, but the library handles it for API
// completeness.
#pragma once

#include <cstdint>
#include <span>

#include "geometry/point.h"
#include "geometry/rect.h"
#include "saferegion/motion_model.h"

namespace salarm::saferegion {

/// How step 4 combines the per-quadrant component rectangles.
enum class MwpsrAssembly : std::uint8_t {
  /// Exhaustive when the combination count fits the limit, greedy beyond:
  /// the default. At the paper's relevant-alarm densities the tension sets
  /// are tiny and the exhaustive optimum is affordable; the greedy kicks
  /// in only for very dense cells.
  kAuto,
  /// The paper's greedy heuristic: quadrants in decreasing pdf mass, each
  /// choosing the tension point maximizing the running weighted perimeter.
  /// Order-dependent: it can collapse the region to a needle when a
  /// slightly-better thin strip exists (see the ablation bench).
  kGreedy,
  /// Full enumeration of all tension-point combinations (the paper's
  /// "quartic time" optimal solution).
  kExhaustive,
};

struct MwpsrOptions {
  /// false replicates the non-weighted perimeter baseline of Figure 4
  /// (every quadrant weighs 1/4 regardless of the motion model).
  bool weighted = true;
  MwpsrAssembly assembly = MwpsrAssembly::kAuto;
  /// kAuto switches to greedy when the product of tension-set sizes
  /// exceeds this.
  std::size_t exhaustive_limit = 4096;
  /// Among regions whose weighted perimeter is within this fraction of the
  /// maximum, the largest-area one is chosen. The perimeter objective is
  /// near-indifferent between a long needle and a wide strip; the tie-break
  /// picks the rectangle the subscriber actually stays inside longer.
  /// 0 restores the pure paper objective (ablation).
  double area_tiebreak_epsilon = 0.5;
  /// false disables dominance pruning of candidate points (ablation).
  bool prune_dominated = true;
};

struct RectSafeRegion {
  geo::Rect rect;
  /// True when the position was inside >= 1 supplied alarm region and the
  /// region is the intersection of those regions (definition (ii)).
  bool inside_alarm = false;
  /// Elementary operations performed (candidate processing, sort steps,
  /// tension-point evaluations); feeds the server cost model.
  std::uint64_t ops = 0;
};

/// Computes the maximum weighted perimeter rectangular safe region.
///
/// Trigger semantics are open-interior (an alarm fires when the subscriber
/// enters the *interior* of its region), so the safe region may share
/// boundary with alarm regions, and definition (ii) applies only when the
/// position is strictly inside an alarm region. Edges bound by an alarm
/// constraint are nudged one ulp inward so the result never overlaps an
/// alarm interior even after floating-point round-trips.
///
/// Preconditions: `cell` contains `position`; every rect in
/// `alarm_regions` (closed-)intersects `cell`; `heading` is the
/// subscriber's current direction of motion in radians.
RectSafeRegion compute_mwpsr(geo::Point position, double heading,
                             const geo::Rect& cell,
                             std::span<const geo::Rect> alarm_regions,
                             const MotionModel& model,
                             const MwpsrOptions& options = {});

/// Weighted perimeter of a rectangle around `position`: four times the sum
/// over quadrants of (x-extent + y-extent) weighted by the quadrant's
/// probability mass. Equals the ordinary perimeter under uniform weights.
/// Exposed for tests and the exhaustive/greedy ablation.
double weighted_perimeter(const geo::Rect& rect, geo::Point position,
                          const QuadrantWeights& weights);

}  // namespace salarm::saferegion
