#include "saferegion/pyramid.h"

#include <algorithm>
#include <cmath>

#include "common/bitio.h"
#include "common/error.h"

namespace salarm::saferegion {

void PyramidBitmap::validate(const geo::Rect& cell,
                             const PyramidConfig& config) {
  SALARM_REQUIRE(cell.area() > 0.0, "base cell must have positive area");
  SALARM_REQUIRE(config.fanout_u >= 2 && config.fanout_v >= 2,
                 "fan-out must be at least 2x2");
  SALARM_REQUIRE(config.height >= 1, "pyramid height must be >= 1");
  SALARM_REQUIRE(config.height <= 12, "pyramid height unreasonably large");
  SALARM_REQUIRE(config.max_bits == 0 || config.max_bits >= 2,
                 "bit budget cannot encode even the root");
}

PyramidBitmap PyramidBitmap::build(const geo::Rect& cell,
                                   std::span<const geo::Rect> alarm_regions,
                                   const PyramidConfig& config,
                                   std::uint64_t* ops) {
  validate(cell, config);
  PyramidBitmap out(cell, config);

  struct WorkItem {
    std::uint32_t node;
    geo::Rect rect;
    std::vector<std::uint32_t> alarms;  ///< indices into alarm_regions
  };

  std::vector<std::uint32_t> all(alarm_regions.size());
  for (std::uint32_t i = 0; i < all.size(); ++i) all[i] = i;

  out.nodes_.push_back(Node{});
  std::vector<WorkItem> frontier;
  frontier.push_back({0, cell, std::move(all)});

  const auto uv = static_cast<std::uint32_t>(config.fanout_u) *
                  static_cast<std::uint32_t>(config.fanout_v);

  // Encoded bits so far: every classified node costs 1 bit, plus a
  // subdivided-flag bit for unsafe cells above the maximum height. The
  // budget check is conservative: a whole level is only refined if the
  // worst case (every frontier cell subdivides) fits.
  std::size_t committed_bits = 0;
  while (!frontier.empty()) {
    // Worst case if this level refines fully: every frontier cell costs 2
    // bits (unsafe + subdivided flag) and every child may later cost 2.
    const bool budget_allows_refinement =
        config.max_bits == 0 ||
        committed_bits + frontier.size() * (2 + 2 * uv) <= config.max_bits;
    std::vector<WorkItem> next;
    for (WorkItem& item : frontier) {
      // Classify this cell against the alarms inherited from its parent.
      std::vector<std::uint32_t> touching;
      bool covered = false;
      for (const std::uint32_t a : item.alarms) {
        if (ops != nullptr) ++*ops;
        const geo::Rect& region = alarm_regions[a];
        if (!region.interiors_intersect(item.rect)) continue;
        touching.push_back(a);
        if (region.contains(item.rect)) {
          covered = true;
          break;
        }
      }
      const std::uint8_t level = out.nodes_[item.node].level;
      if (touching.empty()) {
        out.nodes_[item.node].state = State::kSafe;
        committed_bits += 1;
        continue;
      }
      if (covered || level >= config.height || !budget_allows_refinement) {
        out.nodes_[item.node].state = State::kSolidUnsafe;
        committed_bits += level < config.height ? 2 : 1;
        continue;
      }
      committed_bits += 2;
      const auto first_child = static_cast<std::uint32_t>(out.nodes_.size());
      out.nodes_[item.node].state = State::kSubdivided;
      out.nodes_[item.node].first_child = first_child;
      const double w = item.rect.width() / config.fanout_u;
      const double h = item.rect.height() / config.fanout_v;
      for (int row = 0; row < config.fanout_v; ++row) {
        for (int col = 0; col < config.fanout_u; ++col) {
          Node child;
          child.level = static_cast<std::uint8_t>(level + 1);
          const auto idx = static_cast<std::uint32_t>(out.nodes_.size());
          out.nodes_.push_back(child);
          const geo::Point lo{item.rect.lo().x + w * col,
                              item.rect.lo().y + h * row};
          next.push_back(
              {idx, geo::Rect(lo, {lo.x + w, lo.y + h}), touching});
        }
      }
      SALARM_ASSERT(out.nodes_.size() == first_child + uv,
                    "children must be contiguous");
    }
    frontier = std::move(next);
  }
  return out;
}

PyramidContainment PyramidBitmap::locate(geo::Point p) const {
  SALARM_REQUIRE(cell_.contains(p), "position outside the base cell");
  PyramidContainment result;
  std::size_t index = 0;
  geo::Rect rect = cell_;
  for (;;) {
    ++result.levels;
    const Node& node = nodes_[index];
    if (node.state == State::kSafe) {
      result.safe = true;
      return result;
    }
    if (node.state == State::kSolidUnsafe) {
      result.safe = false;
      return result;
    }
    // Descend into the child containing p (half-open mapping, clamped so
    // the cell's closed upper boundary folds into the last child).
    const double w = rect.width() / config_.fanout_u;
    const double h = rect.height() / config_.fanout_v;
    const int col = std::clamp(
        static_cast<int>(std::floor((p.x - rect.lo().x) / w)), 0,
        config_.fanout_u - 1);
    const int row = std::clamp(
        static_cast<int>(std::floor((p.y - rect.lo().y) / h)), 0,
        config_.fanout_v - 1);
    index = node.first_child +
            static_cast<std::size_t>(row) * config_.fanout_u + col;
    const geo::Point lo{rect.lo().x + w * col, rect.lo().y + h * row};
    rect = geo::Rect(lo, {lo.x + w, lo.y + h});
  }
}

void PyramidBitmap::mark_unsafe(const geo::Rect& region) {
  struct Item {
    std::uint32_t node;
    geo::Rect rect;
  };
  std::vector<Item> stack{{0, cell_}};
  while (!stack.empty()) {
    const Item item = stack.back();
    stack.pop_back();
    // Open intersection: an alarm merely touching a safe node's boundary
    // cannot fire inside it (trigger semantics are open-interior).
    if (!region.interiors_intersect(item.rect)) continue;
    Node& node = nodes_[item.node];
    if (node.state == State::kSafe) {
      node.state = State::kSolidUnsafe;
      continue;
    }
    if (node.state == State::kSolidUnsafe) continue;
    const double w = item.rect.width() / config_.fanout_u;
    const double h = item.rect.height() / config_.fanout_v;
    for (int row = 0; row < config_.fanout_v; ++row) {
      for (int col = 0; col < config_.fanout_u; ++col) {
        const geo::Point lo{item.rect.lo().x + w * col,
                            item.rect.lo().y + h * row};
        stack.push_back(
            {node.first_child +
                 static_cast<std::uint32_t>(row) * config_.fanout_u + col,
             geo::Rect(lo, {lo.x + w, lo.y + h})});
      }
    }
  }
}

double PyramidBitmap::coverage() const {
  const double uv = static_cast<double>(config_.fanout_u) * config_.fanout_v;
  double covered = 0.0;
  for (const Node& node : nodes_) {
    if (node.state == State::kSafe) {
      covered += std::pow(uv, -static_cast<double>(node.level));
    }
  }
  return covered;
}

std::size_t PyramidBitmap::bit_size() const {
  std::size_t bits = 0;
  for (const Node& node : nodes_) {
    bits += (node.state != State::kSafe && node.level < config_.height) ? 2 : 1;
  }
  return bits;
}

std::size_t PyramidBitmap::paper_bit_size() const {
  const auto uv = static_cast<std::uint64_t>(config_.fanout_u) *
                  static_cast<std::uint64_t>(config_.fanout_v);
  std::uint64_t bits = 0;
  for (const Node& node : nodes_) {
    if (node.state == State::kSolidUnsafe && node.level < config_.height) {
      // The paper refines every unsafe cell: a solid block at level L drags
      // an all-zero subtree of depth height-L into the bitmap.
      std::uint64_t subtree = 0;
      std::uint64_t layer = 1;
      for (int d = node.level; d <= config_.height; ++d) {
        subtree += layer;
        layer *= uv;
      }
      bits += subtree;
    } else {
      bits += 1;
    }
  }
  return static_cast<std::size_t>(bits);
}

PyramidBitmap PyramidBitmap::intersect(const PyramidBitmap& other,
                                       std::uint64_t* ops) const {
  SALARM_REQUIRE(cell_ == other.cell_, "pyramids describe different cells");
  SALARM_REQUIRE(config_.fanout_u == other.config_.fanout_u &&
                     config_.fanout_v == other.config_.fanout_v &&
                     config_.height == other.config_.height,
                 "pyramids have different configurations");
  PyramidBitmap out(cell_, config_);
  const auto uv = static_cast<std::uint32_t>(config_.fanout_u) *
                  static_cast<std::uint32_t>(config_.fanout_v);

  // Work item: (node in a, node in b, node in out). kNone means "that side
  // is entirely safe below this point" — copy the other side's subtree.
  constexpr std::uint32_t kNone = 0xFFFFFFFFu;
  struct Item {
    std::uint32_t a;
    std::uint32_t b;
    std::uint32_t target;
  };
  out.nodes_.push_back(Node{});
  // FIFO processing keeps out.nodes_ in level order, which the level-order
  // serializer requires.
  std::vector<Item> queue{{0, 0, 0}};
  std::size_t head = 0;
  while (head < queue.size()) {
    const Item item = queue[head++];
    if (ops != nullptr) ++*ops;
    const Node* na = item.a == kNone ? nullptr : &nodes_[item.a];
    const Node* nb = item.b == kNone ? nullptr : &other.nodes_[item.b];
    Node& target = out.nodes_[item.target];
    // Level bookkeeping: the target's level was set when it was created
    // (root = 0, children = parent + 1).

    const bool a_safe = na == nullptr || na->state == State::kSafe;
    const bool b_safe = nb == nullptr || nb->state == State::kSafe;
    const bool a_solid = na != nullptr && na->state == State::kSolidUnsafe;
    const bool b_solid = nb != nullptr && nb->state == State::kSolidUnsafe;
    if (a_solid || b_solid) {
      target.state = State::kSolidUnsafe;
      continue;
    }
    if (a_safe && b_safe) {
      target.state = State::kSafe;
      continue;
    }
    // At least one side is subdivided (and neither is solid): recurse.
    target.state = State::kSubdivided;
    const auto first_child = static_cast<std::uint32_t>(out.nodes_.size());
    out.nodes_[item.target].first_child = first_child;
    const std::uint8_t child_level = out.nodes_[item.target].level + 1;
    for (std::uint32_t c = 0; c < uv; ++c) {
      Node child;
      child.level = child_level;
      out.nodes_.push_back(child);
    }
    for (std::uint32_t c = 0; c < uv; ++c) {
      const std::uint32_t ca =
          (na != nullptr && na->state == State::kSubdivided)
              ? na->first_child + c
              : kNone;
      const std::uint32_t cb =
          (nb != nullptr && nb->state == State::kSubdivided)
              ? nb->first_child + c
              : kNone;
      queue.push_back({ca, cb, first_child + c});
    }
  }
  return out;
}

std::vector<std::uint8_t> PyramidBitmap::serialize() const {
  BitWriter writer;
  // nodes_ is already in level order, so a single pass emits the paper's
  // level-by-level raster scan.
  for (const Node& node : nodes_) {
    if (node.state == State::kSafe) {
      writer.push(true);
      continue;
    }
    writer.push(false);
    if (node.level < config_.height) {
      writer.push(node.state == State::kSubdivided);
    }
  }
  SALARM_ASSERT(writer.bit_count() == bit_size(), "bit accounting mismatch");
  return std::move(writer).take();
}

PyramidBitmap PyramidBitmap::deserialize(const geo::Rect& cell,
                                         const PyramidConfig& config,
                                         std::span<const std::uint8_t> bytes,
                                         std::size_t bit_count) {
  validate(cell, config);
  BitReader reader(bytes, bit_count);
  PyramidBitmap out(cell, config);

  const auto uv = static_cast<std::uint32_t>(config.fanout_u) *
                  static_cast<std::uint32_t>(config.fanout_v);

  out.nodes_.push_back(Node{});
  // Indices of the nodes forming the current level.
  std::vector<std::uint32_t> level_nodes{0};
  int level = 0;
  while (!level_nodes.empty()) {
    SALARM_REQUIRE(level <= config.height, "bit stream deeper than height");
    std::vector<std::uint32_t> next_level;
    for (const std::uint32_t idx : level_nodes) {
      const bool safe = reader.next();
      Node& node = out.nodes_[idx];
      node.level = static_cast<std::uint8_t>(level);
      if (safe) {
        node.state = State::kSafe;
        continue;
      }
      const bool subdivided = level < config.height && reader.next();
      if (!subdivided) {
        node.state = State::kSolidUnsafe;
        continue;
      }
      node.state = State::kSubdivided;
      node.first_child = static_cast<std::uint32_t>(out.nodes_.size());
      for (std::uint32_t c = 0; c < uv; ++c) {
        next_level.push_back(static_cast<std::uint32_t>(out.nodes_.size()));
        out.nodes_.push_back(Node{});
      }
    }
    level_nodes = std::move(next_level);
    ++level;
  }
  SALARM_REQUIRE(reader.exhausted(), "trailing bits after the pyramid");
  return out;
}

bool operator==(const PyramidBitmap& a, const PyramidBitmap& b) {
  if (!(a.cell_ == b.cell_) || a.config_.fanout_u != b.config_.fanout_u ||
      a.config_.fanout_v != b.config_.fanout_v ||
      a.config_.height != b.config_.height ||
      a.nodes_.size() != b.nodes_.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.nodes_.size(); ++i) {
    if (a.nodes_[i].state != b.nodes_[i].state ||
        a.nodes_[i].level != b.nodes_[i].level ||
        (a.nodes_[i].state == PyramidBitmap::State::kSubdivided &&
         a.nodes_[i].first_child != b.nodes_[i].first_child)) {
      return false;
    }
  }
  return true;
}

}  // namespace salarm::saferegion
