// Deterministic alarm-churn workload (DESIGN.md §8).
//
// Generates a timed sequence of install / remove / TTL-expiry events over
// the simulation's tick range, entirely up front and entirely from an
// explicitly seeded Rng, so the identical timeline can be replayed against
// every strategy, against the ground-truth oracle, and against the sharded
// tier at any thread count. New alarms draw their geometry and scope from
// the same distributions as the static workload generator
// (alarms/generate_alarm_workload); removals pick uniformly among the
// alarms live at that tick; a configurable fraction of installs carries a
// TTL that expires into a scheduled removal.
//
// Ids are fresh and monotonically increasing (no reuse), starting one past
// the largest initial id — the sparse-id AlarmStore paths introduced for
// the cluster tier carry the rest.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "alarms/spatial_alarm.h"
#include "common/rng.h"
#include "geometry/rect.h"

namespace salarm::dynamics {

/// Knobs of the churn workload. Rates are expected events per tick; the
/// fractional part is resolved by a Bernoulli draw, so e.g. 0.25 installs
/// one alarm every ~4 ticks.
struct ChurnConfig {
  double installs_per_tick = 0.5;
  double removes_per_tick = 0.25;
  /// Fraction of installs that carry a TTL (expiry scheduled at install).
  double ttl_fraction = 0.5;
  std::uint64_t ttl_ticks_lo = 30;
  std::uint64_t ttl_ticks_hi = 120;
  /// Geometry/scope distributions, mirroring AlarmWorkloadConfig.
  double region_side_lo = 100.0;
  double region_side_hi = 500.0;
  double public_fraction = 0.10;
  double private_to_shared = 2.0;
  std::size_t shared_subscribers_lo = 2;
  std::size_t shared_subscribers_hi = 5;
  /// Owner / subscriber ids are drawn from [0, subscriber_count).
  std::size_t subscriber_count = 1;
};

/// One timeline entry. Removals carry only the id; installs carry the full
/// alarm definition. TTL expiries appear as ordinary removals at their
/// expiry tick (kind() distinguishes them only for reporting).
struct ChurnEvent {
  enum class Kind : std::uint8_t { kInstall = 0, kRemove = 1, kExpire = 2 };

  std::uint64_t tick = 0;
  Kind kind = Kind::kInstall;
  alarms::AlarmId id = 0;
  alarms::SpatialAlarm alarm;  ///< meaningful for kInstall only
};

/// Precomputed, replayable churn timeline. Construction is the only
/// stochastic step; replay is a cursor walk. Events within one tick are
/// ordered expiries → removals → installs, and the whole timeline is
/// non-decreasing in tick.
class AlarmScheduler {
 public:
  /// Builds the timeline for ticks [1, ticks) against the given initial
  /// alarm set (tick 0 is the static initialization tick and never churns).
  AlarmScheduler(const ChurnConfig& config, const geo::Rect& universe,
                 const std::vector<alarms::SpatialAlarm>& initial_alarms,
                 std::uint64_t ticks, std::uint64_t seed);

  const std::vector<ChurnEvent>& timeline() const { return events_; }

  /// Rewinds the replay cursor to the start of the timeline.
  void reset() { cursor_ = 0; }

  /// Visits every event scheduled for `tick`, in timeline order. Ticks
  /// must be consumed in strictly increasing order between resets.
  void for_each_due(std::uint64_t tick,
                    const std::function<void(const ChurnEvent&)>& fn);

  /// First id the scheduler allocates (one past the largest initial id).
  alarms::AlarmId first_new_id() const { return first_new_id_; }

 private:
  std::vector<ChurnEvent> events_;
  std::size_t cursor_ = 0;
  std::uint64_t last_tick_ = 0;
  alarms::AlarmId first_new_id_ = 0;
};

}  // namespace salarm::dynamics
