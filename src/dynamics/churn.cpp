#include "dynamics/churn.h"

#include <algorithm>
#include <queue>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/error.h"

namespace salarm::dynamics {

namespace {

/// Expected-value rate → integer count: the integer part always happens,
/// the fractional part is a Bernoulli draw.
std::size_t count_for_rate(double rate, Rng& rng) {
  SALARM_REQUIRE(rate >= 0.0, "negative churn rate");
  auto n = static_cast<std::size_t>(rate);
  const double frac = rate - static_cast<double>(n);
  if (frac > 0.0 && rng.chance(frac)) ++n;
  return n;
}

alarms::SpatialAlarm draw_alarm(const ChurnConfig& config,
                                const geo::Rect& universe, alarms::AlarmId id,
                                Rng& rng) {
  SALARM_REQUIRE(config.subscriber_count > 0, "churn needs subscribers");
  alarms::SpatialAlarm alarm;
  alarm.id = id;
  const double side =
      rng.uniform(config.region_side_lo, config.region_side_hi);
  SALARM_REQUIRE(universe.width() > side && universe.height() > side,
                 "alarm side exceeds universe");
  const geo::Point center{
      rng.uniform(universe.lo().x + side / 2, universe.hi().x - side / 2),
      rng.uniform(universe.lo().y + side / 2, universe.hi().y - side / 2)};
  alarm.region = geo::Rect::centered_square(center, side);
  alarm.message = "churn-" + std::to_string(id);

  const auto subscriber = [&] {
    return static_cast<alarms::SubscriberId>(
        rng.index(config.subscriber_count));
  };
  if (rng.chance(config.public_fraction)) {
    alarm.scope = alarms::AlarmScope::kPublic;
    alarm.owner = subscriber();
  } else {
    const double shared_p = 1.0 / (1.0 + config.private_to_shared);
    alarm.owner = subscriber();
    if (rng.chance(shared_p)) {
      alarm.scope = alarms::AlarmScope::kShared;
      const std::size_t want = static_cast<std::size_t>(rng.uniform_int(
          static_cast<std::int64_t>(config.shared_subscribers_lo),
          static_cast<std::int64_t>(config.shared_subscribers_hi)));
      alarm.subscribers.push_back(alarm.owner);
      while (alarm.subscribers.size() < want &&
             alarm.subscribers.size() < config.subscriber_count) {
        const auto s = subscriber();
        if (std::find(alarm.subscribers.begin(), alarm.subscribers.end(), s) ==
            alarm.subscribers.end()) {
          alarm.subscribers.push_back(s);
        }
      }
      // AlarmStore keeps subscriber lists sorted (subscribed() binary-
      // searches); emit the timeline already normalized.
      std::sort(alarm.subscribers.begin(), alarm.subscribers.end());
    } else {
      alarm.scope = alarms::AlarmScope::kPrivate;
      alarm.subscribers.push_back(alarm.owner);
    }
  }
  return alarm;
}

}  // namespace

AlarmScheduler::AlarmScheduler(
    const ChurnConfig& config, const geo::Rect& universe,
    const std::vector<alarms::SpatialAlarm>& initial_alarms,
    std::uint64_t ticks, std::uint64_t seed) {
  Rng rng(seed);

  alarms::AlarmId max_id = 0;
  std::vector<alarms::AlarmId> live;
  live.reserve(initial_alarms.size());
  for (const auto& alarm : initial_alarms) {
    max_id = std::max(max_id, alarm.id);
    live.push_back(alarm.id);
  }
  first_new_id_ = initial_alarms.empty() ? 0 : max_id + 1;
  alarms::AlarmId next_id = first_new_id_;

  // Min-heap of (expiry tick, id); stale entries (already removed by the
  // random remover) are skipped at pop time via `gone`.
  using Expiry = std::pair<std::uint64_t, alarms::AlarmId>;
  std::priority_queue<Expiry, std::vector<Expiry>, std::greater<>> expiries;
  std::unordered_set<alarms::AlarmId> gone;
  std::unordered_map<alarms::AlarmId, std::size_t> live_slot;
  for (std::size_t i = 0; i < live.size(); ++i) live_slot[live[i]] = i;

  const auto drop_live = [&](alarms::AlarmId id) {
    const auto it = live_slot.find(id);
    SALARM_ASSERT(it != live_slot.end(), "removing a dead alarm");
    const std::size_t slot = it->second;
    live_slot[live.back()] = slot;
    live[slot] = live.back();
    live.pop_back();
    live_slot.erase(it);
    gone.insert(id);
  };

  for (std::uint64_t t = 1; t < ticks; ++t) {
    // 1. TTL expiries due this tick (heap order: ascending id within tick).
    while (!expiries.empty() && expiries.top().first <= t) {
      const auto [_, id] = expiries.top();
      expiries.pop();
      if (gone.count(id) != 0) continue;  // randomly removed earlier
      drop_live(id);
      events_.push_back({t, ChurnEvent::Kind::kExpire, id, {}});
    }
    // 2. Random removals among currently-live alarms.
    for (std::size_t i = count_for_rate(config.removes_per_tick, rng); i > 0;
         --i) {
      if (live.empty()) break;
      const alarms::AlarmId id = live[rng.index(live.size())];
      drop_live(id);
      events_.push_back({t, ChurnEvent::Kind::kRemove, id, {}});
    }
    // 3. Installs, optionally with a TTL.
    for (std::size_t i = count_for_rate(config.installs_per_tick, rng); i > 0;
         --i) {
      const alarms::AlarmId id = next_id++;
      alarms::SpatialAlarm alarm = draw_alarm(config, universe, id, rng);
      if (rng.chance(config.ttl_fraction)) {
        const auto ttl = static_cast<std::uint64_t>(rng.uniform_int(
            static_cast<std::int64_t>(config.ttl_ticks_lo),
            static_cast<std::int64_t>(config.ttl_ticks_hi)));
        expiries.emplace(t + ttl, id);
      }
      live.push_back(id);
      live_slot[id] = live.size() - 1;
      events_.push_back({t, ChurnEvent::Kind::kInstall, id, std::move(alarm)});
    }
  }
}

void AlarmScheduler::for_each_due(
    std::uint64_t tick, const std::function<void(const ChurnEvent&)>& fn) {
  SALARM_REQUIRE(cursor_ == 0 || tick >= last_tick_,
                 "churn ticks must be consumed in order");
  last_tick_ = tick;
  while (cursor_ < events_.size() && events_[cursor_].tick <= tick) {
    if (events_[cursor_].tick == tick) fn(events_[cursor_]);
    ++cursor_;
  }
}

}  // namespace salarm::dynamics
