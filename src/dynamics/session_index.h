// Outstanding-grant index for the invalidation protocol (DESIGN.md §8).
//
// Whenever the server issues a safe region, a safe period or a client-side
// alarm list, it records the grant's conservative bounding box here. An
// alarm install then becomes a range query: every grant whose box (closed)
// intersects the new alarm's region might mask it and must be invalidated.
// Closed intersection errs on the side of pushing — a grant that merely
// touches the alarm region is still invalidated, which costs one push but
// can never cost accuracy.
//
// Each subscriber holds at most one grant (issuing a new one replaces the
// old), so the index is an R*-tree over at most `subscriber_count` boxes
// with the subscriber id as the entry id, plus a side map for exact-rect
// erasure and kind lookup. Node accesses are metered like every other
// server-side index so the cost model can price the range queries.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "alarms/spatial_alarm.h"
#include "dynamics/invalidation.h"
#include "geometry/rect.h"
#include "index/rstar_tree.h"

namespace salarm::dynamics {

/// Tracks, per subscriber, the one outstanding grant the server has issued
/// and not yet seen superseded. Not thread-safe: in the sharded tier each
/// shard owns its own SessionIndex and mutates it only from the shard's
/// tick task or from the serial churn phase.
class SessionIndex {
 public:
  struct Grant {
    GrantKind kind = GrantKind::kRect;
    geo::Rect bounds;
  };

  SessionIndex() = default;

  /// Records (or replaces) subscriber s's outstanding grant.
  void record(alarms::SubscriberId s, GrantKind kind, const geo::Rect& bounds);

  /// Forgets subscriber s's grant; returns false if none was recorded.
  bool clear(alarms::SubscriberId s);

  /// The grant currently recorded for s, or nullptr. The pointer is valid
  /// until the next record/clear.
  const Grant* lookup(alarms::SubscriberId s) const;

  /// Visits every (subscriber, grant) whose bounds (closed) intersect the
  /// window; the visitor returns false to stop early.
  void visit_intersecting(
      const geo::Rect& window,
      const std::function<bool(alarms::SubscriberId, const Grant&)>& fn) const;

  std::size_t size() const { return grants_.size(); }

  /// All (subscriber, grant) entries sorted by subscriber id — the grant
  /// table exported into shard checkpoints (failover tier, DESIGN.md §10).
  /// Reads the side map only, so no R*-tree node accesses are charged.
  std::vector<std::pair<alarms::SubscriberId, Grant>> snapshot() const;

  /// R*-tree node accesses since the last reset (cost-model input).
  std::uint64_t node_accesses() const { return tree_.node_accesses(); }
  void reset_node_accesses() { tree_.reset_node_accesses(); }

 private:
  index::RStarTree tree_;  // entry id = subscriber id
  std::unordered_map<alarms::SubscriberId, Grant> grants_;
};

}  // namespace salarm::dynamics
