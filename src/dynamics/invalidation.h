// Safe-region invalidation protocol (DESIGN.md §8).
//
// The paper's alarms are installable and removable at runtime (§1, §5.1),
// which turns safe regions into a cache-coherence problem: a safe region
// computed *before* an alarm is installed can silently mask the new alarm
// for as long as the client stays inside it. The server therefore tracks
// every outstanding grant (dynamics/session_index.h) and, when a new alarm
// is installed, pushes an invalidation to each subscriber whose grant the
// alarm could violate. Removals need no push: a safe region stays *sound*
// when an alarm disappears (it is merely smaller than necessary) and is
// lazily re-widened at the client's next natural refresh.
//
// The push a grant receives depends on what the client holds:
//
//  * kRevoke    — rectangle and safe-period grants. The server cannot
//                 shrink them soundly (it does not know where inside the
//                 grant the client currently is), so it drops the grant;
//                 the client re-contacts the server on its next tick.
//  * kShrink    — pyramid-bitmap grants. The alarm's region is pushed and
//                 the client conservatively flips every overlapped safe
//                 node to unsafe (PyramidBitmap::mark_unsafe).
//  * kAlarmAdd  — client-side evaluation (OPT). The full alarm (region +
//                 message) is pushed and appended to the client's list.
#pragma once

#include <cstdint>
#include <string>

#include "alarms/spatial_alarm.h"
#include "geometry/rect.h"

namespace salarm::dynamics {

/// What kind of "stay silent" promise a client currently holds. Recorded
/// per subscriber in the SessionIndex together with a conservative
/// bounding box of the area the promise covers.
enum class GrantKind : std::uint8_t {
  kRect = 0,        ///< rectangular safe region (MWPSR, corner baseline)
  kPyramid = 1,     ///< pyramid bitmap over the client's grid cell
  kSafePeriod = 2,  ///< timed grant: silent until now + period
  kAlarmList = 3,   ///< client-side evaluation: alarm list of the cell
};

/// How the client must react to an invalidation push.
enum class InvalidationAction : std::uint8_t {
  kRevoke = 0,    ///< drop the grant and re-contact the server this tick
  kShrink = 1,    ///< mark the pushed region unsafe in the held bitmap
  kAlarmAdd = 2,  ///< append the pushed alarm to the client-side list
};

/// One server→client invalidation, delivered into the subscriber's mailbox
/// at the install tick and drained by the strategy at the top of its next
/// on_tick — i.e. *before* the client decides whether to stay silent, so
/// a new alarm can never be masked for even one tick.
struct InvalidationPush {
  InvalidationAction action = InvalidationAction::kRevoke;
  alarms::AlarmId alarm = 0;
  /// The newly installed alarm's region (the shrink mask for kShrink, the
  /// client-side region for kAlarmAdd; informational for kRevoke).
  geo::Rect region;
  /// Alarm content; non-empty only for kAlarmAdd — client-side evaluation
  /// must hold the message up front, mirroring push_alarms.
  std::string message;
};

}  // namespace salarm::dynamics
