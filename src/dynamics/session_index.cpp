#include "dynamics/session_index.h"

#include <algorithm>

#include "common/error.h"

namespace salarm::dynamics {

void SessionIndex::record(alarms::SubscriberId s, GrantKind kind,
                          const geo::Rect& bounds) {
  auto it = grants_.find(s);
  if (it != grants_.end()) {
    tree_.erase({it->second.bounds, s});
    it->second = Grant{kind, bounds};
  } else {
    grants_.emplace(s, Grant{kind, bounds});
  }
  tree_.insert({bounds, s});
}

bool SessionIndex::clear(alarms::SubscriberId s) {
  auto it = grants_.find(s);
  if (it == grants_.end()) return false;
  tree_.erase({it->second.bounds, s});
  grants_.erase(it);
  return true;
}

const SessionIndex::Grant* SessionIndex::lookup(alarms::SubscriberId s) const {
  auto it = grants_.find(s);
  return it == grants_.end() ? nullptr : &it->second;
}

std::vector<std::pair<alarms::SubscriberId, SessionIndex::Grant>>
SessionIndex::snapshot() const {
  std::vector<std::pair<alarms::SubscriberId, Grant>> entries(grants_.begin(),
                                                              grants_.end());
  // The map iterates in hash order; checkpoints must be byte-identical
  // across runs and thread counts, so sort by subscriber.
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return entries;
}

void SessionIndex::visit_intersecting(
    const geo::Rect& window,
    const std::function<bool(alarms::SubscriberId, const Grant&)>& fn) const {
  tree_.visit(window, [&](const index::Entry& entry) {
    const auto s = static_cast<alarms::SubscriberId>(entry.id);
    auto it = grants_.find(s);
    SALARM_ASSERT(it != grants_.end(), "tree entry without grant");
    return fn(s, it->second);
  });
}

}  // namespace salarm::dynamics
