#include "failover/crash_plan.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace salarm::failover {

CrashPlan::CrashPlan(const FailoverConfig& config, std::size_t shard_count,
                     std::uint64_t ticks, std::uint64_t seed)
    : ticks_(ticks), windows_(shard_count) {
  SALARM_REQUIRE(config.crash_per_tick >= 0.0 && config.crash_per_tick < 1.0,
                 "crash probability must be in [0, 1)");
  SALARM_REQUIRE(
      config.crash_per_tick == 0.0 || config.crash_mean_down_ticks >= 1.0,
      "crashes need a mean downtime of at least one tick");
  SALARM_REQUIRE(config.checkpoint_interval_ticks >= 1,
                 "checkpoint interval must be at least one tick");
  Rng parent(seed);
  for (std::size_t i = 0; i < shard_count; ++i) {
    // One forked stream per shard, drawn fully up front: the windows are a
    // pure function of (seed, shard), matching FaultyChannel's per-
    // subscriber stream discipline.
    Rng stream = parent.fork();
    std::uint64_t t = 1;
    while (t < ticks && config.crash_per_tick > 0.0) {
      if (!stream.chance(config.crash_per_tick)) {
        ++t;
        continue;
      }
      // Exponential-ish downtime with the configured mean, shifted so
      // every crash loses at least one tick (same shape as the channel's
      // outage durations).
      const double u = stream.uniform(0.0, 1.0);
      const double extra = std::max(
          0.0, -(config.crash_mean_down_ticks - 1.0) * std::log1p(-u));
      const std::uint64_t duration =
          1 + static_cast<std::uint64_t>(std::llround(extra));
      const std::uint64_t end = std::min(t + duration, ticks);
      windows_[i].push_back(CrashWindow{t, end});
      // No crash draw on the recovery tick itself: a shard that just came
      // back serves at least one tick before it can crash again.
      t = end + 1;
    }
  }
  validate();
}

CrashPlan::CrashPlan(std::vector<std::vector<CrashWindow>> windows,
                     std::uint64_t ticks)
    : ticks_(ticks), windows_(std::move(windows)) {
  validate();
}

void CrashPlan::validate() {
  SALARM_REQUIRE(ticks_ >= 2, "crash plan needs at least two ticks");
  any_down_.assign(ticks_ + 1, false);
  for (const auto& shard_windows : windows_) {
    std::uint64_t previous_end = 0;
    for (const CrashWindow& w : shard_windows) {
      SALARM_REQUIRE(w.begin >= 1, "crash windows start at tick 1 or later");
      SALARM_REQUIRE(w.end > w.begin, "crash window must be non-empty");
      SALARM_REQUIRE(w.end <= ticks_, "crash window exceeds the run");
      SALARM_REQUIRE(previous_end == 0 || w.begin > previous_end,
                     "crash windows must be sorted and non-adjacent");
      previous_end = w.end;
      for (std::uint64_t t = w.begin; t < w.end; ++t) any_down_[t] = true;
    }
  }
}

const CrashWindow* CrashPlan::window_covering(std::size_t shard,
                                              std::uint64_t tick) const {
  SALARM_REQUIRE(shard < windows_.size(), "no such shard in crash plan");
  const auto& ws = windows_[shard];
  // Last window with begin <= tick.
  const auto it = std::upper_bound(
      ws.begin(), ws.end(), tick,
      [](std::uint64_t t, const CrashWindow& w) { return t < w.begin; });
  if (it == ws.begin()) return nullptr;
  return &*std::prev(it);
}

bool CrashPlan::down(std::size_t shard, std::uint64_t tick) const {
  const CrashWindow* w = window_covering(shard, tick);
  return w != nullptr && tick < w->end;
}

bool CrashPlan::crashes_at(std::size_t shard, std::uint64_t tick) const {
  const CrashWindow* w = window_covering(shard, tick);
  return w != nullptr && w->begin == tick;
}

bool CrashPlan::recovers_at(std::size_t shard, std::uint64_t tick) const {
  if (tick == 0) return false;
  const CrashWindow* w = window_covering(shard, tick - 1);
  return w != nullptr && w->end == tick;
}

bool CrashPlan::down_at_end(std::size_t shard) const {
  SALARM_REQUIRE(shard < windows_.size(), "no such shard in crash plan");
  const auto& ws = windows_[shard];
  return !ws.empty() && ws.back().end >= ticks_;
}

bool CrashPlan::any_down(std::uint64_t tick) const {
  return tick < any_down_.size() && any_down_[tick];
}

const std::vector<CrashWindow>& CrashPlan::windows(std::size_t shard) const {
  SALARM_REQUIRE(shard < windows_.size(), "no such shard in crash plan");
  return windows_[shard];
}

}  // namespace salarm::failover
