// Deterministic shard fault injection (DESIGN.md §10).
//
// A CrashPlan precomputes, from one seed, every downtime window of every
// shard over a run's tick range — before the first tick executes. Like the
// net tier's FaultyChannel, determinism comes from forked salarm::Rng
// streams: shard i's windows are a pure function of (seed, i), independent
// of thread count and of every other shard's draws. Precomputing (rather
// than drawing during the run) additionally makes crash state queryable at
// any tick from any phase without mutating the plan: the serial
// orchestration phase, the degraded-mode client link and the tests all
// read the same immutable schedule, so a run replays bit-identically.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace salarm::failover {

/// Crash and durability knobs of a failover-enabled run. A zero crash rate
/// (the default) schedules no windows: shards are immortal and only the
/// checkpoint cadence is exercised.
struct FailoverConfig {
  /// Probability that an up shard crashes on a given tick.
  double crash_per_tick = 0.0;
  /// Mean downtime of a crash in ticks (exponential-ish, >= 1).
  double crash_mean_down_ticks = 4.0;
  /// Ticks between periodic shard checkpoints (>= 1); a baseline
  /// checkpoint is also taken when failover is enabled (tick 0).
  std::uint64_t checkpoint_interval_ticks = 30;
  /// Recovery mode: with a journal, post-checkpoint mutations are replayed
  /// from the shard's append-only log; without one, recovery falls back to
  /// the upstream churn redo ledger plus client re-registration
  /// (DESIGN.md §10).
  bool journal = true;

  /// True when crashes can actually occur.
  bool faulty() const { return crash_per_tick > 0.0; }
};

/// One downtime window [begin, end): the shard's volatile state is lost
/// before tick `begin` is processed and restored before tick `end` is
/// processed. A window clipped by the end of the run (end == ticks) is
/// recovered by the run loop after the last tick, before buffered reports
/// flush.
struct CrashWindow {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
};

/// Immutable, precomputed crash schedule for one run.
class CrashPlan {
 public:
  /// Draws the windows for `shard_count` shards over ticks [1, ticks)
  /// from the config's crash rate. A shard never crashes on the tick it
  /// recovers (the next crash draw starts the tick after).
  CrashPlan(const FailoverConfig& config, std::size_t shard_count,
            std::uint64_t ticks, std::uint64_t seed);

  /// Explicit schedule (tests): per-shard windows, each list sorted,
  /// non-overlapping and non-adjacent, with begin >= 1 and end > begin.
  /// Windows may extend to `ticks` (down at end of run) but not beyond.
  CrashPlan(std::vector<std::vector<CrashWindow>> windows,
            std::uint64_t ticks);

  std::size_t shard_count() const { return windows_.size(); }
  std::uint64_t ticks() const { return ticks_; }

  /// Whether the shard is down while tick `tick` is processed.
  bool down(std::size_t shard, std::uint64_t tick) const;
  /// Whether the shard crashes at exactly this tick (window begin).
  bool crashes_at(std::size_t shard, std::uint64_t tick) const;
  /// Whether the shard recovers at exactly this tick (window end).
  bool recovers_at(std::size_t shard, std::uint64_t tick) const;
  /// Whether the shard's last window is clipped by the end of the run.
  bool down_at_end(std::size_t shard) const;
  /// Fast path for the per-tick sweeps: true when any shard is down.
  bool any_down(std::uint64_t tick) const;

  const std::vector<CrashWindow>& windows(std::size_t shard) const;

 private:
  const CrashWindow* window_covering(std::size_t shard,
                                     std::uint64_t tick) const;
  void validate();

  std::uint64_t ticks_ = 0;
  std::vector<std::vector<CrashWindow>> windows_;
  /// tick -> any shard down (sized ticks_ + 1; clipped windows mark the
  /// final slot so end-of-run queries stay in range).
  std::vector<bool> any_down_;
};

}  // namespace salarm::failover
