#include "core/spatial_alarm_service.h"

#include "common/error.h"

namespace salarm::core {

namespace {

std::vector<geo::Rect> regions_of(
    const std::vector<const alarms::SpatialAlarm*>& list) {
  std::vector<geo::Rect> out;
  out.reserve(list.size());
  for (const alarms::SpatialAlarm* a : list) out.push_back(a->region);
  return out;
}

}  // namespace

SpatialAlarmService::SpatialAlarmService(const Config& config)
    : config_(config),
      grid_(grid::GridOverlay::with_cell_area(config.universe,
                                              config.grid_cell_area_sqm)),
      motion_(config.motion_y, config.motion_z) {}

alarms::AlarmId SpatialAlarmService::install(
    alarms::AlarmScope scope, alarms::SubscriberId owner,
    const geo::Rect& region, std::vector<alarms::SubscriberId> subscribers) {
  SALARM_REQUIRE(config_.universe.contains(region),
                 "alarm region outside the universe");
  alarms::SpatialAlarm alarm;
  alarm.id = next_id_++;
  alarm.scope = scope;
  alarm.owner = owner;
  alarm.region = region;
  if (scope == alarms::AlarmScope::kPrivate && subscribers.empty()) {
    subscribers = {owner};
  }
  alarm.subscribers = std::move(subscribers);
  store_.install(std::move(alarm));
  ++installed_count_;
  return next_id_ - 1;
}

bool SpatialAlarmService::uninstall(alarms::AlarmId id) {
  if (!store_.uninstall(id)) return false;
  --installed_count_;
  return true;
}

void SpatialAlarmService::move(alarms::AlarmId id,
                               const geo::Rect& new_region) {
  SALARM_REQUIRE(config_.universe.contains(new_region),
                 "alarm region outside the universe");
  store_.move_alarm(id, new_region);
}

SpatialAlarmService::UpdateResult SpatialAlarmService::process_update(
    alarms::SubscriberId subscriber, geo::Point position, double heading,
    std::uint64_t tick, RegionKind kind) {
  SALARM_REQUIRE(config_.universe.contains(position),
                 "position outside the universe");
  UpdateResult result;
  result.fired =
      store_.process_position(subscriber, position, tick, &trigger_log_);

  const geo::Rect cell = grid_.cell_rect(grid_.cell_of(position));
  const auto relevant = store_.relevant_in_window(cell, subscriber);
  const auto regions = regions_of(relevant);

  switch (kind) {
    case RegionKind::kRect: {
      const auto region = saferegion::compute_mwpsr(
          position, heading, cell, regions, motion_, config_.mwpsr);
      result.safe_region_message =
          wire::encode(wire::RectSafeRegionMsg{region.rect});
      break;
    }
    case RegionKind::kPyramid: {
      const auto bitmap =
          saferegion::PyramidBitmap::build(cell, regions, config_.pyramid);
      result.safe_region_message =
          wire::encode(wire::PyramidSafeRegionMsg::from(bitmap));
      break;
    }
  }
  return result;
}

}  // namespace salarm::core
