#include "core/client_monitor.h"

#include "common/error.h"
#include "saferegion/wire_format.h"

namespace salarm::core {

void ClientMonitor::receive(std::span<const std::uint8_t> message) {
  SALARM_REQUIRE(!message.empty(), "empty safe-region message");
  switch (static_cast<wire::MessageType>(message[0])) {
    case wire::MessageType::kRectSafeRegion:
      region_ = wire::decode_rect_safe_region(message).rect;
      return;
    case wire::MessageType::kPyramidSafeRegion:
      region_ = wire::decode_pyramid_safe_region(message).decode();
      return;
    default:
      SALARM_REQUIRE(false, "not a safe-region message");
  }
}

bool ClientMonitor::should_report(geo::Point position) {
  ++checks_;
  ++check_ops_;
  if (std::holds_alternative<std::monostate>(region_)) return true;
  if (const auto* rect = std::get_if<geo::Rect>(&region_)) {
    return !rect->contains(position);
  }
  const auto& bitmap = std::get<saferegion::PyramidBitmap>(region_);
  if (!bitmap.cell().contains(position)) return true;
  const auto containment = bitmap.locate(position);
  check_ops_ += static_cast<std::uint64_t>(containment.levels);
  return !containment.safe;
}

}  // namespace salarm::core
