// Experiment — shared workload construction for the benches and the
// integration tests.
//
// Builds the paper's evaluation workload (synthetic ~1000 km² road network,
// vehicle trace, uniform alarm set with a configurable public share, grid
// overlay) and wires it into a Simulation. One Experiment = one workload;
// strategies are run against it via the factory helpers so every run sees
// the identical trace and alarm set.
//
// Default scale is reduced from the paper's 10,000 vehicles x 1 h to keep
// bench turnaround interactive; environment variables switch scale:
//   SALARM_FULL=1       paper scale (10,000 vehicles, 60 minutes)
//   SALARM_VEHICLES=n   override vehicle count
//   SALARM_MINUTES=m    override duration
//   SALARM_ALARMS=n     override alarm count
//   SALARM_SEED=s       override the master seed
#pragma once

#include <cstdint>
#include <memory>

#include "alarms/alarm_store.h"
#include "common/rng.h"
#include "dynamics/churn.h"
#include "grid/grid_overlay.h"
#include "mobility/trace_generator.h"
#include "roadnet/network_builder.h"
#include "roadnet/road_network.h"
#include "saferegion/motion_model.h"
#include "saferegion/mwpsr.h"
#include "saferegion/pyramid.h"
#include "sim/simulation.h"

namespace salarm::core {

struct ExperimentConfig {
  /// Universe is a square of this side (km); paper: ~1000 km² total.
  double universe_km = 32.0;
  std::size_t vehicles = 2000;
  double minutes = 15.0;
  double tick_seconds = 1.0;
  std::size_t alarm_count = 10000;
  /// Percent of alarms that are public (paper default 10, swept 1/10/20).
  double public_percent = 10.0;
  /// Grid cell size in km² (paper default/best 2.5).
  double grid_cell_sqkm = 2.5;
  /// Alarm region side range in meters (the paper does not state sizes;
  /// see DESIGN.md).
  double region_side_lo = 100.0;
  double region_side_hi = 500.0;
  std::uint64_t seed = 42;

  /// Applies the SALARM_* environment overrides to this config.
  ExperimentConfig with_env_overrides() const;

  std::size_t ticks() const {
    return static_cast<std::size_t>(minutes * 60.0 / tick_seconds) + 1;
  }
};

class Experiment {
 public:
  explicit Experiment(const ExperimentConfig& config);

  sim::Simulation& simulation() { return simulation_; }
  const ExperimentConfig& config() const { return config_; }
  const roadnet::RoadNetwork& network() const { return network_; }
  alarms::AlarmStore& store() { return store_; }
  const grid::GridOverlay& grid() const { return grid_; }

  /// Hard bound on vehicle speed (feeds the SP baseline).
  double max_speed_bound() const;

  /// Churn knobs matching this workload's alarm distributions (region
  /// sizes, public share, subscriber id space); the caller sets the rates.
  dynamics::ChurnConfig churn_config(double installs_per_tick,
                                     double removes_per_tick) const;
  /// Enables alarm churn on the simulation under the experiment's derived
  /// churn seed (independent of the network/trace/alarm streams).
  void enable_churn(const dynamics::ChurnConfig& config);
  /// Routes every subsequent run through a fault-injecting channel
  /// (DESIGN.md §9) under the experiment's derived channel seed
  /// (independent of the network/trace/alarm/churn streams). The all-zero
  /// config restores the perfect pass-through link.
  void enable_channel(const net::ChannelConfig& config);
  /// Arms shard crash-recovery for every subsequent sharded run
  /// (DESIGN.md §10) under the experiment's derived failover seed
  /// (independent of all other streams).
  void enable_failover(const failover::FailoverConfig& config);

  // Strategy factories for Simulation::run. Each call builds a fresh
  // strategy instance bound to the run's client link.
  sim::Simulation::StrategyFactory periodic() const;
  /// `speed_assumption_factor` < 1 selects the optimistic motion-estimate
  /// variant (ablation; loses accuracy).
  sim::Simulation::StrategyFactory safe_period(
      double speed_assumption_factor = 1.0) const;
  sim::Simulation::StrategyFactory rect(
      saferegion::MotionModel model,
      saferegion::MwpsrOptions options = {}) const;
  /// The unsound corner-candidate baseline ([10]); for the alarm-miss
  /// ablation only.
  sim::Simulation::StrategyFactory rect_corner_baseline(
      saferegion::MotionModel model) const;
  sim::Simulation::StrategyFactory bitmap(
      saferegion::PyramidConfig config) const;
  /// Bitmap strategy with the precomputed public-alarm bitmap cache
  /// (paper §4.2).
  sim::Simulation::StrategyFactory bitmap_cached(
      saferegion::PyramidConfig config) const;
  sim::Simulation::StrategyFactory optimal() const;

 private:
  static roadnet::RoadNetwork build_network(const ExperimentConfig& config);
  static mobility::TraceConfig trace_config(const ExperimentConfig& config);

  ExperimentConfig config_;
  roadnet::RoadNetwork network_;
  grid::GridOverlay grid_;
  alarms::AlarmStore store_;
  mobility::TraceGenerator generator_;
  sim::Simulation simulation_;
};

}  // namespace salarm::core
