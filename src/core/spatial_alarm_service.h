// SpatialAlarmService — the library's user-facing server API.
//
// This is the facade a deployment embeds on the alarm-processing server:
// install/uninstall alarms, process client position reports, and get back
// (a) the alarms that fired and (b) the encoded safe-region message to ship
// to the client. The matching client half is ClientMonitor
// (client_monitor.h), which consumes those messages and tells the device
// when it must next contact the server.
//
//   SpatialAlarmService service(config);
//   service.install(...);
//   auto result = service.process_update(subscriber, pos, heading, t);
//   // send result.safe_region_message to the client
//
// The simulation engine (src/sim) bypasses this facade for metered runs;
// the facade is the deployment surface and is exercised by examples/ and
// the integration tests.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "alarms/alarm_store.h"
#include "grid/grid_overlay.h"
#include "saferegion/motion_model.h"
#include "saferegion/mwpsr.h"
#include "saferegion/pyramid.h"
#include "saferegion/wire_format.h"

namespace salarm::core {

/// Which safe-region representation a client receives — the knob for
/// device heterogeneity (paper §2.1): weak clients get rectangles, strong
/// clients get pyramid bitmaps of a height they choose.
enum class RegionKind : std::uint8_t { kRect, kPyramid };

class SpatialAlarmService {
 public:
  struct Config {
    geo::Rect universe{geo::Point{0, 0}, geo::Point{32000, 32000}};
    /// Grid cell area in m² (paper default 2.5 km²).
    double grid_cell_area_sqm = 2.5e6;
    /// Steady-motion model for MWPSR (paper's best setting y=1, z=32).
    double motion_y = 1.0;
    int motion_z = 32;
    saferegion::MwpsrOptions mwpsr{};
    saferegion::PyramidConfig pyramid{};
  };

  explicit SpatialAlarmService(const Config& config);

  /// Installs an alarm and returns its id. Ids are dense and assigned by
  /// the service. The region must have positive area and lie inside the
  /// universe.
  alarms::AlarmId install(alarms::AlarmScope scope,
                          alarms::SubscriberId owner, const geo::Rect& region,
                          std::vector<alarms::SubscriberId> subscribers = {});

  /// Uninstalls an alarm; returns false when absent.
  bool uninstall(alarms::AlarmId id);

  /// Moves an alarm's region (moving-target alarms): the alarm keeps its
  /// id and per-subscriber trigger state; subscribers pick up the change
  /// on their next safe-region refresh. The new region must lie inside the
  /// universe.
  void move(alarms::AlarmId id, const geo::Rect& new_region);

  std::size_t alarm_count() const { return installed_count_; }

  struct UpdateResult {
    /// Alarms fired by this update (now spent for the subscriber).
    std::vector<alarms::AlarmId> fired;
    /// Encoded safe-region message for the client (rect or pyramid wire
    /// format per `kind`), ready to transmit; feed to ClientMonitor.
    std::vector<std::uint8_t> safe_region_message;
  };

  /// Processes one client report: evaluates alarms, computes a fresh safe
  /// region of the requested kind, and returns both. `heading` is the
  /// client's direction of motion (radians; only used for kRect).
  UpdateResult process_update(alarms::SubscriberId subscriber,
                              geo::Point position, double heading,
                              std::uint64_t tick,
                              RegionKind kind = RegionKind::kRect);

  /// Trigger history (every fired (alarm, subscriber, tick)).
  const std::vector<alarms::TriggerEvent>& trigger_log() const {
    return trigger_log_;
  }

  const grid::GridOverlay& grid() const { return grid_; }

 private:
  Config config_;
  grid::GridOverlay grid_;
  alarms::AlarmStore store_;
  saferegion::MotionModel motion_;
  std::vector<alarms::TriggerEvent> trigger_log_;
  std::size_t installed_count_ = 0;
  alarms::AlarmId next_id_ = 0;
};

}  // namespace salarm::core
