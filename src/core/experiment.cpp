#include "core/experiment.h"

#include <cstdlib>
#include <string>

#include "common/error.h"
#include "common/units.h"
#include "strategies/bitmap_region_strategy.h"
#include "strategies/optimal.h"
#include "strategies/periodic.h"
#include "strategies/rect_region_strategy.h"
#include "strategies/safe_period.h"

namespace salarm::core {

namespace {

std::optional<double> env_double(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return std::nullopt;
  return std::strtod(value, nullptr);
}

}  // namespace

ExperimentConfig ExperimentConfig::with_env_overrides() const {
  ExperimentConfig out = *this;
  if (const auto full = env_double("SALARM_FULL"); full && *full != 0.0) {
    out.vehicles = 10000;
    out.minutes = 60.0;
  }
  if (const auto v = env_double("SALARM_VEHICLES")) {
    out.vehicles = static_cast<std::size_t>(*v);
  }
  if (const auto m = env_double("SALARM_MINUTES")) out.minutes = *m;
  if (const auto a = env_double("SALARM_ALARMS")) {
    out.alarm_count = static_cast<std::size_t>(*a);
  }
  if (const auto s = env_double("SALARM_SEED")) {
    out.seed = static_cast<std::uint64_t>(*s);
  }
  return out;
}

roadnet::RoadNetwork Experiment::build_network(
    const ExperimentConfig& config) {
  roadnet::NetworkConfig net;
  net.width_m = config.universe_km * kMetersPerKm;
  net.height_m = config.universe_km * kMetersPerKm;
  Rng rng(config.seed * 7919 + 1);
  return roadnet::build_synthetic_network(net, rng);
}

mobility::TraceConfig Experiment::trace_config(
    const ExperimentConfig& config) {
  mobility::TraceConfig trace;
  trace.vehicle_count = config.vehicles;
  trace.tick_seconds = config.tick_seconds;
  trace.seed = config.seed * 104729 + 2;
  return trace;
}

Experiment::Experiment(const ExperimentConfig& config)
    : config_(config), network_(build_network(config)),
      grid_(grid::GridOverlay::with_cell_area(
          network_.bounding_box(),
          sqkm_to_sqm(config.grid_cell_sqkm))),
      store_(), generator_(network_, trace_config(config)),
      simulation_(generator_, store_, grid_, config.ticks()) {
  SALARM_REQUIRE(config.public_percent >= 0.0 &&
                     config.public_percent <= 100.0,
                 "public percent out of range");
  alarms::AlarmWorkloadConfig workload;
  workload.alarm_count = config.alarm_count;
  workload.subscriber_count = config.vehicles;
  workload.public_fraction = config.public_percent / 100.0;
  workload.region_side_lo = config.region_side_lo;
  workload.region_side_hi = config.region_side_hi;
  Rng rng(config.seed * 15485863 + 3);
  store_.install_bulk(
      alarms::generate_alarm_workload(workload, grid_.universe(), rng));
}

double Experiment::max_speed_bound() const {
  return trace_config(config_).max_speed_bound(network_.max_speed_mps());
}

dynamics::ChurnConfig Experiment::churn_config(
    double installs_per_tick, double removes_per_tick) const {
  dynamics::ChurnConfig churn;
  churn.installs_per_tick = installs_per_tick;
  churn.removes_per_tick = removes_per_tick;
  churn.region_side_lo = config_.region_side_lo;
  churn.region_side_hi = config_.region_side_hi;
  churn.public_fraction = config_.public_percent / 100.0;
  churn.subscriber_count = config_.vehicles;
  return churn;
}

void Experiment::enable_churn(const dynamics::ChurnConfig& config) {
  simulation_.set_churn(config, config_.seed * 32452843 + 4);
}

void Experiment::enable_channel(const net::ChannelConfig& config) {
  simulation_.set_channel(config, config_.seed * 49979687 + 5);
}

void Experiment::enable_failover(const failover::FailoverConfig& config) {
  simulation_.set_failover(config, config_.seed * 67867979 + 6);
}

sim::Simulation::StrategyFactory Experiment::periodic() const {
  return [](net::ClientLink& link) {
    return std::make_unique<strategies::PeriodicStrategy>(link);
  };
}

sim::Simulation::StrategyFactory Experiment::safe_period(
    double speed_assumption_factor) const {
  const std::size_t subscribers = config_.vehicles;
  const double bound = max_speed_bound();
  const double tick = config_.tick_seconds;
  return [subscribers, bound, tick,
          speed_assumption_factor](net::ClientLink& link) {
    return std::make_unique<strategies::SafePeriodStrategy>(
        link, subscribers, bound, tick, speed_assumption_factor);
  };
}

sim::Simulation::StrategyFactory Experiment::rect(
    saferegion::MotionModel model, saferegion::MwpsrOptions options) const {
  const std::size_t subscribers = config_.vehicles;
  return [subscribers, model, options](net::ClientLink& link) {
    return std::make_unique<strategies::RectRegionStrategy>(
        link, subscribers, model, options);
  };
}

sim::Simulation::StrategyFactory Experiment::rect_corner_baseline(
    saferegion::MotionModel model) const {
  const std::size_t subscribers = config_.vehicles;
  return [subscribers, model](net::ClientLink& link) {
    return std::make_unique<strategies::RectRegionStrategy>(
        link, subscribers, model, saferegion::MwpsrOptions{},
        /*corner_baseline=*/true);
  };
}

sim::Simulation::StrategyFactory Experiment::bitmap(
    saferegion::PyramidConfig config) const {
  const std::size_t subscribers = config_.vehicles;
  return [subscribers, config](net::ClientLink& link) {
    return std::make_unique<strategies::BitmapRegionStrategy>(
        link, subscribers, config);
  };
}

sim::Simulation::StrategyFactory Experiment::bitmap_cached(
    saferegion::PyramidConfig config) const {
  const std::size_t subscribers = config_.vehicles;
  return [subscribers, config](net::ClientLink& link) {
    return std::make_unique<strategies::BitmapRegionStrategy>(
        link, subscribers, config, /*use_public_cache=*/true);
  };
}

sim::Simulation::StrategyFactory Experiment::optimal() const {
  const std::size_t subscribers = config_.vehicles;
  return [subscribers](net::ClientLink& link) {
    return std::make_unique<strategies::OptimalStrategy>(link, subscribers);
  };
}

}  // namespace salarm::core
