// ClientMonitor — the library's user-facing client (mobile device) API.
//
// Consumes the safe-region messages produced by SpatialAlarmService and
// answers, for each position fix, whether the device must contact the
// server. This is the whole client half of the paper's distributed
// architecture: no alarm knowledge, no index — just a containment check
// against the last received safe region.
//
//   ClientMonitor monitor;
//   monitor.receive(message_from_server);
//   if (monitor.should_report(fix)) { /* send PositionUpdate */ }
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <variant>

#include "geometry/point.h"
#include "geometry/rect.h"
#include "saferegion/pyramid.h"

namespace salarm::core {

class ClientMonitor {
 public:
  /// Decodes a safe-region message (rect or pyramid wire format) and
  /// replaces the current region. Throws PreconditionError on malformed
  /// or unexpected message types.
  void receive(std::span<const std::uint8_t> message);

  /// True when the device must contact the server: it has no region yet,
  /// or the position left the region (for pyramids: left the base cell or
  /// stands on an unsafe cell).
  bool should_report(geo::Point position);

  /// True once a region has been received.
  bool has_region() const { return !std::holds_alternative<std::monostate>(region_); }

  /// Elementary containment operations performed so far — the client
  /// energy meter (rect test = 1, pyramid descent = levels visited).
  std::uint64_t check_ops() const { return check_ops_; }
  std::uint64_t checks() const { return checks_; }

 private:
  std::variant<std::monostate, geo::Rect, saferegion::PyramidBitmap> region_;
  std::uint64_t check_ops_ = 0;
  std::uint64_t checks_ = 0;
};

}  // namespace salarm::core
