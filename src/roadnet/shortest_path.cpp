#include "roadnet/shortest_path.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/error.h"

namespace salarm::roadnet {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

Router::Router(const RoadNetwork& network)
    : network_(network), best_cost_(network.node_count(), kInf),
      came_from_(network.node_count(), 0),
      visit_epoch_(network.node_count(), 0) {}

Route Router::route(NodeId from, NodeId to) {
  SALARM_REQUIRE(from < network_.node_count() && to < network_.node_count(),
                 "route endpoint out of range");
  ++epoch_;
  last_expanded_ = 0;

  const double max_speed = network_.max_speed_mps();
  SALARM_REQUIRE(max_speed > 0.0, "network has no edges");
  const geo::Point goal = network_.node(to).pos;
  auto heuristic = [&](NodeId n) {
    return geo::distance(network_.node(n).pos, goal) / max_speed;
  };

  struct QueueItem {
    double f;  // g + h
    double g;
    NodeId node;
    bool operator>(const QueueItem& o) const { return f > o.f; }
  };
  std::priority_queue<QueueItem, std::vector<QueueItem>,
                      std::greater<QueueItem>>
      open;

  auto touch = [&](NodeId n) {
    if (visit_epoch_[n] != epoch_) {
      visit_epoch_[n] = epoch_;
      best_cost_[n] = kInf;
    }
  };

  touch(from);
  best_cost_[from] = 0.0;
  came_from_[from] = from;
  open.push({heuristic(from), 0.0, from});

  bool found = from == to;
  while (!open.empty() && !found) {
    const QueueItem item = open.top();
    open.pop();
    touch(item.node);
    if (item.g > best_cost_[item.node]) continue;  // stale queue entry
    ++last_expanded_;
    if (item.node == to) {
      found = true;
      break;
    }
    for (const RoadNetwork::Adjacency& adj : network_.neighbors(item.node)) {
      const RoadEdge& e = network_.edge(adj.edge);
      const double g = item.g + e.length_m / e.speed_mps;
      touch(adj.neighbor);
      if (g < best_cost_[adj.neighbor]) {
        best_cost_[adj.neighbor] = g;
        came_from_[adj.neighbor] = item.node;
        open.push({g + heuristic(adj.neighbor), g, adj.neighbor});
      }
    }
  }

  Route result;
  if (!found) return result;

  // Reconstruct.
  std::vector<NodeId> reversed{to};
  while (reversed.back() != from) {
    reversed.push_back(came_from_[reversed.back()]);
  }
  result.nodes.assign(reversed.rbegin(), reversed.rend());
  result.travel_time_s = from == to ? 0.0 : best_cost_[to];
  for (std::size_t i = 0; i + 1 < result.nodes.size(); ++i) {
    result.length_m += geo::distance(network_.node(result.nodes[i]).pos,
                                     network_.node(result.nodes[i + 1]).pos);
  }
  return result;
}

}  // namespace salarm::roadnet
