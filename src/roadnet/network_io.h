// Road-network serialization: CSV import/export.
//
// The paper's evaluation runs on the USGS Atlanta map; this repository
// generates a synthetic network instead (DESIGN.md §5). Users with real
// map data can import it through this module and drive the trace
// generator and every experiment with it.
//
// Format — a nodes section then an edges section, both with headers:
//
//   # salarm-road-network v1
//   nodes,<count>
//   id,x,y
//   0,1500.0,2300.5
//   ...
//   edges,<count>
//   a,b,speed_mps,class
//   0,1,25.0,highway
//   ...
//
// Node ids must be dense from 0 and appear in order; `class` is one of
// highway / arterial / local.
#pragma once

#include <iosfwd>
#include <string>

#include "roadnet/road_network.h"

namespace salarm::roadnet {

void write_network_csv(const RoadNetwork& network, std::ostream& out);

/// Parses a network from the format above. Throws PreconditionError on
/// malformed input (bad magic, sparse ids, unknown road class, dangling
/// edge endpoints, counts that do not match).
RoadNetwork read_network_csv(std::istream& in);

/// Convenience file wrappers; throw PreconditionError when the file cannot
/// be opened.
void save_network_csv(const RoadNetwork& network, const std::string& path);
RoadNetwork load_network_csv(const std::string& path);

}  // namespace salarm::roadnet
