// Synthetic road network generator.
//
// Builds a perturbed-grid road web with three functional classes — the
// stand-in for the paper's USGS Atlanta map (DESIGN.md §5). The default
// parameters cover a 32 km × 32 km region (1024 km², matching the paper's
// ~1000 km²) with highways every 8 km, arterials every 2 km and local
// streets at 1 km spacing, jittered so the network is not a perfect lattice.
#pragma once

#include "common/rng.h"
#include "common/units.h"
#include "roadnet/road_network.h"

namespace salarm::roadnet {

struct NetworkConfig {
  double width_m = 32000.0;
  double height_m = 32000.0;
  /// Spacing of the underlying node lattice (local street pitch).
  double spacing_m = 1000.0;
  /// Every k-th lattice line is an arterial / a highway.
  int arterial_every = 2;
  int highway_every = 8;
  double highway_speed_mps = kmh_to_mps(90.0);
  double arterial_speed_mps = kmh_to_mps(60.0);
  double local_speed_mps = kmh_to_mps(30.0);
  /// Node positions are jittered by up to this fraction of the spacing.
  double jitter_fraction = 0.25;
  /// Fraction of local (lowest-class) segments randomly removed to break up
  /// the lattice. Removal never disconnects the network: candidates are
  /// only removed if both endpoints keep degree >= 2.
  double local_drop_probability = 0.10;
};

/// Builds a connected synthetic network. Throws PreconditionError on an
/// unusable configuration (non-positive extent/spacing, jitter >= 0.5, ...).
RoadNetwork build_synthetic_network(const NetworkConfig& config, Rng& rng);

}  // namespace salarm::roadnet
