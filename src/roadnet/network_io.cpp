#include "roadnet/network_io.h"

#include <charconv>
#include <fstream>
#include <iostream>
#include <string_view>
#include <vector>

#include "common/error.h"

namespace salarm::roadnet {

namespace {

constexpr char kMagic[] = "# salarm-road-network v1";

std::string_view class_name(RoadClass c) {
  switch (c) {
    case RoadClass::kHighway:
      return "highway";
    case RoadClass::kArterial:
      return "arterial";
    case RoadClass::kLocal:
      return "local";
  }
  SALARM_ASSERT(false, "unknown road class");
}

RoadClass class_from_name(std::string_view name) {
  if (name == "highway") return RoadClass::kHighway;
  if (name == "arterial") return RoadClass::kArterial;
  if (name == "local") return RoadClass::kLocal;
  SALARM_REQUIRE(false, "unknown road class: " + std::string(name));
}

double parse_double(std::string_view field, const char* what) {
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  SALARM_REQUIRE(ec == std::errc() && ptr == field.data() + field.size(),
                 std::string("malformed ") + what + " field");
  return value;
}

std::uint64_t parse_uint(std::string_view field, const char* what) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  SALARM_REQUIRE(ec == std::errc() && ptr == field.data() + field.size(),
                 std::string("malformed ") + what + " field");
  return value;
}

std::vector<std::string_view> split_fields(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = line.find(',', start);
    if (comma == std::string_view::npos) {
      out.push_back(line.substr(start));
      return out;
    }
    out.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
}

std::string next_line(std::istream& in, const char* what) {
  std::string line;
  SALARM_REQUIRE(static_cast<bool>(std::getline(in, line)),
                 std::string("unexpected end of file before ") + what);
  return line;
}

}  // namespace

void write_network_csv(const RoadNetwork& network, std::ostream& out) {
  out << kMagic << '\n';
  out.precision(10);
  out << "nodes," << network.node_count() << '\n';
  out << "id,x,y\n";
  for (NodeId n = 0; n < network.node_count(); ++n) {
    const geo::Point p = network.node(n).pos;
    out << n << ',' << p.x << ',' << p.y << '\n';
  }
  out << "edges," << network.edge_count() << '\n';
  out << "a,b,speed_mps,class\n";
  for (EdgeId e = 0; e < network.edge_count(); ++e) {
    const RoadEdge& edge = network.edge(e);
    out << edge.a << ',' << edge.b << ',' << edge.speed_mps << ','
        << class_name(edge.road_class) << '\n';
  }
}

RoadNetwork read_network_csv(std::istream& in) {
  SALARM_REQUIRE(next_line(in, "magic") == kMagic,
                 "missing salarm-road-network magic line");

  const std::string nodes_line = next_line(in, "nodes header");
  const auto nodes_header = split_fields(nodes_line);
  SALARM_REQUIRE(nodes_header.size() == 2 && nodes_header[0] == "nodes",
                 "expected 'nodes,<count>'");
  const auto node_count = parse_uint(nodes_header[1], "node count");
  SALARM_REQUIRE(next_line(in, "node columns") == "id,x,y",
                 "expected node column header 'id,x,y'");

  RoadNetwork network;
  for (std::uint64_t i = 0; i < node_count; ++i) {
    const std::string row = next_line(in, "node row");
    const auto fields = split_fields(row);
    SALARM_REQUIRE(fields.size() == 3, "node rows need 3 fields");
    SALARM_REQUIRE(parse_uint(fields[0], "node id") == i,
                   "node ids must be dense and in order");
    network.add_node(
        {parse_double(fields[1], "x"), parse_double(fields[2], "y")});
  }

  const std::string edges_line = next_line(in, "edges header");
  const auto edges_header = split_fields(edges_line);
  SALARM_REQUIRE(edges_header.size() == 2 && edges_header[0] == "edges",
                 "expected 'edges,<count>'");
  const auto edge_count = parse_uint(edges_header[1], "edge count");
  SALARM_REQUIRE(next_line(in, "edge columns") == "a,b,speed_mps,class",
                 "expected edge column header 'a,b,speed_mps,class'");

  for (std::uint64_t i = 0; i < edge_count; ++i) {
    const std::string row = next_line(in, "edge row");
    const auto fields = split_fields(row);
    SALARM_REQUIRE(fields.size() == 4, "edge rows need 4 fields");
    const auto a = static_cast<NodeId>(parse_uint(fields[0], "edge a"));
    const auto b = static_cast<NodeId>(parse_uint(fields[1], "edge b"));
    network.add_edge(a, b, parse_double(fields[2], "speed"),
                     class_from_name(fields[3]));
  }
  return network;
}

void save_network_csv(const RoadNetwork& network, const std::string& path) {
  std::ofstream out(path);
  SALARM_REQUIRE(out.good(), "cannot open network file for writing: " + path);
  write_network_csv(network, out);
  SALARM_REQUIRE(out.good(), "error writing network file: " + path);
}

RoadNetwork load_network_csv(const std::string& path) {
  std::ifstream in(path);
  SALARM_REQUIRE(in.good(), "cannot open network file: " + path);
  return read_network_csv(in);
}

}  // namespace salarm::roadnet
