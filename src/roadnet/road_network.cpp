#include "roadnet/road_network.h"

#include <algorithm>
#include <queue>

#include "common/error.h"

namespace salarm::roadnet {

NodeId RoadNetwork::add_node(geo::Point pos) {
  nodes_.push_back({pos});
  adjacency_.emplace_back();
  return static_cast<NodeId>(nodes_.size() - 1);
}

EdgeId RoadNetwork::add_edge(NodeId a, NodeId b, double speed_mps,
                             RoadClass road_class) {
  SALARM_REQUIRE(a < nodes_.size() && b < nodes_.size(),
                 "edge endpoint does not exist");
  SALARM_REQUIRE(a != b, "self-loop edges are not allowed");
  SALARM_REQUIRE(speed_mps > 0.0, "edge speed must be positive");
  RoadEdge e;
  e.a = a;
  e.b = b;
  e.length_m = geo::distance(nodes_[a].pos, nodes_[b].pos);
  SALARM_REQUIRE(e.length_m > 0.0, "zero-length edge");
  e.speed_mps = speed_mps;
  e.road_class = road_class;
  edges_.push_back(e);
  const auto id = static_cast<EdgeId>(edges_.size() - 1);
  adjacency_[a].push_back({id, b});
  adjacency_[b].push_back({id, a});
  max_speed_mps_ = std::max(max_speed_mps_, speed_mps);
  return id;
}

const RoadNode& RoadNetwork::node(NodeId id) const {
  SALARM_REQUIRE(id < nodes_.size(), "node id out of range");
  return nodes_[id];
}

const RoadEdge& RoadNetwork::edge(EdgeId id) const {
  SALARM_REQUIRE(id < edges_.size(), "edge id out of range");
  return edges_[id];
}

std::span<const RoadNetwork::Adjacency> RoadNetwork::neighbors(
    NodeId id) const {
  SALARM_REQUIRE(id < adjacency_.size(), "node id out of range");
  return adjacency_[id];
}

geo::Rect RoadNetwork::bounding_box() const {
  SALARM_REQUIRE(!nodes_.empty(), "bounding box of empty network");
  geo::Rect box(nodes_.front().pos, nodes_.front().pos);
  for (const RoadNode& n : nodes_) box = box.united(n.pos);
  return box;
}

std::size_t RoadNetwork::largest_component_size() const {
  std::vector<bool> seen(nodes_.size(), false);
  std::size_t best = 0;
  for (NodeId start = 0; start < nodes_.size(); ++start) {
    if (seen[start]) continue;
    std::size_t component = 0;
    std::queue<NodeId> frontier;
    frontier.push(start);
    seen[start] = true;
    while (!frontier.empty()) {
      const NodeId n = frontier.front();
      frontier.pop();
      ++component;
      for (const Adjacency& adj : adjacency_[n]) {
        if (!seen[adj.neighbor]) {
          seen[adj.neighbor] = true;
          frontier.push(adj.neighbor);
        }
      }
    }
    best = std::max(best, component);
  }
  return best;
}

}  // namespace salarm::roadnet
