#include "roadnet/network_builder.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.h"

namespace salarm::roadnet {

namespace {

struct Lattice {
  int cols = 0;
  int rows = 0;
  std::vector<NodeId> ids;

  NodeId at(int c, int r) const {
    return ids[static_cast<std::size_t>(r) * cols + c];
  }
};

RoadClass line_class(int line_index, const NetworkConfig& cfg) {
  if (cfg.highway_every > 0 && line_index % cfg.highway_every == 0) {
    return RoadClass::kHighway;
  }
  if (cfg.arterial_every > 0 && line_index % cfg.arterial_every == 0) {
    return RoadClass::kArterial;
  }
  return RoadClass::kLocal;
}

double class_speed(RoadClass c, const NetworkConfig& cfg) {
  switch (c) {
    case RoadClass::kHighway:
      return cfg.highway_speed_mps;
    case RoadClass::kArterial:
      return cfg.arterial_speed_mps;
    case RoadClass::kLocal:
      return cfg.local_speed_mps;
  }
  SALARM_ASSERT(false, "unknown road class");
}

}  // namespace

RoadNetwork build_synthetic_network(const NetworkConfig& cfg, Rng& rng) {
  SALARM_REQUIRE(cfg.width_m > 0 && cfg.height_m > 0, "non-positive extent");
  SALARM_REQUIRE(cfg.spacing_m > 0, "non-positive spacing");
  SALARM_REQUIRE(cfg.spacing_m <= cfg.width_m && cfg.spacing_m <= cfg.height_m,
                 "spacing exceeds extent");
  SALARM_REQUIRE(cfg.jitter_fraction >= 0 && cfg.jitter_fraction < 0.5,
                 "jitter must be in [0, 0.5)");
  SALARM_REQUIRE(
      cfg.local_drop_probability >= 0 && cfg.local_drop_probability < 1,
      "drop probability must be in [0, 1)");
  SALARM_REQUIRE(cfg.highway_speed_mps > 0 && cfg.arterial_speed_mps > 0 &&
                     cfg.local_speed_mps > 0,
                 "speeds must be positive");

  RoadNetwork net;
  Lattice lattice;
  lattice.cols = static_cast<int>(std::floor(cfg.width_m / cfg.spacing_m)) + 1;
  lattice.rows = static_cast<int>(std::floor(cfg.height_m / cfg.spacing_m)) + 1;

  // Nodes: jittered lattice positions. Border nodes stay on the border so
  // the bounding box is exactly the configured extent.
  const double jitter = cfg.jitter_fraction * cfg.spacing_m;
  for (int r = 0; r < lattice.rows; ++r) {
    for (int c = 0; c < lattice.cols; ++c) {
      const bool border_col = c == 0 || c == lattice.cols - 1;
      const bool border_row = r == 0 || r == lattice.rows - 1;
      const double base_x =
          c == lattice.cols - 1 ? cfg.width_m : c * cfg.spacing_m;
      const double base_y =
          r == lattice.rows - 1 ? cfg.height_m : r * cfg.spacing_m;
      const double jx = border_col ? 0.0 : rng.uniform(-jitter, jitter);
      const double jy = border_row ? 0.0 : rng.uniform(-jitter, jitter);
      lattice.ids.push_back(net.add_node({base_x + jx, base_y + jy}));
    }
  }

  // Edges: horizontal segments carry the class of their row line, vertical
  // segments the class of their column line. Local segments may be dropped
  // to break up the lattice, but only while both endpoints keep degree >= 2
  // after all edges are placed; to keep this simple and safe we place all
  // edges first and never materialize dropped local segments, tracking the
  // would-be degree instead.
  struct PendingEdge {
    NodeId a;
    NodeId b;
    RoadClass road_class;
  };
  std::vector<PendingEdge> pending;
  for (int r = 0; r < lattice.rows; ++r) {
    const RoadClass horizontal = line_class(r, cfg);
    for (int c = 0; c + 1 < lattice.cols; ++c) {
      pending.push_back({lattice.at(c, r), lattice.at(c + 1, r), horizontal});
    }
  }
  for (int c = 0; c < lattice.cols; ++c) {
    const RoadClass vertical = line_class(c, cfg);
    for (int r = 0; r + 1 < lattice.rows; ++r) {
      pending.push_back({lattice.at(c, r), lattice.at(c, r + 1), vertical});
    }
  }

  std::vector<int> degree(net.node_count(), 0);
  for (const PendingEdge& e : pending) {
    ++degree[e.a];
    ++degree[e.b];
  }
  for (const PendingEdge& e : pending) {
    const bool droppable = e.road_class == RoadClass::kLocal &&
                           degree[e.a] > 2 && degree[e.b] > 2;
    if (droppable && rng.chance(cfg.local_drop_probability)) {
      --degree[e.a];
      --degree[e.b];
      continue;
    }
    net.add_edge(e.a, e.b, class_speed(e.road_class, cfg), e.road_class);
  }

  SALARM_ASSERT(net.largest_component_size() == net.node_count(),
                "synthetic network must be connected");
  return net;
}

}  // namespace salarm::roadnet
