// Time-optimal routing over a RoadNetwork.
#pragma once

#include <vector>

#include "roadnet/road_network.h"

namespace salarm::roadnet {

/// A route as a sequence of adjacent nodes, front() = origin, back() =
/// destination.
struct Route {
  std::vector<NodeId> nodes;
  double travel_time_s = 0.0;
  double length_m = 0.0;

  bool empty() const { return nodes.empty(); }
};

/// A* router minimizing travel time, with the admissible heuristic
/// straight-line-distance / network-max-speed. Reusable across queries
/// (scratch buffers are kept between calls); not thread-safe — use one
/// Router per thread.
class Router {
 public:
  explicit Router(const RoadNetwork& network);

  /// Fastest route from `from` to `to`. Returns an empty route when the
  /// destination is unreachable. A route from a node to itself contains
  /// that single node.
  Route route(NodeId from, NodeId to);

  /// Nodes expanded by the most recent route() call (test/bench hook).
  std::size_t last_expanded() const { return last_expanded_; }

 private:
  const RoadNetwork& network_;
  // Scratch, versioned to avoid O(V) clearing per query.
  std::vector<double> best_cost_;
  std::vector<NodeId> came_from_;
  std::vector<std::uint32_t> visit_epoch_;
  std::uint32_t epoch_ = 0;
  std::size_t last_expanded_ = 0;
};

}  // namespace salarm::roadnet
