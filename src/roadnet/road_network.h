// Road network model.
//
// The paper generates traces of vehicles "moving on a real-world road
// network using maps available from ... USGS" over an ~1000 km² region of
// Atlanta. The USGS map data is not available here; src/roadnet instead
// provides (i) this generic road-network container and (ii) a synthetic
// network builder (network_builder.h) producing a hierarchical
// highway/arterial/local road web of comparable expanse and speed structure.
// DESIGN.md §5 documents why the substitution preserves the evaluated
// behaviour.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geometry/point.h"
#include "geometry/rect.h"

namespace salarm::roadnet {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;

/// Functional class of a road, in decreasing speed order.
enum class RoadClass : std::uint8_t { kHighway, kArterial, kLocal };

struct RoadNode {
  geo::Point pos;
};

/// An undirected road segment between two nodes.
struct RoadEdge {
  NodeId a = 0;
  NodeId b = 0;
  double length_m = 0.0;
  double speed_mps = 0.0;
  RoadClass road_class = RoadClass::kLocal;
};

/// Compact undirected graph with an adjacency index. Nodes and edges are
/// append-only; the adjacency index is built incrementally.
class RoadNetwork {
 public:
  /// Half-edge as seen from one endpoint.
  struct Adjacency {
    EdgeId edge;
    NodeId neighbor;
  };

  NodeId add_node(geo::Point pos);

  /// Adds an undirected edge; length is computed from node positions.
  /// Requires distinct, existing endpoints and positive speed.
  EdgeId add_edge(NodeId a, NodeId b, double speed_mps, RoadClass road_class);

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t edge_count() const { return edges_.size(); }
  const RoadNode& node(NodeId id) const;
  const RoadEdge& edge(EdgeId id) const;
  std::span<const Adjacency> neighbors(NodeId id) const;

  /// Bounding box of all nodes; throws on an empty network.
  geo::Rect bounding_box() const;

  /// Size of the largest connected component (BFS). A usable mobility
  /// substrate should have this equal to node_count().
  std::size_t largest_component_size() const;

  /// Highest speed over all edges in m/s (0 on an empty network); the
  /// safe-period baseline uses this as its worst-case velocity bound.
  double max_speed_mps() const { return max_speed_mps_; }

 private:
  std::vector<RoadNode> nodes_;
  std::vector<RoadEdge> edges_;
  std::vector<std::vector<Adjacency>> adjacency_;
  double max_speed_mps_ = 0.0;
};

}  // namespace salarm::roadnet
